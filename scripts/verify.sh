#!/usr/bin/env sh
# Tier-1 verification gate: hermetic build, full test suite, formatting.
#
# The workspace has zero crates.io dependencies, so --offline must always
# succeed from a clean checkout — if it doesn't, a registry dependency
# crept back in and this gate is doing its job.
set -eu
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

echo "== cargo clippy --offline --all-targets -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

echo "== cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "== perfbench smoke (tiny trial budget, throwaway output)"
cargo run --release --offline -p h2priv-bench --bin perfbench -- 2 /tmp/h2priv_perf_smoke.json >/dev/null

echo "== parallel executor smoke (--jobs 2)"
cargo run --release --offline -p h2priv-bench --bin table1_jitter -- 2 --jobs 2 >/dev/null

echo "== trace smoke (--trace jsonl parses and is byte-identical across --jobs)"
cargo run --release --offline -p h2priv-bench --bin table1_jitter -- 2 --jobs 1 \
    --trace /tmp/h2priv_trace_j1.jsonl >/dev/null 2>&1
cargo run --release --offline -p h2priv-bench --bin table1_jitter -- 2 --jobs 2 \
    --trace /tmp/h2priv_trace_j2.jsonl >/dev/null 2>&1
test -s /tmp/h2priv_trace_j1.jsonl
cmp /tmp/h2priv_trace_j1.jsonl /tmp/h2priv_trace_j2.jsonl
cargo run --release --offline -p h2priv-bench --bin trace_check -- /tmp/h2priv_trace_j1.jsonl

echo "verify: OK"
