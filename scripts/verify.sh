#!/usr/bin/env sh
# Tier-1 verification gate: hermetic build, full test suite, formatting.
#
# The workspace has zero crates.io dependencies, so --offline must always
# succeed from a clean checkout — if it doesn't, a registry dependency
# crept back in and this gate is doing its job.
set -eu
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

echo "== cargo clippy --offline --all-targets -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

echo "== cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "== event core: differential oracle suite (wheel vs reference heap)"
cargo test -q --offline -p h2priv-netsim --test queue_differential

echo "== event core: full suite under the reference BinaryHeap queue"
# The timer wheel must be a drop-in replacement: every pinned outcome
# (seed stability, events_total, golden fixtures) has to pass untouched
# with the oracle queue swapped in.
cargo test -q --offline --features h2priv-netsim/reference-queue

echo "== event core: cancel/rearm leaves no tombstones"
cargo test -q --offline -p h2priv-netsim --test cancel_rearm
cargo test -q --offline -p h2priv-tcp --test rto_restart
cargo test -q --offline -p h2priv-quic --test pto_rearm

echo "== perfbench smoke (tiny trial budget, throwaway output)"
PERFBENCH_REPS=1 cargo run --release --offline -p h2priv-bench --bin perfbench -- 2 /tmp/h2priv_perf_smoke.json >/dev/null

echo "== allocation-regression pins (counting allocator, exact per-trial counts)"
# Steady-state allocations per trial are deterministic for a given seed
# and build profile; any drift is a real hot-path change. Exact pins
# live in crates/core/tests/alloc_regression.rs.
cargo test -q --offline --release -p h2priv-core --test alloc_regression

echo "== perfbench events/sec floor (warn-only)"
# Regenerating BENCH_simperf.json on wildly different hosts is expected;
# this only warns when the committed h2_baseline jobs=1 throughput drops
# below the floor recorded at the time of the event-core overhaul.
FLOOR_EVS=2600000
COMMITTED_EVS=$(sed -n 's/.*"events_per_sec": \([0-9]*\)\..*/\1/p' BENCH_simperf.json | head -1)
if [ -n "$COMMITTED_EVS" ] && [ "$COMMITTED_EVS" -lt "$FLOOR_EVS" ]; then
    echo "WARN: committed h2_baseline events/sec ($COMMITTED_EVS) is below the $FLOOR_EVS floor" >&2
fi

echo "== h3_full_attack events/sec floor (warn-only)"
# Floor recorded after the zero-alloc QUIC/H3 hot-path pass (the gate is
# 2x the pre-pass 790k ev/s baseline). Committed numbers from a slower
# host only warn, never fail.
H3_FLOOR_EVS=1600000
H3_COMMITTED_EVS=$(grep -A 11 '"scenario": "h3_full_attack"' BENCH_simperf.json \
    | sed -n 's/.*"events_per_sec": \([0-9]*\)\..*/\1/p' | head -1)
if [ -n "$H3_COMMITTED_EVS" ] && [ "$H3_COMMITTED_EVS" -lt "$H3_FLOOR_EVS" ]; then
    echo "WARN: committed h3_full_attack events/sec ($H3_COMMITTED_EVS) is below the $H3_FLOOR_EVS floor" >&2
fi

echo "== parallel executor smoke (--jobs 2)"
cargo run --release --offline -p h2priv-bench --bin table1_jitter -- 2 --jobs 2 >/dev/null

echo "== trace smoke (--trace jsonl parses and is byte-identical across --jobs)"
cargo run --release --offline -p h2priv-bench --bin table1_jitter -- 2 --jobs 1 \
    --trace /tmp/h2priv_trace_j1.jsonl >/dev/null 2>&1
cargo run --release --offline -p h2priv-bench --bin table1_jitter -- 2 --jobs 2 \
    --trace /tmp/h2priv_trace_j2.jsonl >/dev/null 2>&1
test -s /tmp/h2priv_trace_j1.jsonl
cmp /tmp/h2priv_trace_j1.jsonl /tmp/h2priv_trace_j2.jsonl
cargo run --release --offline -p h2priv-bench --bin trace_check -- /tmp/h2priv_trace_j1.jsonl

echo "== campaign gate (sharded run + injected kill + resume == sequential run)"
# The sharded campaign runner must be invisible in the results: a 2-shard
# run that is killed at an injected crash point and then resumed has to
# produce byte-identical journal and report to an uninterrupted 1-shard
# run. Small trial budget keeps this under a minute.
CAMPAIGN=target/release/campaign
rm -f /tmp/h2priv_camp_seq.jsonl /tmp/h2priv_camp_seq.json \
      /tmp/h2priv_camp_shard.jsonl /tmp/h2priv_camp_shard.json
"$CAMPAIGN" robustness_sweep 2 --shards 1 --quiet \
    --journal /tmp/h2priv_camp_seq.jsonl --out /tmp/h2priv_camp_seq.json
if "$CAMPAIGN" robustness_sweep 2 --shards 2 --quiet --fail-on-crash \
    --inject-kill trial=6 \
    --journal /tmp/h2priv_camp_shard.jsonl --out /tmp/h2priv_camp_shard.json \
    2>/dev/null; then
    echo "ERROR: injected kill did not abort the campaign" >&2
    exit 1
fi
"$CAMPAIGN" robustness_sweep 2 --shards 2 --quiet --resume \
    --journal /tmp/h2priv_camp_shard.jsonl --out /tmp/h2priv_camp_shard.json
cmp /tmp/h2priv_camp_seq.jsonl /tmp/h2priv_camp_shard.jsonl
cmp /tmp/h2priv_camp_seq.json /tmp/h2priv_camp_shard.json

echo "== defense matrix smoke (no-defense column pinned, --jobs identity)"
# A 6-trial matrix must leave the undefended cells exactly at their
# pinned success rates — the defense layer being present may not
# perturb the Defense::None code path — and padding/shaping must still
# zero out the H2/TCP attack. Byte-identical across --jobs levels.
DM1=/tmp/h2priv_defense_j1.json
DM4=/tmp/h2priv_defense_j4.json
cargo run --release --offline -p h2priv-bench --bin defense_matrix -- 6 --jobs 1 \
    --out "$DM1" >/dev/null 2>&1
cargo run --release --offline -p h2priv-bench --bin defense_matrix -- 6 --jobs 4 \
    --out "$DM4" >/dev/null 2>&1
cmp "$DM1" "$DM4"
awk -F'"' '
/"defense":/   { defense = $4 }
/"attack":/    { attack = $4 }
/"transport":/ { transport = $4 }
/"pct_success":/ {
    v = $3; sub(/^: /, "", v); sub(/,$/, "", v)
    got[attack "/" transport "/" defense] = v
}
END {
    pin["full_attack/h2-tcp/none"]                = "83.33333333333333"
    pin["full_attack/h3-quic/none"]               = "0.0"
    pin["jitter_only_50ms/h2-tcp/none"]           = "33.333333333333336"
    pin["jitter_only_50ms/h3-quic/none"]          = "33.333333333333336"
    pin["full_attack/h2-tcp/record_padding"]      = "0.0"
    pin["full_attack/h2-tcp/shaping"]             = "0.0"
    bad = 0
    for (k in pin) if (got[k] != pin[k]) {
        printf "ERROR: defense_matrix pin %s: got %s, want %s\n", k, got[k], pin[k] > "/dev/stderr"
        bad = 1
    }
    exit bad
}' "$DM1"

echo "verify: OK"
