//! QUIC-lite wire format: frames and datagram encoding.
//!
//! The model keeps real QUIC's *observable* structure — one short-header
//! packet per UDP datagram, an AEAD tag per packet, frames inside — while
//! using fixed-width fields instead of varints (the simulator never needs
//! the byte savings, and fixed widths keep every size computable in
//! closed form, which the datagram-delimiter analysis in `h2priv-trace`
//! relies on).
//!
//! Layout of one datagram payload:
//!
//! ```text
//! [0x40][packet number: u64]  ... frames ...  [16-byte AEAD tag]
//! ```
//!
//! An on-path observer sees only the datagram length — there is no
//! record header to parse, which is exactly the property the H3 arm of
//! the experiments studies.

use h2priv_util::bytes::{Bytes, BytesPool};
use h2priv_util::smallvec::SmallVec;

/// A per-datagram frame list. Steady-state datagrams carry one frame
/// (stream chunk, crypto chunk or ACK) and the largest control volley
/// carries two, so two inline slots keep the packet path off the heap.
pub type FrameVec = SmallVec<QuicFrame, 2>;
/// ACK ranges as they go on the wire, sized to [`MAX_ACK_RANGES`] so a
/// well-formed sender never spills to the heap (hostile input with more
/// ranges still decodes — the vector spills).
pub type RangeVec = SmallVec<(u64, u64), MAX_ACK_RANGES>;

/// Bytes of the short packet header (type byte + 8-byte packet number).
pub const SHORT_HEADER_LEN: usize = 9;
/// Bytes of the per-packet AEAD tag (mirrors the TLS record tag length).
pub const TAG_LEN: usize = h2priv_tls::AEAD_TAG_LEN;
/// Fixed per-datagram overhead (header + tag).
pub const DATAGRAM_OVERHEAD: usize = SHORT_HEADER_LEN + TAG_LEN;
/// Maximum datagram payload the path carries (QUIC's conservative MTU).
pub const MAX_DATAGRAM: usize = 1_200;
/// STREAM frame header: type + stream id (u32) + offset (u64) + len (u32).
pub const STREAM_FRAME_HEADER_LEN: usize = 17;
/// CRYPTO frame header: type + offset (u64) + len (u32).
pub const CRYPTO_FRAME_HEADER_LEN: usize = 13;
/// Fixed overhead of a datagram carrying one STREAM frame.
pub const STREAM_DATAGRAM_OVERHEAD: usize = DATAGRAM_OVERHEAD + STREAM_FRAME_HEADER_LEN;
/// Largest stream-data chunk one datagram can carry.
pub const MAX_STREAM_CHUNK: usize = MAX_DATAGRAM - STREAM_DATAGRAM_OVERHEAD;
/// Largest crypto chunk one datagram can carry.
pub const MAX_CRYPTO_CHUNK: usize = MAX_DATAGRAM - DATAGRAM_OVERHEAD - CRYPTO_FRAME_HEADER_LEN;
/// At most this many ACK ranges are encoded per ACK frame (the newest
/// ones); older unacked ranges are recovered via loss detection. Real
/// receivers bound the ranges they report for the same reason (RFC 9000
/// §13.2.3); the cap here additionally keeps ACK-only datagrams at most
/// 59 bytes, so a drop phase that permanently fragments the received
/// packet-number space (dropped numbers never arrive) cannot inflate the
/// ACK flow into GET-sized datagrams for the rest of the connection.
pub const MAX_ACK_RANGES: usize = 2;

const TYPE_PADDING: u8 = 0x00;
const TYPE_PING: u8 = 0x01;
const TYPE_ACK: u8 = 0x02;
const TYPE_RESET_STREAM: u8 = 0x04;
const TYPE_STOP_SENDING: u8 = 0x05;
const TYPE_CRYPTO: u8 = 0x06;
const TYPE_STREAM: u8 = 0x08; // low bit = FIN
const TYPE_MAX_DATA: u8 = 0x10;
const TYPE_MAX_STREAM_DATA: u8 = 0x11;
const TYPE_CONNECTION_CLOSE: u8 = 0x1c;

/// One QUIC-lite frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuicFrame {
    /// Zero padding (`len` bytes of 0x00 on the wire).
    Padding {
        /// Number of padding bytes.
        len: u32,
    },
    /// Keep-alive / PTO probe.
    Ping,
    /// Acknowledgement: inclusive packet-number ranges, ascending.
    Ack {
        /// Acknowledged `[start, end]` ranges, ascending and disjoint.
        ranges: RangeVec,
    },
    /// Handshake bytes (content is opaque zeros, only sizes matter).
    Crypto {
        /// Offset in the crypto stream.
        offset: u64,
        /// Number of crypto bytes.
        len: u32,
    },
    /// Application stream data.
    Stream {
        /// Stream id.
        id: u32,
        /// Offset of `data` in the stream.
        offset: u64,
        /// The stream bytes.
        data: Bytes,
        /// Final frame of the stream.
        fin: bool,
    },
    /// Connection-level flow-control credit.
    MaxData {
        /// New absolute connection receive limit.
        max: u64,
    },
    /// Stream-level flow-control credit.
    MaxStreamData {
        /// Stream id.
        id: u32,
        /// New absolute stream receive limit.
        max: u64,
    },
    /// Sender abandons its side of a stream.
    ResetStream {
        /// Stream id.
        id: u32,
    },
    /// Receiver asks the peer to stop sending on a stream.
    StopSending {
        /// Stream id.
        id: u32,
    },
    /// Immediate connection close.
    ConnectionClose,
}

impl QuicFrame {
    /// `true` for frames that require acknowledgement (everything except
    /// ACK and PADDING, per RFC 9002 §2).
    pub fn is_ack_eliciting(&self) -> bool {
        !matches!(self, QuicFrame::Ack { .. } | QuicFrame::Padding { .. })
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            QuicFrame::Padding { len } => *len as usize,
            QuicFrame::Ping => 1,
            QuicFrame::Ack { ranges } => 2 + 16 * ranges.len(),
            QuicFrame::Crypto { len, .. } => CRYPTO_FRAME_HEADER_LEN + *len as usize,
            QuicFrame::Stream { data, .. } => STREAM_FRAME_HEADER_LEN + data.len(),
            QuicFrame::MaxData { .. } => 9,
            QuicFrame::MaxStreamData { .. } => 13,
            QuicFrame::ResetStream { .. } | QuicFrame::StopSending { .. } => 5,
            QuicFrame::ConnectionClose => 1,
        }
    }

    /// Appends the wire encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            QuicFrame::Padding { len } => {
                let at = out.len();
                out.resize(at + *len as usize, TYPE_PADDING);
            }
            QuicFrame::Ping => out.push(TYPE_PING),
            QuicFrame::Ack { ranges } => {
                debug_assert!(ranges.len() <= u8::MAX as usize);
                out.push(TYPE_ACK);
                out.push(ranges.len() as u8);
                for (start, end) in ranges.iter() {
                    out.extend_from_slice(&start.to_be_bytes());
                    out.extend_from_slice(&end.to_be_bytes());
                }
            }
            QuicFrame::Crypto { offset, len } => {
                out.push(TYPE_CRYPTO);
                out.extend_from_slice(&offset.to_be_bytes());
                out.extend_from_slice(&len.to_be_bytes());
                let at = out.len();
                out.resize(at + *len as usize, 0);
            }
            QuicFrame::Stream {
                id,
                offset,
                data,
                fin,
            } => {
                out.push(TYPE_STREAM | u8::from(*fin));
                out.extend_from_slice(&id.to_be_bytes());
                out.extend_from_slice(&offset.to_be_bytes());
                out.extend_from_slice(&(data.len() as u32).to_be_bytes());
                out.extend_from_slice(data);
            }
            QuicFrame::MaxData { max } => {
                out.push(TYPE_MAX_DATA);
                out.extend_from_slice(&max.to_be_bytes());
            }
            QuicFrame::MaxStreamData { id, max } => {
                out.push(TYPE_MAX_STREAM_DATA);
                out.extend_from_slice(&id.to_be_bytes());
                out.extend_from_slice(&max.to_be_bytes());
            }
            QuicFrame::ResetStream { id } => {
                out.push(TYPE_RESET_STREAM);
                out.extend_from_slice(&id.to_be_bytes());
            }
            QuicFrame::StopSending { id } => {
                out.push(TYPE_STOP_SENDING);
                out.extend_from_slice(&id.to_be_bytes());
            }
            QuicFrame::ConnectionClose => out.push(TYPE_CONNECTION_CLOSE),
        }
    }
}

/// Decodes one frame starting at byte `at` of `payload` (frames end at
/// `limit`, which excludes the AEAD tag); returns the frame and bytes
/// consumed. `None` on malformed input. Stream data is a zero-copy
/// slice of `payload` — no per-frame heap allocation.
fn decode_frame(payload: &Bytes, at: usize, limit: usize) -> Option<(QuicFrame, usize)> {
    let buf = &payload[at..limit];
    let ty = *buf.first()?;
    match ty {
        TYPE_PADDING => {
            let len = buf.iter().take_while(|&&b| b == TYPE_PADDING).count();
            Some((QuicFrame::Padding { len: len as u32 }, len))
        }
        TYPE_PING => Some((QuicFrame::Ping, 1)),
        TYPE_ACK => {
            let count = *buf.get(1)? as usize;
            let need = 2 + 16 * count;
            if buf.len() < need {
                return None;
            }
            let mut ranges = RangeVec::new();
            for i in 0..count {
                let off = 2 + 16 * i;
                ranges.push((read_u64(buf, off)?, read_u64(buf, off + 8)?));
            }
            Some((QuicFrame::Ack { ranges }, need))
        }
        TYPE_CRYPTO => {
            let offset = read_u64(buf, 1)?;
            let len = read_u32(buf, 9)?;
            let need = CRYPTO_FRAME_HEADER_LEN + len as usize;
            if buf.len() < need {
                return None;
            }
            Some((QuicFrame::Crypto { offset, len }, need))
        }
        t if t & !0x01 == TYPE_STREAM => {
            let id = read_u32(buf, 1)?;
            let offset = read_u64(buf, 5)?;
            let len = read_u32(buf, 13)?;
            let need = STREAM_FRAME_HEADER_LEN + len as usize;
            if buf.len() < need {
                return None;
            }
            let data = payload.slice(at + STREAM_FRAME_HEADER_LEN..at + need);
            Some((
                QuicFrame::Stream {
                    id,
                    offset,
                    data,
                    fin: t & 0x01 != 0,
                },
                need,
            ))
        }
        TYPE_MAX_DATA => Some((
            QuicFrame::MaxData {
                max: read_u64(buf, 1)?,
            },
            9,
        )),
        TYPE_MAX_STREAM_DATA => Some((
            QuicFrame::MaxStreamData {
                id: read_u32(buf, 1)?,
                max: read_u64(buf, 5)?,
            },
            13,
        )),
        TYPE_RESET_STREAM => Some((
            QuicFrame::ResetStream {
                id: read_u32(buf, 1)?,
            },
            5,
        )),
        TYPE_STOP_SENDING => Some((
            QuicFrame::StopSending {
                id: read_u32(buf, 1)?,
            },
            5,
        )),
        TYPE_CONNECTION_CLOSE => Some((QuicFrame::ConnectionClose, 1)),
        _ => None,
    }
}

fn read_u32(buf: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_be_bytes(buf.get(at..at + 4)?.try_into().ok()?))
}

fn read_u64(buf: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_be_bytes(buf.get(at..at + 8)?.try_into().ok()?))
}

/// Shared encode body: short header, frames, optional padding up to
/// `pad_to` total bytes, then the AEAD tag, appended to `out`.
fn encode_datagram_into(pn: u64, frames: &[QuicFrame], pad_to: Option<usize>, out: &mut Vec<u8>) {
    out.push(0x40);
    out.extend_from_slice(&pn.to_be_bytes());
    for f in frames {
        f.encode_into(out);
    }
    if let Some(target) = pad_to {
        let with_tag = out.len() + TAG_LEN;
        if with_tag < target {
            QuicFrame::Padding {
                len: (target - with_tag) as u32,
            }
            .encode_into(out);
        }
    }
    let at = out.len();
    out.resize(at + TAG_LEN, 0);
    assert!(
        out.len() <= MAX_DATAGRAM,
        "datagram overflow: {}",
        out.len()
    );
}

/// Encodes one datagram into a freshly allocated buffer. The connection
/// hot path uses [`encode_datagram_pooled`] instead.
///
/// # Panics
/// Panics if the encoded datagram would exceed [`MAX_DATAGRAM`].
pub fn encode_datagram(pn: u64, frames: &[QuicFrame], pad_to: Option<usize>) -> Bytes {
    let mut out = Vec::with_capacity(MAX_DATAGRAM);
    encode_datagram_into(pn, frames, pad_to, &mut out);
    Bytes::from(out)
}

/// Encodes one datagram into a buffer drawn from `pool` — zero
/// allocations once the pool is warm (the `Arc` control block is
/// recycled along with the storage).
///
/// # Panics
/// Panics if the encoded datagram would exceed [`MAX_DATAGRAM`].
pub fn encode_datagram_pooled(
    pn: u64,
    frames: &[QuicFrame],
    pad_to: Option<usize>,
    pool: &mut BytesPool,
) -> Bytes {
    let mut buf = pool.acquire();
    encode_datagram_into(pn, frames, pad_to, buf.buf());
    buf.freeze()
}

/// Decodes a datagram, appending its frames to `frames` and returning
/// the packet number. `None` when the payload is not a well-formed
/// QUIC-lite datagram (`frames` may then hold a partial prefix — callers
/// clear their scratch buffer before reuse). Stream frame data borrows
/// `payload` — no copies.
pub fn decode_datagram_into(payload: &Bytes, frames: &mut Vec<QuicFrame>) -> Option<u64> {
    if payload.len() < DATAGRAM_OVERHEAD || payload[0] != 0x40 {
        return None;
    }
    let pn = read_u64(payload, 1)?;
    let limit = payload.len() - TAG_LEN;
    let mut at = SHORT_HEADER_LEN;
    while at < limit {
        let (frame, used) = decode_frame(payload, at, limit)?;
        frames.push(frame);
        at += used;
    }
    Some(pn)
}

/// Decodes a datagram into its packet number and frames (copying the
/// payload; the connection hot path uses [`decode_datagram_into`]).
/// `None` when the payload is not a well-formed QUIC-lite datagram.
pub fn decode_datagram(payload: &[u8]) -> Option<(u64, Vec<QuicFrame>)> {
    let owned = Bytes::copy_from_slice(payload);
    let mut frames = Vec::new();
    let pn = decode_datagram_into(&owned, &mut frames)?;
    Some((pn, frames))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_are_consistent() {
        assert_eq!(DATAGRAM_OVERHEAD, 25);
        assert_eq!(STREAM_DATAGRAM_OVERHEAD, 42);
        assert_eq!(MAX_STREAM_CHUNK, 1_158);
    }

    #[test]
    fn datagram_roundtrip() {
        let frames = vec![
            QuicFrame::Ack {
                ranges: vec![(0, 3), (7, 9)].into(),
            },
            QuicFrame::Stream {
                id: 4,
                offset: 1_000,
                data: Bytes::from(vec![7u8; 100]),
                fin: true,
            },
            QuicFrame::MaxData { max: 1 << 20 },
        ];
        let wire = encode_datagram(42, &frames, None);
        let (pn, decoded) = decode_datagram(&wire).expect("decodes");
        assert_eq!(pn, 42);
        assert_eq!(decoded, frames);
    }

    #[test]
    fn padded_initial_reaches_target_size() {
        let frames = vec![QuicFrame::Crypto {
            offset: 0,
            len: 512,
        }];
        let wire = encode_datagram(0, &frames, Some(MAX_DATAGRAM));
        assert_eq!(wire.len(), MAX_DATAGRAM);
        let (_, decoded) = decode_datagram(&wire).expect("decodes");
        assert_eq!(decoded.len(), 2, "crypto + padding");
        assert!(matches!(decoded[1], QuicFrame::Padding { .. }));
    }

    #[test]
    fn control_frames_roundtrip() {
        for f in [
            QuicFrame::Ping,
            QuicFrame::ResetStream { id: 8 },
            QuicFrame::StopSending { id: 8 },
            QuicFrame::MaxStreamData { id: 4, max: 77 },
            QuicFrame::ConnectionClose,
        ] {
            let wire = encode_datagram(1, std::slice::from_ref(&f), None);
            let (_, decoded) = decode_datagram(&wire).expect("decodes");
            assert_eq!(decoded, vec![f]);
        }
    }

    #[test]
    fn truncated_datagram_rejected() {
        let wire = encode_datagram(
            3,
            &[QuicFrame::Stream {
                id: 0,
                offset: 0,
                data: Bytes::from(vec![1u8; 50]),
                fin: false,
            }],
            None,
        );
        assert!(decode_datagram(&wire[..wire.len() - TAG_LEN - 10]).is_none());
        assert!(decode_datagram(&[0u8; 4]).is_none());
    }

    #[test]
    fn ack_only_datagram_sizes_match_monitor_assumptions() {
        // 1-range and 2-range ACK-only datagrams must sit at or below the
        // adversary's small-datagram threshold (66 bytes) so the reset
        // signature can be read off the wire; see core::monitor.
        for (n, expect) in [(1usize, 43usize), (2, 59)] {
            let ranges = (0..n as u64).map(|i| (10 * i, 10 * i + 1)).collect();
            let wire = encode_datagram(9, &[QuicFrame::Ack { ranges }], None);
            assert_eq!(wire.len(), expect);
        }
    }

    #[test]
    fn pooled_encode_is_byte_identical_and_reuses_buffers() {
        let mut pool = BytesPool::new(2, MAX_DATAGRAM);
        let frames = [
            QuicFrame::Stream {
                id: 4,
                offset: 7,
                data: Bytes::from(vec![3u8; 64]),
                fin: false,
            },
            QuicFrame::MaxData { max: 99 },
        ];
        let plain = encode_datagram(5, &frames, Some(200));
        let pooled = encode_datagram_pooled(5, &frames, Some(200), &mut pool);
        assert_eq!(&plain[..], &pooled[..]);
        let p = pooled.as_ref().as_ptr();
        pool.reclaim(pooled);
        // A second pooled encode reuses the same storage.
        let again = encode_datagram_pooled(6, &frames, None, &mut pool);
        assert!(std::ptr::eq(again.as_ref().as_ptr(), p));
        assert_eq!(&again[..], &encode_datagram(6, &frames, None)[..]);
    }

    #[test]
    fn zero_copy_decode_borrows_the_payload() {
        let wire = encode_datagram(
            1,
            &[QuicFrame::Stream {
                id: 0,
                offset: 0,
                data: Bytes::from(vec![9u8; 50]),
                fin: true,
            }],
            None,
        );
        let mut frames = Vec::new();
        assert_eq!(decode_datagram_into(&wire, &mut frames), Some(1));
        let QuicFrame::Stream { data, .. } = &frames[0] else {
            panic!("expected stream frame");
        };
        // The decoded data points into the datagram payload itself.
        let expect = wire.as_ref()[SHORT_HEADER_LEN + STREAM_FRAME_HEADER_LEN..].as_ptr();
        assert!(std::ptr::eq(data.as_ref().as_ptr(), expect));
    }
}
