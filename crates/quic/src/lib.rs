//! # h2priv-quic — QUIC-lite / HTTP-3 transport model
//!
//! A deterministic QUIC-lite transport over `h2priv-netsim` datagrams,
//! plus an HTTP/3-lite layer and browser/server nodes mirroring the H2
//! pair, so the paper's isidewith attack pipeline can run unchanged
//! against either transport and answer the question the related work
//! poses: does the forced-serialization attack survive the migration
//! off TCP?
//!
//! What is modelled (and what the attack observes):
//!
//! * **Per-datagram framing** — the on-path observable is the UDP-sized
//!   datagram length, not a TLS record header ([`frame`]).
//! * **Packet-number spaces with ACK ranges and loss recovery** — a
//!   packet-threshold fast-retransmit analogue plus PTO backoff
//!   ([`recovery`]).
//! * **Independent stream delivery** — loss on one stream never blocks
//!   another (no cross-stream head-of-line blocking; [`streams`]).
//! * **Per-stream and connection flow control** with MAX_DATA grants
//!   ([`conn`]).
//! * **H3-lite framing** reusing the H2 stack's HPACK-lite as a QPACK
//!   stand-in ([`h3`]).
//!
//! Everything is seeded and deterministic: two runs with the same seed
//! produce byte-identical traces, reports and wire maps.

#![warn(missing_docs)]

pub mod client;
pub mod conn;
pub mod frame;
pub mod h3;
pub mod recovery;
pub mod server;
pub mod stack;
pub mod streams;
pub mod table;

pub use client::H3ClientNode;
pub use conn::{QuicConfig, QuicConnection, QuicEvent, QuicStats, Role};
pub use frame::{QuicFrame, DATAGRAM_OVERHEAD, MAX_DATAGRAM, MAX_STREAM_CHUNK};
pub use h3::{H3Event, H3FrameReader};
pub use recovery::AckRanges;
pub use server::H3ServerNode;
pub use stack::QuicStack;
