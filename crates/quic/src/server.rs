//! The multi-threaded HTTP/3 server model.
//!
//! Mirrors `h2priv_h2::server::ServerNode` — same worker-per-GET model,
//! the same first-byte and chunk-pacing draws (in the same RNG order),
//! the same serial/concurrent mux policies and duplicate-serving
//! pathology — but responses ride independent QUIC streams. There is no
//! shared output scheduler: the QUIC connection's deterministic
//! round-robin over sendable streams plays that role, and a client
//! STOP_SENDING clears the stream's queued bytes inside the transport
//! (the QUIC analogue of flushing object segments on RST_STREAM).
//!
//! Server push is not modelled for H3-lite (no PUSH_PROMISE analogue):
//! a `push_manifest` in the config is ignored.

use std::collections::VecDeque;

use h2priv_h2::hpack;
use h2priv_h2::server::{CLIENT_PORT, SERVER_PORT};
use h2priv_h2::{MuxPolicy, ServeRecord, ServerConfig, StreamId};
use h2priv_netsim::link::LinkId;
use h2priv_netsim::node::{Ctx, Node, TimerId};
use h2priv_netsim::packet::{FlowId, Packet};
use h2priv_netsim::time::SimDuration;
use h2priv_tcp::TcpStats;
use h2priv_tls::{RecordTag, TrafficClass, WireMap};
use h2priv_util::bytes::Bytes;
use h2priv_util::fxhash::FxHashMap;
use h2priv_web::{ObjectId, Site};

use crate::client::quic_config_from;
use crate::conn::{QuicConnection, QuicEvent, QuicStats};
use crate::h3::{data_frame, headers_frame_with, H3Event, H3FrameReader};
use crate::stack::QuicStack;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerState {
    /// Waiting for its turn (Serial policy only).
    Queued,
    /// Backend working on the first byte.
    FirstByteWait,
    /// Emitting DATA chunks.
    Streaming,
    /// All bytes enqueued.
    Done,
    /// Killed by a client stream reset.
    Killed,
}

#[derive(Debug)]
struct Worker {
    stream: StreamId,
    object: ObjectId,
    remaining: u64,
    state: WorkerState,
    chunk_interval: SimDuration,
}

#[derive(Debug)]
enum TimerPurpose {
    TransportTick,
    Worker(usize),
}

/// The HTTP/3 server as a netsim node. Construct, hand to
/// [`h2priv_netsim::topology::PathTopology::build`], and inspect
/// [`H3ServerNode::serve_log`] / [`H3ServerNode::wire_map`] after the
/// run.
#[derive(Debug)]
pub struct H3ServerNode {
    cfg: ServerConfig,
    site: Site,
    stack: QuicStack,
    workers: Vec<Worker>,
    serve_log: Vec<ServeRecord>,
    serial_queue: VecDeque<usize>,
    copies: FxHashMap<ObjectId, u16>,
    readers: FxHashMap<u32, H3FrameReader>,
    timers: FxHashMap<TimerId, TimerPurpose>,
    /// DATA-frame wire images keyed by body length. Bodies are opaque
    /// zeros, so every frame of a given length is byte-identical; caching
    /// replaces two allocations per streamed chunk with an `Arc` clone.
    data_frames: FxHashMap<u64, Bytes>,
    /// Reusable transport-event buffer (cleared before each use).
    event_scratch: Vec<QuicEvent>,
    /// Reusable H3-event buffer (cleared before each use).
    h3_scratch: Vec<H3Event>,
    dead: bool,
}

impl H3ServerNode {
    /// Creates a server for `site`. The config is the H2 server config
    /// verbatim; its TCP, send-watermark and push-manifest fields are
    /// ignored (see module docs).
    pub fn new(site: Site, cfg: ServerConfig) -> H3ServerNode {
        let flow = FlowId {
            src: cfg.addr,
            dst: cfg.client_addr,
            sport: SERVER_PORT,
            dport: CLIENT_PORT,
        };
        // Server-side transport tunables mirror the defaults the H2
        // server gets from its peer's grants.
        let mut qcfg = quic_config_from(12 * 1024 * 1024, 256 * 1024);
        qcfg.pad_block = cfg.pad_block;
        let stack = QuicStack::new(QuicConnection::server(flow, qcfg));
        H3ServerNode {
            cfg,
            site,
            stack,
            workers: Vec::new(),
            serve_log: Vec::new(),
            serial_queue: VecDeque::new(),
            copies: FxHashMap::default(),
            readers: FxHashMap::default(),
            timers: FxHashMap::default(),
            data_frames: FxHashMap::default(),
            event_scratch: Vec::new(),
            h3_scratch: Vec::new(),
            dead: false,
        }
    }

    /// Ground-truth serve log (one entry per GET actually served).
    pub fn serve_log(&self) -> &[ServeRecord] {
        &self.serve_log
    }

    /// Ground-truth wire map of everything this server sent (the
    /// server→client datagram payload offsets).
    pub fn wire_map(&self) -> &WireMap {
        self.stack.wire_map()
    }

    /// Final transport statistics.
    pub fn quic_stats(&self) -> &QuicStats {
        self.stack.quic.stats()
    }

    /// Transport statistics mapped onto the TCP counter struct.
    pub fn tcp_stats(&self) -> TcpStats {
        self.stack.quic.stats().as_tcp_stats()
    }

    /// Copies served per object (≥2 indicates the duplicate-serving
    /// pathology fired).
    pub fn copies_served(&self, object: ObjectId) -> u16 {
        self.copies.get(&object).copied().unwrap_or(0)
    }

    /// Remaining connection-level flow-control credit towards the client
    /// (diagnostics; the analogue of the H2 server's send window).
    pub fn conn_send_window(&self) -> u64 {
        self.stack.quic.send_credit()
    }

    /// Datagrams routed via the alternate path when traffic splitting is
    /// enabled (0 otherwise).
    pub fn split_alt_datagrams(&self) -> u64 {
        self.stack.split_alt_datagrams()
    }

    fn handle_quic_events(&mut self, ctx: &mut Ctx<'_>, events: &mut Vec<QuicEvent>) {
        for ev in events.drain(..) {
            match ev {
                QuicEvent::Stream { id, data, fin } => {
                    self.on_stream_data(ctx, id, &data, fin);
                }
                QuicEvent::StreamReset { id } | QuicEvent::StreamStopped { id } => {
                    self.kill_stream_workers(ctx, id);
                }
                QuicEvent::Aborted => {
                    self.dead = true;
                }
                QuicEvent::Connected | QuicEvent::Closed => {}
            }
        }
    }

    fn on_stream_data(&mut self, ctx: &mut Ctx<'_>, id: u32, data: &[u8], _fin: bool) {
        let mut events = std::mem::take(&mut self.h3_scratch);
        events.clear();
        self.readers.entry(id).or_default().push(data, &mut events);
        for ev in events.drain(..) {
            if let H3Event::Headers(block) = ev {
                self.handle_request(ctx, StreamId(id), &block);
                if let Some(reader) = self.readers.get_mut(&id) {
                    reader.recycle(block);
                }
            }
        }
        self.h3_scratch = events;
    }

    /// Kills workers for a stream the client abandoned. The transport
    /// already dropped the stream's queued bytes when STOP_SENDING
    /// arrived; this stops the pacing timers from queuing more.
    fn kill_stream_workers(&mut self, ctx: &mut Ctx<'_>, id: u32) {
        let mut killed_any = false;
        for (idx, w) in self.workers.iter_mut().enumerate() {
            if w.stream.0 == id && !matches!(w.state, WorkerState::Done | WorkerState::Killed) {
                w.state = WorkerState::Killed;
                self.serve_log[idx].killed = true;
                killed_any = true;
            }
        }
        if killed_any && self.cfg.mux == MuxPolicy::Serial {
            self.start_next_serial(ctx);
        }
    }

    fn handle_request(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, block: &[u8]) {
        let Some(req) = hpack::decode_request_ref(block) else {
            self.stack.quic.reset_stream(stream.0);
            return;
        };
        let Some(object) = self.site.by_path(req.path).map(|o| o.id) else {
            self.stack.quic.reset_stream(stream.0);
            return;
        };
        let copy = {
            let c = self.copies.entry(object).or_insert(0);
            let this = *c;
            *c += 1;
            this
        };
        if copy > 0 && !self.cfg.serve_duplicates {
            // Deduplicating server (ablation): the original stream is
            // already serving this object; ignore the duplicate.
            return;
        }
        self.spawn_worker(ctx, stream, object, copy);
    }

    fn spawn_worker(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, object: ObjectId, copy: u16) {
        let idx = self.workers.len();
        self.workers.push(Worker {
            stream,
            object,
            remaining: self.site.object(object).size,
            state: WorkerState::Queued,
            chunk_interval: SimDuration::ZERO,
        });
        self.serve_log.push(ServeRecord {
            object,
            copy,
            stream,
            requested_at: ctx.now(),
            first_byte_at: None,
            completed_at: None,
            killed: false,
        });
        let someone_active = self
            .workers
            .iter()
            .any(|w| matches!(w.state, WorkerState::FirstByteWait | WorkerState::Streaming));
        if self.cfg.mux == MuxPolicy::Serial && someone_active {
            self.serial_queue.push_back(idx);
        } else {
            self.start_worker(ctx, idx);
        }
    }

    fn start_worker(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let object = self.workers[idx].object;
        let obj = self.site.object(object);
        let fb = obj.service.draw_first_byte(ctx.rng());
        self.workers[idx].chunk_interval = obj.service.draw_chunk_interval(ctx.rng(), obj.size);
        self.workers[idx].state = WorkerState::FirstByteWait;
        let t = ctx.schedule(fb);
        self.timers.insert(t, TimerPurpose::Worker(idx));
    }

    fn start_next_serial(&mut self, ctx: &mut Ctx<'_>) {
        while let Some(next) = self.serial_queue.pop_front() {
            if matches!(self.workers[next].state, WorkerState::Queued) {
                self.start_worker(ctx, next);
                return;
            }
        }
    }

    fn worker_tick(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        if self.dead {
            return;
        }
        let (stream, object, state) = {
            let w = &self.workers[idx];
            (w.stream, w.object, w.state)
        };
        let obj = self.site.object(object);
        let copy = self.serve_log[idx].copy;
        match state {
            WorkerState::FirstByteWait => {
                self.serve_log[idx].first_byte_at = Some(ctx.now());
                let media = match obj.media {
                    h2priv_web::MediaType::Html => "text/html",
                    h2priv_web::MediaType::Js => "application/javascript",
                    h2priv_web::MediaType::Css => "text/css",
                    h2priv_web::MediaType::Image => "image/png",
                    h2priv_web::MediaType::Json => "application/json",
                    h2priv_web::MediaType::Font => "font/woff2",
                };
                let frame = headers_frame_with(96 + media.len(), |out| {
                    hpack::encode_response_into(out, obj.size, media)
                });
                self.stack.quic.stream_send(
                    stream.0,
                    frame,
                    false,
                    RecordTag {
                        stream_id: stream.0,
                        object_id: object.0,
                        copy,
                        class: TrafficClass::ResponseHeaders,
                    },
                );
                self.workers[idx].state = WorkerState::Streaming;
                let interval = self.workers[idx].chunk_interval;
                let t = ctx.schedule(interval);
                self.timers.insert(t, TimerPurpose::Worker(idx));
            }
            WorkerState::Streaming => {
                let chunk = (obj.service.chunk_size as u64).min(self.workers[idx].remaining);
                self.workers[idx].remaining -= chunk;
                let end_stream = self.workers[idx].remaining == 0;
                let frame = self
                    .data_frames
                    .entry(chunk)
                    .or_insert_with(|| data_frame(chunk as usize))
                    .clone();
                self.stack.quic.stream_send(
                    stream.0,
                    frame,
                    end_stream,
                    RecordTag {
                        stream_id: stream.0,
                        object_id: object.0,
                        copy,
                        class: TrafficClass::ObjectData,
                    },
                );
                if end_stream {
                    self.workers[idx].state = WorkerState::Done;
                    self.serve_log[idx].completed_at = Some(ctx.now());
                    if self.cfg.mux == MuxPolicy::Serial {
                        self.start_next_serial(ctx);
                    }
                } else {
                    let interval = self.workers[idx].chunk_interval;
                    let t = ctx.schedule(interval);
                    self.timers.insert(t, TimerPurpose::Worker(idx));
                }
            }
            WorkerState::Queued | WorkerState::Done | WorkerState::Killed => {}
        }
    }

    fn after_activity(&mut self, ctx: &mut Ctx<'_>) {
        self.stack.pump(ctx);
        if let Some(t) = self.stack.timer_needs_rescheduling() {
            let timer = ctx.schedule_at(t);
            self.timers.insert(timer, TimerPurpose::TransportTick);
            self.stack.tick_at = Some(t);
        }
    }
}

impl Node for H3ServerNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let egress = ctx.egress_links();
        self.stack.set_egress(egress[0]);
        if self.cfg.split_burst > 0 && egress.len() > 1 {
            // Split topology: responses alternate between the tapped
            // primary path and the untapped second path.
            self.stack.set_split(egress[1], self.cfg.split_burst);
        } else {
            assert_eq!(egress.len(), 1, "server expects exactly one egress link");
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _from: LinkId, pkt: Packet) {
        let mut events = std::mem::take(&mut self.event_scratch);
        events.clear();
        self.stack.on_packet_into(ctx.now(), &pkt, &mut events);
        self.handle_quic_events(ctx, &mut events);
        self.event_scratch = events;
        // Every slice of this datagram has been consumed (or parked in a
        // reassembly buffer, in which case reclaim is a no-op): offer the
        // buffer to the send path before pumping responses out.
        self.stack.quic.reclaim_payload(pkt.payload);
        self.after_activity(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerId) {
        match self.timers.remove(&timer) {
            Some(TimerPurpose::TransportTick) => {
                self.stack.tick_at = None;
                let mut events = std::mem::take(&mut self.event_scratch);
                events.clear();
                self.stack.on_transport_timer_into(ctx.now(), &mut events);
                self.handle_quic_events(ctx, &mut events);
                self.event_scratch = events;
            }
            Some(TimerPurpose::Worker(idx)) => {
                self.worker_tick(ctx, idx);
            }
            None => {}
        }
        self.after_activity(ctx);
    }
}
