//! HTTP/3-lite framing.
//!
//! H3 frames live *inside* QUIC streams, one request/response per
//! bidirectional stream — there is no connection-wide frame mux like
//! HTTP/2's. Each frame is `[type: u8][length: u24]` followed by the
//! body. Header blocks reuse the H2 stack's HPACK-lite encoding as a
//! stand-in for QPACK (both paper-relevant properties — tiny header
//! frames, opaque to the observer — are identical). DATA bodies are
//! opaque zeros; only their lengths matter to the simulation.

use h2priv_util::bytes::{Bytes, BytesMut};

/// Bytes of an H3-lite frame header (type + 24-bit length).
pub const H3_FRAME_HEADER_LEN: usize = 4;
/// DATA frame type.
pub const H3_FRAME_DATA: u8 = 0x00;
/// HEADERS frame type.
pub const H3_FRAME_HEADERS: u8 = 0x01;

fn frame_header(ty: u8, len: usize) -> BytesMut {
    debug_assert!(len < 1 << 24, "H3-lite frame too large: {len}");
    let mut out = BytesMut::with_capacity(H3_FRAME_HEADER_LEN + len);
    out.put_u8(ty);
    out.put_u8((len >> 16) as u8);
    out.put_u8((len >> 8) as u8);
    out.put_u8(len as u8);
    out
}

/// Encodes a HEADERS frame around an HPACK-lite block.
pub fn headers_frame(block: &[u8]) -> Bytes {
    let mut out = frame_header(H3_FRAME_HEADERS, block.len());
    out.put_slice(block);
    out.freeze()
}

/// Encodes a HEADERS frame whose block is written directly into the
/// frame buffer by `fill` — no intermediate block allocation. `cap_hint`
/// sizes the buffer so a good estimate makes the build a single
/// allocation (plus the `Bytes` control block).
pub fn headers_frame_with(cap_hint: usize, fill: impl FnOnce(&mut BytesMut)) -> Bytes {
    let mut out = BytesMut::with_capacity(H3_FRAME_HEADER_LEN + cap_hint);
    out.put_u8(H3_FRAME_HEADERS);
    out.put_zeros(H3_FRAME_HEADER_LEN - 1);
    fill(&mut out);
    let len = out.len() - H3_FRAME_HEADER_LEN;
    debug_assert!(len < 1 << 24, "H3-lite frame too large: {len}");
    out[1] = (len >> 16) as u8;
    out[2] = (len >> 8) as u8;
    out[3] = len as u8;
    out.freeze()
}

/// Encodes a DATA frame carrying `len` opaque (zero) body bytes.
pub fn data_frame(len: usize) -> Bytes {
    let mut out = frame_header(H3_FRAME_DATA, len);
    out.put_zeros(len);
    out.freeze()
}

/// An event produced by [`H3FrameReader`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum H3Event {
    /// A complete HEADERS frame body (an HPACK-lite block).
    Headers(Vec<u8>),
    /// `len` DATA body bytes arrived (bodies stream incrementally; one
    /// DATA frame may produce several of these).
    Data {
        /// Number of body bytes in this delivery.
        len: usize,
    },
}

#[derive(Debug)]
enum ReaderState {
    Header {
        buf: [u8; H3_FRAME_HEADER_LEN],
        have: usize,
    },
    Body {
        ty: u8,
        remaining: usize,
    },
}

/// Incremental H3-lite frame parser for one stream.
///
/// HEADERS bodies are buffered until complete; DATA bodies are reported
/// incrementally as byte counts.
#[derive(Debug)]
pub struct H3FrameReader {
    state: ReaderState,
    headers_buf: Vec<u8>,
}

impl Default for H3FrameReader {
    fn default() -> Self {
        Self::new()
    }
}

impl H3FrameReader {
    /// New parser at a frame boundary.
    pub fn new() -> Self {
        Self {
            state: ReaderState::Header {
                buf: [0; H3_FRAME_HEADER_LEN],
                have: 0,
            },
            headers_buf: Vec::new(),
        }
    }

    /// Feeds stream bytes; appends resulting events to `events`.
    pub fn push(&mut self, mut data: &[u8], events: &mut Vec<H3Event>) {
        while !data.is_empty() {
            match &mut self.state {
                ReaderState::Header { buf, have } => {
                    let need = H3_FRAME_HEADER_LEN - *have;
                    let take = need.min(data.len());
                    buf[*have..*have + take].copy_from_slice(&data[..take]);
                    *have += take;
                    data = &data[take..];
                    if *have == H3_FRAME_HEADER_LEN {
                        let ty = buf[0];
                        let len =
                            ((buf[1] as usize) << 16) | ((buf[2] as usize) << 8) | buf[3] as usize;
                        self.headers_buf.clear();
                        self.state = ReaderState::Body { ty, remaining: len };
                        // Zero-length bodies complete immediately.
                        self.finish_if_done(events);
                    }
                }
                ReaderState::Body { ty, remaining } => {
                    let take = (*remaining).min(data.len());
                    if *ty == H3_FRAME_HEADERS {
                        self.headers_buf.extend_from_slice(&data[..take]);
                    } else if take > 0 {
                        events.push(H3Event::Data { len: take });
                    }
                    *remaining -= take;
                    data = &data[take..];
                    self.finish_if_done(events);
                }
            }
        }
    }

    fn finish_if_done(&mut self, events: &mut Vec<H3Event>) {
        if let ReaderState::Body { ty, remaining: 0 } = self.state {
            if ty == H3_FRAME_HEADERS {
                events.push(H3Event::Headers(std::mem::take(&mut self.headers_buf)));
            }
            self.state = ReaderState::Header {
                buf: [0; H3_FRAME_HEADER_LEN],
                have: 0,
            };
        }
    }

    /// Hands a consumed [`H3Event::Headers`] buffer back for reuse, so the
    /// next HEADERS frame on this stream extends it instead of allocating.
    pub fn recycle(&mut self, mut buf: Vec<u8>) {
        if self.headers_buf.is_empty() && self.headers_buf.capacity() < buf.capacity() {
            buf.clear();
            self.headers_buf = buf;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headers_then_data_parse_across_arbitrary_splits() {
        let block = b"model-header-block".to_vec();
        let mut wire = headers_frame(&block).to_vec();
        wire.extend_from_slice(&data_frame(1_000).to_vec());
        // Feed one byte at a time: the parser must not care about splits.
        let mut reader = H3FrameReader::new();
        let mut events = Vec::new();
        for b in &wire {
            reader.push(std::slice::from_ref(b), &mut events);
        }
        assert_eq!(events[0], H3Event::Headers(block));
        let total: usize = events[1..]
            .iter()
            .map(|e| match e {
                H3Event::Data { len } => *len,
                other => panic!("unexpected {other:?}"),
            })
            .sum();
        assert_eq!(total, 1_000);
    }

    #[test]
    fn zero_length_data_frame_produces_no_event() {
        let mut reader = H3FrameReader::new();
        let mut events = Vec::new();
        reader.push(&data_frame(0).to_vec(), &mut events);
        assert!(events.is_empty());
        // And the parser is back at a frame boundary.
        reader.push(&headers_frame(b"x").to_vec(), &mut events);
        assert_eq!(events, vec![H3Event::Headers(b"x".to_vec())]);
    }

    #[test]
    fn data_streams_incrementally() {
        let wire = data_frame(500).to_vec();
        let mut reader = H3FrameReader::new();
        let mut events = Vec::new();
        reader.push(&wire[..300], &mut events);
        assert_eq!(events, vec![H3Event::Data { len: 296 }]);
        reader.push(&wire[300..], &mut events);
        assert_eq!(
            events,
            vec![H3Event::Data { len: 296 }, H3Event::Data { len: 204 }]
        );
    }
}
