//! Per-stream send and receive state.
//!
//! QUIC streams deliver independently: a gap on one stream never blocks
//! another. The send side implements a timer-less Nagle policy — a
//! sub-MTU STREAM frame is emitted only when it carries FIN or is a
//! retransmission, otherwise the stream waits until a full
//! [`MAX_STREAM_CHUNK`] is buffered. Because every object's final chunk
//! carries FIN, this never deadlocks, and it keeps mid-object datagrams
//! uniformly full so the datagram-delimiter analysis sees object
//! boundaries rather than scheduler artefacts.

use std::collections::{BTreeMap, VecDeque};

use h2priv_tls::RecordTag;
use h2priv_util::bytes::{Bytes, BytesMut};

use crate::frame::MAX_STREAM_CHUNK;

/// A STREAM frame the send side wants on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutgoingChunk {
    /// Stream offset of the chunk.
    pub offset: u64,
    /// The bytes.
    pub data: Bytes,
    /// FIN flag for the frame.
    pub fin: bool,
    /// `true` when this is a retransmission (already counted against
    /// connection flow control and already mapped in the wire map).
    pub retransmit: bool,
}

/// Send half of one stream.
#[derive(Debug, Default)]
pub struct SendStream {
    /// Queued application data: `(start_offset, bytes, tag)`, contiguous.
    segments: Vec<(u64, Bytes, RecordTag)>,
    total_len: u64,
    next_offset: u64,
    fin_queued: bool,
    fin_sent: bool,
    reset: bool,
    peer_max: u64,
    retransmit: VecDeque<(u64, u32, bool)>,
}

impl SendStream {
    /// New send stream with the given initial peer flow-control limit.
    pub fn new(peer_max: u64) -> Self {
        Self {
            peer_max,
            ..Self::default()
        }
    }

    /// Queues `data` (tagged for the wire map) and optionally FIN.
    pub fn push(&mut self, data: Bytes, fin: bool, tag: RecordTag) {
        debug_assert!(!self.fin_queued, "push after fin");
        if !data.is_empty() {
            self.segments.push((self.total_len, data.clone(), tag));
            self.total_len += data.len() as u64;
        }
        self.fin_queued |= fin;
    }

    /// Raises the peer's stream flow-control limit.
    pub fn on_max_stream_data(&mut self, max: u64) {
        self.peer_max = self.peer_max.max(max);
    }

    /// Marks the stream reset: drops all queued and retransmittable data.
    pub fn reset(&mut self) {
        self.reset = true;
        self.segments.clear();
        self.retransmit.clear();
    }

    /// `true` once the stream has been reset.
    pub fn is_reset(&self) -> bool {
        self.reset
    }

    /// `true` once FIN has been emitted.
    pub fn fin_sent(&self) -> bool {
        self.fin_sent
    }

    /// Queues a lost frame for retransmission (no-op after reset).
    pub fn on_frame_lost(&mut self, offset: u64, len: u32, fin: bool) -> bool {
        if self.reset {
            return false;
        }
        self.retransmit.push_back((offset, len, fin));
        true
    }

    /// Whether lost frames await retransmission. Retransmissions are
    /// probe-class: the connection may send them past the congestion
    /// window (RFC 9002 §7.5), so callers check this separately from
    /// [`SendStream::has_sendable`].
    pub fn has_retransmit(&self) -> bool {
        !self.reset && !self.retransmit.is_empty()
    }

    /// Whether [`SendStream::next_chunk`] would yield a frame given
    /// `conn_credit` bytes of connection-level credit for new data.
    pub fn has_sendable(&self, conn_credit: u64) -> bool {
        if self.reset {
            return false;
        }
        if !self.retransmit.is_empty() {
            return true;
        }
        self.new_chunk_params(conn_credit).is_some()
    }

    /// Computes `(offset, len, fin)` for the next new-data frame under the
    /// timer-less Nagle policy, or `None` if the stream should wait.
    fn new_chunk_params(&self, conn_credit: u64) -> Option<(u64, u32, bool)> {
        if self.fin_sent {
            return None;
        }
        let remaining = self.total_len - self.next_offset;
        if remaining == 0 {
            // FIN-only frame once all data is out.
            return if self.fin_queued {
                Some((self.next_offset, 0, true))
            } else {
                None
            };
        }
        let credit = self
            .peer_max
            .saturating_sub(self.next_offset)
            .min(conn_credit);
        let chunk = remaining.min(credit).min(MAX_STREAM_CHUNK as u64);
        if chunk == MAX_STREAM_CHUNK as u64 {
            let fin = self.fin_queued && chunk == remaining;
            Some((self.next_offset, chunk as u32, fin))
        } else if self.fin_queued && chunk == remaining {
            // Sub-MTU tail, but it closes the stream: emit with FIN.
            Some((self.next_offset, chunk as u32, true))
        } else {
            None // wait for more data or more credit
        }
    }

    /// Produces the next STREAM frame payload, retransmissions first.
    /// New data advances the send frontier; the caller is responsible for
    /// connection-level flow-control accounting of `!retransmit` chunks.
    pub fn next_chunk(&mut self, conn_credit: u64) -> Option<OutgoingChunk> {
        if self.reset {
            return None;
        }
        if let Some((offset, len, fin)) = self.retransmit.pop_front() {
            return Some(OutgoingChunk {
                offset,
                data: self.copy_range(offset, len),
                fin,
                retransmit: true,
            });
        }
        let (offset, len, fin) = self.new_chunk_params(conn_credit)?;
        self.next_offset += len as u64;
        self.fin_sent |= fin;
        Some(OutgoingChunk {
            offset,
            data: self.copy_range(offset, len),
            fin,
            retransmit: false,
        })
    }

    /// Copies `[offset, offset + len)` out of the queued segments.
    ///
    /// When the range lies inside a single segment the returned `Bytes`
    /// is a zero-copy slice of the queued buffer; only ranges spanning a
    /// segment boundary assemble a fresh buffer.
    fn copy_range(&self, offset: u64, len: u32) -> Bytes {
        let end = offset + len as u64;
        let i = self
            .segments
            .partition_point(|(start, _, _)| *start <= offset);
        if i > 0 {
            let (start, data, _) = &self.segments[i - 1];
            if start + data.len() as u64 >= end {
                let lo = (offset - start) as usize;
                return data.slice(lo..lo + len as usize);
            }
        }
        // Spanning copies are served from the shared payload pool: a
        // stream chunk never exceeds MAX_STREAM_CHUNK (< the pool's
        // buffer size), and the connection returns the copy to the pool
        // right after encoding it into a datagram.
        let mut pooled = crate::conn::with_payload_pool(|p| p.acquire());
        let out = pooled.buf();
        for (start, data, _) in &self.segments {
            let seg_end = start + data.len() as u64;
            if seg_end <= offset || *start >= end {
                continue;
            }
            let lo = (offset.max(*start) - start) as usize;
            let hi = (end.min(seg_end) - start) as usize;
            out.extend_from_slice(&data[lo..hi]);
        }
        debug_assert_eq!(out.len(), len as usize, "send buffer hole");
        pooled.freeze()
    }

    /// Splits `[offset, offset + len)` into per-tag runs for the wire
    /// map, appending to a caller-provided (reusable) buffer.
    pub fn tag_runs_into(&self, offset: u64, len: u32, runs: &mut Vec<(u64, u32, RecordTag)>) {
        let end = offset + len as u64;
        let first = self
            .segments
            .partition_point(|(start, _, _)| *start <= offset)
            .saturating_sub(1);
        for (start, data, tag) in &self.segments[first..] {
            if *start >= end {
                break; // segments are contiguous ascending
            }
            let seg_end = start + data.len() as u64;
            if seg_end <= offset || *start >= end {
                continue;
            }
            let lo = offset.max(*start);
            let hi = end.min(seg_end);
            runs.push((lo, (hi - lo) as u32, *tag));
        }
    }

    /// Splits `[offset, offset + len)` into per-tag runs for the wire map.
    pub fn tag_runs(&self, offset: u64, len: u32) -> Vec<(u64, u32, RecordTag)> {
        let mut runs = Vec::new();
        self.tag_runs_into(offset, len, &mut runs);
        runs
    }
}

/// Receive half of one stream.
#[derive(Debug, Default)]
pub struct RecvStream {
    buf: BTreeMap<u64, Bytes>,
    /// In-order fast path: a frame that arrived exactly at the delivered
    /// frontier with nothing else buffered is parked here whole, and the
    /// next [`RecvStream::poll`] hands it back without copying. In-order
    /// delivery (the steady state) never touches the reassembly map.
    ready: Option<Bytes>,
    delivered: u64,
    fin_offset: Option<u64>,
    highest: u64,
    stopped: bool,
    fin_delivered: bool,
}

impl RecvStream {
    /// New receive stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Asks the stream to discard incoming data (STOP_SENDING was issued).
    /// Arrived-but-undelivered bytes are dropped.
    pub fn stop(&mut self) {
        self.stopped = true;
        self.buf.clear();
        self.ready = None;
    }

    /// `true` once [`RecvStream::stop`] was called.
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Highest contiguous-or-not byte offset seen, for connection-level
    /// flow-control accounting.
    pub fn highest_seen(&self) -> u64 {
        self.highest
    }

    /// Ingests one STREAM frame. Returns how far the highest-seen offset
    /// advanced (the connection flow-control delta).
    pub fn on_frame(&mut self, offset: u64, data: Bytes, fin: bool) -> u64 {
        let end = offset + data.len() as u64;
        if fin {
            self.fin_offset = Some(end);
        }
        let advance = end.saturating_sub(self.highest);
        self.highest = self.highest.max(end);
        if !self.stopped && end > self.delivered && !data.is_empty() {
            // Trim the already-delivered prefix and buffer the rest;
            // overlapping retransmissions are resolved at poll time.
            let skip = self.delivered.saturating_sub(offset);
            let insert_at = offset + skip;
            if insert_at == self.delivered && self.buf.is_empty() && self.ready.is_none() {
                // In-order fast path: park the frame whole and advance
                // the frontier; `poll` hands it back without a copy.
                self.ready = Some(if skip == 0 {
                    data
                } else {
                    data.slice(skip as usize..)
                });
                self.delivered = end;
            } else {
                self.buf
                    .entry(insert_at)
                    .or_insert_with(|| data.slice(skip as usize..));
            }
        }
        advance
    }

    /// Drains contiguous deliverable bytes. Returns `None` when nothing
    /// new is deliverable; the `bool` is `true` when this delivery
    /// includes the stream's FIN.
    pub fn poll(&mut self) -> Option<(Bytes, bool)> {
        if self.fin_delivered {
            return None;
        }
        let ready = self.ready.take();
        if let Some(data) = &ready {
            // Fast path: one in-order chunk, nothing else contiguous
            // behind it — hand it back as-is (no copy, no allocation).
            if self
                .buf
                .first_key_value()
                .is_none_or(|(&s, _)| s > self.delivered)
            {
                let fin_now = self.fin_offset == Some(self.delivered)
                    || (self.stopped && self.fin_offset.is_some());
                if fin_now {
                    self.fin_delivered = true;
                }
                return Some((data.clone(), fin_now));
            }
        }
        let mut out = BytesMut::with_capacity(0);
        if let Some(data) = ready {
            // A contiguous chunk landed in the reassembly map behind the
            // parked frame: fold both into one delivery, preserving the
            // drain-everything-contiguous granularity.
            out.put_slice(&data);
        }
        while let Some((&start, _)) = self.buf.first_key_value() {
            if start > self.delivered {
                break;
            }
            let (start, data) = self.buf.pop_first().expect("checked non-empty");
            let end = start + data.len() as u64;
            if end <= self.delivered {
                continue; // fully duplicate chunk
            }
            let skip = (self.delivered - start) as usize;
            out.put_slice(&data.slice(skip..));
            self.delivered = end;
        }
        let fin_now =
            self.fin_offset == Some(self.delivered) || (self.stopped && self.fin_offset.is_some());
        if out.is_empty() && !fin_now {
            return None;
        }
        if fin_now {
            self.fin_delivered = true;
        }
        Some((out.freeze(), fin_now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag() -> RecordTag {
        RecordTag::NONE
    }

    #[test]
    fn nagle_holds_partial_chunks_until_fin() {
        let mut s = SendStream::new(u64::MAX);
        s.push(Bytes::from(vec![1u8; 500]), false, tag());
        assert!(!s.has_sendable(u64::MAX), "sub-MTU without fin waits");
        s.push(Bytes::from(vec![2u8; MAX_STREAM_CHUNK]), false, tag());
        let c = s.next_chunk(u64::MAX).expect("full chunk");
        assert_eq!(c.data.len(), MAX_STREAM_CHUNK);
        assert!(!c.fin);
        assert!(!s.has_sendable(u64::MAX), "tail waits again");
        s.push(Bytes::new(), true, tag());
        let c = s.next_chunk(u64::MAX).expect("fin tail");
        assert_eq!(c.data.len(), 500);
        assert!(c.fin);
        assert!(s.fin_sent());
        assert!(s.next_chunk(u64::MAX).is_none());
    }

    #[test]
    fn fin_only_frame_when_no_data_pending() {
        let mut s = SendStream::new(u64::MAX);
        s.push(Bytes::new(), true, tag());
        let c = s.next_chunk(u64::MAX).expect("fin-only");
        assert_eq!(c.data.len(), 0);
        assert!(c.fin);
    }

    #[test]
    fn flow_control_blocks_partial_tail() {
        let mut s = SendStream::new(700);
        s.push(Bytes::from(vec![3u8; 1_000]), true, tag());
        // Credit only covers 700 of 1000 bytes: emitting would strand a
        // partial frame without fin, so the stream waits.
        assert!(!s.has_sendable(u64::MAX));
        s.on_max_stream_data(1_000);
        let c = s.next_chunk(u64::MAX).expect("tail after credit");
        assert_eq!(c.data.len(), 1_000);
        assert!(c.fin);
    }

    #[test]
    fn retransmit_reproduces_original_bytes() {
        let mut s = SendStream::new(u64::MAX);
        let payload: Vec<u8> = (0..MAX_STREAM_CHUNK as u32).map(|i| i as u8).collect();
        s.push(Bytes::from(payload.clone()), true, tag());
        let c = s.next_chunk(u64::MAX).expect("chunk");
        assert!(s.on_frame_lost(c.offset, c.data.len() as u32, c.fin));
        let r = s.next_chunk(0).expect("retransmit ignores credit");
        assert!(r.retransmit);
        assert_eq!(r.offset, c.offset);
        assert_eq!(r.data.to_vec(), payload);
        assert_eq!(r.fin, c.fin);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = SendStream::new(u64::MAX);
        s.push(Bytes::from(vec![9u8; 2 * MAX_STREAM_CHUNK]), false, tag());
        s.reset();
        assert!(s.is_reset());
        assert!(!s.has_sendable(u64::MAX));
        assert!(!s.on_frame_lost(0, 100, false));
    }

    #[test]
    fn tag_runs_split_on_segment_boundaries() {
        let mut s = SendStream::new(u64::MAX);
        let t1 = RecordTag {
            stream_id: 1,
            object_id: 10,
            copy: 0,
            class: h2priv_tls::TrafficClass::ResponseHeaders,
        };
        let t2 = RecordTag {
            class: h2priv_tls::TrafficClass::ObjectData,
            ..t1
        };
        s.push(Bytes::from(vec![0u8; 40]), false, t1);
        s.push(Bytes::from(vec![0u8; 100]), false, t2);
        let runs = s.tag_runs(20, 80);
        assert_eq!(runs, vec![(20, 20, t1), (40, 60, t2)]);
    }

    #[test]
    fn recv_reorders_and_delivers_once() {
        let mut r = RecvStream::new();
        assert_eq!(r.on_frame(100, Bytes::from(vec![2u8; 50]), true), 150);
        assert!(r.poll().is_none(), "gap at 0 blocks delivery");
        assert_eq!(r.on_frame(0, Bytes::from(vec![1u8; 100]), false), 0);
        let (data, fin) = r.poll().expect("delivery");
        assert_eq!(data.len(), 150);
        assert!(fin);
        assert!(r.poll().is_none());
    }

    #[test]
    fn duplicate_frames_do_not_redeliver() {
        let mut r = RecvStream::new();
        r.on_frame(0, Bytes::from(vec![1u8; 100]), false);
        let (d, _) = r.poll().expect("first");
        assert_eq!(d.len(), 100);
        assert_eq!(r.on_frame(0, Bytes::from(vec![1u8; 100]), false), 0);
        assert!(r.poll().is_none());
    }

    #[test]
    fn stopped_stream_accounts_but_discards() {
        let mut r = RecvStream::new();
        r.stop();
        assert_eq!(r.on_frame(0, Bytes::from(vec![1u8; 100]), false), 100);
        assert_eq!(r.highest_seen(), 100);
    }
}
