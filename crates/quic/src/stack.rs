//! Glue between a [`QuicConnection`] and the netsim event loop, the
//! datagram analogue of `h2priv_h2::stack::Stack`. Used by both
//! [`crate::server::H3ServerNode`] and [`crate::client::H3ClientNode`].

use h2priv_netsim::link::LinkId;
use h2priv_netsim::node::Ctx;
use h2priv_netsim::packet::Packet;
use h2priv_netsim::time::SimTime;
use h2priv_tls::WireMap;
use h2priv_util::bytes::Bytes;

use crate::conn::{QuicConnection, QuicEvent};

/// A QUIC connection with helpers to pump datagrams into the simulator.
#[derive(Debug)]
pub struct QuicStack {
    /// The transport connection.
    pub quic: QuicConnection,
    egress: Option<LinkId>,
    /// Alternate egress for connection-migration-style traffic
    /// splitting, with the burst length (datagrams per path before
    /// alternating).
    split: Option<(LinkId, u32)>,
    /// Datagrams sent since splitting was enabled.
    split_sent: u64,
    /// Deadline currently covered by a scheduled transport tick, if any.
    pub tick_at: Option<SimTime>,
}

impl QuicStack {
    /// Wraps a QUIC connection.
    pub fn new(quic: QuicConnection) -> QuicStack {
        QuicStack {
            quic,
            egress: None,
            split: None,
            split_sent: 0,
            tick_at: None,
        }
    }

    /// Sets the link this endpoint transmits on (discovered in
    /// `on_start`).
    pub fn set_egress(&mut self, link: LinkId) {
        self.egress = Some(link);
    }

    /// Enables traffic splitting: datagrams alternate between the
    /// primary egress and `alt` in deterministic bursts of `burst`
    /// datagrams per path (connection-migration style — no RNG).
    pub fn set_split(&mut self, alt: LinkId, burst: u32) {
        assert!(burst > 0, "split burst must be positive");
        self.split = Some((alt, burst));
    }

    /// Datagrams routed via the alternate path so far.
    pub fn split_alt_datagrams(&self) -> u64 {
        let Some((_, burst)) = self.split else {
            return 0;
        };
        // Odd-numbered bursts went to the alternate path.
        let full = self.split_sent / burst as u64;
        let rem = self.split_sent % burst as u64;
        full / 2 * burst as u64 + if full % 2 == 1 { rem } else { 0 }
    }

    /// Feeds an arriving datagram into the connection, appending the
    /// application events it produced (in order) to a caller-provided
    /// (reusable) buffer.
    pub fn on_packet_into(&mut self, now: SimTime, pkt: &Packet, events: &mut Vec<QuicEvent>) {
        self.quic.on_datagram(now, &pkt.payload);
        self.collect_into(events);
    }

    /// Drives the transport timer; appends events like
    /// [`QuicStack::on_packet_into`].
    pub fn on_transport_timer_into(&mut self, now: SimTime, events: &mut Vec<QuicEvent>) {
        self.quic.on_timer(now);
        self.collect_into(events);
    }

    fn collect_into(&mut self, events: &mut Vec<QuicEvent>) {
        while let Some(ev) = self.quic.poll_event() {
            events.push(ev);
        }
    }

    /// Transmits every datagram the connection has ready onto the egress
    /// link.
    ///
    /// # Panics
    /// Panics if the egress link was never set.
    pub fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let egress = self.egress.expect("stack egress not set");
        while let Some((hdr, payload)) = self.quic.poll_datagram(ctx.now()) {
            let link = match self.split {
                Some((alt, burst)) => {
                    let path = (self.split_sent / burst as u64) % 2;
                    self.split_sent += 1;
                    if path == 1 {
                        alt
                    } else {
                        egress
                    }
                }
                None => egress,
            };
            ctx.send(link, Packet::new(hdr, payload));
        }
    }

    /// The next transport deadline that needs an `on_transport_timer`
    /// call, if the currently scheduled tick (if any) does not already
    /// cover it.
    pub fn timer_needs_rescheduling(&self) -> Option<SimTime> {
        match (self.quic.next_timeout(), self.tick_at) {
            (Some(t), Some(s)) if s <= t => None, // an earlier/equal tick is coming
            (Some(t), _) => Some(t),
            (None, _) => None,
        }
    }

    /// Ground truth for everything this endpoint sent.
    pub fn wire_map(&self) -> &WireMap {
        self.quic.wire_map()
    }

    /// Synthetic body bytes of the given length (zero-filled).
    pub fn opaque(len: usize) -> Bytes {
        Bytes::from(vec![0u8; len])
    }
}
