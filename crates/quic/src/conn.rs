//! The QUIC-lite connection: datagram I/O, handshake, flow control and
//! event delivery.
//!
//! A [`QuicConnection`] is sans-I/O: the owner feeds it received datagram
//! payloads ([`QuicConnection::on_datagram`]), pumps outgoing datagrams
//! ([`QuicConnection::poll_datagram`]) and drives time
//! ([`QuicConnection::on_timer`] / [`QuicConnection::next_timeout`]).
//! Datagrams ride the simulator's existing [`TcpHeader`]-framed packets —
//! the header stands in for the UDP/IP header an observer would see, with
//! the packet number mirrored into `seq` purely for trace readability.
//!
//! The handshake mirrors the byte counts of the TLS flights used by the
//! H2 stack (`h2priv_h2::stack::handshake_sizes`) carried in CRYPTO
//! frames, with the client's first flight padded to a full datagram as
//! RFC 9000 requires of Initial packets.

use std::collections::VecDeque;

use h2priv_h2::stack::handshake_sizes;
use h2priv_netsim::packet::{FlowId, TcpFlags, TcpHeader};
use h2priv_netsim::time::{SimDuration, SimTime};
use h2priv_tcp::TcpStats;
use h2priv_tls::{RecordTag, TrafficClass, WireMap, WireSpan};
use h2priv_util::bytes::{Bytes, BytesPool};
use h2priv_util::{smallvec, telemetry};

use crate::frame::{
    decode_datagram_into, encode_datagram_pooled, FrameVec, QuicFrame, MAX_CRYPTO_CHUNK,
    MAX_DATAGRAM, SHORT_HEADER_LEN, STREAM_DATAGRAM_OVERHEAD, STREAM_FRAME_HEADER_LEN,
};
use crate::recovery::{AckRanges, Recovery, SentFrame, SentVec};
use crate::streams::{RecvStream, SendStream};
use crate::table::StreamTable;

/// Datagram payload buffers kept warm per worker thread. In steady state
/// the send paths cycle buffers with the peers' receive paths, so a pool
/// sized to the aggregate in-flight window covers all connections.
const PAYLOAD_POOL_BUFFERS: usize = 512;

thread_local! {
    /// Shared datagram-payload recycling pool. The simulation runs one
    /// trial per thread, and payload buffers migrate between endpoints
    /// (a buffer allocated by the server's send path is reclaimed by the
    /// client's receive path), so per-connection pools drain in one
    /// direction and refill in the other. A thread-local pool lets every
    /// connection on the thread draw from the same recycled stock; it
    /// stays warm across trials on long-lived worker threads.
    static PAYLOAD_POOL: std::cell::RefCell<BytesPool> =
        std::cell::RefCell::new(BytesPool::new(PAYLOAD_POOL_BUFFERS, MAX_DATAGRAM));
}

/// Runs `f` with the thread's payload pool. Crate-internal so the
/// stream layer can serve segment-spanning chunk copies from the same
/// recycled stock (those buffers round-trip through
/// [`QuicConnection::poll_datagram`] and come back via reclaim below).
pub(crate) fn with_payload_pool<R>(f: impl FnOnce(&mut BytesPool) -> R) -> R {
    PAYLOAD_POOL.with(|p| f(&mut p.borrow_mut()))
}

/// Which end of the connection this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Connection initiator.
    Client,
    /// Connection acceptor.
    Server,
}

/// Tunables for a QUIC-lite connection.
#[derive(Debug, Clone)]
pub struct QuicConfig {
    /// RTT estimate used before the first sample (RFC 9002 default-ish).
    pub initial_rtt: SimDuration,
    /// Delayed-ACK interval once established.
    pub max_ack_delay: SimDuration,
    /// Initial connection-level flow-control window (both directions).
    pub initial_max_data: u64,
    /// Initial per-stream flow-control window. Streams are never
    /// re-granted in this model — the window is sized to cover the
    /// largest object outright.
    pub initial_max_stream_data: u64,
    /// Delivered-byte threshold that triggers a MAX_DATA grant.
    pub window_update_threshold: u64,
    /// Consecutive unanswered PTOs before the connection aborts.
    pub max_pto_count: u32,
    /// Pad stream-carrying datagrams up to a multiple of this many wire
    /// bytes (capped at [`MAX_DATAGRAM`]) using PADDING frames. 0 = no
    /// padding. PADDING frames are ignored on receipt, so no peer
    /// configuration is needed.
    pub pad_block: usize,
}

impl Default for QuicConfig {
    fn default() -> Self {
        Self {
            initial_rtt: SimDuration::from_millis(100),
            max_ack_delay: SimDuration::from_millis(25),
            initial_max_data: 12 * 1024 * 1024,
            initial_max_stream_data: 1024 * 1024,
            window_update_threshold: 256 * 1024,
            max_pto_count: 10,
            pad_block: 0,
        }
    }
}

/// Events surfaced to the application layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuicEvent {
    /// Handshake complete; streams may be opened.
    Connected,
    /// Stream data delivered in order (possibly empty when only FIN).
    Stream {
        /// Stream id.
        id: u32,
        /// In-order bytes.
        data: Bytes,
        /// Stream finished.
        fin: bool,
    },
    /// The peer reset the named stream.
    StreamReset {
        /// Stream id.
        id: u32,
    },
    /// The peer asked us to stop sending on the named stream.
    StreamStopped {
        /// Stream id.
        id: u32,
    },
    /// The peer closed the connection.
    Closed,
    /// The connection died (PTO limit exceeded).
    Aborted,
}

/// Connection counters, the datagram analogue of
/// [`TcpStats`](h2priv_tcp::TcpStats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuicStats {
    /// Datagrams transmitted (including retransmission carriers).
    pub datagrams_sent: u64,
    /// Datagrams received and decoded.
    pub datagrams_received: u64,
    /// Datagram payload bytes transmitted.
    pub bytes_sent: u64,
    /// Datagram payload bytes received.
    pub bytes_received: u64,
    /// New (first-transmission) stream bytes sent.
    pub stream_bytes_sent: u64,
    /// In-order stream bytes delivered to the application.
    pub stream_bytes_delivered: u64,
    /// ACK-only datagrams sent.
    pub acks_sent: u64,
    /// STREAM/CRYPTO frames retransmitted after packet-threshold loss.
    pub loss_retransmits: u64,
    /// Frames retransmitted after a probe timeout.
    pub pto_retransmits: u64,
    /// Probe-timeout expiry events.
    pub pto_events: u64,
    /// Datagrams discarded as duplicates of an already-seen packet number.
    pub duplicate_datagrams: u64,
    /// PADDING overhead bytes added by [`QuicConfig::pad_block`].
    pub pad_bytes_sent: u64,
}

impl QuicStats {
    /// Maps these counters onto the TCP counter struct so transport-generic
    /// diagnostics (e.g. `core`'s trial reports) work over either stack.
    /// Fields with no datagram analogue are zero.
    pub fn as_tcp_stats(&self) -> TcpStats {
        TcpStats {
            segments_sent: self.datagrams_sent,
            fast_retransmits: self.loss_retransmits,
            timeout_retransmits: self.pto_retransmits,
            acks_sent: self.acks_sent,
            dup_acks_sent: 0,
            dup_acks_received: self.duplicate_datagrams,
            rto_events: self.pto_events,
            bytes_sent: self.stream_bytes_sent,
            bytes_acked: 0,
            bytes_delivered: self.stream_bytes_delivered,
            segments_received: self.datagrams_received,
            out_of_order_segments: 0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    Handshaking,
    Established,
    Dead,
}

/// A deterministic QUIC-lite connection endpoint.
#[derive(Debug)]
pub struct QuicConnection {
    role: Role,
    cfg: QuicConfig,
    flow: FlowId,
    state: ConnState,
    recovery: Recovery,
    /// Packet numbers received from the peer (also the ACK source).
    recv_ranges: AckRanges,
    ack_at: Option<SimTime>,
    ack_rotation: usize,
    /// Crypto send state: total queued, first-transmission frontier,
    /// lost ranges awaiting retransmission.
    crypto_queued: u64,
    crypto_sent: u64,
    crypto_retransmit: VecDeque<(u64, u32)>,
    /// Crypto receive state (byte ranges, cumulative from zero).
    crypto_recv: AckRanges,
    queued_server_flight: bool,
    queued_client_finish: bool,
    queued_server_finish: bool,
    send_streams: StreamTable<SendStream>,
    recv_streams: StreamTable<RecvStream>,
    last_sent_stream: Option<u32>,
    control_queue: VecDeque<FrameVec>,
    /// Connection-level flow control, send side.
    peer_max_data: u64,
    conn_data_sent: u64,
    /// Connection-level flow control, receive side.
    conn_bytes_seen: u64,
    granted_marker: u64,
    events: VecDeque<QuicEvent>,
    stats: QuicStats,
    wire_map: WireMap,
    wire_offset: u64,
    /// Reusable frame buffer for datagram decoding.
    decode_scratch: Vec<QuicFrame>,
    /// Reusable tag-run buffer for wire-map bookkeeping.
    runs_scratch: Vec<(u64, u32, RecordTag)>,
}

impl QuicConnection {
    fn new(role: Role, flow: FlowId, cfg: QuicConfig) -> Self {
        Self {
            role,
            flow,
            state: ConnState::Handshaking,
            recovery: Recovery::new(cfg.initial_rtt, cfg.max_ack_delay),
            recv_ranges: AckRanges::new(),
            ack_at: None,
            ack_rotation: 0,
            crypto_queued: 0,
            crypto_sent: 0,
            crypto_retransmit: VecDeque::new(),
            crypto_recv: AckRanges::new(),
            queued_server_flight: false,
            queued_client_finish: false,
            queued_server_finish: false,
            send_streams: StreamTable::new(),
            recv_streams: StreamTable::new(),
            last_sent_stream: None,
            control_queue: VecDeque::new(),
            peer_max_data: cfg.initial_max_data,
            conn_data_sent: 0,
            conn_bytes_seen: 0,
            granted_marker: 0,
            events: VecDeque::new(),
            stats: QuicStats::default(),
            wire_map: WireMap::new(),
            wire_offset: 0,
            decode_scratch: Vec::new(),
            runs_scratch: Vec::new(),
            cfg,
        }
    }

    /// Client endpoint sending on `flow`.
    pub fn client(flow: FlowId, cfg: QuicConfig) -> Self {
        Self::new(Role::Client, flow, cfg)
    }

    /// Server endpoint sending on `flow`.
    pub fn server(flow: FlowId, cfg: QuicConfig) -> Self {
        Self::new(Role::Server, flow, cfg)
    }

    /// Starts the handshake (client queues its Initial crypto flight;
    /// no-op on the server, which reacts to the client's flight).
    pub fn open(&mut self) {
        if self.role == Role::Client && self.crypto_queued == 0 {
            self.crypto_queued = handshake_sizes::CLIENT_HELLO as u64;
        }
    }

    /// `true` once the handshake completed.
    pub fn is_established(&self) -> bool {
        self.state == ConnState::Established
    }

    /// `true` once the connection aborted or was closed.
    pub fn is_dead(&self) -> bool {
        self.state == ConnState::Dead
    }

    /// Connection counters.
    pub fn stats(&self) -> &QuicStats {
        &self.stats
    }

    /// Ground-truth map of first-transmission stream bytes to datagram
    /// payload offsets.
    pub fn wire_map(&self) -> &WireMap {
        &self.wire_map
    }

    /// Current congestion window (diagnostics).
    pub fn cwnd(&self) -> u64 {
        self.recovery.cwnd()
    }

    /// Remaining connection-level flow-control credit towards the peer
    /// (diagnostics; the analogue of the H2 connection send window).
    pub fn send_credit(&self) -> u64 {
        self.peer_max_data.saturating_sub(self.conn_data_sent)
    }

    /// Smoothed RTT estimate, if any (diagnostics).
    pub fn srtt(&self) -> Option<SimDuration> {
        self.recovery.srtt()
    }

    /// Queues application data (and/or FIN) on a stream, tagged for the
    /// wire map.
    pub fn stream_send(&mut self, id: u32, data: Bytes, fin: bool, tag: RecordTag) {
        let max = self.cfg.initial_max_stream_data;
        self.send_streams
            .get_or_insert_with(id, || SendStream::new(max))
            .push(data, fin, tag);
    }

    /// Abandons a stream in both directions: our send side is reset, the
    /// peer is told RESET_STREAM + STOP_SENDING in one immediate datagram
    /// (the reset volley the attack's signature detector watches for).
    pub fn reset_stream(&mut self, id: u32) {
        let max = self.cfg.initial_max_stream_data;
        self.send_streams
            .get_or_insert_with(id, || SendStream::new(max))
            .reset();
        self.recv_streams
            .get_or_insert_with(id, RecvStream::new)
            .stop();
        self.control_queue.push_back(smallvec![
            QuicFrame::ResetStream { id },
            QuicFrame::StopSending { id },
        ]);
    }

    /// Queues a CONNECTION_CLOSE to the peer.
    pub fn close(&mut self) {
        self.control_queue
            .push_back(smallvec![QuicFrame::ConnectionClose]);
    }

    /// Next application event, if any.
    pub fn poll_event(&mut self) -> Option<QuicEvent> {
        self.events.pop_front()
    }

    /// When [`QuicConnection::on_timer`] next needs to run.
    pub fn next_timeout(&self) -> Option<SimTime> {
        if self.state == ConnState::Dead {
            return None;
        }
        match (self.ack_at, self.recovery.pto_deadline()) {
            (Some(a), Some(p)) => Some(a.min(p)),
            (Some(a), None) => Some(a),
            (None, p) => p,
        }
    }

    /// Drives time-based work: PTO expiry (delayed ACKs are picked up by
    /// the next [`QuicConnection::poll_datagram`] call).
    pub fn on_timer(&mut self, now: SimTime) {
        if self.state == ConnState::Dead {
            return;
        }
        while let Some(deadline) = self.recovery.pto_deadline() {
            if deadline > now {
                break;
            }
            self.stats.pto_events += 1;
            let Some(frames) = self.recovery.on_pto() else {
                break;
            };
            let n = self.requeue_frames(frames);
            self.stats.pto_retransmits += n;
            telemetry::emit("quic", "pto", |ev| {
                ev.fields
                    .push(("pto_count", self.recovery.pto_count().into()));
                ev.fields.push(("retransmits", n.into()));
            });
            telemetry::count("quic.pto_events", 1);
            if self.recovery.pto_count() >= self.cfg.max_pto_count {
                telemetry::emit("quic", "abort", |ev| {
                    ev.fields
                        .push(("pto_count", self.recovery.pto_count().into()));
                });
                telemetry::count("quic.aborts", 1);
                self.state = ConnState::Dead;
                self.events.push_back(QuicEvent::Aborted);
                return;
            }
        }
    }

    /// Requeues retransmittable frames (from loss or PTO); returns how
    /// many stream/crypto frames were actually requeued.
    fn requeue_frames(&mut self, frames: impl IntoIterator<Item = SentFrame>) -> u64 {
        let mut n = 0;
        for f in frames {
            match f {
                SentFrame::Stream {
                    id,
                    offset,
                    len,
                    fin,
                } => {
                    if let Some(s) = self.send_streams.get_mut(id) {
                        if s.on_frame_lost(offset, len, fin) {
                            n += 1;
                        }
                    }
                }
                SentFrame::Crypto { offset, len } => {
                    self.crypto_retransmit.push_back((offset, len));
                    n += 1;
                }
                SentFrame::Control(frame) => self.control_queue.push_back(smallvec![frame]),
                SentFrame::AckOnly => {}
            }
        }
        n
    }

    /// Ingests one received datagram payload. Stream data in `payload`
    /// is delivered as zero-copy slices of it, so the `Bytes` handle's
    /// buffer stays referenced until the resulting events are consumed.
    pub fn on_datagram(&mut self, now: SimTime, payload: &Bytes) {
        if self.state == ConnState::Dead {
            return;
        }
        let mut frames = std::mem::take(&mut self.decode_scratch);
        frames.clear();
        let decoded = decode_datagram_into(payload, &mut frames);
        let Some(pn) = decoded else {
            debug_assert!(false, "malformed QUIC-lite datagram");
            self.decode_scratch = frames;
            return;
        };
        self.stats.datagrams_received += 1;
        self.stats.bytes_received += payload.len() as u64;
        if !self.recv_ranges.insert(pn) {
            self.stats.duplicate_datagrams += 1;
            self.decode_scratch = frames;
            return;
        }
        let ack_eliciting = frames.iter().any(QuicFrame::is_ack_eliciting);
        if ack_eliciting && self.ack_at.is_none() {
            self.ack_at = Some(if self.state == ConnState::Established {
                now + self.cfg.max_ack_delay
            } else {
                now
            });
        }
        for frame in frames.drain(..) {
            self.on_frame(now, frame);
        }
        self.decode_scratch = frames;
    }

    /// Offers a fully-processed received payload buffer back to the
    /// thread's send pool. A no-op (the buffer is simply dropped)
    /// when something still references it — e.g. out-of-order stream
    /// data parked in a reassembly buffer.
    pub fn reclaim_payload(&mut self, payload: Bytes) {
        PAYLOAD_POOL.with(|p| p.borrow_mut().reclaim(payload));
    }

    fn on_frame(&mut self, now: SimTime, frame: QuicFrame) {
        match frame {
            QuicFrame::Padding { .. } | QuicFrame::Ping => {}
            QuicFrame::Ack { ranges } => {
                let out = self.recovery.on_ack(now, &ranges);
                let n = self.requeue_frames(out.lost);
                self.stats.loss_retransmits += n;
                if n > 0 {
                    telemetry::emit("quic", "loss_retransmit", |ev| {
                        ev.fields.push(("frames", n.into()));
                    });
                    telemetry::count("quic.loss_retransmits", n);
                }
            }
            QuicFrame::Crypto { offset, len } => {
                if len > 0 {
                    self.crypto_recv
                        .insert_range(offset, offset + len as u64 - 1);
                }
                self.advance_handshake();
            }
            QuicFrame::Stream {
                id,
                offset,
                data,
                fin,
            } => self.on_stream_frame(id, offset, data, fin),
            QuicFrame::MaxData { max } => {
                self.peer_max_data = self.peer_max_data.max(max);
            }
            QuicFrame::MaxStreamData { id, max } => {
                if let Some(s) = self.send_streams.get_mut(id) {
                    s.on_max_stream_data(max);
                }
            }
            QuicFrame::ResetStream { id } => {
                self.recv_streams
                    .get_or_insert_with(id, RecvStream::new)
                    .stop();
                self.events.push_back(QuicEvent::StreamReset { id });
            }
            QuicFrame::StopSending { id } => {
                let max = self.cfg.initial_max_stream_data;
                self.send_streams
                    .get_or_insert_with(id, || SendStream::new(max))
                    .reset();
                self.events.push_back(QuicEvent::StreamStopped { id });
            }
            QuicFrame::ConnectionClose => {
                self.state = ConnState::Dead;
                self.events.push_back(QuicEvent::Closed);
            }
        }
    }

    fn on_stream_frame(&mut self, id: u32, offset: u64, data: Bytes, fin: bool) {
        let stream = self.recv_streams.get_or_insert_with(id, RecvStream::new);
        let advance = stream.on_frame(offset, data, fin);
        self.conn_bytes_seen += advance;
        if !stream.is_stopped() {
            if let Some((data, fin)) = stream.poll() {
                self.stats.stream_bytes_delivered += data.len() as u64;
                self.events.push_back(QuicEvent::Stream { id, data, fin });
            }
        }
        // Replenish the connection window once enough has arrived.
        if self.conn_bytes_seen - self.granted_marker >= self.cfg.window_update_threshold {
            self.granted_marker = self.conn_bytes_seen;
            let max = self.conn_bytes_seen + self.cfg.initial_max_data;
            self.control_queue
                .push_back(smallvec![QuicFrame::MaxData { max }]);
        }
    }

    /// Walks the handshake state machine after new crypto bytes arrive.
    /// The flights mirror `h2priv_h2::stack::handshake_sizes` byte counts.
    fn advance_handshake(&mut self) {
        let contiguous = self.crypto_recv.contiguous_from_zero();
        match self.role {
            Role::Server => {
                if contiguous >= handshake_sizes::CLIENT_HELLO as u64 && !self.queued_server_flight
                {
                    self.queued_server_flight = true;
                    self.crypto_queued += handshake_sizes::SERVER_FLIGHT as u64;
                }
                let finish_at =
                    (handshake_sizes::CLIENT_HELLO + handshake_sizes::CLIENT_FINISHED) as u64;
                if contiguous >= finish_at && !self.queued_server_finish {
                    self.queued_server_finish = true;
                    self.crypto_queued += handshake_sizes::SERVER_FINISHED as u64;
                    self.become_established();
                }
            }
            Role::Client => {
                if contiguous >= handshake_sizes::SERVER_FLIGHT as u64 && !self.queued_client_finish
                {
                    self.queued_client_finish = true;
                    self.crypto_queued += handshake_sizes::CLIENT_FINISHED as u64;
                    self.become_established();
                }
            }
        }
    }

    fn become_established(&mut self) {
        if self.state == ConnState::Handshaking {
            self.state = ConnState::Established;
            self.events.push_back(QuicEvent::Connected);
        }
    }

    fn header(&self, pn: u64) -> TcpHeader {
        TcpHeader {
            flow: self.flow,
            seq: pn as u32,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 65_535,
            ts_val: 0,
            ts_ecr: 0,
        }
    }

    /// Emits one datagram and does the shared bookkeeping.
    fn emit(
        &mut self,
        now: SimTime,
        frames: &[QuicFrame],
        sent: SentVec,
        ack_eliciting: bool,
        pad_to: Option<usize>,
    ) -> (TcpHeader, Bytes) {
        let pn = self.recovery.peek_pn();
        let payload =
            PAYLOAD_POOL.with(|p| encode_datagram_pooled(pn, frames, pad_to, &mut p.borrow_mut()));
        let assigned = self
            .recovery
            .on_packet_sent(now, payload.len() as u64, ack_eliciting, sent);
        debug_assert_eq!(assigned, pn);
        self.stats.datagrams_sent += 1;
        self.stats.bytes_sent += payload.len() as u64;
        self.wire_offset += payload.len() as u64;
        (self.header(pn), payload)
    }

    /// Produces the next outgoing datagram, or `None` when there is
    /// nothing (admissible) to send. Priority: control volleys, due ACKs,
    /// crypto, then application streams in round-robin order. Control and
    /// ACK datagrams bypass the congestion window; crypto and stream data
    /// are admitted only when a full datagram fits.
    pub fn poll_datagram(&mut self, now: SimTime) -> Option<(TcpHeader, Bytes)> {
        if self.state == ConnState::Dead {
            return None;
        }
        // 1. Control frames (reset volleys, flow-control grants, close).
        if let Some(frames) = self.control_queue.pop_front() {
            let sent: SentVec = frames.iter().cloned().map(SentFrame::Control).collect();
            return Some(self.emit(now, &frames, sent, true, None));
        }
        // 2. Due delayed ACK.
        if self.ack_at.is_some_and(|t| t <= now) {
            self.ack_at = None;
            self.stats.acks_sent += 1;
            // Rotate one older range into each ACK so a packet that the
            // path held back for a long time (e.g. an adversarial pacer)
            // is still eventually reported — otherwise it merges into a
            // range that has scrolled out of the capped window and the
            // peer respawns it forever.
            let ranges = self.recv_ranges.encode_rotating(&mut self.ack_rotation);
            return Some(self.emit(
                now,
                &[QuicFrame::Ack { ranges }],
                smallvec![SentFrame::AckOnly],
                false,
                None,
            ));
        }
        // 3. Crypto retransmissions. Retransmitted frames are probe-class
        // and may exceed the congestion window (RFC 9002 §7.5) — after an
        // ACK loss the window can be pinned shut by unacknowledged
        // in-flight bytes, and the retransmission is the only thing that
        // can elicit the ACK that reopens it. Gating probes on the window
        // would deadlock the connection into PTO-abort.
        if let Some((offset, len)) = self.crypto_retransmit.pop_front() {
            let frame = QuicFrame::Crypto { offset, len };
            let sent = smallvec![SentFrame::Crypto { offset, len }];
            return Some(self.emit(now, &[frame], sent, true, None));
        }
        let window_open = self.recovery.can_send(MAX_DATAGRAM as u64);
        if window_open && self.crypto_sent < self.crypto_queued {
            let offset = self.crypto_sent;
            let len = (self.crypto_queued - offset).min(MAX_CRYPTO_CHUNK as u64) as u32;
            self.crypto_sent += len as u64;
            // The client's very first flight is an Initial: padded to a
            // full datagram as RFC 9000 §8.1 requires.
            let pad = (self.role == Role::Client && offset == 0).then_some(MAX_DATAGRAM);
            let frame = QuicFrame::Crypto { offset, len };
            let sent = smallvec![SentFrame::Crypto { offset, len }];
            return Some(self.emit(now, &[frame], sent, true, pad));
        }
        // 4. Application streams, deterministic round-robin.
        self.poll_stream_datagram(now, window_open)
    }

    fn poll_stream_datagram(
        &mut self,
        now: SimTime,
        window_open: bool,
    ) -> Option<(TcpHeader, Bytes)> {
        if self.state != ConnState::Established {
            return None;
        }
        let conn_credit = self.peer_max_data.saturating_sub(self.conn_data_sent);
        // Round-robin: first sendable stream strictly after the cursor,
        // wrapping; deterministic because the table iterates in id order
        // (the same order the former BTreeMap ranges walked).
        // With the window shut only probe-class retransmissions go out
        // (and `next_chunk` serves a stream's retransmissions first).
        let after = self.last_sent_stream.map_or(0, |id| id + 1);
        let pick = self.send_streams.next_matching(after, |s| {
            if window_open {
                s.has_sendable(conn_credit)
            } else {
                s.has_retransmit()
            }
        })?;
        let stream = self.send_streams.get_mut(pick)?;
        let chunk = stream.next_chunk(conn_credit)?;
        self.runs_scratch.clear();
        if !chunk.retransmit {
            stream.tag_runs_into(
                chunk.offset,
                chunk.data.len() as u32,
                &mut self.runs_scratch,
            );
        }
        self.last_sent_stream = Some(pick);
        if !chunk.retransmit {
            self.conn_data_sent += chunk.data.len() as u64;
            self.stats.stream_bytes_sent += chunk.data.len() as u64;
            // Map the chunk's bytes to their datagram payload offsets:
            // short header + STREAM frame header precede the data.
            let base = self.wire_offset + (SHORT_HEADER_LEN + STREAM_FRAME_HEADER_LEN) as u64;
            for &(run_offset, run_len, tag) in &self.runs_scratch {
                let start = base + (run_offset - chunk.offset);
                self.wire_map.push(WireSpan {
                    start,
                    end: start + run_len as u64,
                    tag,
                });
            }
        }
        let sent = smallvec![SentFrame::Stream {
            id: pick,
            offset: chunk.offset,
            len: chunk.data.len() as u32,
            fin: chunk.fin,
        }];
        // Countermeasure padding: round the datagram up to the next
        // pad-block multiple (PADDING frames after the stream frame, so
        // the wire-map spans above stay valid), capped at the MTU.
        let pad = if self.cfg.pad_block > 0 {
            let unpadded = chunk.data.len() + STREAM_DATAGRAM_OVERHEAD;
            let target = unpadded
                .div_ceil(self.cfg.pad_block)
                .saturating_mul(self.cfg.pad_block)
                .min(MAX_DATAGRAM);
            if target > unpadded {
                self.stats.pad_bytes_sent += (target - unpadded) as u64;
                Some(target)
            } else {
                None
            }
        } else {
            None
        };
        let data_handle = chunk.data.clone();
        let frame = QuicFrame::Stream {
            id: pick,
            offset: chunk.offset,
            data: chunk.data,
            fin: chunk.fin,
        };
        let result = self.emit(now, &[frame], sent, true, pad);
        // The chunk's bytes were copied into the datagram above; a
        // segment-spanning copy (whose only other owner was the frame,
        // just dropped) goes back to the pool, while segment-backed
        // slices still have owners in the send queue and are dropped.
        with_payload_pool(|p| p.reclaim(data_handle));
        Some(result)
    }
}

/// Convenience: a tag for handshake-class bytes (used by tests).
pub fn handshake_tag() -> RecordTag {
    RecordTag {
        stream_id: 0,
        object_id: u32::MAX,
        copy: 0,
        class: TrafficClass::Handshake,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_netsim::packet::HostAddr;

    fn flows() -> (FlowId, FlowId) {
        let c2s = FlowId {
            src: HostAddr(1),
            dst: HostAddr(2),
            sport: 40_000,
            dport: 443,
        };
        (c2s, c2s.reversed())
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    /// Shuttles datagrams both ways until neither side has anything to
    /// send (zero-latency in-memory wire).
    fn shuttle(now: SimTime, a: &mut QuicConnection, b: &mut QuicConnection) {
        loop {
            let mut moved = false;
            while let Some((_, payload)) = a.poll_datagram(now) {
                b.on_datagram(now, &payload);
                moved = true;
            }
            while let Some((_, payload)) = b.poll_datagram(now) {
                a.on_datagram(now, &payload);
                moved = true;
            }
            if !moved {
                break;
            }
        }
    }

    #[test]
    fn handshake_establishes_both_ends() {
        let (c2s, s2c) = flows();
        let mut client = QuicConnection::client(c2s, QuicConfig::default());
        let mut server = QuicConnection::server(s2c, QuicConfig::default());
        client.open();
        shuttle(t(0), &mut client, &mut server);
        assert!(client.is_established());
        assert!(server.is_established());
        assert_eq!(client.poll_event(), Some(QuicEvent::Connected));
        assert_eq!(server.poll_event(), Some(QuicEvent::Connected));
    }

    #[test]
    fn initial_flight_is_padded_to_full_datagram() {
        let (c2s, _) = flows();
        let mut client = QuicConnection::client(c2s, QuicConfig::default());
        client.open();
        let (_, payload) = client.poll_datagram(t(0)).expect("initial");
        assert_eq!(payload.len(), MAX_DATAGRAM);
    }

    #[test]
    fn stream_data_round_trips_with_wire_map() {
        let (c2s, s2c) = flows();
        let mut client = QuicConnection::client(c2s, QuicConfig::default());
        let mut server = QuicConnection::server(s2c, QuicConfig::default());
        client.open();
        shuttle(t(0), &mut client, &mut server);
        let body: Vec<u8> = (0..5_000u32).map(|i| (i % 251) as u8).collect();
        let tag = RecordTag {
            stream_id: 0,
            object_id: 7,
            copy: 0,
            class: TrafficClass::ObjectData,
        };
        server.stream_send(0, Bytes::from(body.clone()), true, tag);
        shuttle(t(1), &mut client, &mut server);
        let mut got = Vec::new();
        let mut finished = false;
        while let Some(ev) = client.poll_event() {
            if let QuicEvent::Stream { id, data, fin } = ev {
                assert_eq!(id, 0);
                got.extend_from_slice(&data.to_vec());
                finished |= fin;
            }
        }
        assert!(finished);
        assert_eq!(got, body);
        assert_eq!(server.wire_map().object_bytes(7), 5_000);
    }

    #[test]
    fn reset_volley_is_one_small_immediate_datagram() {
        let (c2s, s2c) = flows();
        let mut client = QuicConnection::client(c2s, QuicConfig::default());
        let mut server = QuicConnection::server(s2c, QuicConfig::default());
        client.open();
        shuttle(t(0), &mut client, &mut server);
        client.reset_stream(4);
        let (_, payload) = client.poll_datagram(t(1)).expect("volley");
        // 25 overhead + RESET_STREAM(5) + STOP_SENDING(5) = 35 bytes:
        // small enough for the adversary's reset-signature detector.
        assert_eq!(payload.len(), 35);
        server.on_datagram(t(1), &payload);
        let evs: Vec<_> = std::iter::from_fn(|| server.poll_event()).collect();
        assert!(evs.contains(&QuicEvent::StreamReset { id: 4 }));
        assert!(evs.contains(&QuicEvent::StreamStopped { id: 4 }));
    }

    #[test]
    fn duplicate_datagrams_are_dropped() {
        let (c2s, s2c) = flows();
        let mut client = QuicConnection::client(c2s, QuicConfig::default());
        let mut server = QuicConnection::server(s2c, QuicConfig::default());
        client.open();
        let (_, payload) = client.poll_datagram(t(0)).expect("initial");
        server.on_datagram(t(0), &payload);
        server.on_datagram(t(0), &payload);
        assert_eq!(server.stats().duplicate_datagrams, 1);
    }

    #[test]
    fn pto_abort_after_repeated_timeouts() {
        let (c2s, _) = flows();
        let cfg = QuicConfig {
            max_pto_count: 2,
            ..QuicConfig::default()
        };
        let mut client = QuicConnection::client(c2s, cfg);
        client.open();
        let _ = client.poll_datagram(t(0));
        // Nothing ever comes back; drive time far forward repeatedly.
        let mut now = t(0);
        for _ in 0..10 {
            now += SimDuration::from_secs(10);
            client.on_timer(now);
            while client.poll_datagram(now).is_some() {}
            if client.is_dead() {
                break;
            }
        }
        assert!(client.is_dead());
        let evs: Vec<_> = std::iter::from_fn(|| client.poll_event()).collect();
        assert!(evs.contains(&QuicEvent::Aborted));
    }

    #[test]
    fn max_data_grant_replenishes_sender() {
        let (c2s, s2c) = flows();
        let cfg = QuicConfig {
            initial_max_data: 64 * 1024,
            window_update_threshold: 16 * 1024,
            ..QuicConfig::default()
        };
        let mut client = QuicConnection::client(c2s, cfg.clone());
        let mut server = QuicConnection::server(s2c, cfg);
        client.open();
        shuttle(t(0), &mut client, &mut server);
        // Send well past the initial connection window; grants must keep
        // the transfer moving.
        let total = 200 * 1024usize;
        server.stream_send(0, Bytes::from(vec![5u8; total]), true, RecordTag::NONE);
        let mut delivered = 0usize;
        for ms in 1..200 {
            shuttle(t(ms), &mut client, &mut server);
            client.on_timer(t(ms));
            server.on_timer(t(ms));
            while let Some(ev) = client.poll_event() {
                if let QuicEvent::Stream { data, .. } = ev {
                    delivered += data.len();
                }
            }
            if delivered == total {
                break;
            }
        }
        assert_eq!(delivered, total);
    }
}
