//! Loss recovery and congestion control (RFC 9002-flavoured).
//!
//! One packet-number space covers the whole connection — a documented
//! simplification versus real QUIC's Initial/Handshake/1-RTT split that
//! keeps the model small without changing the observables the attack
//! pipeline cares about.
//!
//! Detection combines a packet-reordering threshold (the fast-retransmit
//! analogue) with a probe timeout (PTO, the RTO analogue). On PTO the
//! congestion window collapses to its floor — a deliberate deviation from
//! RFC 9002 (which only collapses on persistent congestion) chosen to
//! mirror the TCP timeout dynamics the paper's attack exploits.

use std::collections::BTreeMap;

use h2priv_netsim::time::{SimDuration, SimTime};
use h2priv_util::smallvec::SmallVec;

use crate::frame::{QuicFrame, RangeVec, MAX_ACK_RANGES};

/// Inline frame list for one sent packet. Packets carry one stream or
/// crypto frame (occasionally plus a control frame), so two inline slots
/// cover the steady state without a heap allocation per packet.
pub type SentVec = SmallVec<SentFrame, 2>;

/// Packets reordered beyond this threshold are declared lost
/// (RFC 9002 §6.1.1). This is the *initial* threshold: acknowledgements
/// for packets already declared lost prove the "loss" was reordering, and
/// the threshold is raised to the observed reordering distance (§6.2.1
/// sanctions adapting to observed reordering) up to
/// [`MAX_PACKET_THRESHOLD`]. Without this an on-path adversary pacing
/// ack-eliciting packets induces a spurious fast-retransmit feedback loop
/// on a loss-free path.
pub const PACKET_THRESHOLD: u64 = 3;
/// Upper bound for the adaptive reordering threshold. Beyond this, loss
/// recovery falls back to the probe timeout alone.
pub const MAX_PACKET_THRESHOLD: u64 = 256;
/// Initial congestion window in bytes (10 full datagrams).
pub const INIT_CWND: u64 = 12_000;
/// Congestion-window floor (2 full datagrams).
pub const MIN_CWND: u64 = 2_400;

/// A set of received/acknowledged packet numbers kept as disjoint
/// inclusive ranges.
#[derive(Debug, Default, Clone)]
pub struct AckRanges {
    ranges: BTreeMap<u64, u64>, // start -> end, disjoint, non-adjacent
}

impl AckRanges {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts one packet number. Returns `false` if it was already
    /// present (a duplicate datagram).
    pub fn insert(&mut self, pn: u64) -> bool {
        self.insert_range(pn, pn)
    }

    /// Inserts the inclusive range `[start, end]`. Returns `false` when
    /// every number in the range was already present.
    pub fn insert_range(&mut self, start: u64, end: u64) -> bool {
        debug_assert!(start <= end);
        let mut new_start = start;
        let mut new_end = end;
        let fresh;
        // Merge with any overlapping or adjacent existing ranges.
        let low = new_start.saturating_sub(1);
        let mut absorb = Vec::new();
        for (&s, &e) in self.ranges.range(..=new_end.saturating_add(1)) {
            if e >= low {
                absorb.push((s, e));
            }
        }
        if absorb.is_empty() {
            fresh = true;
        } else {
            // Fresh iff the existing ranges don't already cover every
            // number in [start, end] (adjacent-only merges cover none).
            let span = new_end - new_start + 1;
            let mut overlap = 0u64;
            for &(s, e) in &absorb {
                let lo = s.max(new_start);
                let hi = e.min(new_end);
                if lo <= hi {
                    overlap += hi - lo + 1;
                }
            }
            fresh = overlap < span;
            for (s, e) in absorb {
                self.ranges.remove(&s);
                new_start = new_start.min(s);
                new_end = new_end.max(e);
            }
        }
        self.ranges.insert(new_start, new_end);
        fresh
    }

    /// `true` if `pn` is in the set.
    pub fn contains(&self, pn: u64) -> bool {
        self.ranges
            .range(..=pn)
            .next_back()
            .is_some_and(|(_, &e)| e >= pn)
    }

    /// Number of disjoint ranges.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// All ranges, ascending.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.ranges.iter().map(|(&s, &e)| (s, e))
    }

    /// Length of the contiguous run starting at 0 (0 when 0 is absent).
    /// Used for cumulative crypto-byte accounting.
    pub fn contiguous_from_zero(&self) -> u64 {
        match self.ranges.first_key_value() {
            Some((&0, &e)) => e + 1,
            _ => 0,
        }
    }

    /// The newest [`MAX_ACK_RANGES`] ranges, ascending — what goes on the
    /// wire in an ACK frame.
    pub fn encode_newest(&self) -> Vec<(u64, u64)> {
        let skip = self.ranges.len().saturating_sub(MAX_ACK_RANGES);
        self.ranges
            .iter()
            .skip(skip)
            .map(|(&s, &e)| (s, e))
            .collect()
    }

    /// Wire encoding that always reports the newest range and fills the
    /// remaining [`MAX_ACK_RANGES`] slots round-robin over the older
    /// ranges across successive calls, advancing `cursor` each time.
    ///
    /// A receiver that only ever reports its newest ranges silently
    /// un-acknowledges any packet that arrives after a long on-path
    /// delay: the late packet merges into an old range that has already
    /// scrolled out of the capped window, so the sender keeps declaring
    /// it lost and respawning it. Cycling the older ranges guarantees
    /// every range is reported within `range_count - 1` ACKs while the
    /// ACK datagram stays at its fixed two-range size.
    pub fn encode_rotating(&self, cursor: &mut usize) -> RangeVec {
        let n = self.ranges.len();
        if n <= MAX_ACK_RANGES {
            return self.iter().collect();
        }
        let older = n - 1;
        let mut out = RangeVec::new();
        let mut picks: SmallVec<usize, MAX_ACK_RANGES> = (0..MAX_ACK_RANGES - 1)
            .map(|k| (*cursor + k) % older)
            .collect();
        *cursor = (*cursor + MAX_ACK_RANGES - 1) % older;
        picks.sort_unstable();
        let mut it = self.ranges.iter();
        let mut at = 0usize;
        let mut last = None;
        for &idx in picks.iter() {
            if last == Some(idx) {
                continue; // duplicate pick (sorted, so dups are adjacent)
            }
            last = Some(idx);
            if let Some((&s, &e)) = it.nth(idx - at) {
                out.push((s, e));
            }
            at = idx + 1;
        }
        if let Some((&s, &e)) = self.ranges.iter().next_back() {
            out.push((s, e));
        }
        out
    }
}

/// What a sent packet carried, for retransmission on loss.
#[derive(Debug, Clone)]
pub enum SentFrame {
    /// Stream data `[offset, offset+len)` on stream `id`.
    Stream {
        /// Stream id.
        id: u32,
        /// Stream offset of the chunk.
        offset: u64,
        /// Chunk length.
        len: u32,
        /// FIN was set on the frame.
        fin: bool,
    },
    /// Crypto bytes `[offset, offset+len)`.
    Crypto {
        /// Crypto-stream offset.
        offset: u64,
        /// Chunk length.
        len: u32,
    },
    /// A control frame retransmitted verbatim.
    Control(QuicFrame),
    /// ACK-only packet: nothing to retransmit.
    AckOnly,
}

/// Book-keeping for one in-flight packet.
#[derive(Debug, Clone)]
pub struct SentPacket {
    /// When it was sent.
    pub sent_at: SimTime,
    /// Datagram payload size in bytes.
    pub size: u64,
    /// Whether it elicits an acknowledgement.
    pub ack_eliciting: bool,
    /// Retransmittable contents.
    pub frames: SentVec,
}

/// Outcome of processing one ACK frame.
#[derive(Debug, Default)]
pub struct AckOutcome {
    /// Frames from packets declared lost, to be requeued by the caller.
    pub lost: Vec<SentFrame>,
    /// Whether any new packet was acknowledged.
    pub newly_acked: bool,
}

/// Sender-side loss recovery and congestion state.
#[derive(Debug)]
pub struct Recovery {
    sent: BTreeMap<u64, SentPacket>,
    next_pn: u64,
    largest_acked: Option<u64>,
    bytes_in_flight: u64,
    cwnd: u64,
    ssthresh: u64,
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    initial_rtt: SimDuration,
    max_ack_delay: SimDuration,
    last_eliciting_sent: Option<SimTime>,
    recovery_start_pn: Option<u64>,
    pto_count: u32,
    packet_threshold: u64,
    declared_lost: std::collections::BTreeSet<u64>,
    /// Reusable packet-number buffer for `on_ack`'s collect-then-mutate
    /// passes, so steady-state ACK processing stays allocation-free.
    pn_scratch: Vec<u64>,
}

impl Recovery {
    /// New recovery state with the given RTT seed and peer ack delay.
    pub fn new(initial_rtt: SimDuration, max_ack_delay: SimDuration) -> Self {
        Self {
            sent: BTreeMap::new(),
            next_pn: 0,
            largest_acked: None,
            bytes_in_flight: 0,
            cwnd: INIT_CWND,
            ssthresh: u64::MAX,
            srtt: None,
            rttvar: SimDuration::ZERO,
            initial_rtt,
            max_ack_delay,
            last_eliciting_sent: None,
            recovery_start_pn: None,
            pto_count: 0,
            packet_threshold: PACKET_THRESHOLD,
            declared_lost: std::collections::BTreeSet::new(),
            pn_scratch: Vec::new(),
        }
    }

    /// Next packet number to send (without consuming it).
    pub fn peek_pn(&self) -> u64 {
        self.next_pn
    }

    /// Allocates the next packet number and records the packet.
    pub fn on_packet_sent(
        &mut self,
        now: SimTime,
        size: u64,
        ack_eliciting: bool,
        frames: SentVec,
    ) -> u64 {
        let pn = self.next_pn;
        self.next_pn += 1;
        if ack_eliciting {
            self.bytes_in_flight += size;
            self.last_eliciting_sent = Some(now);
            self.sent.insert(
                pn,
                SentPacket {
                    sent_at: now,
                    size,
                    ack_eliciting,
                    frames,
                },
            );
        }
        pn
    }

    /// Whether the congestion window admits another `size`-byte packet.
    pub fn can_send(&self, size: u64) -> bool {
        self.bytes_in_flight + size <= self.cwnd
    }

    /// Current congestion window (bytes).
    pub fn cwnd(&self) -> u64 {
        self.cwnd
    }

    /// Smoothed RTT, if a sample exists.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Bytes currently counted in flight.
    pub fn bytes_in_flight(&self) -> u64 {
        self.bytes_in_flight
    }

    /// Consecutive unanswered PTO count.
    pub fn pto_count(&self) -> u32 {
        self.pto_count
    }

    /// Current (adaptive) reordering threshold for loss detection.
    pub fn packet_threshold(&self) -> u64 {
        self.packet_threshold
    }

    /// Processes ACK ranges from the peer; returns lost frames to requeue.
    pub fn on_ack(&mut self, now: SimTime, ranges: &[(u64, u64)]) -> AckOutcome {
        let mut out = AckOutcome::default();
        let largest = match ranges.iter().map(|&(_, e)| e).max() {
            Some(l) => l,
            None => return out,
        };
        // RTT sample from the largest newly-acked ack-eliciting packet
        // (RFC 9002 §5.1: samples MUST come from ack-eliciting packets).
        // Only eliciting packets are tracked in `sent`, and acked entries
        // are removed below, so each packet is sampled at most once. An
        // on-path delay of eliciting traffic must surface in srtt even
        // while small ACK-only datagrams keep round-tripping promptly —
        // otherwise the PTO clock runs at the unpaced path's speed and
        // spuriously probes everything the pacer is still holding.
        let sample_pn = ranges
            .iter()
            .filter_map(|&(start, end)| self.sent.range(start..=end).next_back().map(|(&pn, _)| pn))
            .max();
        if let Some(pn) = sample_pn {
            let rtt = now.saturating_since(self.sent[&pn].sent_at);
            self.update_rtt(rtt);
        }
        if self.largest_acked.is_none_or(|la| largest > la) {
            self.largest_acked = Some(largest);
        }
        let largest_acked = self.largest_acked.unwrap_or(0);
        // Spurious-retransmission detection: an ack for a packet we already
        // declared lost proves the path reordered (not dropped) it, so the
        // reordering threshold was too tight. Raise it to the observed
        // reordering distance, bounded above.
        let mut observed = self.packet_threshold;
        for &(start, end) in ranges {
            self.pn_scratch.clear();
            self.pn_scratch
                .extend(self.declared_lost.range(start..=end).copied());
            for i in 0..self.pn_scratch.len() {
                let pn = self.pn_scratch[i];
                self.declared_lost.remove(&pn);
                observed = observed.max((largest_acked - pn) + 1);
            }
        }
        self.packet_threshold = observed.min(MAX_PACKET_THRESHOLD);
        // Remove acked packets and credit the congestion window.
        for &(start, end) in ranges {
            self.pn_scratch.clear();
            self.pn_scratch
                .extend(self.sent.range(start..=end).map(|(&pn, _)| pn));
            for i in 0..self.pn_scratch.len() {
                let pn = self.pn_scratch[i];
                if let Some(pkt) = self.sent.remove(&pn) {
                    out.newly_acked = true;
                    self.bytes_in_flight = self.bytes_in_flight.saturating_sub(pkt.size);
                    if self.cwnd < self.ssthresh {
                        self.cwnd += pkt.size; // slow start
                    } else {
                        self.cwnd += 1_200 * pkt.size / self.cwnd; // congestion avoidance
                    }
                }
            }
        }
        if out.newly_acked {
            self.pto_count = 0;
        }
        // Packet-threshold loss detection: anything more than the current
        // (adaptive) threshold below the largest acked packet is lost.
        if largest_acked >= self.packet_threshold {
            let lost_below = largest_acked - self.packet_threshold;
            self.pn_scratch.clear();
            self.pn_scratch
                .extend(self.sent.range(..=lost_below).map(|(&pn, _)| pn));
            let mut loss_event_pn = None;
            for i in 0..self.pn_scratch.len() {
                let pn = self.pn_scratch[i];
                if let Some(pkt) = self.sent.remove(&pn) {
                    self.bytes_in_flight = self.bytes_in_flight.saturating_sub(pkt.size);
                    out.lost.extend(pkt.frames);
                    self.declared_lost.insert(pn);
                    loss_event_pn = Some(pn);
                }
            }
            if let Some(pn) = loss_event_pn {
                self.on_loss_event(pn);
            }
        }
        // Bound the spurious-detection memory: packets this far below the
        // ack horizon will never be re-reported by the peer's capped
        // ACK-range encoding, so forgetting them is safe and keeps the set
        // from growing over a long connection.
        let floor = largest_acked.saturating_sub(4_096);
        if self
            .declared_lost
            .first()
            .is_some_and(|&oldest| oldest < floor)
        {
            self.declared_lost = self.declared_lost.split_off(&floor);
        }
        out
    }

    /// Registers a congestion event for a lost packet, deduplicating
    /// events within one recovery period.
    fn on_loss_event(&mut self, lost_pn: u64) {
        if self.recovery_start_pn.is_some_and(|r| lost_pn <= r) {
            return; // still in the same recovery period
        }
        self.recovery_start_pn = Some(self.next_pn.saturating_sub(1));
        self.ssthresh = (self.cwnd / 2).max(MIN_CWND);
        self.cwnd = self.ssthresh;
    }

    /// The PTO expiry deadline, if any ack-eliciting packet is in flight.
    pub fn pto_deadline(&self) -> Option<SimTime> {
        if self.sent.is_empty() {
            return None;
        }
        let base = self.last_eliciting_sent?;
        let srtt = self.srtt.unwrap_or(self.initial_rtt);
        let var = if self.srtt.is_some() {
            self.rttvar
        } else {
            self.initial_rtt / 2
        };
        let pto = srtt + (var * 4).max(SimDuration::from_millis(1)) + self.max_ack_delay;
        Some(base + pto * 2u64.saturating_pow(self.pto_count))
    }

    /// Fires a probe timeout: the oldest ack-eliciting packet is requeued
    /// and the window collapses to its floor (see module docs).
    /// Returns the frames to retransmit, or `None` if nothing is in flight.
    pub fn on_pto(&mut self) -> Option<SentVec> {
        let (&pn, _) = self.sent.first_key_value()?;
        let pkt = self.sent.remove(&pn)?;
        self.bytes_in_flight = self.bytes_in_flight.saturating_sub(pkt.size);
        self.declared_lost.insert(pn);
        self.pto_count += 1;
        self.ssthresh = (self.cwnd / 2).max(MIN_CWND);
        self.cwnd = MIN_CWND;
        self.recovery_start_pn = Some(self.next_pn.saturating_sub(1));
        Some(pkt.frames)
    }

    fn update_rtt(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let diff = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = (self.rttvar * 3 + diff) / 4;
                self.srtt = Some((srtt * 7 + rtt) / 8);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn ack_ranges_merge_and_query() {
        let mut r = AckRanges::new();
        assert!(r.insert(5));
        assert!(!r.insert(5));
        assert!(r.insert(7));
        assert_eq!(r.range_count(), 2);
        assert!(r.insert(6));
        assert_eq!(r.range_count(), 1);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![(5, 7)]);
        assert!(r.contains(6));
        assert!(!r.contains(8));
        assert_eq!(r.contiguous_from_zero(), 0);
        assert!(r.insert_range(0, 4));
        assert_eq!(r.contiguous_from_zero(), 8);
    }

    #[test]
    fn insert_range_detects_duplicates() {
        let mut r = AckRanges::new();
        assert!(r.insert_range(10, 20));
        assert!(!r.insert_range(12, 18));
        assert!(r.insert_range(15, 25));
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![(10, 25)]);
    }

    #[test]
    fn encode_newest_caps_ranges() {
        let mut r = AckRanges::new();
        for i in 0..20u64 {
            r.insert(i * 2); // 20 disjoint ranges
        }
        let enc = r.encode_newest();
        assert_eq!(enc.len(), MAX_ACK_RANGES);
        assert_eq!(enc.last(), Some(&(38, 38)));
        // The cap keeps ACK-only datagrams below the adversary's pacing
        // floor and small-datagram ceiling (43 or 59 bytes on the wire).
        const { assert!(MAX_ACK_RANGES <= 2) }
    }

    #[test]
    fn packet_threshold_declares_loss() {
        let mut rec = Recovery::new(SimDuration::from_millis(100), SimDuration::from_millis(25));
        for i in 0..5u64 {
            let pn = rec.on_packet_sent(
                t(i),
                1_200,
                true,
                vec![SentFrame::Stream {
                    id: 0,
                    offset: i * 1_158,
                    len: 1_158,
                    fin: false,
                }]
                .into(),
            );
            assert_eq!(pn, i);
        }
        // Ack 4 only: pn 0 and 1 are > PACKET_THRESHOLD below → lost.
        let out = rec.on_ack(t(100), &[(4, 4)]);
        assert!(out.newly_acked);
        assert_eq!(out.lost.len(), 2);
        assert!(rec.cwnd() >= MIN_CWND);
    }

    #[test]
    fn spurious_retransmit_raises_packet_threshold() {
        let mut rec = Recovery::new(SimDuration::from_millis(100), SimDuration::from_millis(25));
        for i in 0..5u64 {
            rec.on_packet_sent(t(i), 1_200, true, vec![SentFrame::AckOnly].into());
        }
        assert_eq!(rec.packet_threshold(), PACKET_THRESHOLD);
        // Ack 2..=4: pn 0 and 1 declared lost (reordering, not loss).
        let out = rec.on_ack(t(100), &[(2, 4)]);
        assert_eq!(out.lost.len(), 2);
        // The "lost" packets are later acked: spurious — the threshold
        // jumps to the observed reordering distance (pn 0 acked with
        // largest_acked 4 → distance 5).
        rec.on_ack(t(110), &[(0, 1), (4, 4)]);
        assert_eq!(rec.packet_threshold(), 5);
        // A repeat of the same reordering pattern no longer declares loss.
        for i in 5..10u64 {
            rec.on_packet_sent(t(i + 100), 1_200, true, vec![SentFrame::AckOnly].into());
        }
        let out = rec.on_ack(t(220), &[(9, 9)]);
        assert!(out.lost.is_empty());
        // Re-acking the same spurious pns must not raise the bar again.
        rec.on_ack(t(230), &[(0, 1)]);
        assert_eq!(rec.packet_threshold(), 5);
    }

    #[test]
    fn packet_threshold_is_capped() {
        let mut rec = Recovery::new(SimDuration::from_millis(100), SimDuration::from_millis(25));
        for i in 0..300u64 {
            rec.on_packet_sent(t(i), 100, true, vec![SentFrame::AckOnly].into());
        }
        // Ack only the newest packet, declaring the rest lost, then ack
        // the "lost" packets to prove the loss spurious.
        rec.on_ack(t(1_000), &[(299, 299)]);
        rec.on_ack(t(1_001), &[(0, 299)]);
        assert_eq!(rec.packet_threshold(), MAX_PACKET_THRESHOLD);
    }

    #[test]
    fn rotating_encoding_eventually_reports_every_range() {
        let mut acks = AckRanges::new();
        // Five disjoint ranges: 0, 10, 20, 30, 40.
        for pn in [0u64, 10, 20, 30, 40] {
            acks.insert(pn);
        }
        let mut cursor = 0usize;
        let mut reported = std::collections::BTreeSet::new();
        for _ in 0..4 {
            let wire = acks.encode_rotating(&mut cursor);
            assert!(wire.len() <= MAX_ACK_RANGES);
            // The newest range is always present.
            assert_eq!(*wire.last().unwrap(), (40, 40));
            for (s, _) in wire {
                reported.insert(s);
            }
        }
        // After range_count - 1 ACKs every older range has been reported.
        assert_eq!(reported, [0u64, 10, 20, 30, 40].into_iter().collect());
        // With few enough ranges the full set goes on the wire.
        let mut small = AckRanges::new();
        small.insert(5);
        small.insert_range(9, 12);
        assert_eq!(small.encode_rotating(&mut cursor), vec![(5, 5), (9, 12)]);
    }

    #[test]
    fn loss_events_dedupe_within_recovery_period() {
        let mut rec = Recovery::new(SimDuration::from_millis(100), SimDuration::from_millis(25));
        for i in 0..10u64 {
            rec.on_packet_sent(t(i), 1_200, true, vec![SentFrame::AckOnly].into());
        }
        let cwnd0 = rec.cwnd();
        rec.on_ack(t(50), &[(8, 8)]);
        let after_first = rec.cwnd();
        assert!(after_first < cwnd0);
        // A second loss from the same flight must not halve again (the
        // newly-acked packet may still grow the window slightly).
        rec.on_ack(t(51), &[(9, 9)]);
        assert!(rec.cwnd() >= after_first);
        assert!(rec.cwnd() < after_first + 1_200);
    }

    #[test]
    fn pto_requeues_oldest_and_collapses_window() {
        let mut rec = Recovery::new(SimDuration::from_millis(100), SimDuration::from_millis(25));
        rec.on_packet_sent(
            t(0),
            500,
            true,
            vec![SentFrame::Crypto {
                offset: 0,
                len: 475,
            }]
            .into(),
        );
        let dl = rec.pto_deadline().expect("deadline");
        // initial srtt 100ms + max(4*50ms,1ms) + 25ms = 325ms
        assert_eq!(dl, t(325));
        let frames = rec.on_pto().expect("frames");
        assert_eq!(frames.len(), 1);
        assert_eq!(rec.cwnd(), MIN_CWND);
        assert_eq!(rec.pto_count(), 1);
        assert_eq!(rec.bytes_in_flight(), 0);
    }

    #[test]
    fn rtt_smoothing_follows_rfc_formula() {
        let mut rec = Recovery::new(SimDuration::from_millis(100), SimDuration::from_millis(25));
        rec.on_packet_sent(t(0), 100, true, vec![SentFrame::AckOnly].into());
        rec.on_ack(t(80), &[(0, 0)]);
        assert_eq!(rec.srtt(), Some(SimDuration::from_millis(80)));
        rec.on_packet_sent(t(100), 100, true, vec![SentFrame::AckOnly].into());
        rec.on_ack(t(260), &[(1, 1)]);
        // srtt = 7/8*80 + 1/8*160 = 90ms
        assert_eq!(rec.srtt(), Some(SimDuration::from_millis(90)));
    }
}
