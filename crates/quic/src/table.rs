//! A deterministic stream table: a sorted vector keyed by stream id.
//!
//! Replaces the `BTreeMap<u32, …>` stream tables on the connection hot
//! path. Lookups are a binary search over one contiguous allocation
//! (instead of chasing tree nodes), inserts touch the heap only when the
//! vector grows, and iteration order is ascending stream id — exactly
//! the order `BTreeMap` iterated in, which the documented round-robin
//! send scheduling depends on. A differential test
//! (`tests/stream_table_order.rs`) pins that equivalence under seeded
//! random open/close/send schedules.
//!
//! Connections hold a handful of streams with mostly-ascending ids, so
//! the `O(n)` insert shift is cheaper in practice than a tree
//! rebalance; ids are never removed (matching the old tables, which
//! kept finished streams until the connection dropped).

/// A map from stream id to `T`, ordered by id.
#[derive(Debug, Default)]
pub struct StreamTable<T> {
    entries: Vec<(u32, T)>,
}

impl<T> StreamTable<T> {
    /// An empty table.
    pub fn new() -> Self {
        StreamTable {
            entries: Vec::new(),
        }
    }

    /// Number of streams.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn idx(&self, id: u32) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&id, |&(k, _)| k)
    }

    /// The stream with the given id, if present.
    pub fn get(&self, id: u32) -> Option<&T> {
        self.idx(id).ok().map(|i| &self.entries[i].1)
    }

    /// Mutable access to the stream with the given id, if present.
    pub fn get_mut(&mut self, id: u32) -> Option<&mut T> {
        match self.idx(id) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// The stream with the given id, inserted via `make` if absent.
    pub fn get_or_insert_with(&mut self, id: u32, make: impl FnOnce() -> T) -> &mut T {
        let i = match self.idx(id) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (id, make()));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// All streams, ascending by id.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.entries.iter().map(|(id, s)| (*id, s))
    }

    /// First stream id matching `pred`, searching ids `>= from` first and
    /// wrapping to ids `< from` — the round-robin probe, replicating
    /// `BTreeMap::range(from..).chain(range(..from)).find(pred)` exactly.
    pub fn next_matching(&self, from: u32, pred: impl Fn(&T) -> bool) -> Option<u32> {
        let split = match self.idx(from) {
            Ok(i) | Err(i) => i,
        };
        self.entries[split..]
            .iter()
            .chain(&self.entries[..split])
            .find(|(_, s)| pred(s))
            .map(|&(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_and_order() {
        let mut t: StreamTable<&str> = StreamTable::new();
        assert!(t.is_empty());
        t.get_or_insert_with(8, || "c");
        t.get_or_insert_with(0, || "a");
        t.get_or_insert_with(4, || "b");
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(4), Some(&"b"));
        assert_eq!(t.get(2), None);
        *t.get_mut(0).unwrap() = "a2";
        // Re-inserting an existing id keeps the old value.
        assert_eq!(*t.get_or_insert_with(0, || "zz"), "a2");
        let ids: Vec<u32> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 4, 8]);
    }

    #[test]
    fn next_matching_wraps_like_btreemap_ranges() {
        let mut t: StreamTable<bool> = StreamTable::new();
        for id in [0u32, 4, 8, 12] {
            t.get_or_insert_with(id, || true);
        }
        // From 5: first id >= 5 is 8.
        assert_eq!(t.next_matching(5, |&v| v), Some(8));
        // From 13: wraps to 0.
        assert_eq!(t.next_matching(13, |&v| v), Some(0));
        // From an existing id, that id itself is eligible.
        assert_eq!(t.next_matching(8, |&v| v), Some(8));
        // Predicate filters.
        *t.get_mut(8).unwrap() = false;
        assert_eq!(t.next_matching(5, |&v| v), Some(12));
        assert_eq!(t.next_matching(13, |&v| !v), Some(8));
        assert_eq!(t.next_matching(0, |_| false), None);
    }
}
