//! The browser-like HTTP/3 client model.
//!
//! Behaviourally a mirror of `h2priv_h2::client::ClientNode` — same
//! request plan walking, dependency triggers, re-request watchdog and
//! stall/reset recovery — but running over the QUIC-lite transport:
//! requests ride independent QUIC streams (no cross-stream head-of-line
//! blocking) and the reset volley becomes RESET_STREAM + STOP_SENDING
//! control datagrams instead of RST_STREAM frames inside the shared TLS
//! stream. Reports reuse the H2 report types so the experiment harness
//! is transport-agnostic.

use h2priv_h2::hpack;
use h2priv_h2::server::{CLIENT_PORT, SERVER_PORT};
use h2priv_h2::{ClientConfig, ClientReport, ObjectOutcome, RequestRecord, StreamId};
use h2priv_netsim::link::LinkId;
use h2priv_netsim::node::{Ctx, Node, TimerId};
use h2priv_netsim::packet::{FlowId, Packet};
use h2priv_netsim::time::{SimDuration, SimTime};
use h2priv_tcp::TcpStats;
use h2priv_tls::{RecordTag, TrafficClass, WireMap};
use h2priv_util::fxhash::FxHashMap;
use h2priv_web::{ObjectId, Site, Trigger};

use crate::conn::{QuicConfig, QuicConnection, QuicEvent, QuicStats};
use crate::h3::{headers_frame_with, H3Event, H3FrameReader};
use crate::stack::QuicStack;

/// Derives transport tunables from the (transport-agnostic parts of the)
/// H2 client config so `TrialOptions` drives either stack unchanged. The
/// TCP section of the config is ignored — QUIC has its own recovery.
pub(crate) fn quic_config_from(conn_window: u64, window_update_threshold: u64) -> QuicConfig {
    QuicConfig {
        initial_max_data: conn_window,
        window_update_threshold,
        ..QuicConfig::default()
    }
}

#[derive(Debug)]
enum TimerPurpose {
    TransportTick,
    IssueStep(usize),
    Rerequest(usize),
    StallCheck(ObjectId),
    ReissueAfterReset(ObjectId),
}

#[derive(Debug, Default, Clone, Copy)]
struct ObjState {
    requested_at: Option<SimTime>,
    first_byte_at: Option<SimTime>,
    completed_at: Option<SimTime>,
    last_progress: Option<SimTime>,
    attempts: u32,
    resets: u32,
    stall_armed: bool,
    gave_up: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Milestone {
    Requested,
    FirstByte,
    Completed,
}

/// The browser client as a netsim node, HTTP/3 edition.
#[derive(Debug)]
pub struct H3ClientNode {
    cfg: ClientConfig,
    site: Site,
    stack: QuicStack,
    next_stream: u32,
    step_scheduled: Vec<bool>,
    objects: Vec<ObjState>,
    requests: Vec<RequestRecord>,
    stream_map: FxHashMap<u32, usize>,
    readers: FxHashMap<u32, H3FrameReader>,
    timers: FxHashMap<TimerId, TimerPurpose>,
    /// Reusable transport-event buffer (cleared before each use).
    event_scratch: Vec<QuicEvent>,
    /// Reusable H3-event buffer (cleared before each use).
    h3_scratch: Vec<H3Event>,
    h2_rerequests: u64,
    resets_sent: u64,
    broken: bool,
    timeout_scale: f64,
    page_started_at: Option<SimTime>,
    page_completed_at: Option<SimTime>,
}

impl H3ClientNode {
    /// Creates a client that will load `site` once the simulation starts.
    pub fn new(site: Site, cfg: ClientConfig) -> H3ClientNode {
        let flow = FlowId {
            src: cfg.addr,
            dst: cfg.server_addr,
            sport: CLIENT_PORT,
            dport: SERVER_PORT,
        };
        let qcfg = quic_config_from(cfg.conn_window, cfg.window_update_threshold);
        let stack = QuicStack::new(QuicConnection::client(flow, qcfg));
        let n_objects = site.len();
        let n_steps = site.plan.len();
        H3ClientNode {
            cfg,
            site,
            stack,
            next_stream: 0,
            step_scheduled: vec![false; n_steps],
            objects: vec![ObjState::default(); n_objects],
            requests: Vec::new(),
            stream_map: FxHashMap::default(),
            readers: FxHashMap::default(),
            timers: FxHashMap::default(),
            event_scratch: Vec::new(),
            h3_scratch: Vec::new(),
            h2_rerequests: 0,
            resets_sent: 0,
            broken: false,
            timeout_scale: 1.0,
            page_started_at: None,
            page_completed_at: None,
        }
    }

    /// Builds the post-run report (same shape as the H2 client's),
    /// taking ownership of the accumulated request records — callers
    /// read the report once, at end of trial, so there is no reason to
    /// clone the records.
    pub fn take_report(&mut self) -> ClientReport {
        ClientReport {
            page_started_at: self.page_started_at,
            page_completed_at: self.page_completed_at,
            requests: std::mem::take(&mut self.requests),
            objects: self
                .objects
                .iter()
                .enumerate()
                .map(|(i, o)| ObjectOutcome {
                    object: ObjectId(i as u32),
                    requested_at: o.requested_at,
                    first_byte_at: o.first_byte_at,
                    completed_at: o.completed_at,
                    attempts: o.attempts,
                    resets: o.resets,
                })
                .collect(),
            h2_rerequests: self.h2_rerequests,
            resets_sent: self.resets_sent,
            connection_broken: self.broken,
            tcp_retransmits: {
                let s = self.stack.quic.stats();
                s.loss_retransmits + s.pto_retransmits
            },
        }
    }

    /// Final transport statistics.
    pub fn quic_stats(&self) -> &QuicStats {
        self.stack.quic.stats()
    }

    /// Transport statistics mapped onto the TCP counter struct.
    pub fn tcp_stats(&self) -> TcpStats {
        self.stack.quic.stats().as_tcp_stats()
    }

    /// A cheap forward-progress fingerprint for stall watchdogs, with the
    /// same shape as the H2 client's probe.
    pub fn progress_probe(&self) -> (u64, u64, bool, bool) {
        let objects_done = self
            .objects
            .iter()
            .filter(|o| o.completed_at.is_some())
            .count() as u64;
        let data_bytes: u64 = self.requests.iter().map(|r| r.bytes).sum();
        (
            data_bytes,
            objects_done,
            self.page_completed_at.is_some(),
            self.broken,
        )
    }

    /// Ground-truth wire map of everything this client sent.
    pub fn wire_map(&self) -> &WireMap {
        self.stack.wire_map()
    }

    // ------------------------------------------------------------------

    fn obj(&mut self, id: ObjectId) -> &mut ObjState {
        &mut self.objects[id.0 as usize]
    }

    fn is_document(&self, id: ObjectId) -> bool {
        self.cfg.document_priority && self.site.object(id).media == h2priv_web::MediaType::Html
    }

    fn alloc_stream(&mut self) -> StreamId {
        let id = self.next_stream;
        self.next_stream += 4; // client-initiated bidirectional: 0, 4, 8, …
        StreamId(id)
    }

    fn start_plan(&mut self, ctx: &mut Ctx<'_>) {
        self.page_started_at = Some(ctx.now());
        for i in 0..self.site.plan.len() {
            if let Trigger::AtStart { gap } = self.site.plan[i].trigger {
                self.schedule_step(ctx, i, gap);
            }
        }
    }

    fn schedule_step(&mut self, ctx: &mut Ctx<'_>, step: usize, gap: SimDuration) {
        if self.step_scheduled[step] {
            return;
        }
        self.step_scheduled[step] = true;
        let spread = match self.site.plan[step].trigger {
            Trigger::AfterFirstByte { .. } | Trigger::AfterComplete { .. } => {
                self.cfg.discovery_jitter
            }
            _ => self.cfg.gap_jitter,
        };
        let jf = ctx.rng().jitter_factor(spread);
        let t = ctx.schedule(gap.mul_f64(jf));
        self.timers.insert(t, TimerPurpose::IssueStep(step));
    }

    /// Fires dependency triggers after `object` reached `milestone`.
    fn trigger_deps(&mut self, ctx: &mut Ctx<'_>, object: ObjectId, milestone: Milestone) {
        for i in 0..self.site.plan.len() {
            if self.step_scheduled[i] {
                continue;
            }
            let gap = match (self.site.plan[i].trigger, milestone) {
                (Trigger::AfterRequest { prev, gap }, Milestone::Requested) if prev == object => {
                    Some(gap)
                }
                (Trigger::AfterFirstByte { parent, gap }, Milestone::FirstByte)
                    if parent == object =>
                {
                    Some(gap)
                }
                (Trigger::AfterComplete { parent, gap }, Milestone::Completed)
                    if parent == object =>
                {
                    Some(gap)
                }
                _ => None,
            };
            if let Some(gap) = gap {
                self.schedule_step(ctx, i, gap);
            }
        }
    }

    fn issue_get(&mut self, ctx: &mut Ctx<'_>, object: ObjectId) {
        if self.broken || self.obj(object).gave_up {
            return;
        }
        let attempt = self.obj(object).attempts;
        self.obj(object).attempts += 1;
        let stream = self.alloc_stream();
        let frame = {
            let authority = &self.cfg.authority;
            let path = &self.site.object(object).path;
            headers_frame_with(96 + authority.len() + path.len(), |out| {
                hpack::encode_request_into(out, authority, path)
            })
        };
        let req_idx = self.requests.len();
        self.requests.push(RequestRecord {
            object,
            stream,
            attempt,
            issued_at: ctx.now(),
            headers_at: None,
            first_data_at: None,
            completed_at: None,
            bytes: 0,
            reset: false,
        });
        self.stream_map.insert(stream.0, req_idx);
        self.readers.insert(stream.0, H3FrameReader::new());
        // One HEADERS frame, FIN'd: the whole GET is a single sub-MTU
        // datagram (this is what the adversary's pacer keys on).
        self.stack.quic.stream_send(
            stream.0,
            frame,
            true,
            RecordTag {
                stream_id: stream.0,
                object_id: object.0,
                copy: attempt as u16,
                class: TrafficClass::Request,
            },
        );
        let first = self.obj(object).requested_at.is_none();
        if first {
            self.obj(object).requested_at = Some(ctx.now());
        }
        if self.cfg.rerequest.enabled {
            let mut factor = self.cfg.rerequest.backoff.powi(attempt as i32) * self.timeout_scale;
            if self.is_document(object) {
                factor *= 0.5;
            }
            let t = ctx.schedule(self.cfg.rerequest.timeout.mul_f64(factor));
            self.timers.insert(t, TimerPurpose::Rerequest(req_idx));
        }
        if !self.obj(object).stall_armed {
            self.obj(object).stall_armed = true;
            let t = ctx.schedule(self.cfg.reset.stall_timeout);
            self.timers.insert(t, TimerPurpose::StallCheck(object));
        }
        if first {
            self.trigger_deps(ctx, object, Milestone::Requested);
        }
    }

    fn handle_quic_events(&mut self, ctx: &mut Ctx<'_>, events: &mut Vec<QuicEvent>) {
        for ev in events.drain(..) {
            match ev {
                QuicEvent::Connected => {
                    if self.page_started_at.is_none() {
                        self.start_plan(ctx);
                    }
                }
                QuicEvent::Stream { id, data, fin } => {
                    self.on_stream_data(ctx, id, &data, fin);
                }
                QuicEvent::StreamReset { id } => {
                    if let Some(&idx) = self.stream_map.get(&id) {
                        self.requests[idx].reset = true;
                    }
                }
                QuicEvent::Aborted => {
                    self.broken = true;
                }
                QuicEvent::StreamStopped { .. } | QuicEvent::Closed => {}
            }
        }
    }

    fn on_stream_data(&mut self, ctx: &mut Ctx<'_>, id: u32, data: &[u8], fin: bool) {
        let Some(&idx) = self.stream_map.get(&id) else {
            return;
        };
        if self.requests[idx].reset {
            return; // bytes of a cancelled copy still in flight
        }
        let mut events = std::mem::take(&mut self.h3_scratch);
        events.clear();
        if let Some(reader) = self.readers.get_mut(&id) {
            reader.push(data, &mut events);
        }
        let now = ctx.now();
        let object = self.requests[idx].object;
        for ev in events.drain(..) {
            match ev {
                H3Event::Headers(block) => {
                    self.requests[idx].headers_at = Some(now);
                    self.obj(object).last_progress = Some(now);
                    // Decoding the response is a sanity check only; skip the
                    // String allocations in release builds.
                    #[cfg(debug_assertions)]
                    {
                        let resp = hpack::decode_response(&block);
                        debug_assert_eq!(resp.map(|r| r.status), Some(200));
                    }
                    if let Some(reader) = self.readers.get_mut(&id) {
                        reader.recycle(block);
                    }
                }
                H3Event::Data { len } => {
                    self.requests[idx].bytes += len as u64;
                    if self.requests[idx].first_data_at.is_none() {
                        self.requests[idx].first_data_at = Some(now);
                    }
                    self.obj(object).last_progress = Some(now);
                    if self.obj(object).first_byte_at.is_none() {
                        self.obj(object).first_byte_at = Some(now);
                        self.trigger_deps(ctx, object, Milestone::FirstByte);
                    }
                }
            }
        }
        self.h3_scratch = events;
        if fin {
            self.complete_request(ctx, idx);
        }
    }

    fn complete_request(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let now = ctx.now();
        self.requests[idx].completed_at = Some(now);
        let object = self.requests[idx].object;
        if self.obj(object).completed_at.is_none() {
            self.obj(object).completed_at = Some(now);
            self.trigger_deps(ctx, object, Milestone::Completed);
            self.check_page_complete(now);
        }
    }

    fn check_page_complete(&mut self, now: SimTime) {
        if self.page_completed_at.is_some() {
            return;
        }
        let all = self
            .site
            .plan
            .iter()
            .all(|s| self.objects[s.object.0 as usize].completed_at.is_some());
        if all {
            self.page_completed_at = Some(now);
        }
    }

    fn rerequest_check(&mut self, ctx: &mut Ctx<'_>, req_idx: usize) {
        let (object, stale) = {
            let r = &self.requests[req_idx];
            (
                r.object,
                r.headers_at.is_none() && r.first_data_at.is_none() && !r.reset,
            )
        };
        if !stale || self.obj(object).completed_at.is_some() || self.broken {
            return;
        }
        if self.obj(object).attempts < self.cfg.rerequest.max_attempts {
            self.h2_rerequests += 1;
            self.issue_get(ctx, object);
        }
    }

    fn stall_check(&mut self, ctx: &mut Ctx<'_>, object: ObjectId) {
        let now = ctx.now();
        let state = *self.obj(object);
        if state.completed_at.is_some() || state.gave_up || self.broken {
            self.obj(object).stall_armed = false;
            return;
        }
        let last = state.last_progress.or(state.requested_at).unwrap_or(now);
        let idle = now.saturating_since(last);
        if idle >= self.cfg.reset.stall_timeout {
            if state.resets >= self.cfg.reset.max_resets_per_object {
                self.obj(object).gave_up = true;
                self.obj(object).stall_armed = false;
                return;
            }
            // Reset *all* ongoing streams (paper Fig. 6) — over QUIC each
            // becomes a small RESET_STREAM + STOP_SENDING datagram, the
            // burst the adversary's reset-signature detector watches for.
            for i in 0..self.requests.len() {
                let r = &self.requests[i];
                if r.completed_at.is_none() && !r.reset {
                    let stream: StreamId = r.stream;
                    self.stack.quic.reset_stream(stream.0);
                }
            }
            for r in self.requests.iter_mut() {
                if r.completed_at.is_none() {
                    r.reset = true;
                }
            }
            self.resets_sent += 1;
            self.timeout_scale = self.cfg.reset.post_reset_timeout_scale;
            for idx in 0..self.objects.len() {
                let o = ObjectId(idx as u32);
                let st = self.objects[idx];
                if st.requested_at.is_none() || st.completed_at.is_some() || st.gave_up {
                    continue;
                }
                self.obj(o).resets += 1;
                self.obj(o).last_progress = Some(now);
                let backoff = if self.is_document(o) {
                    self.cfg.reset.backoff.mul_f64(0.3)
                } else {
                    self.cfg.reset.backoff
                };
                let t = ctx.schedule(backoff);
                self.timers.insert(t, TimerPurpose::ReissueAfterReset(o));
                let t = ctx.schedule(self.cfg.reset.stall_timeout + backoff);
                self.timers.insert(t, TimerPurpose::StallCheck(o));
            }
        } else {
            let t = ctx.schedule_at(last + self.cfg.reset.stall_timeout);
            self.timers.insert(t, TimerPurpose::StallCheck(object));
        }
    }

    fn after_activity(&mut self, ctx: &mut Ctx<'_>) {
        self.stack.pump(ctx);
        if let Some(t) = self.stack.timer_needs_rescheduling() {
            let timer = ctx.schedule_at(t);
            self.timers.insert(timer, TimerPurpose::TransportTick);
            self.stack.tick_at = Some(t);
        }
    }
}

impl Node for H3ClientNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let egress = ctx.egress_links();
        // On a split topology (traffic-splitting countermeasure) the
        // client has a second link to the untapped gateway; requests
        // always take the primary path so GET pacing still works.
        assert!(!egress.is_empty(), "client needs an egress link");
        self.stack.set_egress(egress[0]);
        self.stack.quic.open();
        self.after_activity(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _from: LinkId, pkt: Packet) {
        let mut events = std::mem::take(&mut self.event_scratch);
        events.clear();
        self.stack.on_packet_into(ctx.now(), &pkt, &mut events);
        self.handle_quic_events(ctx, &mut events);
        self.event_scratch = events;
        // Every slice of this datagram has been consumed (or parked in a
        // reassembly buffer, in which case reclaim is a no-op): offer the
        // buffer to the send path before pumping responses out.
        self.stack.quic.reclaim_payload(pkt.payload);
        self.after_activity(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerId) {
        match self.timers.remove(&timer) {
            Some(TimerPurpose::TransportTick) => {
                self.stack.tick_at = None;
                let mut events = std::mem::take(&mut self.event_scratch);
                events.clear();
                self.stack.on_transport_timer_into(ctx.now(), &mut events);
                self.handle_quic_events(ctx, &mut events);
                self.event_scratch = events;
            }
            Some(TimerPurpose::IssueStep(step)) => {
                let object = self.site.plan[step].object;
                if self.obj(object).attempts == 0 {
                    self.issue_get(ctx, object);
                }
            }
            Some(TimerPurpose::Rerequest(req_idx)) => {
                self.rerequest_check(ctx, req_idx);
            }
            Some(TimerPurpose::StallCheck(object)) => {
                self.stall_check(ctx, object);
            }
            Some(TimerPurpose::ReissueAfterReset(object))
                if self.obj(object).completed_at.is_none() && !self.obj(object).gave_up =>
            {
                self.issue_get(ctx, object);
            }
            Some(TimerPurpose::ReissueAfterReset(_)) | None => {}
        }
        self.after_activity(ctx);
    }
}
