//! Differential test: `StreamTable`'s round-robin probe must replicate
//! the `BTreeMap` scheduling it replaced, exactly.
//!
//! The connection's send scheduler picks the first sendable stream with
//! id `>= cursor`, wrapping to ids `< cursor` — formerly
//! `BTreeMap::range(from..).chain(range(..from)).find(..)`, now
//! `StreamTable::next_matching`. The pick order is an observable of the
//! simulation (it decides datagram contents and therefore every golden
//! fixture), so the two structures are driven side by side through
//! seeded random open/close/send schedules and must agree on every
//! probe and on iteration order throughout.

use std::collections::BTreeMap;

use h2priv_quic::table::StreamTable;

/// Minimal stand-in for a send stream: the scheduler only ever asks "is
/// this stream sendable?", which flips as data is queued, flushed, and
/// as streams are reset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    sendable: bool,
    reset: bool,
}

/// Deterministic xorshift64* generator — no external RNG dependency, so
/// the schedules are reproducible from the seed alone.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The exact probe the old code ran on a `BTreeMap`.
fn btree_next_matching(
    map: &BTreeMap<u32, Slot>,
    from: u32,
    pred: impl Fn(&Slot) -> bool,
) -> Option<u32> {
    map.range(from..)
        .chain(map.range(..from))
        .find(|(_, s)| pred(s))
        .map(|(&id, _)| id)
}

#[test]
fn round_robin_matches_btreemap_across_256_seeded_schedules() {
    for seed in 0..256u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
        let mut table: StreamTable<Slot> = StreamTable::new();
        let mut map: BTreeMap<u32, Slot> = BTreeMap::new();
        let mut ids: Vec<u32> = Vec::new();
        let mut cursor: Option<u32> = None;
        let mut next_id = 0u32;
        let mut picks = 0u32;

        for _step in 0..400 {
            match rng.below(10) {
                // Open a stream. Mostly ascending ids (client streams are
                // 0, 4, 8, …) with occasional out-of-order ids, which the
                // sorted-vector insert must slot into place.
                0..=2 => {
                    let id = if rng.below(8) == 0 {
                        (rng.below(1 << 16) as u32) * 4
                    } else {
                        let id = next_id;
                        next_id += 4;
                        id
                    };
                    let fresh = Slot {
                        sendable: false,
                        reset: false,
                    };
                    table.get_or_insert_with(id, || fresh);
                    map.entry(id).or_insert(fresh);
                    if !ids.contains(&id) {
                        ids.push(id);
                    }
                }
                // Queue data: a stream becomes sendable.
                3..=5 if !ids.is_empty() => {
                    let id = ids[rng.below(ids.len() as u64) as usize];
                    for s in [table.get_mut(id).unwrap(), map.get_mut(&id).unwrap()] {
                        s.sendable = !s.reset;
                    }
                }
                // Close (reset) a stream: stays in both structures —
                // entries were never removed from the old maps either —
                // but is no longer sendable.
                6 if !ids.is_empty() => {
                    let id = ids[rng.below(ids.len() as u64) as usize];
                    for s in [table.get_mut(id).unwrap(), map.get_mut(&id).unwrap()] {
                        s.reset = true;
                        s.sendable = false;
                    }
                }
                // Send: probe for the next sendable stream from the
                // cursor, exactly as `poll_stream_datagram` does, and
                // advance the cursor past the pick.
                _ => {
                    let from = cursor.map_or(0, |id| id + 1);
                    let got = table.next_matching(from, |s| s.sendable);
                    let want = btree_next_matching(&map, from, |s| s.sendable);
                    assert_eq!(
                        got, want,
                        "seed {seed}: probe from {from} diverged (table {got:?}, btree {want:?})"
                    );
                    if let Some(id) = got {
                        picks += 1;
                        cursor = Some(id);
                        // Flushing one chunk empties the stream half the
                        // time (the other half it stays sendable).
                        if rng.below(2) == 0 {
                            table.get_mut(id).unwrap().sendable = false;
                            map.get_mut(&id).unwrap().sendable = false;
                        }
                    }
                }
            }
        }

        // Iteration order (used by stats collection and FIN sweeps) must
        // match ascending BTreeMap order too.
        let table_order: Vec<(u32, Slot)> = table.iter().map(|(id, s)| (id, *s)).collect();
        let map_order: Vec<(u32, Slot)> = map.iter().map(|(&id, s)| (id, *s)).collect();
        assert_eq!(table_order, map_order, "seed {seed}: iteration diverged");
        assert!(picks > 0, "seed {seed}: schedule exercised no sends");
    }
}
