//! RFC 9002 §6.2 regression: the probe timeout doubles with each
//! consecutive expiry, and a newly-acked ack-eliciting packet rearms it
//! — resetting the backoff multiplier — instead of leaving the inflated
//! deadline armed. This is the QUIC half of the cancel-and-rearm pattern
//! the timer wheel's O(1) cancel serves (see `h2priv-netsim`'s
//! `cancel_rearm` suite for the event-storage side of the contract).

use h2priv_netsim::time::{SimDuration, SimTime};
use h2priv_quic::recovery::{Recovery, SentVec};

const INITIAL_RTT: SimDuration = SimDuration::from_millis(100);
const MAX_ACK_DELAY: SimDuration = SimDuration::from_millis(25);

fn recovery_with_three_in_flight() -> Recovery {
    let mut rec = Recovery::new(INITIAL_RTT, MAX_ACK_DELAY);
    for ms in [0u64, 10, 20] {
        rec.on_packet_sent(SimTime::from_millis(ms), 1_200, true, SentVec::new());
    }
    rec
}

/// Before any RTT sample: pto = initial_rtt + 4 * (initial_rtt / 2)
/// + max_ack_delay, anchored at the last ack-eliciting send.
fn initial_pto() -> SimDuration {
    INITIAL_RTT + (INITIAL_RTT / 2) * 4 + MAX_ACK_DELAY
}

#[test]
fn pto_deadline_doubles_per_expiry_and_anchors_at_last_eliciting_send() {
    let mut rec = recovery_with_three_in_flight();
    let base = SimTime::from_millis(20);

    let d0 = rec.pto_deadline().expect("in-flight data arms the PTO");
    assert_eq!(d0, base + initial_pto());

    // First expiry: the oldest packet is probed and the deadline doubles.
    assert!(rec.on_pto().is_some());
    assert_eq!(rec.pto_count(), 1);
    let d1 = rec.pto_deadline().expect("still in flight");
    assert_eq!(d1, base + initial_pto() * 2, "first expiry doubles the PTO");

    // Second expiry: doubles again (2^pto_count).
    assert!(rec.on_pto().is_some());
    assert_eq!(rec.pto_count(), 2);
    let d2 = rec.pto_deadline().expect("still in flight");
    assert_eq!(d2, base + initial_pto() * 4, "second expiry doubles again");
}

#[test]
fn newly_acked_packet_rearms_the_pto_and_resets_the_backoff() {
    let mut rec = recovery_with_three_in_flight();
    let base = SimTime::from_millis(20);

    // Two consecutive probe timeouts inflate the deadline 4x.
    assert!(rec.on_pto().is_some()); // probes pn 0
    assert!(rec.on_pto().is_some()); // probes pn 1
    assert_eq!(rec.pto_count(), 2);
    let inflated = rec.pto_deadline().expect("pn 2 still in flight");
    assert_eq!(inflated, base + initial_pto() * 4);

    // An ACK for pn 2 (sent at t=20ms, acked at t=50ms: a 30ms sample)
    // is newly-acked ack-eliciting data: the backoff must reset...
    let out = rec.on_ack(SimTime::from_millis(50), &[(2, 2)]);
    assert!(out.newly_acked);
    assert_eq!(rec.pto_count(), 0, "newly-acked data resets the backoff");
    // ...and with nothing left in flight the timer is disarmed outright.
    assert_eq!(rec.pto_deadline(), None, "no eliciting data, no PTO");

    // Fresh data re-arms from the *new* send at the un-backed-off PTO,
    // now computed from the measured 30ms sample (srtt = 30ms,
    // rttvar = 15ms) instead of the initial estimate.
    let t_send = SimTime::from_millis(60);
    rec.on_packet_sent(t_send, 1_200, true, SentVec::new());
    let srtt = SimDuration::from_millis(30);
    let expected = srtt + (srtt / 2) * 4 + MAX_ACK_DELAY;
    assert_eq!(
        rec.pto_deadline(),
        Some(t_send + expected),
        "rearm uses 2^0 backoff and the sampled RTT"
    );
}
