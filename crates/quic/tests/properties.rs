//! Property tests for the QUIC-lite transport.
//!
//! Three families, per the subsystem's acceptance bar:
//!
//! 1. **Stream-data conservation under loss** — both a sans-I/O
//!    two-endpoint shuttle with seeded bursty drops and a full `netsim`
//!    page load with Gilbert–Elliott faults on the WAN link must deliver
//!    every stream byte exactly once, in order, despite retransmission.
//! 2. **ACK-range correctness** — [`AckRanges`] must agree with a naive
//!    sorted-set model under arbitrary insert sequences.
//! 3. **Deterministic replay** — identical seeds must reproduce identical
//!    transfers, byte for byte and counter for counter.

use h2priv_h2::{ClientConfig, ServerConfig};
use h2priv_netsim::faults::{FaultConfig, GilbertElliott};
use h2priv_netsim::middlebox::Passthrough;
use h2priv_netsim::packet::{FlowId, HostAddr};
use h2priv_netsim::rng::SimRng;
use h2priv_netsim::sim::Simulator;
use h2priv_netsim::time::{SimDuration, SimTime};
use h2priv_netsim::topology::{PathConfig, PathTopology};
use h2priv_quic::frame::MAX_ACK_RANGES;
use h2priv_quic::{
    AckRanges, H3ClientNode, H3ServerNode, QuicConfig, QuicConnection, QuicEvent, QuicStats,
};
use h2priv_tls::{RecordTag, TrafficClass};
use h2priv_util::bytes::Bytes;
use h2priv_util::check::{run, Gen};
use h2priv_util::{prop_assert, prop_assert_eq};
use h2priv_web::IsideWith;
use std::collections::BTreeSet;

fn flows() -> (FlowId, FlowId) {
    let c2s = FlowId {
        src: HostAddr(1),
        dst: HostAddr(2),
        sport: 40_000,
        dport: 443,
    };
    (c2s, c2s.reversed())
}

/// Contiguous runs of a sorted-set model, ascending — the reference
/// [`AckRanges`] must agree with.
fn model_runs(model: &BTreeSet<u64>) -> Vec<(u64, u64)> {
    let mut runs: Vec<(u64, u64)> = Vec::new();
    for &pn in model {
        match runs.last_mut() {
            Some((_, end)) if *end + 1 == pn => *end = pn,
            _ => runs.push((pn, pn)),
        }
    }
    runs
}

#[test]
fn ack_ranges_match_sorted_set_model() {
    run("ack-ranges-vs-set-model", 256, |g: &mut Gen| {
        let mut ranges = AckRanges::new();
        let mut model: BTreeSet<u64> = BTreeSet::new();
        let ops = g.usize(1, 60);
        for _ in 0..ops {
            if g.bool(0.5) {
                let pn = g.u64(0, 150);
                let fresh = ranges.insert(pn);
                prop_assert_eq!(fresh, model.insert(pn));
            } else {
                let start = g.u64(0, 150);
                let end = start + g.u64(0, 12);
                let fresh = ranges.insert_range(start, end);
                let mut any_new = false;
                for pn in start..=end {
                    any_new |= model.insert(pn);
                }
                prop_assert_eq!(fresh, any_new);
            }
        }
        for pn in 0..=170u64 {
            prop_assert_eq!(ranges.contains(pn), model.contains(&pn));
        }
        let runs = model_runs(&model);
        prop_assert_eq!(ranges.iter().collect::<Vec<_>>(), runs.clone());
        prop_assert_eq!(ranges.range_count(), runs.len());
        let from_zero = match runs.first() {
            Some(&(0, e)) => e + 1,
            _ => 0,
        };
        prop_assert_eq!(ranges.contiguous_from_zero(), from_zero);
        let newest: Vec<(u64, u64)> = runs
            .iter()
            .skip(runs.len().saturating_sub(MAX_ACK_RANGES))
            .copied()
            .collect();
        prop_assert_eq!(ranges.encode_newest(), newest);
    });
}

/// One sans-I/O client↔server session: the server sends `bodies` (one
/// stream each, fin-terminated) across a wire that drops datagrams in
/// seeded Gilbert–Elliott-style bursts. Returns the per-stream delivered
/// bytes, per-stream fin flags, and both endpoints' counters.
fn lossy_session(
    seed: u64,
    drop_enter: f64,
    drop_exit: f64,
    bodies: &[Vec<u8>],
) -> (Vec<Vec<u8>>, Vec<bool>, QuicStats, QuicStats) {
    let (c2s, s2c) = flows();
    let mut client = QuicConnection::client(c2s, QuicConfig::default());
    let mut server = QuicConnection::server(s2c, QuicConfig::default());
    client.open();

    let mut wire_rng = SimRng::new(seed);
    let mut bad_state = false;
    let mut lose = move |rng: &mut SimRng| {
        if bad_state {
            if rng.chance(drop_exit) {
                bad_state = false;
            }
            true
        } else {
            bad_state = rng.chance(drop_enter);
            bad_state
        }
    };

    let mut delivered: Vec<Vec<u8>> = vec![Vec::new(); bodies.len()];
    let mut finished: Vec<bool> = vec![false; bodies.len()];
    let mut sent = false;
    let mut now = SimTime::ZERO;
    let deadline = now + SimDuration::from_secs(120);
    while now < deadline {
        loop {
            let mut moved = false;
            while let Some((_, payload)) = client.poll_datagram(now) {
                moved = true;
                if !lose(&mut wire_rng) {
                    server.on_datagram(now, &payload);
                }
            }
            while let Some((_, payload)) = server.poll_datagram(now) {
                moved = true;
                if !lose(&mut wire_rng) {
                    client.on_datagram(now, &payload);
                }
            }
            if !moved {
                break;
            }
        }
        if client.is_established() && server.is_established() && !sent {
            sent = true;
            for (i, body) in bodies.iter().enumerate() {
                let tag = RecordTag {
                    stream_id: i as u32 * 4,
                    object_id: i as u32,
                    copy: 0,
                    class: TrafficClass::ObjectData,
                };
                server.stream_send(i as u32 * 4, Bytes::from(body.clone()), true, tag);
            }
        }
        while let Some(ev) = client.poll_event() {
            if let QuicEvent::Stream { id, data, fin } = ev {
                let i = (id / 4) as usize;
                delivered[i].extend_from_slice(&data.to_vec());
                finished[i] |= fin;
            }
        }
        if sent && finished.iter().all(|f| *f) {
            break;
        }
        now += SimDuration::from_millis(5);
        client.on_timer(now);
        server.on_timer(now);
    }
    (delivered, finished, *client.stats(), *server.stats())
}

#[test]
fn stream_data_is_conserved_under_bursty_loss() {
    run("sans-io-conservation-under-loss", 48, |g: &mut Gen| {
        let n = g.usize(1, 4);
        let bodies: Vec<Vec<u8>> = (0..n)
            .map(|_| {
                let len = g.usize(0, 30_000);
                (0..len).map(|_| g.u8(0, u8::MAX)).collect()
            })
            .collect();
        let drop_enter = g.f64(0.0, 0.22);
        let drop_exit = g.f64(0.5, 0.9);
        let seed = g.u64(0, u64::MAX);
        let (delivered, finished, client, _server) =
            lossy_session(seed, drop_enter, drop_exit, &bodies);
        for (i, body) in bodies.iter().enumerate() {
            // Conservation: whatever the wire dropped or retransmitted,
            // delivery is an exact in-order prefix — never corrupted,
            // duplicated or reordered — and a fin means the whole body.
            prop_assert!(delivered[i].len() <= body.len());
            prop_assert_eq!(&delivered[i][..], &body[..delivered[i].len()]);
            if finished[i] {
                prop_assert_eq!(delivered[i].len(), body.len());
            }
        }
        // Exactly-once delivery: the application-visible count equals the
        // in-order bytes handed up, not the wire's retransmission volume.
        let total: u64 = delivered.iter().map(|d| d.len() as u64).sum();
        prop_assert_eq!(client.stream_bytes_delivered, total);
        // Survivable loss (PTO backoff comfortably inside the deadline)
        // must complete every stream; heavier bursts may legitimately end
        // in the connection's PTO-abort instead.
        if drop_enter < 0.05 {
            for (i, fin) in finished.iter().enumerate() {
                prop_assert!(*fin, "stream {i} unfinished under survivable loss");
            }
        }
    });
}

#[test]
fn sans_io_replay_is_deterministic() {
    let bodies: Vec<Vec<u8>> = vec![vec![7u8; 12_345], vec![9u8; 0], vec![3u8; 30_000]];
    let a = lossy_session(0xDEAD_BEEF, 0.15, 0.5, &bodies);
    let b = lossy_session(0xDEAD_BEEF, 0.15, 0.5, &bodies);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
    // A different wire seed must still conserve data (the property above)
    // but takes a different retransmission path at this loss rate.
    let c = lossy_session(0xBEEF_DEAD, 0.15, 0.5, &bodies);
    assert_eq!(c.0, a.0);
    assert!(c.2 != a.2 || c.3 != a.3);
}

/// Outcome of one full H3 page load over `netsim` with Gilbert–Elliott
/// burst loss on the WAN half of the path.
struct FaultedTrial {
    client: QuicStats,
    server: QuicStats,
    page_done: bool,
    objects_completed: usize,
    objects_total: usize,
    ended_at: SimTime,
}

fn h3_faulted_trial(seed: u64, target_loss: f64, burst: f64) -> FaultedTrial {
    let mut sim = Simulator::new(seed);
    let mut perm_rng = SimRng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
    let site = IsideWith::generate(&mut perm_rng).site;
    let path = PathConfig::default();
    let client_cfg = ClientConfig {
        addr: path.client_addr,
        server_addr: path.server_addr,
        ..ClientConfig::default()
    };
    let server_cfg = ServerConfig {
        addr: path.server_addr,
        client_addr: path.client_addr,
        ..ServerConfig::default()
    };
    let client = H3ClientNode::new(site.clone(), client_cfg);
    let server = H3ServerNode::new(site, server_cfg);
    let topo = PathTopology::build(&mut sim, client, Box::new(Passthrough), server, &path);
    let ge = FaultConfig::none().with_burst_loss(GilbertElliott::bursty(target_loss, burst));
    sim.attach_faults(topo.mbox_to_server, ge.clone());
    sim.attach_faults(topo.server_to_mbox, ge);
    sim.run_until_idle(SimTime::ZERO + SimDuration::from_secs(300));
    let report = sim.node_mut::<H3ClientNode>(topo.client).take_report();
    let client_node = sim.node_ref::<H3ClientNode>(topo.client);
    let server_node = sim.node_ref::<H3ServerNode>(topo.server);
    FaultedTrial {
        client: *client_node.quic_stats(),
        server: *server_node.quic_stats(),
        page_done: report.page_completed_at.is_some(),
        objects_completed: report
            .objects
            .iter()
            .filter(|o| o.completed_at.is_some())
            .count(),
        objects_total: report.objects.len(),
        ended_at: sim.now(),
    }
}

#[test]
fn h3_page_load_conserves_objects_under_gilbert_elliott_loss() {
    run("h3-page-load-under-ge-loss", 4, |g: &mut Gen| {
        let seed = g.u64(1, 1 << 40);
        let target_loss = g.f64(0.005, 0.06);
        let burst = g.f64(1.5, 5.0);
        let trial = h3_faulted_trial(seed, target_loss, burst);
        // Conservation through recovery: the page finishes, every planned
        // object's body arrives in full, and the client never delivers
        // more stream bytes than the server originated.
        prop_assert!(
            trial.page_done,
            "page did not complete (loss {target_loss:.3})"
        );
        prop_assert_eq!(trial.objects_completed, trial.objects_total);
        prop_assert!(trial.client.stream_bytes_delivered <= trial.server.stream_bytes_sent);
        prop_assert!(
            trial.server.loss_retransmits + trial.server.pto_retransmits > 0 || target_loss < 0.01
        );
    });
}

#[test]
fn h3_netsim_replay_is_deterministic() {
    let a = h3_faulted_trial(4242, 0.04, 3.0);
    let b = h3_faulted_trial(4242, 0.04, 3.0);
    assert_eq!(a.client, b.client);
    assert_eq!(a.server, b.server);
    assert_eq!(a.page_done, b.page_done);
    assert_eq!(a.objects_completed, b.objects_completed);
    assert_eq!(a.ended_at, b.ended_at);
}
