//! End-to-end attack tests: the full Section V adversary against the
//! isidewith model, checked against ground truth.

use h2priv_core::attack::AttackConfig;
use h2priv_core::experiment::run_isidewith_trial;

#[test]
fn full_attack_serializes_and_identifies_the_html_most_of_the_time() {
    let total = 10;
    let mut success = 0;
    for seed in 0..total {
        let trial = run_isidewith_trial(1_000 + seed, Some(AttackConfig::full_attack()));
        if trial.html_outcome().success {
            success += 1;
        }
    }
    // Paper: ~90%. Allow slack for the small sample.
    assert!(
        success >= total * 6 / 10,
        "full attack should usually break the HTML's privacy ({success}/{total})"
    );
}

#[test]
fn passive_eavesdropper_rarely_breaks_the_html() {
    let total = 10;
    let mut success = 0;
    for seed in 0..total {
        let trial = run_isidewith_trial(2_000 + seed, None);
        if trial.html_outcome().success {
            success += 1;
        }
    }
    assert!(
        success <= total / 2,
        "multiplexing should protect the HTML from a passive adversary ({success}/{total})"
    );
}

#[test]
fn full_attack_beats_passive_on_ranking_inference() {
    let total = 8;
    let mut attacked_positions = 0usize;
    let mut passive_positions = 0usize;
    for seed in 0..total {
        let attacked = run_isidewith_trial(3_000 + seed, Some(AttackConfig::full_attack()));
        attacked_positions += attacked.sequence_success().iter().filter(|b| **b).count();
        let passive = run_isidewith_trial(3_000 + seed, None);
        passive_positions += passive.sequence_success().iter().filter(|b| **b).count();
    }
    assert!(
        attacked_positions > passive_positions,
        "attack should infer more ranking positions ({attacked_positions} vs {passive_positions})"
    );
}

#[test]
fn attack_timeline_is_ordered() {
    use h2priv_core::attack::AttackEvent;
    let trial = run_isidewith_trial(4_000, Some(AttackConfig::full_attack()));
    let evs = &trial.result.attack.events;
    let time_of = |pred: fn(&AttackEvent) -> Option<u64>| evs.iter().find_map(pred);
    let trigger = time_of(|e| match e {
        AttackEvent::Trigger { at_ms } => Some(*at_ms),
        _ => None,
    })
    .expect("trigger");
    let drops_started = time_of(|e| match e {
        AttackEvent::DropsStarted { at_ms } => Some(*at_ms),
        _ => None,
    })
    .expect("drops started");
    let drops_stopped = time_of(|e| match e {
        AttackEvent::DropsStopped { at_ms } => Some(*at_ms),
        _ => None,
    })
    .expect("drops stopped");
    assert!(trigger <= drops_started);
    // The drop window ends either at the 6 s timer or earlier, when the
    // monitor detects the client's stream reset (paper Section IV-D:
    // "until the client sends stream reset").
    let window = drops_stopped - drops_started;
    assert!(
        (2_000..=6_100).contains(&window),
        "drop window was {window} ms"
    );
}

#[test]
fn attack_results_are_reproducible() {
    let a = run_isidewith_trial(5_000, Some(AttackConfig::full_attack()));
    let b = run_isidewith_trial(5_000, Some(AttackConfig::full_attack()));
    assert_eq!(a.sequence_success(), b.sequence_success());
    assert_eq!(a.predicted_order(), b.predicted_order());
    assert_eq!(a.result.attack.events, b.result.attack.events);
}
