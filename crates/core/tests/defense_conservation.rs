//! Defense-layer conservation properties. Every countermeasure is cover
//! traffic, reordering, padding, or routing — never data loss — so for
//! each defense on each transport it supports, an attacked trial must
//! still (a) complete the page load, (b) deliver every real object's
//! exact payload to the application (padding, dummy cells, and decoy
//! scheduling are stripped/ignored below the application layer), and
//! (c) stay byte-identical whether trials run on one pool worker or
//! four, mirroring the undefended `parallel_identity` guarantee.

use h2priv_core::attack::AttackConfig;
use h2priv_core::defense::Defense;
use h2priv_core::experiment::{
    run_isidewith_h3_trial_with, run_isidewith_trial_with, IsideWithTrial, TrialOptions,
    TrialOutcome,
};
use h2priv_core::TransportKind;
use h2priv_netsim::time::SimDuration;
use h2priv_util::pool;

/// All cells run the jitter-only attack: it exercises the adversary's
/// GET pacing against every defense while completing deterministically.
/// The full attack's random-drop phase can legitimately push individual
/// (seed, defense) combinations into the client's give-up/stall class —
/// on QUIC it always does — so completion under it is a success-*rate*
/// question, answered by the defense-matrix experiment, not a per-seed
/// invariant this property can assert.
fn attack_for(_transport: TransportKind) -> AttackConfig {
    AttackConfig::jitter_only(SimDuration::from_millis(50))
}

fn run_cell(defense: Defense, transport: TransportKind, seed: u64) -> IsideWithTrial {
    let mut opts = TrialOptions::new(seed, Some(attack_for(transport)));
    opts.defense = defense;
    match transport {
        TransportKind::Tcp => run_isidewith_trial_with(opts),
        TransportKind::Quic => run_isidewith_h3_trial_with(opts),
    }
}

/// Asserts completion and payload conservation, then boils the trial
/// down to a comparable fingerprint for the pool-identity check.
fn digest(trial: &IsideWithTrial, label: &str) -> (u64, usize, Vec<String>, String) {
    assert_eq!(
        trial.result.outcome,
        TrialOutcome::Completed,
        "{label}: defended trial must still complete"
    );
    // Conservation: every planned real object was delivered exactly —
    // the client saw a completed request whose DATA byte count equals
    // the inventory size. Record padding is removed at the TLS/QUIC
    // layer, dummy shaping cells ride an unknown stream the client
    // ignores, and decoys are *extra* objects, so none of them may
    // perturb real payloads.
    let site = &trial.iw.site;
    for step in &site.plan {
        let obj = site.object(step.object);
        let delivered =
            trial.result.client.requests.iter().any(|r| {
                r.object == step.object && r.completed_at.is_some() && r.bytes == obj.size
            });
        assert!(
            delivered,
            "{label}: object {} ({} bytes) not delivered intact",
            obj.path, obj.size
        );
    }
    (
        trial.result.sim_events,
        trial.result.trace.len(),
        trial
            .predicted_order()
            .iter()
            .map(|p| p.to_string())
            .collect(),
        format!(
            "{}/{}/{}",
            trial.result.pad_overhead_bytes,
            trial.result.dummy_cells_sent,
            trial.result.split_alt_datagrams
        ),
    )
}

#[test]
fn every_defense_conserves_payload_and_is_pool_stable() {
    let transports = [TransportKind::Tcp, TransportKind::Quic];
    for defense in Defense::ALL {
        for transport in transports {
            if !defense.supported_on(transport) {
                continue;
            }
            let label = format!("{}:{:?}", defense.label(), transport);
            let seeds_per_cell = 2usize;
            let run = |jobs: usize| {
                pool::run_indexed(jobs, seeds_per_cell, |i| {
                    let trial = run_cell(defense, transport, 70_000 + i as u64);
                    digest(&trial, &label)
                })
            };
            let serial = run(1);
            let parallel = run(4);
            assert_eq!(serial, parallel, "{label}: jobs=1 vs jobs=4 diverged");
        }
    }
}

#[test]
fn defense_overhead_counters_fire_only_for_their_defense() {
    // Padding reports pad bytes, shaping reports dummy cells, splitting
    // reports alternate-path datagrams — and the undefended baseline
    // reports none of them.
    let plain = run_cell(Defense::None, TransportKind::Tcp, 70_100);
    assert_eq!(plain.result.pad_overhead_bytes, 0);
    assert_eq!(plain.result.dummy_cells_sent, 0);
    assert_eq!(plain.result.split_alt_datagrams, 0);

    let padded = run_cell(
        Defense::RecordPadding { block: 4_096 },
        TransportKind::Tcp,
        70_100,
    );
    assert!(padded.result.pad_overhead_bytes > 0, "H2 padding fired");

    let padded_h3 = run_cell(
        Defense::RecordPadding { block: 4_096 },
        TransportKind::Quic,
        70_100,
    );
    assert!(padded_h3.result.pad_overhead_bytes > 0, "H3 padding fired");

    let shaped = run_cell(Defense::Shaping, TransportKind::Tcp, 70_100);
    assert!(shaped.result.dummy_cells_sent > 0, "shaping sent cover");

    let split = run_cell(
        Defense::TrafficSplit { burst: 8 },
        TransportKind::Quic,
        70_100,
    );
    assert!(split.result.split_alt_datagrams > 0, "split used alt path");
    // The tapped trace misses the alternate-path datagrams entirely, so
    // the capture shrinks versus the same seed without splitting.
    let plain_h3 = run_cell(Defense::None, TransportKind::Quic, 70_100);
    assert!(
        split.result.trace.len() < plain_h3.result.trace.len(),
        "split {} vs plain {}",
        split.result.trace.len(),
        plain_h3.result.trace.len()
    );
}
