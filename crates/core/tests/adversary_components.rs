//! Integration tests of the adversary's measurement components against
//! ground truth from real simulated page loads.

use h2priv_core::attack::AttackConfig;
use h2priv_core::experiment::{run_isidewith_trial, run_site_trial, TrialOptions};
use h2priv_core::partial::{explain_units, PartialConfig};
use h2priv_core::predictor::SizeMap;
use h2priv_netsim::packet::Direction;
use h2priv_netsim::time::SimDuration;
use h2priv_trace::reassembly::reassemble;
use h2priv_web::sites::blog_site;

/// The monitor's GET count (record-header heuristic over ciphertext)
/// must equal the client's true GET count.
#[test]
fn monitor_get_count_matches_ground_truth() {
    for seed in [1u64, 2, 3] {
        let trial = run_isidewith_trial(
            9_000 + seed,
            Some(AttackConfig::jitter_only(SimDuration::from_millis(25))),
        );
        let true_gets = trial.result.client.requests.len() as u64;
        let counted = trial.result.attack.gets_seen;
        assert_eq!(
            counted, true_gets,
            "seed {seed}: monitor counted {counted}, client issued {true_gets}"
        );
    }
}

/// Reassembly of the server→client capture recovers exactly the bytes
/// the server sealed (ground truth wire map).
#[test]
fn reassembled_stream_matches_server_wire_map() {
    let trial = run_isidewith_trial(9_100, None);
    let view = reassemble(&trial.result.trace, Direction::ServerToClient, false);
    let sealed_end = trial
        .result
        .wire_map
        .spans()
        .last()
        .map(|s| s.end)
        .expect("server sent records");
    assert_eq!(
        view.unique_bytes, sealed_end,
        "every sealed byte observed exactly once"
    );
    assert!(!view.desynced);
    assert_eq!(
        view.parse_ptr, sealed_end,
        "record parsing covered the whole stream"
    );
}

/// The adversary's analysis window excludes pre-attack units.
#[test]
fn windowed_prediction_excludes_pre_attack_traffic() {
    let trial = run_isidewith_trial(9_200, Some(AttackConfig::full_attack()));
    let window = trial.attack_window().expect("attack ran");
    let windowed = trial.windowed_prediction();
    assert!(
        windowed.units.iter().all(|u| u.unit.start >= window),
        "windowed prediction leaked early units"
    );
    assert!(
        windowed.units.len() < trial.prediction.units.len(),
        "window should exclude the pre-attack page traffic"
    );
}

/// Partial (subset-sum) matching explains merged units that the exact
/// matcher cannot, on genuinely multiplexed baseline traffic.
#[test]
fn partial_matching_explains_merged_units() {
    // Two-object site with zero gap: baseline produces one merged unit.
    let site = h2priv_web::sites::two_object_site(9_500, 7_200, SimDuration::ZERO);
    let result = run_site_trial(site, &TrialOptions::new(9_300, None));
    let map = SizeMap::new(vec![("o1".into(), 9_500), ("o2".into(), 7_200)], 0.03);
    let prediction = result.predict(&map);
    // Exact matching fails on the merged unit...
    assert!(
        !(prediction.contains("o1") && prediction.contains("o2")),
        "expected exact matching to fail on multiplexed transfer"
    );
    // ...partial matching decomposes it.
    let explained = explain_units(&prediction.units, &map, &PartialConfig::default());
    let decomposed = explained.iter().any(|(_, m)| {
        m.as_ref().is_some_and(|m| {
            m.labels.contains(&"o1".to_string()) && m.labels.contains(&"o2".to_string())
        })
    });
    assert!(
        decomposed,
        "partial matcher should explain the merged unit: {explained:?}"
    );
}

/// The capture contains both directions and plausible volume.
#[test]
fn trace_has_both_directions_and_handshake() {
    let trial = run_isidewith_trial(9_400, None);
    let t = &trial.result.trace;
    let c2s = t.in_direction(Direction::ClientToServer).count();
    let s2c = t.in_direction(Direction::ServerToClient).count();
    assert!(c2s > 60, "c2s packets: {c2s}");
    assert!(s2c > 300, "s2c packets: {s2c}");
    // SYN/SYN-ACK visible at the gateway.
    assert!(t
        .packets
        .iter()
        .any(|p| p.header.flags.syn && !p.header.flags.ack));
    assert!(t
        .packets
        .iter()
        .any(|p| p.header.flags.syn && p.header.flags.ack));
}

/// GET sizing: every request HEADERS record on the wire exceeds the
/// monitor threshold; every control record stays below it.
#[test]
fn wire_record_sizes_respect_monitor_threshold() {
    let trial = run_isidewith_trial(9_500, None);
    let view = reassemble(&trial.result.trace, Direction::ClientToServer, false);
    let gets = trial.result.client.requests.len();
    let big: Vec<u16> = view
        .app_records()
        .filter(|r| r.body_len >= 80)
        .map(|r| r.body_len)
        .collect();
    assert_eq!(
        big.len(),
        gets,
        "GET-sized records must match requests exactly"
    );
}

/// A non-isidewith site works through the same pipeline (API
/// generality): attack a blog page targeting its hero image.
#[test]
fn attack_pipeline_generalizes_to_other_sites() {
    let mut attack = AttackConfig::jitter_only(SimDuration::from_millis(120));
    attack.trigger_get = 3;
    let result = run_site_trial(blog_site(), &TrialOptions::new(9_600, Some(attack)));
    assert!(
        result.client.page_completed_at.is_some(),
        "page must still load"
    );
    let map = SizeMap::new(
        vec![
            ("hero".into(), 52_000),
            ("post".into(), 23_500),
            ("app".into(), 31_000),
        ],
        0.03,
    );
    let prediction = result.predict(&map);
    assert!(
        prediction.contains("hero") || prediction.contains("post") || prediction.contains("app"),
        "spaced requests should expose at least one object size"
    );
}
