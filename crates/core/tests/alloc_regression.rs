//! Allocation-regression pins for the simulator hot paths.
//!
//! Counts every heap allocation one steady-state trial makes (per
//! scenario, fixed seed) and pins the exact number. Allocation counts
//! are fully deterministic for a given seed and build profile, so any
//! drift here is a real behavioural change on the packet path — not
//! noise.
//!
//! If a pin fails after an intentional change (a new feature that
//! legitimately allocates, a data-structure swap, a changed buffer
//! strategy), re-baseline by running this test and copying the number
//! from the assertion message into the constant below — but first make
//! sure the delta is the size you expected. A surprise increase of
//! hundreds of allocations usually means a per-event or per-chunk
//! allocation sneaked back into the hot path; that is exactly what this
//! test exists to catch.

use h2priv_core::attack::AttackConfig;
use h2priv_core::experiment::{run_isidewith_h3_trial, run_isidewith_trial};
use h2priv_util::alloc;

#[global_allocator]
static ALLOC: alloc::CountingAlloc = alloc::CountingAlloc::new();

/// Steady-state allocations for one run of `f`: two warm-up runs first,
/// so lazily-initialised statics (telemetry sinks, thread-local buffer
/// pools) are counted as the one-time costs they are, then a counted
/// run.
fn steady_state_allocs(f: impl Fn()) -> u64 {
    f();
    f();
    let ((), allocs, _bytes) = alloc::counting(f);
    allocs
}

/// Debug builds allocate more (debug_assertions enable extra sanity
/// decodes on the client response path), so each scenario pins both
/// profiles.
#[cfg(debug_assertions)]
const H2_BASELINE_PIN: u64 = 8_290;
#[cfg(not(debug_assertions))]
const H2_BASELINE_PIN: u64 = 8_290;

#[cfg(debug_assertions)]
const H3_FULL_ATTACK_PIN: u64 = 2_947;
#[cfg(not(debug_assertions))]
const H3_FULL_ATTACK_PIN: u64 = 2_863;

/// Exact pins hold for the default timer-wheel scheduler. The
/// `reference-queue` oracle build allocates a handful more (BinaryHeap
/// growth, cancel tombstones), and the oracle suite only promises
/// byte-identical *results*, not identical allocator traffic — so under
/// that feature the pin relaxes to a ceiling that still catches a
/// per-chunk allocation sneaking back in.
fn assert_pinned(scenario: &str, allocs: u64, pin: u64) {
    if h2priv_netsim::REFERENCE_QUEUE {
        assert!(
            allocs <= pin + 256,
            "{scenario} steady-state allocations under the reference queue grew \
             past the slack band: {allocs} (wheel pin {pin})"
        );
    } else {
        assert_eq!(
            allocs, pin,
            "{scenario} steady-state allocations changed: {allocs} (pinned {pin}); \
             see the module docs before re-baselining"
        );
    }
}

#[test]
fn h2_baseline_steady_state_allocs_are_pinned() {
    let allocs = steady_state_allocs(|| {
        run_isidewith_trial(91_000, None);
    });
    assert_pinned("h2_baseline", allocs, H2_BASELINE_PIN);
}

#[test]
fn h3_full_attack_steady_state_allocs_are_pinned() {
    let allocs = steady_state_allocs(|| {
        run_isidewith_h3_trial(91_000, Some(AttackConfig::full_attack()));
    });
    assert_pinned("h3_full_attack", allocs, H3_FULL_ATTACK_PIN);
}
