//! Fold identity: the campaign's incremental per-cell fold — including
//! a JSON round-trip of every payload, exactly as the journal imposes —
//! must reproduce the in-process experiment's report bytes. This is the
//! invariant that lets the sharded campaign runner claim its output is
//! *the* experiment output, not an approximation of it.

use h2priv_core::campaign::{robustness_report, table1_report, CampaignSpec};
use h2priv_core::experiments::{robustness_sweep, table1, ROBUSTNESS_INTENSITIES};
use h2priv_util::json::Json;

/// Runs every cell, round-trips its payload through compact JSON text
/// (the journal's storage form), folds, and renders.
fn fold_report(spec: &CampaignSpec) -> String {
    let mut folder = spec.folder();
    for i in 0..spec.total_cells() {
        let (batch, trial) = spec.cell(i);
        let payload = spec.run_cell(batch, trial);
        let round_tripped = Json::parse(&payload.to_string_compact()).unwrap();
        assert_eq!(round_tripped, payload, "payload round-trip must be exact");
        folder.push(batch, trial, &round_tripped).unwrap();
    }
    folder.finish().unwrap()
}

#[test]
fn campaign_fold_matches_robustness_sweep_report_bytes() {
    let spec = CampaignSpec::for_experiment("robustness_sweep", 1).unwrap();
    let direct = robustness_sweep(1, 81_000, &ROBUSTNESS_INTENSITIES, 1);
    assert_eq!(fold_report(&spec), robustness_report(&direct));
}

#[test]
fn campaign_fold_matches_table1_report_bytes() {
    let spec = CampaignSpec::for_experiment("table1", 1).unwrap();
    let direct = table1(1, 11_000, 1);
    assert_eq!(fold_report(&spec), table1_report(&direct));
}
