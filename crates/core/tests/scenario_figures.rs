//! Scenario tests for the paper's mechanism figures (Figs. 1–4, 6):
//! each test reproduces one figure's storyline end-to-end.

use h2priv_core::attack::{AttackConfig, AttackEvent};
use h2priv_core::experiment::{run_isidewith_trial, run_site_trial, TrialOptions};
use h2priv_core::metrics::degree_of_multiplexing;
use h2priv_core::predictor::SizeMap;
use h2priv_netsim::time::SimDuration;
use h2priv_web::sites::two_object_site;
use h2priv_web::ObjectId;

/// Fig. 1 case 1: serial transmission lets the eavesdropper estimate
/// both object sizes from the encrypted trace.
#[test]
fn fig1_serial_sizes_are_estimable() {
    let site = two_object_site(9_500, 7_200, SimDuration::from_millis(700));
    let result = run_site_trial(site, &TrialOptions::new(101, None));
    let map = SizeMap::new(vec![("o1".into(), 9_500), ("o2".into(), 7_200)], 0.03);
    let prediction = result.predict(&map);
    assert!(
        prediction.contains("o1"),
        "O1 should be identified: {:?}",
        prediction.units
    );
    assert!(
        prediction.contains("o2"),
        "O2 should be identified: {:?}",
        prediction.units
    );
}

/// Fig. 1 case 2: multiplexed transmission defeats size estimation.
#[test]
fn fig1_multiplexed_sizes_are_not_estimable() {
    let mut hits = 0;
    let total = 8;
    for seed in 0..total {
        let site = two_object_site(9_500, 7_200, SimDuration::ZERO);
        let result = run_site_trial(site, &TrialOptions::new(200 + seed, None));
        let map = SizeMap::new(vec![("o1".into(), 9_500), ("o2".into(), 7_200)], 0.03);
        let prediction = result.predict(&map);
        if prediction.contains("o1") && prediction.contains("o2") {
            hits += 1;
        }
    }
    assert!(
        hits <= total / 2,
        "multiplexing should usually defeat size estimation, but {hits}/{total} succeeded"
    );
}

/// Figs. 2–3: with near-zero inter-request time the server interleaves;
/// spacing the requests past the service time serializes.
#[test]
fn fig2_fig3_request_spacing_controls_multiplexing() {
    let multiplexed = {
        let site = two_object_site(30_000, 24_000, SimDuration::ZERO);
        let result = run_site_trial(site, &TrialOptions::new(301, None));
        degree_of_multiplexing(&result.wire_map, ObjectId(0))
            .best()
            .unwrap()
            .1
    };
    let serialized = {
        let site = two_object_site(30_000, 24_000, SimDuration::from_millis(900));
        let result = run_site_trial(site, &TrialOptions::new(301, None));
        degree_of_multiplexing(&result.wire_map, ObjectId(0))
            .best()
            .unwrap()
            .1
    };
    assert!(
        multiplexed > 0.5,
        "zero gap should multiplex heavily, got {multiplexed}"
    );
    assert_eq!(serialized, 0.0, "a 900 ms gap must fully serialize");
}

/// Fig. 4: holding requests back long enough triggers client
/// re-requests, and the server serves duplicate copies that intensify
/// multiplexing.
#[test]
fn fig4_excessive_jitter_causes_duplicate_copies() {
    // Very aggressive pacing: 400 ms between GET-carrying packets.
    let attack = AttackConfig::jitter_only(SimDuration::from_millis(400));
    let mut saw_rerequest = false;
    let mut saw_duplicate_copy = false;
    for seed in 0..6 {
        let trial = run_isidewith_trial(400 + seed, Some(attack.clone()));
        if trial.result.client.h2_rerequests > 0 {
            saw_rerequest = true;
        }
        let duplicated = trial
            .iw
            .site
            .objects()
            .iter()
            .any(|o| trial.result.wire_map.copies_of(o.id.0).len() > 1);
        if duplicated {
            saw_duplicate_copy = true;
        }
        if saw_rerequest && saw_duplicate_copy {
            break;
        }
    }
    assert!(
        saw_rerequest,
        "400 ms pacing should trigger app-layer re-requests"
    );
    assert!(
        saw_duplicate_copy,
        "re-requests should lead to duplicate served copies"
    );
}

/// Fig. 6 / Section IV-D storyline: drops start at the trigger GET, the
/// client eventually resets streams, drops stop after the window, and
/// the re-served HTML comes out serialized.
#[test]
fn fig6_drop_phase_forces_reset_and_serial_reserve() {
    let mut successes = 0;
    let total = 5;
    for seed in 0..total {
        let trial = run_isidewith_trial(
            600 + seed,
            Some(AttackConfig::with_drops(0.8, SimDuration::from_secs(6))),
        );
        let events = &trial.result.attack.events;
        assert!(
            events
                .iter()
                .any(|e| matches!(e, AttackEvent::DropsStarted { .. })),
            "drop phase should start: {events:?}"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, AttackEvent::DropsStopped { .. })),
            "drop phase should stop: {events:?}"
        );
        if trial.result.client.resets_sent > 0 && trial.html_outcome().best_degree == 0.0 {
            successes += 1;
        }
    }
    assert!(
        successes >= total - 2,
        "drops should usually force a reset and a serialized re-serve ({successes}/{total})"
    );
}

/// The attack trigger fires on the 6th GET, which is the result HTML.
#[test]
fn trigger_fires_on_the_html_request() {
    let trial = run_isidewith_trial(700, Some(AttackConfig::full_attack()));
    let trigger_at = trial
        .result
        .attack
        .events
        .iter()
        .find_map(|e| match e {
            AttackEvent::Trigger { at_ms } => Some(*at_ms),
            _ => None,
        })
        .expect("trigger fired");
    // The HTML's first GET should be at (or just before) the trigger.
    let html_req = trial
        .result
        .client
        .requests
        .iter()
        .find(|r| r.object == trial.iw.html && r.attempt == 0)
        .expect("html requested");
    let issued_ms = html_req.issued_at.as_millis();
    assert!(
        trigger_at >= issued_ms && trigger_at <= issued_ms + 1_000,
        "trigger at {trigger_at} ms vs html GET at {issued_ms} ms"
    );
}
