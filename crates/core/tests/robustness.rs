//! Graceful-degradation tests: pathological fault schedules must end in
//! a classified [`TrialOutcome`], never a silent horizon exhaustion or a
//! hang, and survivable faults must still complete.

use h2priv_core::experiment::{
    derive_retry_seed, run_isidewith_trial, run_isidewith_trial_retrying, run_isidewith_trial_with,
    FaultPlan, TrialOptions, TrialOutcome,
};
use h2priv_netsim::faults::{FaultAction, FaultConfig, GilbertElliott};
use h2priv_netsim::prelude::*;

/// A permanent outage on every path link from `down_at` onwards.
fn permanent_outage(down_at: SimTime) -> FaultPlan {
    let cfg = FaultConfig::none().at(down_at, FaultAction::LinkDown);
    FaultPlan {
        client_link: Some(cfg.clone()),
        server_link: Some(cfg),
    }
}

#[test]
fn clean_trial_reports_completed() {
    let trial = run_isidewith_trial(42, None);
    assert_eq!(trial.result.outcome, TrialOutcome::Completed);
    assert!(!trial.result.outcome.is_degraded());
    assert!(trial.result.stall_detected_at.is_none());
    assert!(trial.result.fault_stats.is_empty());
}

/// A permanent link flap mid-transfer with default TCP settings: both
/// endpoints exhaust `max_rto_retries` and the watchdog classifies the
/// trial as a broken connection — not a silent horizon exhaustion.
#[test]
fn permanent_flap_aborts_connection() {
    let mut opts = TrialOptions::new(7, None);
    opts.faults = permanent_outage(SimTime::from_millis(300));
    let trial = run_isidewith_trial_with(opts);
    assert_eq!(trial.result.outcome, TrialOutcome::ConnectionAborted);
    assert!(trial.result.client.connection_broken);
    assert!(trial.result.client.page_completed_at.is_none());
    // The fault layer, not the link, absorbed the lost packets.
    let down: u64 = trial
        .result
        .fault_stats
        .iter()
        .map(|s| s.dropped_down)
        .sum();
    assert!(down > 0, "outage should have dropped packets");
}

/// The same outage with effectively unbounded TCP retries: nothing ever
/// aborts, nothing progresses, and the watchdog must call it stalled
/// rather than letting it ride the horizon out unclassified.
#[test]
fn permanent_flap_with_unbounded_retries_is_stalled() {
    let mut opts = TrialOptions::new(7, None);
    opts.faults = permanent_outage(SimTime::from_millis(300));
    opts.client.tcp.max_rto_retries = 10_000;
    opts.server.tcp.max_rto_retries = 10_000;
    opts.stall_window = SimDuration::from_secs(10);
    let trial = run_isidewith_trial_with(opts);
    assert_eq!(trial.result.outcome, TrialOutcome::Stalled);
    assert!(!trial.result.client.connection_broken);
    assert!(trial.result.stall_detected_at.is_some());
}

/// `fail_fast` ends a stalled trial at the first dead window instead of
/// simulating out the full horizon.
#[test]
fn fail_fast_ends_stalled_trials_early() {
    let mut opts = TrialOptions::new(7, None);
    opts.faults = permanent_outage(SimTime::from_millis(300));
    opts.client.tcp.max_rto_retries = 10_000;
    opts.server.tcp.max_rto_retries = 10_000;
    opts.stall_window = SimDuration::from_secs(10);
    opts.fail_fast = true;
    let horizon = opts.horizon;
    let trial = run_isidewith_trial_with(opts);
    assert_eq!(trial.result.outcome, TrialOutcome::Stalled);
    assert!(
        trial.result.ended_at < SimTime::ZERO + horizon,
        "fail_fast should stop before the horizon, ended at {}",
        trial.result.ended_at
    );
}

/// A transient outage that heals: TCP retransmits through it and the
/// trial still completes, with the recovery visible as retransmissions.
#[test]
fn transient_flap_recovers_and_completes() {
    let mut opts = TrialOptions::new(11, None);
    let cfg = FaultConfig::none().with_flap(SimTime::from_millis(300), SimDuration::from_secs(1));
    opts.faults = FaultPlan {
        client_link: None,
        server_link: Some(cfg),
    };
    let trial = run_isidewith_trial_with(opts);
    assert_eq!(trial.result.outcome, TrialOutcome::Completed);
    assert!(trial.result.client.page_completed_at.is_some());
    assert!(
        trial.result.total_retransmissions() > 0,
        "the outage should force retransmissions"
    );
}

/// Heavy bursty loss degrades but does not wedge the harness: the trial
/// terminates with a classified outcome either way.
#[test]
fn bursty_loss_always_terminates_classified() {
    for seed in [1u64, 2, 3] {
        let mut opts = TrialOptions::new(seed, None);
        let cfg = FaultConfig::none().with_burst_loss(GilbertElliott::bursty(0.3, 6.0));
        opts.faults = FaultPlan {
            client_link: Some(cfg.clone()),
            server_link: Some(cfg),
        };
        opts.fail_fast = true;
        let horizon = opts.horizon;
        let trial = run_isidewith_trial_with(opts);
        // Any outcome is acceptable; what matters is classification and
        // termination with the books kept.
        let burst: u64 = trial
            .result
            .fault_stats
            .iter()
            .map(|s| s.dropped_burst)
            .sum();
        assert!(burst > 0, "seed {seed}: 30% burst loss must drop packets");
        assert!(
            trial.result.ended_at <= SimTime::ZERO + horizon,
            "seed {seed}: trial must respect the horizon"
        );
    }
}

/// Degraded trials are retried on derived seeds; the derivation is
/// deterministic and attempt 0 keeps the original seed.
#[test]
fn retry_uses_derived_seeds_and_records_failures() {
    assert_eq!(derive_retry_seed(99, 0), 99);
    assert_ne!(derive_retry_seed(99, 1), 99);
    assert_eq!(derive_retry_seed(99, 1), derive_retry_seed(99, 1));
    assert_ne!(derive_retry_seed(99, 1), derive_retry_seed(99, 2));

    // A permanent outage fails every attempt: all retries are consumed
    // and every failure is recorded.
    let mut opts = TrialOptions::new(7, None);
    opts.faults = permanent_outage(SimTime::from_millis(300));
    opts.fail_fast = true;
    let retried = run_isidewith_trial_retrying(opts.clone(), 2);
    assert_eq!(retried.retries_used(), 2);
    assert!(retried.failed_attempts.iter().all(|o| o.is_degraded()));
    assert!(retried.trial.result.outcome.is_degraded());

    // A clean configuration completes on the first attempt.
    let clean = run_isidewith_trial_retrying(TrialOptions::new(7, None), 2);
    assert_eq!(clean.retries_used(), 0);
    assert_eq!(clean.trial.result.outcome, TrialOutcome::Completed);
}

/// Outcome labels are stable (they appear in JSON reports).
#[test]
fn outcome_labels_are_stable() {
    assert_eq!(TrialOutcome::Completed.label(), "completed");
    assert_eq!(TrialOutcome::Stalled.label(), "stalled");
    assert_eq!(
        TrialOutcome::ConnectionAborted.label(),
        "connection_aborted"
    );
    assert_eq!(TrialOutcome::HorizonExhausted.label(), "horizon_exhausted");
}
