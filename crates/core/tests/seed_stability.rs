//! Seed-stability regression: the in-tree PRNG replaced the external
//! `rand` SmallRng, and every hardcoded experiment seed in EXPERIMENTS.md
//! depends on the two producing identical draw sequences. This test pins
//! one full-attack trial and asserts its exact outcome; any change to the
//! RNG, the simulator's draw order, or the predictor pipeline that would
//! silently invalidate the published numbers fails here first.

use h2priv_core::attack::AttackConfig;
use h2priv_core::experiment::{run_isidewith_h3_trial, run_isidewith_trial};
use h2priv_core::experiments::robustness_sweep;
use h2priv_web::Party;

#[test]
fn pinned_seed_42_full_attack_outcome_is_stable() {
    let trial = run_isidewith_trial(42, Some(AttackConfig::full_attack()));

    // Exact serialized-object count: every emblem image fully serialized.
    let serialized_images = trial
        .image_outcomes()
        .iter()
        .filter(|o| o.best_degree == 0.0)
        .count();
    assert_eq!(serialized_images, 8, "serialized emblem images");

    // Exact segmentation and identification counts from the trace.
    assert_eq!(trial.prediction.units.len(), 80, "transmission units");
    assert_eq!(trial.prediction.labels().len(), 17, "identified units");

    // Predictor verdict on the object of interest.
    let html = trial.html_outcome();
    assert!(html.identified, "HTML identified from the encrypted trace");
    assert!(html.success, "HTML serialized and identified");

    // The inferred party ranking, byte for byte.
    assert_eq!(
        trial.predicted_order(),
        vec![
            Party::Libertarian,
            Party::Socialist,
            Party::Reform,
            Party::Democratic,
            Party::AmericanSolidarity,
            Party::Constitution,
            Party::Republican,
            Party::Green,
        ]
    );
}

#[test]
fn pinned_robustness_sweep_seeds_are_stable() {
    // Two trials at the sweep's endpoints, on the same base seed the
    // bench binary uses (81_000). The seed family is
    // `base + 5_000_000 + intensity_idx * 10_000 + trial`, so these pins
    // cover both the fault-free and the fully-impaired draw sequences,
    // including the retry-seed derivation.
    let rows = robustness_sweep(2, 81_000, &[0.0, 1.0], 1);
    assert_eq!(rows.len(), 2);

    let pristine = &rows[0];
    assert_eq!(pristine.intensity, 0.0);
    assert_eq!(pristine.pct_html_serialized, Some(100.0));
    assert_eq!(pristine.pct_html_identified, Some(50.0));
    assert_eq!(pristine.pct_success, Some(50.0));
    assert_eq!(pristine.retransmissions_avg, Some(20.0));
    assert_eq!(pristine.fault_drops_avg, Some(0.0));
    assert_eq!(
        (pristine.completed, pristine.stalled, pristine.aborted),
        (2, 0, 0)
    );
    assert_eq!(pristine.retries_used, 0);

    let impaired = &rows[1];
    assert_eq!(impaired.intensity, 1.0);
    assert_eq!(impaired.pct_html_serialized, Some(50.0));
    assert_eq!(impaired.pct_html_identified, Some(50.0));
    assert_eq!(impaired.pct_success, Some(50.0));
    assert_eq!(impaired.retransmissions_avg, Some(204.5));
    assert_eq!(impaired.fault_drops_avg, Some(164.5));
    assert_eq!(
        (impaired.completed, impaired.stalled, impaired.aborted),
        (2, 0, 0)
    );
    assert_eq!(impaired.retries_used, 1);
}

/// Pins the exact total event count of every perfbench scenario over the
/// same 100 seeds (`91_000..91_100`) the committed `BENCH_simperf.json`
/// baseline reports. The event-core overhaul (timer-wheel scheduler,
/// slab events) is required to be a drop-in replacement: any change to
/// event push order, timer semantics, or the shared world-RNG interleave
/// shifts these totals long before a figure or golden fixture notices.
#[test]
fn pinned_perfbench_scenario_event_totals_are_stable() {
    let totals = |run: &dyn Fn(u64) -> u64| (91_000u64..91_100).map(run).sum::<u64>();

    let h2_baseline = totals(&|s| run_isidewith_trial(s, None).result.sim_events);
    assert_eq!(h2_baseline, 796_330, "h2_baseline events_total");

    let h2_full_attack = totals(&|s| {
        run_isidewith_trial(s, Some(AttackConfig::full_attack()))
            .result
            .sim_events
    });
    assert_eq!(h2_full_attack, 1_214_110, "h2_full_attack events_total");

    let h3_full_attack = totals(&|s| {
        run_isidewith_h3_trial(s, Some(AttackConfig::full_attack()))
            .result
            .sim_events
    });
    assert_eq!(h3_full_attack, 387_693, "h3_full_attack events_total");
}

#[test]
fn pinned_seed_is_reproducible_within_a_process() {
    let a = run_isidewith_trial(2020, Some(AttackConfig::full_attack()));
    let b = run_isidewith_trial(2020, Some(AttackConfig::full_attack()));
    assert_eq!(a.prediction.units.len(), b.prediction.units.len());
    assert_eq!(a.predicted_order(), b.predicted_order());
    assert_eq!(a.iw.result_order, b.iw.result_order);
}
