//! Statistical shape tests: small-batch versions of the paper's
//! evaluation, asserting the qualitative trends (who wins, direction of
//! effects) rather than exact percentages.

use h2priv_core::experiments::{baseline, fig5, section4d, table1, table2};

const TRIALS: usize = 12; // small but stable batches; full runs live in h2priv-bench

#[test]
fn table1_shape_jitter_helps_then_plateaus_and_retransmissions_grow() {
    let rows = table1(TRIALS, 42, 1);
    assert_eq!(rows.len(), 4);
    // Non-multiplexed fraction does not decrease with jitter (0 -> 50 ms).
    assert!(
        rows[2].pct_not_multiplexed >= rows[0].pct_not_multiplexed,
        "jitter should help serialize: {rows:?}"
    );
    // Retransmissions grow monotonically with jitter.
    assert!(
        rows[3].retransmissions_avg >= rows[1].retransmissions_avg,
        "retransmissions should grow with jitter: {rows:?}"
    );
    assert!(
        rows[0].retrans_increase_pct.abs() < 1e-9,
        "baseline row is the reference"
    );
}

#[test]
fn fig5_shape_bandwidth_sweep() {
    let rows = fig5(TRIALS, 43, 1);
    assert_eq!(rows.len(), 5);
    // Our substrate's deviation from the paper is documented in
    // EXPERIMENTS.md: with a conforming (RFC 7323) TCP the jitter phase
    // does not cause the fast-retransmit storm the authors measured, so
    // retransmissions do not *fall* with throttling. What must hold:
    // extreme throttling (1 Mbps) pushes the path into queue-overflow
    // retransmissions, far above the unthrottled level...
    let first = rows.first().expect("1000 Mbps row");
    let last = rows.last().expect("1 Mbps row");
    assert!(
        last.retransmissions_avg > 3.0 * first.retransmissions_avg.max(1.0),
        "1 Mbps should show heavy queueing retransmissions: {rows:?}"
    );
    // ...while the attack's success neither collapses nor becomes
    // perfect anywhere in the sweep (the serialization is service-time
    // driven, not bandwidth driven).
    for r in &rows {
        assert!(
            (10.0..=95.0).contains(&r.pct_success),
            "success out of plausible band: {rows:?}"
        );
    }
    // Success at the 1 Mbps extreme must not exceed the best
    // high-bandwidth point (the paper's right-side decline).
    let peak = rows.iter().map(|r| r.pct_success).fold(0.0f64, f64::max);
    assert!(
        last.pct_success <= peak,
        "no decline at extreme throttling: {rows:?}"
    );
}

#[test]
fn section4d_shape_drops_reach_high_success_until_connection_breaks() {
    let rows = section4d(TRIALS, 44, &[0.8, 0.97], 1);
    let at80 = &rows[0];
    let extreme = &rows[1];
    assert!(
        at80.pct_success >= 50.0,
        "80% drops should usually succeed: {rows:?}"
    );
    assert!(
        at80.pct_reset_sent >= 50.0,
        "80% drops should force stream resets: {rows:?}"
    );
    // More drops should not reduce breakage.
    assert!(
        extreme.pct_broken >= at80.pct_broken,
        "extreme drops should break connections at least as often: {rows:?}"
    );
}

#[test]
fn table2_shape_single_target_beats_sequence_inference() {
    let cols = table2(TRIALS, 45, 1);
    assert_eq!(cols.len(), 9);
    let avg_single: f64 = cols.iter().map(|c| c.pct_single_target).sum::<f64>() / cols.len() as f64;
    let avg_all: f64 = cols.iter().map(|c| c.pct_all_targets).sum::<f64>() / cols.len() as f64;
    assert!(
        avg_single >= avg_all,
        "single-target must dominate sequence inference: single {avg_single:.1}% vs all {avg_all:.1}%"
    );
    assert!(
        avg_single >= 60.0,
        "single-target success should be high: {cols:?}"
    );
    // Image gaps within the burst are sub-3ms on average except I1.
    for c in &cols[2..] {
        let gap = c.gap_prev_ms.expect("every column should observe gaps");
        assert!(gap < 120.0, "burst gap too large: {c:?}");
    }
}

#[test]
fn baseline_shape_objects_are_heavily_multiplexed() {
    let rows = baseline(TRIALS, 46, 1);
    assert_eq!(rows.len(), 9);
    let html = &rows[0];
    assert!(
        html.mean_degree_pct.expect("HTML degree observed") >= 40.0,
        "HTML should be heavily multiplexed at baseline: {rows:?}"
    );
    // Images: the burst overlaps heavily.
    let avg_img: f64 = rows[1..]
        .iter()
        .map(|r| r.mean_degree_pct.expect("image degree observed"))
        .sum::<f64>()
        / 8.0;
    assert!(
        avg_img >= 50.0,
        "images should be heavily multiplexed: avg {avg_img:.1}%"
    );
}
