//! Privacy metrics — most importantly the paper's **degree of
//! multiplexing** (Section II-A):
//!
//! > "the fraction of bytes of the object that is interleaved with those
//! > of another object within the same TCP stream."
//!
//! Computed from ground truth (the server's TLS [`WireMap`]): a byte of a
//! transmission entity (an *(object, copy)* pair — re-served copies count
//! as distinct entities, per the paper's treatment of "retransmitted
//! versions") is interleaved if it falls strictly inside another entity's
//! transmission window in TCP stream-offset space. Stream offsets are
//! used because TCP delivers bytes in offset order regardless of
//! wire-level retransmissions.
//!
//! The paper declares an attack on an object successful when its degree
//! of multiplexing reaches **zero** and the object is identified from the
//! trace; [`ObjectMux::best`] reports the copy that came closest.

use h2priv_tls::WireMap;
use h2priv_util::impl_to_json;
use h2priv_web::ObjectId;
use std::collections::HashMap;

/// Measurement tolerance below which a transmission counts as fully
/// serialized ("degree of multiplexing brought down to 0%" in the
/// paper): tiny residual overlaps (a final ACK-straggler chunk of a
/// neighbouring object) are within the noise of the paper's own
/// packet-level measurement.
pub const SERIAL_EPSILON: f64 = 0.02;

/// `true` if a degree-of-multiplexing value counts as serialized.
pub fn is_serialized(degree: f64) -> bool {
    degree <= SERIAL_EPSILON
}

/// A transmission entity: one served copy of one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntityId {
    /// The object.
    pub object: ObjectId,
    /// The served copy (0 = first).
    pub copy: u16,
}

impl_to_json!(struct EntityId { object, copy });

/// One entity's extent on the wire.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Identity.
    pub id: EntityId,
    /// Its data spans (stream offsets).
    pub spans: Vec<(u64, u64)>,
    /// First data byte offset.
    pub start: u64,
    /// One past the last data byte offset.
    pub end: u64,
    /// Total data bytes.
    pub bytes: u64,
}

impl_to_json!(struct Entity { id, spans, start, end, bytes });

/// All transmission entities in a wire map, in first-byte order.
pub fn entities(map: &WireMap) -> Vec<Entity> {
    let mut by_id: HashMap<(u32, u16), Entity> = HashMap::new();
    for span in map.spans().iter().filter(|s| s.tag.is_object_data()) {
        let key = (span.tag.object_id, span.tag.copy);
        let e = by_id.entry(key).or_insert_with(|| Entity {
            id: EntityId {
                object: ObjectId(span.tag.object_id),
                copy: span.tag.copy,
            },
            spans: Vec::new(),
            start: span.start,
            end: span.end,
            bytes: 0,
        });
        e.spans.push((span.start, span.end));
        e.start = e.start.min(span.start);
        e.end = e.end.max(span.end);
        e.bytes += span.len();
    }
    let mut v: Vec<Entity> = by_id.into_values().collect();
    v.sort_by_key(|e| e.start);
    v
}

/// Degree of multiplexing of one entity against all other entities in
/// the map, in `[0, 1]`. Returns `None` if the entity sent no bytes.
pub fn degree_of_multiplexing_entity(map: &WireMap, target: EntityId) -> Option<f64> {
    let all = entities(map);
    let t = all.iter().find(|e| e.id == target)?;
    if t.bytes == 0 {
        return None;
    }
    // Other entities' windows.
    let windows: Vec<(u64, u64)> = all
        .iter()
        .filter(|e| e.id != target)
        .map(|e| (e.start, e.end))
        .collect();
    let mut interleaved = 0u64;
    for &(s, e) in &t.spans {
        interleaved += covered_len(s, e, &windows);
    }
    Some(interleaved as f64 / t.bytes as f64)
}

/// Bytes of `[s, e)` covered by the union of `windows`.
fn covered_len(s: u64, e: u64, windows: &[(u64, u64)]) -> u64 {
    // Merge the clipped windows, then sum.
    let mut clips: Vec<(u64, u64)> = windows
        .iter()
        .filter_map(|&(ws, we)| {
            let lo = ws.max(s);
            let hi = we.min(e);
            (lo < hi).then_some((lo, hi))
        })
        .collect();
    clips.sort_unstable();
    let mut total = 0;
    let mut cur: Option<(u64, u64)> = None;
    for (lo, hi) in clips {
        match cur.as_mut() {
            Some((_, ce)) if lo <= *ce => *ce = (*ce).max(hi),
            _ => {
                if let Some((cs, ce)) = cur.take() {
                    total += ce - cs;
                }
                cur = Some((lo, hi));
            }
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

/// Per-object multiplexing summary across all served copies.
#[derive(Debug, Clone)]
pub struct ObjectMux {
    /// The object.
    pub object: ObjectId,
    /// Degree of multiplexing per copy, indexed by copy number where
    /// served (missing copies sent no data).
    pub per_copy: Vec<(u16, f64)>,
}

impl_to_json!(struct ObjectMux { object, per_copy });

impl ObjectMux {
    /// The copy with the lowest degree (the adversary only needs *one*
    /// serialized copy). `None` if no copy sent data. Uses a total order
    /// so a NaN degree (a degenerate zero-span unit injected by hand or
    /// by a defense transformation) ranks above every finite value
    /// instead of panicking mid-experiment.
    pub fn best(&self) -> Option<(u16, f64)> {
        self.per_copy
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// `true` if some copy transmitted essentially serialized (degree
    /// within [`SERIAL_EPSILON`] of zero).
    pub fn any_copy_serialized(&self) -> bool {
        self.per_copy.iter().any(|(_, d)| is_serialized(*d))
    }
}

/// Degree of multiplexing for every served copy of `object`.
pub fn degree_of_multiplexing(map: &WireMap, object: ObjectId) -> ObjectMux {
    let per_copy = map
        .copies_of(object.0)
        .into_iter()
        .filter_map(|copy| {
            degree_of_multiplexing_entity(map, EntityId { object, copy }).map(|d| (copy, d))
        })
        .collect();
    ObjectMux { object, per_copy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_tls::{RecordTag, TrafficClass, WireSpan as Span};

    fn tag(obj: u32, copy: u16) -> RecordTag {
        RecordTag {
            stream_id: 1,
            object_id: obj,
            copy,
            class: TrafficClass::ObjectData,
        }
    }

    fn map(spans: &[(u64, u64, u32, u16)]) -> WireMap {
        let mut m = WireMap::new();
        for &(s, e, o, c) in spans {
            m.push(Span {
                start: s,
                end: e,
                tag: tag(o, c),
            });
        }
        m
    }

    #[test]
    fn serial_transfer_has_zero_degree() {
        let m = map(&[(0, 100, 1, 0), (100, 250, 2, 0)]);
        let d1 = degree_of_multiplexing(&m, ObjectId(1));
        let d2 = degree_of_multiplexing(&m, ObjectId(2));
        assert_eq!(d1.best(), Some((0, 0.0)));
        assert_eq!(d2.best(), Some((0, 0.0)));
        assert!(d1.any_copy_serialized());
    }

    #[test]
    fn perfect_interleaving_is_fully_multiplexed() {
        // O1 and O2 alternate 10-byte spans across [0, 200).
        let mut spans = vec![];
        for i in 0..10u64 {
            spans.push((i * 20, i * 20 + 10, 1, 0));
            spans.push((i * 20 + 10, i * 20 + 20, 2, 0));
        }
        let m = map(&spans);
        let d1 = degree_of_multiplexing(&m, ObjectId(1)).best().unwrap().1;
        // O2's window is [10, 200): all of O1 except its first 10 bytes
        // lies inside it.
        assert!((d1 - 0.9).abs() < 1e-9, "d1 = {d1}");
        let d2 = degree_of_multiplexing(&m, ObjectId(2)).best().unwrap().1;
        assert!((d2 - 0.9).abs() < 1e-9, "d2 = {d2}");
    }

    #[test]
    fn partially_overlapping_tail() {
        // O1 occupies [0, 100); O2 occupies [80, 180).
        let m = map(&[
            (0, 80, 1, 0),
            (80, 90, 2, 0),
            (90, 100, 1, 0),
            (100, 180, 2, 0),
        ]);
        // O1's bytes inside O2's window [80, 180): the [90, 100) span —
        // 10 of O1's 90 bytes.
        let d1 = degree_of_multiplexing(&m, ObjectId(1)).best().unwrap().1;
        assert!((d1 - 1.0 / 9.0).abs() < 1e-9, "d1 = {d1}");
    }

    #[test]
    fn copies_are_distinct_entities() {
        // Copy 0 of O1 interleaves with copy 1 of O1 (the paper's
        // retransmitted-version pathology).
        let m = map(&[(0, 50, 1, 0), (50, 100, 1, 1), (100, 150, 1, 0)]);
        let mux = degree_of_multiplexing(&m, ObjectId(1));
        assert_eq!(mux.per_copy.len(), 2);
        // Copy 0's window [0,150) contains all of copy 1.
        let d_copy1 = mux.per_copy.iter().find(|(c, _)| *c == 1).unwrap().1;
        assert_eq!(d_copy1, 1.0);
        // Copy 1's window [50,100) covers copy 0's bytes in [50,100): none
        // (copy 0 has no bytes there) -> only spans outside.
        let d_copy0 = mux.per_copy.iter().find(|(c, _)| *c == 0).unwrap().1;
        assert_eq!(d_copy0, 0.0);
        assert!(mux.any_copy_serialized());
    }

    #[test]
    fn no_data_yields_empty() {
        let m = WireMap::new();
        let mux = degree_of_multiplexing(&m, ObjectId(9));
        assert!(mux.per_copy.is_empty());
        assert_eq!(mux.best(), None);
        assert!(!mux.any_copy_serialized());
    }

    #[test]
    fn nan_degree_does_not_panic_best() {
        // A degenerate unit can surface a NaN degree (e.g. hand-built
        // zero-span entities in analysis tooling). `best` must stay
        // total: finite degrees win, an all-NaN list still returns.
        let mux = ObjectMux {
            object: ObjectId(1),
            per_copy: vec![(0, f64::NAN), (1, 0.25)],
        };
        assert_eq!(mux.best(), Some((1, 0.25)));
        let all_nan = ObjectMux {
            object: ObjectId(2),
            per_copy: vec![(0, f64::NAN)],
        };
        let best = all_nan.best().expect("one copy present");
        assert_eq!(best.0, 0);
        assert!(best.1.is_nan());
    }

    #[test]
    fn zero_span_entity_yields_no_degree() {
        // A zero-length span contributes zero bytes; the entity is
        // reported as "no data" (None), never as a NaN degree.
        let m = map(&[(10, 10, 1, 0)]);
        assert_eq!(degree_of_multiplexing(&m, ObjectId(1)).best(), None);
    }

    #[test]
    fn covered_len_merges_overlaps() {
        assert_eq!(covered_len(0, 100, &[(10, 30), (20, 50), (90, 200)]), 50);
        assert_eq!(covered_len(0, 100, &[]), 0);
        assert_eq!(covered_len(50, 60, &[(0, 100)]), 10);
    }
}
