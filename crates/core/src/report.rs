//! Plain-text table rendering and JSON export for experiment results.

use h2priv_util::json::ToJson;
use std::fmt::Write as _;

/// Renders an ASCII table with a header row.
///
/// # Panics
/// Panics if a row's length differs from the header's.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for r in rows {
        assert_eq!(r.len(), headers.len(), "row width mismatch");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let sep = {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s
    };
    let fmt_row = |cells: &[String]| {
        let mut s = String::from("|");
        for (cell, w) in cells.iter().zip(&widths) {
            let _ = write!(s, " {cell:>w$} |", w = w);
        }
        s
    };
    let mut out = String::new();
    out.push_str(&sep);
    out.push('\n');
    out.push_str(&fmt_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out.push_str(&sep);
    out
}

/// Formats a float with one decimal.
pub fn pct(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats an optional float with one decimal, rendering a missing
/// measurement (no samples) as `n/a` instead of a silent default.
pub fn pct_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "n/a".to_string(), pct)
}

/// Serializes any result set to pretty JSON (for EXPERIMENTS.md tooling).
pub fn to_json<T: ToJson>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = render_table(
            &["col", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].starts_with('+'));
        assert!(lines[1].contains("col"));
        assert!(lines[4].contains("12345"));
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let _ = render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn json_roundtrip() {
        struct R {
            x: u32,
        }
        h2priv_util::impl_to_json!(struct R { x });
        assert!(to_json(&R { x: 7 }).contains("\"x\": 7"));
    }
}
