//! The attack orchestrator: the paper's Section V adversary as a
//! middlebox policy.
//!
//! The full attack runs in three phases:
//!
//! 1. **Jitter** — from connection start, GET-carrying client→server
//!    packets are paced to a minimum spacing (50 ms in the paper).
//! 2. **Throttle + targeted drops** — when the traffic monitor counts
//!    the trigger GET (the 6th, carrying the result-HTML request), the
//!    path is throttled (800 Mbps) and 80 % of server→client data
//!    packets are dropped for 6 s, forcing the client into RST_STREAM +
//!    re-request with backed-off timers.
//! 3. **Wider jitter** — after the drop window the pacing is raised
//!    (80 ms) so the burst of emblem-image GETs is serialized.
//!
//! Ablated variants ([`AttackConfig::jitter_only`],
//! [`AttackConfig::jitter_and_bandwidth`]) regenerate the paper's
//! Table I and Fig. 5 sweeps.

use crate::controller::{DropGate, Pacer, PACE_MIN_PAYLOAD};
use crate::monitor::{DatagramGetCounter, GetCounter, DEFAULT_GET_MIN_BODY};
use h2priv_netsim::middlebox::{MiddleboxPolicy, PacketView, PolicyCtx, Verdict};
use h2priv_netsim::packet::Direction;
use h2priv_netsim::time::{SimDuration, SimTime};
use h2priv_netsim::units::Bandwidth;
use h2priv_util::json::{Json, ToJson};
use h2priv_util::telemetry;
use std::cell::RefCell;
use std::rc::Rc;

/// Which transport substrate the victim connection runs on — and hence
/// which traffic monitor the adversary deploys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// HTTP/2 over TCP+TLS: cleartext TLS record headers are parseable
    /// in-order from the byte stream ([`GetCounter`]).
    #[default]
    Tcp,
    /// HTTP/3 over QUIC-lite: datagrams are opaque, only sizes and
    /// timing observable ([`DatagramGetCounter`]).
    Quic,
}

/// Configuration of the adversary.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// Phase-1 pacing of GET-carrying packets (`None` = no jitter).
    pub spacing: Option<SimDuration>,
    /// Bandwidth to throttle both directions to when the trigger GET is
    /// seen (`None` = no throttling).
    pub throttle: Option<Bandwidth>,
    /// Server→client drop rate applied for [`AttackConfig::drop_duration`]
    /// after the trigger GET (0.0 disables the drop phase).
    pub drop_rate: f64,
    /// Length of the drop window.
    pub drop_duration: SimDuration,
    /// Pacing applied once the drop window closes (`None` keeps phase-1
    /// pacing).
    pub spacing_after_drops: Option<SimDuration>,
    /// Stop the drop window early when the monitor observes the wire
    /// signature of the client's stream reset (a burst of small control
    /// records) — Section IV-D: "We continue the packet drops ... until
    /// the client sends stream reset".
    pub stop_drops_on_reset: bool,
    /// Which GET (1-based count) triggers phase 2. The paper's object of
    /// interest is the 6th.
    pub trigger_get: u64,
    /// TLS record-body threshold for counting GETs.
    pub get_min_record_body: u16,
    /// Transport substrate the monitored connection uses.
    pub transport: TransportKind,
}

impl AttackConfig {
    /// The paper's full Section V attack: 50 ms jitter, throttle to
    /// 800 Mbps + 80 % drops for 6 s at the 6th GET, then 80 ms jitter.
    pub fn full_attack() -> AttackConfig {
        AttackConfig {
            spacing: Some(SimDuration::from_millis(50)),
            throttle: Some(Bandwidth::mbps(800)),
            drop_rate: 0.8,
            drop_duration: SimDuration::from_secs(6),
            spacing_after_drops: Some(SimDuration::from_millis(80)),
            stop_drops_on_reset: true,
            trigger_get: 6,
            get_min_record_body: DEFAULT_GET_MIN_BODY,
            transport: TransportKind::Tcp,
        }
    }

    /// Jitter only (Table I rows): pace GETs to `spacing`.
    pub fn jitter_only(spacing: SimDuration) -> AttackConfig {
        AttackConfig {
            spacing: if spacing.is_zero() {
                None
            } else {
                Some(spacing)
            },
            throttle: None,
            drop_rate: 0.0,
            drop_duration: SimDuration::ZERO,
            spacing_after_drops: None,
            stop_drops_on_reset: true,
            trigger_get: 6,
            get_min_record_body: DEFAULT_GET_MIN_BODY,
            transport: TransportKind::Tcp,
        }
    }

    /// Jitter + bandwidth limit (Fig. 5 sweep): 50 ms pacing, throttle
    /// to `bw` at the trigger GET.
    pub fn jitter_and_bandwidth(spacing: SimDuration, bw: Bandwidth) -> AttackConfig {
        AttackConfig {
            spacing: Some(spacing),
            throttle: Some(bw),
            drop_rate: 0.0,
            drop_duration: SimDuration::ZERO,
            spacing_after_drops: None,
            stop_drops_on_reset: true,
            trigger_get: 6,
            get_min_record_body: DEFAULT_GET_MIN_BODY,
            transport: TransportKind::Tcp,
        }
    }

    /// Jitter + bandwidth + targeted drops (Section IV-D experiment),
    /// without the phase-3 spacing increase.
    pub fn with_drops(drop_rate: f64, drop_duration: SimDuration) -> AttackConfig {
        AttackConfig {
            drop_rate,
            drop_duration,
            spacing_after_drops: None,
            ..AttackConfig::full_attack()
        }
    }

    /// Returns `self` targeting a different trigger GET.
    pub fn with_trigger_get(mut self, n: u64) -> AttackConfig {
        self.trigger_get = n;
        self
    }

    /// Returns `self` retargeted at a different transport substrate.
    pub fn with_transport(mut self, transport: TransportKind) -> AttackConfig {
        self.transport = transport;
        self
    }

    /// Reset-signature detection parameters for this transport: the
    /// sliding window and how many small control packets inside it count
    /// as the client's stream-reset volley. QUIC resets arrive as one
    /// RESET_STREAM+STOP_SENDING datagram per stream in a near-instant
    /// volley interleaved with ambient ACK datagrams, so the window is
    /// tighter and the bar higher than for TLS control records.
    fn reset_signature(&self) -> (SimDuration, usize) {
        match self.transport {
            TransportKind::Tcp => (SimDuration::from_millis(120), 3),
            TransportKind::Quic => (SimDuration::from_millis(40), 4),
        }
    }
}

/// Timeline events logged by the policy (for tests and reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackEvent {
    /// The trigger GET transited.
    Trigger {
        /// When.
        at_ms: u64,
    },
    /// The path was throttled.
    ThrottleApplied {
        /// When.
        at_ms: u64,
    },
    /// The drop window opened.
    DropsStarted {
        /// When.
        at_ms: u64,
    },
    /// The drop window closed.
    DropsStopped {
        /// When.
        at_ms: u64,
    },
    /// The pacing changed (phase 3).
    SpacingChanged {
        /// When.
        at_ms: u64,
        /// New spacing in milliseconds.
        to_ms: u64,
    },
}

impl ToJson for AttackEvent {
    fn to_json(&self) -> Json {
        let (tag, fields) = match self {
            AttackEvent::Trigger { at_ms } => ("Trigger", vec![("at_ms", at_ms.to_json())]),
            AttackEvent::ThrottleApplied { at_ms } => {
                ("ThrottleApplied", vec![("at_ms", at_ms.to_json())])
            }
            AttackEvent::DropsStarted { at_ms } => {
                ("DropsStarted", vec![("at_ms", at_ms.to_json())])
            }
            AttackEvent::DropsStopped { at_ms } => {
                ("DropsStopped", vec![("at_ms", at_ms.to_json())])
            }
            AttackEvent::SpacingChanged { at_ms, to_ms } => (
                "SpacingChanged",
                vec![("at_ms", at_ms.to_json()), ("to_ms", to_ms.to_json())],
            ),
        };
        let inner = fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        Json::Obj(vec![(tag.to_string(), Json::Obj(inner))])
    }
}

/// Observable adversary state shared between the policy (inside the
/// simulator) and the experiment harness (outside).
#[derive(Debug, Default)]
pub struct AttackState {
    /// Timeline of events.
    pub events: Vec<AttackEvent>,
    /// GETs counted.
    pub gets_seen: u64,
    /// Packets dropped by the drop gate.
    pub packets_dropped: u64,
    /// Packets delayed by the pacer.
    pub packets_delayed: u64,
}

/// Shared handle to [`AttackState`].
pub type SharedAttackState = Rc<RefCell<AttackState>>;

const TOKEN_STOP_DROPS: u64 = 1;

/// The transport-appropriate traffic monitor. [`GetCounter`] parses the
/// cleartext TLS record stream and would desynchronise (and panic) on
/// QUIC ciphertext, so the dispatch must happen before any byte reaches
/// it.
#[derive(Debug)]
enum Monitor {
    /// TLS record parser over the TCP byte stream.
    Tls(GetCounter),
    /// Datagram size classifier.
    Datagram(DatagramGetCounter),
}

impl Monitor {
    fn for_config(cfg: &AttackConfig) -> Monitor {
        match cfg.transport {
            TransportKind::Tcp => Monitor::Tls(GetCounter::new(cfg.get_min_record_body)),
            TransportKind::Quic => Monitor::Datagram(DatagramGetCounter::default()),
        }
    }

    fn on_packet(&mut self, pkt: &PacketView<'_>) -> u64 {
        match self {
            Monitor::Tls(c) => c.on_packet(pkt),
            Monitor::Datagram(c) => c.on_packet(pkt),
        }
    }

    fn gets(&self) -> u64 {
        match self {
            Monitor::Tls(c) => c.gets(),
            Monitor::Datagram(c) => c.gets(),
        }
    }

    /// Small control packets seen so far — TLS control records or small
    /// QUIC datagrams, whichever the transport makes observable.
    fn small_signals(&self) -> u64 {
        match self {
            Monitor::Tls(c) => c.small_records(),
            Monitor::Datagram(c) => c.small_datagrams(),
        }
    }
}

/// The adversary's middlebox policy. Build with [`AttackPolicy::new`],
/// hand the policy to the topology, keep the state handle.
pub struct AttackPolicy {
    cfg: AttackConfig,
    counter: Monitor,
    pacer: Pacer,
    drops: DropGate,
    triggered: bool,
    small_records_seen: u64,
    small_record_times: std::collections::VecDeque<SimTime>,
    drops_started_at: Option<SimTime>,
    state: SharedAttackState,
}

impl AttackPolicy {
    /// Creates the policy and its shared observation handle.
    pub fn new(cfg: AttackConfig) -> (AttackPolicy, SharedAttackState) {
        let state: SharedAttackState = Rc::new(RefCell::new(AttackState::default()));
        let policy = AttackPolicy {
            counter: Monitor::for_config(&cfg),
            pacer: Pacer::new(cfg.spacing),
            drops: DropGate::new(cfg.drop_rate),
            triggered: false,
            small_records_seen: 0,
            small_record_times: std::collections::VecDeque::new(),
            drops_started_at: None,
            state: state.clone(),
            cfg,
        };
        (policy, state)
    }

    fn fire_trigger(&mut self, ctx: &mut PolicyCtx<'_, '_>, now: SimTime) {
        self.triggered = true;
        let at_ms = now.as_millis();
        telemetry::emit("attack", "trigger", |ev| {
            ev.fields.push(("gets_seen", self.counter.gets().into()));
        });
        self.state
            .borrow_mut()
            .events
            .push(AttackEvent::Trigger { at_ms });
        if let Some(bw) = self.cfg.throttle {
            ctx.set_bandwidth(Direction::ClientToServer, Some(bw));
            ctx.set_bandwidth(Direction::ServerToClient, Some(bw));
            telemetry::emit("attack", "throttle_applied", |_| {});
            self.state
                .borrow_mut()
                .events
                .push(AttackEvent::ThrottleApplied { at_ms });
        }
        if self.cfg.drop_rate > 0.0 && !self.cfg.drop_duration.is_zero() {
            self.drops.open();
            self.drops_started_at = Some(now);
            self.small_record_times.clear();
            ctx.schedule_token(self.cfg.drop_duration, TOKEN_STOP_DROPS);
            telemetry::emit("attack", "drops_started", |ev| {
                ev.fields
                    .push(("duration_ms", self.cfg.drop_duration.as_millis().into()));
            });
            self.state
                .borrow_mut()
                .events
                .push(AttackEvent::DropsStarted { at_ms });
        }
    }

    fn stop_drops(&mut self, now: SimTime) {
        if !self.drops.is_open() {
            return;
        }
        self.drops.close();
        let at_ms = now.as_millis();
        telemetry::emit("attack", "drops_stopped", |ev| {
            ev.fields.push(("dropped", self.drops.dropped().into()));
        });
        let mut st = self.state.borrow_mut();
        st.events.push(AttackEvent::DropsStopped { at_ms });
        if let Some(spacing) = self.cfg.spacing_after_drops {
            self.pacer.set_spacing(Some(spacing));
            st.events.push(AttackEvent::SpacingChanged {
                at_ms,
                to_ms: spacing.as_millis(),
            });
        }
    }
}

impl MiddleboxPolicy for AttackPolicy {
    fn on_packet(
        &mut self,
        ctx: &mut PolicyCtx<'_, '_>,
        dir: Direction,
        pkt: PacketView<'_>,
    ) -> Verdict {
        let now = ctx.now();
        match dir {
            Direction::ClientToServer => {
                let new_gets = self.counter.on_packet(&pkt);
                if new_gets > 0 {
                    telemetry::emit("monitor", "get_counted", |ev| {
                        ev.seq = Some(self.counter.gets());
                        ev.fields.push(("new_gets", new_gets.into()));
                    });
                    telemetry::count("monitor.gets", new_gets);
                    self.state.borrow_mut().gets_seen = self.counter.gets();
                    if !self.triggered && self.counter.gets() >= self.cfg.trigger_get {
                        self.fire_trigger(ctx, now);
                    }
                }
                // Section IV-D: a tight burst of small control records
                // well into the lossy window is the wire signature of the
                // client's RST_STREAM volley (lone WINDOW_UPDATEs are the
                // same size but arrive in isolation) — stop dropping so
                // the follow-up GET is served cleanly.
                if self.drops.is_open() && self.cfg.stop_drops_on_reset {
                    let new_smalls = self.counter.small_signals() - self.small_records_seen;
                    let past_warmup = self
                        .drops_started_at
                        .is_some_and(|t| now.saturating_since(t) > SimDuration::from_millis(1_500));
                    if past_warmup {
                        for _ in 0..new_smalls {
                            self.small_record_times.push_back(now);
                        }
                        let (window, needed) = self.cfg.reset_signature();
                        while self
                            .small_record_times
                            .front()
                            .is_some_and(|t| now.saturating_since(*t) > window)
                        {
                            self.small_record_times.pop_front();
                        }
                        if self.small_record_times.len() >= needed {
                            self.stop_drops(now);
                        }
                    }
                }
                self.small_records_seen = self.counter.small_signals();
                if pkt.payload_len() >= PACE_MIN_PAYLOAD {
                    let delay = self.pacer.admit(now);
                    if !delay.is_zero() {
                        self.state.borrow_mut().packets_delayed += 1;
                        return Verdict::Delay(delay);
                    }
                }
                Verdict::Forward
            }
            Direction::ServerToClient => {
                if self.drops.should_drop(ctx.rng(), pkt.payload_len()) {
                    telemetry::count("attack.packets_dropped", 1);
                    self.state.borrow_mut().packets_dropped = self.drops.dropped();
                    Verdict::Drop
                } else {
                    Verdict::Forward
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut PolicyCtx<'_, '_>, token: u64) {
        if token == TOKEN_STOP_DROPS {
            self.stop_drops(ctx.now());
        }
    }

    fn name(&self) -> &'static str {
        "h2priv-attack"
    }
}

impl core::fmt::Debug for AttackPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AttackPolicy")
            .field("cfg", &self.cfg)
            .field("triggered", &self.triggered)
            .field("gets", &self.counter.gets())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_presets_match_paper_parameters() {
        let full = AttackConfig::full_attack();
        assert_eq!(full.spacing, Some(SimDuration::from_millis(50)));
        assert_eq!(full.throttle, Some(Bandwidth::mbps(800)));
        assert!((full.drop_rate - 0.8).abs() < 1e-12);
        assert_eq!(full.drop_duration, SimDuration::from_secs(6));
        assert_eq!(full.spacing_after_drops, Some(SimDuration::from_millis(80)));
        assert_eq!(full.trigger_get, 6);

        let j = AttackConfig::jitter_only(SimDuration::from_millis(25));
        assert_eq!(j.spacing, Some(SimDuration::from_millis(25)));
        assert!(j.throttle.is_none());
        assert_eq!(j.drop_rate, 0.0);

        let z = AttackConfig::jitter_only(SimDuration::ZERO);
        assert!(z.spacing.is_none(), "zero jitter means no pacing");
    }

    #[test]
    fn transport_defaults_to_tcp_and_builder_switches() {
        let full = AttackConfig::full_attack();
        assert_eq!(full.transport, TransportKind::Tcp);
        assert_eq!(full.reset_signature(), (SimDuration::from_millis(120), 3));
        let h3 = full.with_transport(TransportKind::Quic);
        assert_eq!(h3.transport, TransportKind::Quic);
        assert_eq!(h3.reset_signature(), (SimDuration::from_millis(40), 4));
    }

    #[test]
    fn state_handle_is_shared() {
        let (policy, state) = AttackPolicy::new(AttackConfig::full_attack());
        assert_eq!(state.borrow().gets_seen, 0);
        drop(policy);
        assert!(state.borrow().events.is_empty());
    }
}
