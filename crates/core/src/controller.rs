//! Network-controller building blocks — the adversary's `tc` equivalents.
//!
//! Three primitives, straight from the paper's Section IV:
//!
//! * [`Pacer`] — enforces a minimum release spacing on selected packets
//!   (the "calculated amount of network jitter" of Section IV-B: first
//!   request delayed by 0, second by *d*, third by *2d*, ... so that
//!   inter-arrival spacing is at least *d*).
//! * [`DropGate`] — drops payload-carrying packets with a configured
//!   probability while open (the targeted packet drops of Section IV-D).
//! * throttling is a single [`h2priv_netsim::middlebox::PolicyCtx`] call
//!   and needs no state; see [`crate::attack::AttackPolicy`].

use h2priv_netsim::rng::SimRng;
use h2priv_netsim::time::{SimDuration, SimTime};

/// Minimum TCP payload length for a client→server packet to be treated
/// as request-carrying and therefore paced. Pure ACKs (0 bytes) and
/// WINDOW_UPDATE-only records (~34 bytes) pass untouched; GET records
/// and their TCP retransmissions are well above this.
pub const PACE_MIN_PAYLOAD: u32 = 60;

/// How long the request stream must go quiet before the jitter backlog
/// drains (the paper's gateway scripts were re-armed between request
/// bursts; an unbounded backlog would contradict the paper's own
/// Table II gap measurements).
pub const JITTER_DRAIN_AFTER: SimDuration = SimDuration::from_millis(450);

/// The paper's jitter generator (Section IV-B): "the first request can
/// be delayed by 0 ms, second by *d* ms, the third by 2*d* ms, and so
/// on, to achieve an inter-arrival spacing of *d* ms".
///
/// Each admitted request accumulates a further `spacing` of delay, so a
/// chain of requests is both *spaced* at least `d` apart and *shifted*
/// relative to its predecessors — the property the attack needs to pull
/// follow-up requests off the object of interest. The backlog drains
/// whenever the request stream goes quiet for [`JITTER_DRAIN_AFTER`]
/// (between page phases), keeping delays bounded as in the paper's own
/// measurements. FIFO order is always preserved.
#[derive(Debug, Clone)]
pub struct Pacer {
    spacing: Option<SimDuration>,
    accumulated: SimDuration,
    last_arrival: Option<SimTime>,
    last_release: SimTime,
}

impl Pacer {
    /// A jitter generator with an optional per-request increment
    /// (`None` = pass-through).
    pub fn new(spacing: Option<SimDuration>) -> Pacer {
        Pacer {
            spacing,
            accumulated: SimDuration::ZERO,
            last_arrival: None,
            last_release: SimTime::ZERO,
        }
    }

    /// Changes the per-request increment (takes effect for later
    /// packets).
    pub fn set_spacing(&mut self, spacing: Option<SimDuration>) {
        self.spacing = spacing;
    }

    /// The current per-request increment.
    pub fn spacing(&self) -> Option<SimDuration> {
        self.spacing
    }

    /// Admits a request packet at `now`; returns the extra delay to
    /// impose (zero = forward immediately).
    pub fn admit(&mut self, now: SimTime) -> SimDuration {
        let Some(d) = self.spacing else {
            self.last_arrival = Some(now);
            self.last_release = self.last_release.max(now);
            return SimDuration::ZERO;
        };
        let idle = self
            .last_arrival
            .map(|t| now.saturating_since(t))
            .unwrap_or(SimDuration::MAX);
        if idle > JITTER_DRAIN_AFTER {
            self.accumulated = SimDuration::ZERO;
        }
        self.last_arrival = Some(now);
        self.accumulated = self.accumulated.saturating_add(d);
        // FIFO behind any backlog, and never closer than d to the
        // previous release.
        let release = (now + self.accumulated).max(self.last_release + d);
        self.last_release = release;
        release.saturating_since(now)
    }
}

/// A probabilistic drop gate for payload-carrying packets.
#[derive(Debug, Clone)]
pub struct DropGate {
    rate: f64,
    open: bool,
    dropped: u64,
    passed: u64,
}

impl DropGate {
    /// A closed gate with the given drop probability.
    ///
    /// # Panics
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn new(rate: f64) -> DropGate {
        assert!((0.0..=1.0).contains(&rate), "drop rate out of range");
        DropGate {
            rate,
            open: false,
            dropped: 0,
            passed: 0,
        }
    }

    /// Starts dropping.
    pub fn open(&mut self) {
        self.open = true;
    }

    /// Stops dropping.
    pub fn close(&mut self) {
        self.open = false;
    }

    /// `true` while dropping.
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Decides one packet's fate; `true` = drop.
    pub fn should_drop(&mut self, rng: &mut SimRng, payload_len: u32) -> bool {
        if !self.open || payload_len == 0 {
            if payload_len > 0 {
                self.passed += 1;
            }
            return false;
        }
        if rng.chance(self.rate) {
            self.dropped += 1;
            true
        } else {
            self.passed += 1;
            false
        }
    }

    /// Packets dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_accumulates_1d_2d_3d_for_bursts() {
        // Paper Section IV-B: a burst leaves spaced d apart, each
        // request shifted a further d.
        let mut p = Pacer::new(Some(SimDuration::from_millis(50)));
        let t0 = SimTime::from_millis(100);
        assert_eq!(p.admit(t0), SimDuration::from_millis(50));
        assert_eq!(p.admit(t0), SimDuration::from_millis(100));
        assert_eq!(p.admit(t0), SimDuration::from_millis(150));
    }

    #[test]
    fn jitter_shifts_chained_requests_relative_to_each_other() {
        // Two requests 200 ms apart (below the drain threshold) are
        // pulled a further d apart.
        let mut p = Pacer::new(Some(SimDuration::from_millis(50)));
        assert_eq!(
            p.admit(SimTime::from_millis(0)),
            SimDuration::from_millis(50)
        );
        assert_eq!(
            p.admit(SimTime::from_millis(200)),
            SimDuration::from_millis(100)
        );
    }

    #[test]
    fn jitter_backlog_drains_after_idle() {
        let mut p = Pacer::new(Some(SimDuration::from_millis(50)));
        for i in 0..5 {
            let _ = p.admit(SimTime::from_millis(i));
        }
        // A long quiet period resets the accumulation.
        assert_eq!(
            p.admit(SimTime::from_millis(5_000)),
            SimDuration::from_millis(50)
        );
    }

    #[test]
    fn jitter_none_passes_everything() {
        let mut p = Pacer::new(None);
        for i in 0..10 {
            assert_eq!(p.admit(SimTime::from_millis(i)), SimDuration::ZERO);
        }
    }

    #[test]
    fn jitter_preserves_fifo_across_drain_and_spacing_change() {
        let mut p = Pacer::new(Some(SimDuration::from_millis(100)));
        let first = SimTime::from_millis(0) + p.admit(SimTime::from_millis(0));
        p.set_spacing(Some(SimDuration::from_millis(10)));
        let second = SimTime::from_millis(1_000) + p.admit(SimTime::from_millis(1_000));
        assert!(second >= first, "release order must be FIFO");
    }

    #[test]
    fn drop_gate_respects_rate_and_state() {
        let mut g = DropGate::new(0.8);
        let mut rng = SimRng::new(5);
        // Closed: nothing dropped.
        assert!(!g.should_drop(&mut rng, 1_000));
        g.open();
        let drops = (0..10_000)
            .filter(|_| g.should_drop(&mut rng, 1_000))
            .count();
        assert!((7_500..8_500).contains(&drops), "drops = {drops}");
        // Pure ACKs always pass.
        assert!(!g.should_drop(&mut rng, 0));
        g.close();
        assert!(!g.should_drop(&mut rng, 1_000));
    }

    #[test]
    #[should_panic(expected = "drop rate out of range")]
    fn invalid_rate_rejected() {
        let _ = DropGate::new(1.2);
    }
}
