//! The paper's Section VII defense sketch: **priority randomization**.
//!
//! > "the client can opt for a different priority/order of object
//! > delivery every time, thereby confusing the adversary."
//!
//! Implemented as a site transformation: the result page requests the
//! eight emblem images in a random order *independent of the survey
//! result*. Sizes still identify which party each image belongs to, but
//! the position-based ranking inference — the actual secret — collapses
//! to chance. [`evaluate_defense`] quantifies that.

use crate::attack::{AttackConfig, TransportKind};
use crate::experiment::{run_site_trial, IsideWithTrial, TrialOptions};
use crate::predictor::{predict_from_trace, SizeMap};
use h2priv_h2::{ClientConfig, ServerConfig, ShapingConfig};
use h2priv_netsim::rng::SimRng;
use h2priv_trace::analysis::UnitConfig;
use h2priv_util::impl_to_json;
use h2priv_web::{IsideWith, Party, Site, Trigger};

/// A pluggable server/transport-side countermeasure. Attached to a trial
/// via [`TrialOptions::defense`]; [`Defense::None`] changes nothing —
/// no extra RNG draws, no config changes, byte-identical runs.
///
/// Each variant maps onto knobs that already live in the endpoint/site
/// layers; this enum is only the selection surface the experiment
/// matrix iterates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Defense {
    /// No countermeasure (the attacked baseline).
    None,
    /// The paper's Section VII sketch: deliver the emblem images in a
    /// random order independent of the survey result
    /// ([`randomize_image_order`]).
    PriorityRandomization,
    /// RFC 8467-style size quantisation: H2 pads every ApplicationData
    /// TLS record's plaintext to a multiple of `block`; H3 pads every
    /// stream datagram to a multiple of `block` with PADDING frames.
    RecordPadding {
        /// Pad block size in bytes.
        block: usize,
    },
    /// Constant-rate output shaping with dummy-cell cover traffic
    /// (BuFLO/Tamaraw-style; see [`ShapingConfig`]). H2/TCP only.
    Shaping,
    /// Dummy-object injection: the site serves `count` decoys sized to
    /// collide with real objects in the adversary's size map
    /// ([`Site::with_dummy_objects`]).
    DummyObjects {
        /// Number of decoy objects appended to the site.
        count: u32,
    },
    /// Connection-migration-style traffic splitting: the server
    /// alternates response datagrams between the tapped primary path
    /// and an untapped second path in bursts. H3/QUIC only.
    TrafficSplit {
        /// Datagrams per path before alternating.
        burst: u32,
    },
}

impl Defense {
    /// The canonical presets the defense matrix evaluates.
    pub const ALL: [Defense; 6] = [
        Defense::None,
        Defense::PriorityRandomization,
        Defense::RecordPadding { block: 4_096 },
        Defense::Shaping,
        Defense::DummyObjects { count: 4 },
        Defense::TrafficSplit { burst: 8 },
    ];

    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Defense::None => "none",
            Defense::PriorityRandomization => "priority_randomization",
            Defense::RecordPadding { .. } => "record_padding",
            Defense::Shaping => "shaping",
            Defense::DummyObjects { .. } => "dummy_objects",
            Defense::TrafficSplit { .. } => "traffic_split",
        }
    }

    /// Whether the defense is implementable on the given transport.
    /// Shaping lives in the H2 frame scheduler (QUIC's own round-robin
    /// fills that role); traffic splitting needs QUIC's connection-ID
    /// routing (a TCP connection cannot hop paths mid-stream).
    pub fn supported_on(&self, transport: TransportKind) -> bool {
        match self {
            Defense::Shaping => transport == TransportKind::Tcp,
            Defense::TrafficSplit { .. } => transport == TransportKind::Quic,
            _ => true,
        }
    }

    /// Applies the endpoint-config side of the defense. `None` and the
    /// site-transformation defenses leave the configs untouched.
    pub fn configure(&self, server: &mut ServerConfig, client: &mut ClientConfig) {
        match *self {
            Defense::RecordPadding { block } => {
                server.pad_block = block;
                // The H2 client must unframe padded records; the QUIC
                // client ignores PADDING frames natively and never
                // reads this flag.
                client.strip_padding = true;
            }
            Defense::Shaping => server.shaping = Some(ShapingConfig::default()),
            Defense::TrafficSplit { burst } => server.split_burst = burst,
            Defense::None | Defense::PriorityRandomization | Defense::DummyObjects { .. } => {}
        }
    }

    /// Applies the site-transformation side of the defense. For plain
    /// config defenses this is `iw.site.clone()`, exactly what an
    /// undefended trial serves.
    pub fn transform_site(&self, iw: &IsideWith, seed: u64) -> Site {
        match *self {
            Defense::PriorityRandomization => {
                let mut shuffle_rng = SimRng::new(seed ^ 0xDEF5);
                randomize_image_order(iw, &mut shuffle_rng)
            }
            Defense::DummyObjects { count } => iw.site.with_dummy_objects(count),
            _ => iw.site.clone(),
        }
    }
}

/// Rebuilds an isidewith site so the image burst requests the emblems in
/// a freshly randomized order (delivery order ⟂ result order), keeping
/// the measured burst gaps.
///
/// Only the emblem images the plan actually requests participate in the
/// permutation; images missing from the plan (a truncated degenerate
/// plan, or a site rewritten by another defense transformation) are
/// skipped rather than panicking. A site whose plan contains none of the
/// images is returned unchanged. For a fully-planned site the RNG draw
/// sequence — and therefore the produced order — is identical to the
/// original implementation.
pub fn randomize_image_order(iw: &IsideWith, rng: &mut SimRng) -> Site {
    let site = iw.site.clone();
    // (image, plan position) for the images that are actually planned,
    // in request order.
    let planned: Vec<(h2priv_web::ObjectId, usize)> = iw
        .images
        .iter()
        .filter_map(|img| site.plan_position(*img).map(|pos| (*img, pos)))
        .collect();
    if planned.is_empty() {
        return site;
    }
    let mut order: Vec<_> = planned.iter().map(|(img, _)| *img).collect();
    for i in (1..order.len()).rev() {
        let j = rng.range_u64(0, i as u64) as usize;
        order.swap(i, j);
    }
    // The image plan steps are contiguous; rewrite their objects in the
    // new order, preserving each step's trigger/gap structure.
    let positions: Vec<usize> = planned.iter().map(|(_, pos)| *pos).collect();
    let mut plan = site.plan.clone();
    for (slot, pos) in positions.iter().enumerate() {
        plan[*pos].object = order[slot];
    }
    // Fix up AfterRequest chains inside the burst so they reference the
    // new predecessor.
    for w in positions.windows(2) {
        let prev_obj = plan[w[0]].object;
        if let Trigger::AfterRequest { prev, .. } = &mut plan[w[1]].trigger {
            *prev = prev_obj;
        }
    }
    // Anything after the burst that chained off the old last planned
    // image.
    let old_last = planned.last().expect("non-empty").0;
    let new_last = plan[*positions.last().expect("non-empty")].object;
    for (i, step) in plan.iter_mut().enumerate() {
        if positions.contains(&i) {
            continue;
        }
        if let Trigger::AfterRequest { prev, .. } = &mut step.trigger {
            if *prev == old_last {
                *prev = new_last;
            }
        }
    }
    Site::new(site.name.clone(), site.objects().to_vec(), plan)
}

/// Aggregate defense evaluation.
#[derive(Debug, Clone)]
pub struct DefenseReport {
    /// Mean per-position ranking accuracy with the plain site (the
    /// attack working as in Table II).
    pub accuracy_undefended_pct: f64,
    /// Mean per-position ranking accuracy against priority
    /// randomization.
    pub accuracy_defended_pct: f64,
    /// % of images still *identified by size* under the defense (the
    /// defense hides the order, not the identities).
    pub identified_defended_pct: f64,
    /// Trials per arm.
    pub trials: usize,
}

impl_to_json!(struct PushDefenseReport {
    accuracy_plain_pct,
    accuracy_pushed_pct,
    identified_pushed_pct,
    trials,
});

impl_to_json!(struct DefenseReport {
    accuracy_undefended_pct,
    accuracy_defended_pct,
    identified_defended_pct,
    trials,
});

/// Runs `trials` full attacks against both the plain and the defended
/// site and compares ranking accuracy.
pub fn evaluate_defense(trials: usize, base_seed: u64) -> DefenseReport {
    let mut undefended_hits = 0usize;
    let mut defended_hits = 0usize;
    let mut defended_identified = 0usize;
    let positions = 8usize;

    for t in 0..trials {
        let seed = base_seed + 5_000_000 + t as u64;
        let mut perm_rng = SimRng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
        let iw = IsideWith::generate(&mut perm_rng);

        // Undefended arm.
        let opts = TrialOptions::new(seed, Some(AttackConfig::full_attack()));
        let result = run_site_trial(iw.site.clone(), &opts);
        let prediction = result.predict(&SizeMap::isidewith());
        let trial = IsideWithTrial {
            iw: iw.clone(),
            result,
            prediction,
        };
        undefended_hits += trial.sequence_success().iter().filter(|b| **b).count();

        // Defended arm: same ground truth, shuffled delivery order.
        let mut shuffle_rng = SimRng::new(seed ^ 0xDEF5);
        let defended_site = randomize_image_order(&iw, &mut shuffle_rng);
        let result = run_site_trial(defended_site, &opts);
        let prediction = predict_from_trace(
            &result.trace,
            &SizeMap::isidewith(),
            &UnitConfig::default(),
            None,
        );
        // Ranking inference: does position i of the *inferred* order
        // match the true result order? (The adversary does not know the
        // delivery order was shuffled.)
        let inferred = prediction.party_sequence();
        for (i, truth) in iw.result_order.iter().enumerate() {
            if inferred.get(i) == Some(truth) {
                defended_hits += 1;
            }
        }
        defended_identified += Party::ALL
            .iter()
            .filter(|p| prediction.contains(&p.to_string()))
            .count();
    }

    let denom = (trials * positions) as f64;
    DefenseReport {
        accuracy_undefended_pct: 100.0 * undefended_hits as f64 / denom,
        accuracy_defended_pct: 100.0 * defended_hits as f64 / denom,
        identified_defended_pct: 100.0 * defended_identified as f64 / denom,
        trials,
    }
}

/// Aggregate report for the server-push defense (paper Section VII:
/// "Several HTTP/2 features such as server push ... can be leveraged
/// for privacy").
#[derive(Debug, Clone)]
pub struct PushDefenseReport {
    /// Mean per-position ranking accuracy without push.
    pub accuracy_plain_pct: f64,
    /// Mean per-position ranking accuracy with the emblems pushed in
    /// canonical (non-result) order.
    pub accuracy_pushed_pct: f64,
    /// % of emblem images still identified by size under push.
    pub identified_pushed_pct: f64,
    /// Trials per arm.
    pub trials: usize,
}

/// Evaluates pushing the 8 emblem images (canonical order) with the
/// result HTML against the full attack. Pushed objects have no GETs for
/// the adversary's pacer to hold, and their delivery order no longer
/// encodes the survey result.
pub fn evaluate_push_defense(trials: usize, base_seed: u64) -> PushDefenseReport {
    let mut plain_hits = 0usize;
    let mut pushed_hits = 0usize;
    let mut pushed_identified = 0usize;
    let positions = 8usize;

    for t in 0..trials {
        let seed = base_seed + 6_000_000 + t as u64;
        let mut perm_rng = SimRng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
        let iw = IsideWith::generate(&mut perm_rng);

        // Plain arm.
        let opts = TrialOptions::new(seed, Some(AttackConfig::full_attack()));
        let result = run_site_trial(iw.site.clone(), &opts);
        let prediction = result.predict(&SizeMap::isidewith());
        let trial = IsideWithTrial {
            iw: iw.clone(),
            result,
            prediction,
        };
        plain_hits += trial.sequence_success().iter().filter(|b| **b).count();

        // Push arm: emblems pushed with the HTML, canonical order.
        let mut push_opts = TrialOptions::new(seed, Some(AttackConfig::full_attack()));
        let canonical: Vec<_> = Party::ALL.iter().map(|p| iw.image_of(*p)).collect();
        push_opts.server.push_manifest = vec![(iw.html, canonical)];
        let result = run_site_trial(iw.site.clone(), &push_opts);
        let prediction = result.predict(&SizeMap::isidewith());
        let trial = IsideWithTrial {
            iw: iw.clone(),
            result,
            prediction,
        };
        pushed_hits += trial.sequence_success().iter().filter(|b| **b).count();
        pushed_identified += trial
            .image_outcomes()
            .iter()
            .filter(|o| o.identified)
            .count();
    }

    let denom = (trials * positions) as f64;
    PushDefenseReport {
        accuracy_plain_pct: 100.0 * plain_hits as f64 / denom,
        accuracy_pushed_pct: 100.0 * pushed_hits as f64 / denom,
        identified_pushed_pct: 100.0 * pushed_identified as f64 / denom,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randomized_site_keeps_inventory_and_gap_structure() {
        let mut rng = SimRng::new(1);
        let iw = IsideWith::generate(&mut rng);
        let defended = randomize_image_order(&iw, &mut rng);
        assert_eq!(defended.len(), iw.site.len());
        // The image burst still requests exactly the 8 emblem objects.
        let burst: Vec<_> = defended
            .plan
            .iter()
            .filter(|s| iw.images.contains(&s.object))
            .map(|s| s.object)
            .collect();
        assert_eq!(burst.len(), 8);
        let mut sorted = burst.clone();
        sorted.sort();
        let mut expect = iw.images.to_vec();
        expect.sort();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn shuffle_changes_order_for_some_seed() {
        let mut rng = SimRng::new(2);
        let iw = IsideWith::generate(&mut rng);
        let orders: Vec<Vec<_>> = (0..8)
            .map(|s| {
                let mut rng = SimRng::new(s);
                let site = randomize_image_order(&iw, &mut rng);
                site.plan
                    .iter()
                    .filter(|st| iw.images.contains(&st.object))
                    .map(|st| st.object)
                    .collect()
            })
            .collect();
        assert!(orders.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn shuffle_is_a_valid_permutation() {
        let mut rng = SimRng::new(7);
        let iw = IsideWith::generate(&mut rng);
        let defended = randomize_image_order(&iw, &mut rng);
        let burst: Vec<_> = defended
            .plan
            .iter()
            .filter(|s| iw.images.contains(&s.object))
            .map(|s| s.object)
            .collect();
        // Every emblem exactly once: a permutation, not a re-sampling.
        assert_eq!(burst.len(), iw.images.len());
        for img in iw.images.iter() {
            assert_eq!(burst.iter().filter(|o| *o == img).count(), 1);
        }
        // And the non-image steps are untouched.
        let others = |site: &Site| -> Vec<_> {
            site.plan
                .iter()
                .filter(|s| !iw.images.contains(&s.object))
                .map(|s| s.object)
                .collect::<Vec<_>>()
        };
        assert_eq!(others(&defended), others(&iw.site));
    }

    #[test]
    fn shuffle_is_deterministic_under_fixed_seed() {
        let mut rng = SimRng::new(11);
        let iw = IsideWith::generate(&mut rng);
        let order = |seed: u64| -> Vec<_> {
            let mut rng = SimRng::new(seed);
            randomize_image_order(&iw, &mut rng)
                .plan
                .iter()
                .filter(|s| iw.images.contains(&s.object))
                .map(|s| s.object)
                .collect::<Vec<_>>()
        };
        assert_eq!(order(99), order(99));
        // At least one other seed produces a different order, so the
        // equality above is not vacuous.
        assert!((0..8).any(|s| order(s) != order(99)));
    }

    #[test]
    fn shuffle_preserves_gap_and_trigger_structure() {
        let mut rng = SimRng::new(13);
        let iw = IsideWith::generate(&mut rng);
        let defended = randomize_image_order(&iw, &mut rng);
        // Position by position, the plan keeps the same trigger shape and
        // measured gaps — only the object identities move. The burst gaps
        // are what the paper's Table II measures; the defense must not
        // disturb them.
        assert_eq!(defended.plan.len(), iw.site.plan.len());
        for (orig, new) in iw.site.plan.iter().zip(defended.plan.iter()) {
            match (&orig.trigger, &new.trigger) {
                (Trigger::AtStart { gap: a }, Trigger::AtStart { gap: b }) => {
                    assert_eq!(a, b);
                }
                (Trigger::AfterRequest { gap: a, .. }, Trigger::AfterRequest { gap: b, .. }) => {
                    assert_eq!(a, b)
                }
                (o, n) => assert_eq!(
                    std::mem::discriminant(o),
                    std::mem::discriminant(n),
                    "trigger kind changed"
                ),
            }
        }
    }

    #[test]
    fn degenerate_plan_with_missing_images_is_skipped_not_panicked() {
        // A transformed site whose plan omits some emblem steps (the
        // shape dummy-object/defense rewrites can produce) must shuffle
        // the planned subset and leave everything else alone.
        let mut rng = SimRng::new(21);
        let iw = IsideWith::generate(&mut rng);
        let dropped = iw.images[3];
        let plan: Vec<_> = iw
            .site
            .plan
            .iter()
            .filter(|s| s.object != dropped)
            .copied()
            .collect();
        let degenerate = Site::new(
            iw.site.name.clone(),
            iw.site.objects().to_vec(),
            plan.clone(),
        );
        let degenerate_iw = IsideWith {
            site: degenerate,
            ..iw.clone()
        };
        let defended = randomize_image_order(&degenerate_iw, &mut rng);
        let burst: Vec<_> = defended
            .plan
            .iter()
            .filter(|s| iw.images.contains(&s.object))
            .map(|s| s.object)
            .collect();
        // The seven planned emblems are still a permutation; the dropped
        // one never reappears.
        assert_eq!(burst.len(), 7);
        assert!(!burst.contains(&dropped));
        let mut sorted = burst.clone();
        sorted.sort();
        let mut expect: Vec<_> = iw
            .images
            .iter()
            .copied()
            .filter(|o| *o != dropped)
            .collect();
        expect.sort();
        assert_eq!(sorted, expect);
        assert_eq!(defended.plan.len(), plan.len());
    }

    #[test]
    fn plan_without_any_images_passes_through_unchanged() {
        let mut rng = SimRng::new(23);
        let iw = IsideWith::generate(&mut rng);
        let plan: Vec<_> = iw
            .site
            .plan
            .iter()
            .filter(|s| !iw.images.contains(&s.object))
            .copied()
            .collect();
        let degenerate_iw = IsideWith {
            site: Site::new(
                iw.site.name.clone(),
                iw.site.objects().to_vec(),
                plan.clone(),
            ),
            ..iw
        };
        let defended = randomize_image_order(&degenerate_iw, &mut rng);
        assert_eq!(defended.plan, plan);
    }

    #[test]
    fn defended_plan_chains_are_consistent() {
        let mut rng = SimRng::new(3);
        let iw = IsideWith::generate(&mut rng);
        let defended = randomize_image_order(&iw, &mut rng);
        // Every AfterRequest predecessor must appear earlier in the plan.
        for (i, step) in defended.plan.iter().enumerate() {
            if let Trigger::AfterRequest { prev, .. } = step.trigger {
                let prev_pos = defended
                    .plan
                    .iter()
                    .position(|s| s.object == prev)
                    .expect("predecessor planned");
                assert!(prev_pos < i, "step {i} depends on later step {prev_pos}");
            }
        }
    }
}
