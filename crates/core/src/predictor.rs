//! The object-prediction module — the Python-script component of the
//! paper's adversary (Section V).
//!
//! Inputs: the captured trace (sizes + timing only). Pipeline:
//! reassemble the server→client record stream, segment it into
//! transmission units ([`h2priv_trace::analysis`]), estimate each unit's
//! object size, and match the estimates against a **pre-compiled size →
//! identity map** (the paper: "our adversary has a pre-compiled list of
//! image size to political party mapping").

use h2priv_netsim::packet::Direction;
use h2priv_netsim::time::SimTime;
use h2priv_trace::analysis::{segment_units, TransmissionUnit, UnitConfig};
use h2priv_trace::capture::Trace;
use h2priv_trace::datagram::{segment_datagram_units, DatagramUnitConfig};
use h2priv_trace::reassembly::{reassemble_with, ReassemblyScratch};
use h2priv_util::impl_to_json;
use h2priv_util::telemetry;
use h2priv_web::isidewith::{PARTY_IMAGE_SIZES, RESULT_HTML_SIZE};
use h2priv_web::Party;

/// The label the isidewith size map uses for the result HTML.
pub const HTML_LABEL: &str = "result-html";

/// A size → identity lookup with relative-tolerance matching.
#[derive(Debug, Clone)]
pub struct SizeMap {
    entries: Vec<(String, u64)>,
    tolerance: f64,
}

impl_to_json!(struct SizeMap { entries, tolerance });

impl SizeMap {
    /// Builds a map with the given relative tolerance (e.g. `0.03` for
    /// ±3 %).
    ///
    /// # Panics
    /// Panics if `tolerance` is negative or entries are empty.
    pub fn new(entries: Vec<(String, u64)>, tolerance: f64) -> SizeMap {
        assert!(tolerance >= 0.0, "negative tolerance");
        assert!(!entries.is_empty(), "empty size map");
        SizeMap { entries, tolerance }
    }

    /// The paper's pre-compiled isidewith map: 8 party emblems plus the
    /// result HTML, ±3 % tolerance.
    pub fn isidewith() -> SizeMap {
        let mut entries: Vec<(String, u64)> = Party::ALL
            .iter()
            .zip(PARTY_IMAGE_SIZES)
            .map(|(p, s)| (p.to_string(), s))
            .collect();
        entries.push((HTML_LABEL.to_string(), RESULT_HTML_SIZE));
        SizeMap::new(entries, 0.03)
    }

    /// Identifies an estimated size; `Some` only when exactly one entry
    /// matches within tolerance.
    pub fn identify(&self, estimated: u64) -> Option<&str> {
        let mut hit: Option<&str> = None;
        for (label, size) in &self.entries {
            let lo = *size as f64 * (1.0 - self.tolerance);
            let hi = *size as f64 * (1.0 + self.tolerance);
            if (estimated as f64) >= lo && (estimated as f64) <= hi {
                if hit.is_some() {
                    return None; // ambiguous
                }
                hit = Some(label);
            }
        }
        hit
    }

    /// The known size for a label.
    pub fn size_of(&self, label: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, s)| *s)
    }

    /// The (label, size) entries, for subset matching
    /// ([`crate::partial`]).
    pub fn entries(&self) -> &[(String, u64)] {
        &self.entries
    }
}

/// One segmented unit plus the predictor's verdict.
#[derive(Debug, Clone)]
pub struct IdentifiedUnit {
    /// The transmission unit.
    pub unit: TransmissionUnit,
    /// Identified label, if the size matched uniquely.
    pub label: Option<String>,
}

impl_to_json!(struct IdentifiedUnit { unit, label });

/// The predictor's output for one trace.
#[derive(Debug, Clone, Default)]
pub struct Prediction {
    /// Units in time order with identification verdicts.
    pub units: Vec<IdentifiedUnit>,
}

impl_to_json!(struct Prediction { units });

impl Prediction {
    /// Identified labels in time order (repeats possible — duplicate
    /// copies of an object produce repeated matches).
    pub fn labels(&self) -> Vec<&str> {
        self.units
            .iter()
            .filter_map(|u| u.label.as_deref())
            .collect()
    }

    /// `true` if some unit was identified as `label`.
    pub fn contains(&self, label: &str) -> bool {
        self.units.iter().any(|u| u.label.as_deref() == Some(label))
    }

    /// The inferred party ranking: first occurrence of each party label
    /// in time order (the paper's Table II "all objects" inference).
    pub fn party_sequence(&self) -> Vec<Party> {
        let mut seen = Vec::new();
        for label in self.labels() {
            if let Some(party) = Party::ALL.iter().find(|p| p.to_string() == label) {
                if !seen.contains(party) {
                    seen.push(*party);
                }
            }
        }
        seen
    }

    /// A copy of this prediction restricted to units starting at or
    /// after `t` (e.g. the adversary's own post-attack window).
    pub fn after(&self, t: SimTime) -> Prediction {
        Prediction {
            units: self
                .units
                .iter()
                .filter(|u| u.unit.start >= t)
                .cloned()
                .collect(),
        }
    }

    /// The ranking inference the paper's adversary actually performs:
    /// the 8 emblem images arrive as one rapid burst (the adversary set
    /// the request spacing itself), so the predictor looks for the
    /// densest run of party-labelled units — consecutive labelled units
    /// separated by less than `max_gap` — and reads the ranking off it.
    /// Spurious isolated size collisions elsewhere in the trace do not
    /// perturb it.
    pub fn party_burst_sequence(&self, max_gap: h2priv_netsim::time::SimDuration) -> Vec<Party> {
        let labelled: Vec<(SimTime, Party)> = self
            .units
            .iter()
            .filter_map(|u| {
                let label = u.label.as_deref()?;
                let party = Party::ALL.iter().find(|p| p.to_string() == label)?;
                Some((u.unit.start, *party))
            })
            .collect();
        // Split into bursts by the gap between consecutive labelled units.
        let mut bursts: Vec<Vec<Party>> = Vec::new();
        let mut last_t: Option<SimTime> = None;
        for (t, party) in labelled {
            let new_burst = match last_t {
                Some(prev) => t.saturating_since(prev) > max_gap,
                None => true,
            };
            if new_burst {
                bursts.push(Vec::new());
            }
            let burst = bursts.last_mut().expect("burst exists");
            if !burst.contains(&party) {
                burst.push(party);
            }
            last_t = Some(t);
        }
        // The image burst is the one with the most distinct parties;
        // prefer the later one on ties (the attack serializes the end of
        // the page load).
        bursts
            .into_iter()
            .enumerate()
            .max_by_key(|(i, b)| (b.len(), *i))
            .map(|(_, b)| b)
            .unwrap_or_default()
    }
}

/// Runs the prediction pipeline over a captured trace.
///
/// `from` restricts analysis to units starting at/after the given time
/// (e.g. only post-reset traffic); `None` analyses everything.
pub fn predict_from_trace(
    trace: &Trace,
    map: &SizeMap,
    unit_cfg: &UnitConfig,
    from: Option<SimTime>,
) -> Prediction {
    // One reassembly scratch per worker thread: consecutive trials on
    // the same thread reuse the stream-assembly allocation instead of
    // growing a fresh multi-megabyte buffer each time.
    thread_local! {
        static SCRATCH: std::cell::RefCell<ReassemblyScratch> =
            std::cell::RefCell::new(ReassemblyScratch::default());
    }
    let view = SCRATCH.with(|scratch| {
        reassemble_with(
            &mut scratch.borrow_mut(),
            trace,
            Direction::ServerToClient,
            false,
        )
    });
    let units = segment_units(&view.records, unit_cfg);
    let units: Vec<IdentifiedUnit> = units
        .into_iter()
        .filter(|u| from.is_none_or(|t| u.start >= t))
        .map(|unit| IdentifiedUnit {
            label: map.identify(unit.estimated_payload).map(str::to_string),
            unit,
        })
        .collect();
    emit_prediction_telemetry(&units);
    Prediction { units }
}

/// Records each unit-identification decision: how many transmission
/// units the segmenter produced and which of them matched a size-map
/// label — the predictor's entire decision surface.
fn emit_prediction_telemetry(units: &[IdentifiedUnit]) {
    telemetry::count("predictor.units", units.len() as u64);
    telemetry::count(
        "predictor.identified",
        units.iter().filter(|u| u.label.is_some()).count() as u64,
    );
    if telemetry::trace_enabled() {
        for (i, u) in units.iter().enumerate() {
            telemetry::emit("predictor", "unit", |ev| {
                ev.seq = Some(i as u64);
                ev.fields
                    .push(("estimated_payload", u.unit.estimated_payload.into()));
                ev.fields.push((
                    "label",
                    u.label.clone().unwrap_or_else(|| "unmatched".into()).into(),
                ));
            });
        }
    }
}

/// Runs the prediction pipeline over a QUIC trace using the
/// datagram-delimiter segmentation ([`h2priv_trace::datagram`]) — no
/// record reassembly is possible, so units come straight from datagram
/// sizes and timing.
pub fn predict_from_datagram_trace(
    trace: &Trace,
    map: &SizeMap,
    unit_cfg: &DatagramUnitConfig,
    from: Option<SimTime>,
) -> Prediction {
    let units = segment_datagram_units(trace, Direction::ServerToClient, unit_cfg);
    let units: Vec<IdentifiedUnit> = units
        .into_iter()
        .filter(|u| from.is_none_or(|t| u.start >= t))
        .map(|unit| IdentifiedUnit {
            label: map.identify(unit.estimated_payload).map(str::to_string),
            unit,
        })
        .collect();
    emit_prediction_telemetry(&units);
    Prediction { units }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isidewith_map_identifies_every_party_uniquely() {
        let map = SizeMap::isidewith();
        for (party, size) in Party::ALL.iter().zip(PARTY_IMAGE_SIZES) {
            assert_eq!(map.identify(size), Some(party.to_string().as_str()));
            // 1% off still matches.
            assert_eq!(
                map.identify(size + size / 100),
                Some(party.to_string()).as_deref()
            );
        }
        assert_eq!(map.identify(RESULT_HTML_SIZE), Some(HTML_LABEL));
    }

    #[test]
    fn far_off_sizes_do_not_match() {
        let map = SizeMap::isidewith();
        assert_eq!(map.identify(1_000_000), None);
        assert_eq!(map.identify(100), None);
    }

    #[test]
    fn ambiguous_sizes_are_rejected() {
        let map = SizeMap::new(vec![("a".into(), 1_000), ("b".into(), 1_030)], 0.03);
        // 1015 is within 3% of both.
        assert_eq!(map.identify(1_015), None);
        assert_eq!(map.identify(990), Some("a"));
    }

    #[test]
    fn party_sequence_dedupes_repeats() {
        let mk = |label: &str, at: u64| IdentifiedUnit {
            unit: TransmissionUnit {
                start: SimTime::from_millis(at),
                end: SimTime::from_millis(at + 1),
                estimated_payload: 0,
                records: 1,
            },
            label: Some(label.into()),
        };
        let p = Prediction {
            units: vec![
                mk("green", 1),
                mk(HTML_LABEL, 2),
                mk("democratic", 3),
                mk("green", 4), // duplicate copy
                mk("reform", 5),
            ],
        };
        assert_eq!(
            p.party_sequence(),
            vec![Party::Green, Party::Democratic, Party::Reform]
        );
        assert!(p.contains(HTML_LABEL));
        assert!(!p.contains("socialist"));
    }

    #[test]
    #[should_panic(expected = "empty size map")]
    fn empty_map_rejected() {
        let _ = SizeMap::new(vec![], 0.03);
    }
}
