//! Campaign-level experiment enumeration: the bridge between an
//! experiment's `(batch, trial)` space and the sharded out-of-process
//! runner in `h2priv-campaign`.
//!
//! A [`CampaignSpec`] names an experiment, fixes its trial budget and
//! base seed, and enumerates its cells — one `(batch, trial)` pair per
//! trial, globally ordered batch-major. Worker processes are handed
//! half-open cell ranges of that enumeration ([`CampaignSpec::cell`]
//! maps a global index back to its pair), run each cell as a pure
//! function of the spec ([`CampaignSpec::run_cell`]), and emit the
//! result as a JSON payload of exactly-representable types (integers
//! and booleans only — floats never cross the process boundary, so a
//! journal round-trip cannot perturb a single bit).
//!
//! The [`CampaignFolder`] consumes payloads strictly in `(batch,
//! trial)` order and reproduces, through the *same* accumulator code
//! the in-process experiments use, the exact report bytes a
//! single-process run writes. Memory is bounded by one open batch
//! accumulator plus the finished rows — never by the trial count.

use crate::experiments::{
    defense_matrix_batches, defense_matrix_trial, robustness_trial, table1_trial, DefenseAccum,
    DefenseMatrixRow, DefenseTrial, RobustTrial, RobustnessAccum, RobustnessRow, Table1Accum,
    Table1Row, ROBUSTNESS_INTENSITIES, TABLE1_JITTERS_MS,
};
use crate::report::to_json;
use h2priv_util::json::Json;

/// The experiments the campaign runner can shard, by CLI name.
pub const CAMPAIGN_EXPERIMENTS: &[&str] = &["robustness_sweep", "table1", "defense_matrix"];

/// One batch of a campaign: a label for operators and a trial budget.
#[derive(Debug, Clone)]
pub struct BatchSpec {
    /// Stable label (used in journal headers and progress lines).
    pub label: String,
    /// Trials in this batch.
    pub trials: u64,
}

/// A fully-specified campaign: experiment, seed, and cell enumeration.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Experiment name (an entry of [`CAMPAIGN_EXPERIMENTS`]).
    pub experiment: String,
    /// Trials per batch.
    pub trials: u64,
    /// The experiment's base seed (fixed per experiment so campaign
    /// output is comparable with the standalone bench bin).
    pub base_seed: u64,
    /// The batches, in sweep order.
    pub batches: Vec<BatchSpec>,
}

impl CampaignSpec {
    /// Builds the spec for a named experiment, or `None` for an unknown
    /// name.
    pub fn for_experiment(name: &str, trials: u64) -> Option<CampaignSpec> {
        match name {
            "robustness_sweep" => Some(CampaignSpec {
                experiment: name.to_string(),
                trials,
                base_seed: 81_000,
                batches: ROBUSTNESS_INTENSITIES
                    .iter()
                    .map(|x| BatchSpec {
                        label: format!("intensity_{x}"),
                        trials,
                    })
                    .collect(),
            }),
            "table1" => Some(CampaignSpec {
                experiment: name.to_string(),
                trials,
                base_seed: 11_000,
                batches: TABLE1_JITTERS_MS
                    .iter()
                    .map(|ms| BatchSpec {
                        label: format!("jitter_{ms}ms"),
                        trials,
                    })
                    .collect(),
            }),
            "defense_matrix" => Some(CampaignSpec {
                experiment: name.to_string(),
                trials,
                base_seed: 83_000,
                batches: defense_matrix_batches()
                    .iter()
                    .map(|b| BatchSpec {
                        label: format!("{}/{}/{}", b.attack, b.transport, b.defense.label()),
                        trials,
                    })
                    .collect(),
            }),
            _ => None,
        }
    }

    /// The bench binary that hosts this experiment's `--shard-worker`
    /// mode.
    pub fn worker_bin(&self) -> &'static str {
        match self.experiment.as_str() {
            "robustness_sweep" => "robustness_sweep",
            "table1" => "table1_jitter",
            "defense_matrix" => "defense_matrix",
            other => unreachable!("unknown campaign experiment {other}"),
        }
    }

    /// Total cells in the campaign.
    pub fn total_cells(&self) -> u64 {
        self.batches.iter().map(|b| b.trials).sum()
    }

    /// Maps a global cell index to its `(batch, trial)` pair.
    ///
    /// # Panics
    /// Panics when `index` is out of range.
    pub fn cell(&self, index: u64) -> (u64, u64) {
        let mut remaining = index;
        for (bi, b) in self.batches.iter().enumerate() {
            if remaining < b.trials {
                return (bi as u64, remaining);
            }
            remaining -= b.trials;
        }
        panic!(
            "cell index {index} out of range ({} cells)",
            self.total_cells()
        );
    }

    /// Maps a `(batch, trial)` pair back to its global cell index.
    ///
    /// # Panics
    /// Panics when the pair is out of range.
    pub fn index(&self, batch: u64, trial: u64) -> u64 {
        assert!(
            (batch as usize) < self.batches.len() && trial < self.batches[batch as usize].trials,
            "cell ({batch}, {trial}) out of range"
        );
        self.batches[..batch as usize]
            .iter()
            .map(|b| b.trials)
            .sum::<u64>()
            + trial
    }

    /// Runs one cell and returns its journal payload.
    pub fn run_cell(&self, batch: u64, trial: u64) -> Json {
        match self.experiment.as_str() {
            "robustness_sweep" => {
                let intensity = ROBUSTNESS_INTENSITIES[batch as usize];
                let s = robustness_trial(self.base_seed, batch as usize, intensity, trial as usize);
                robust_payload(&s)
            }
            "table1" => {
                let s = table1_trial(self.base_seed, batch as usize, trial as usize);
                table1_payload(&s)
            }
            "defense_matrix" => {
                let s = defense_matrix_trial(self.base_seed, batch as usize, trial as usize);
                defense_payload(&s)
            }
            other => unreachable!("unknown campaign experiment {other}"),
        }
    }

    /// The identity fields a journal header must match for `--resume`
    /// to accept it.
    pub fn header_fields(&self) -> Vec<(String, Json)> {
        vec![
            ("experiment".to_string(), Json::Str(self.experiment.clone())),
            ("trials".to_string(), Json::UInt(self.trials)),
            ("base_seed".to_string(), Json::UInt(self.base_seed)),
            ("cells".to_string(), Json::UInt(self.total_cells())),
        ]
    }

    /// A fresh incremental folder for this campaign.
    pub fn folder(&self) -> CampaignFolder {
        let fold = match self.experiment.as_str() {
            "robustness_sweep" => Fold::Robustness {
                accum: RobustnessAccum::default(),
                rows: Vec::new(),
            },
            "table1" => Fold::Table1 {
                accum: Table1Accum::default(),
                rows: Vec::new(),
                baseline_retrans: None,
            },
            "defense_matrix" => Fold::DefenseMatrix {
                accum: DefenseAccum::default(),
                rows: Vec::new(),
                baseline: None,
            },
            other => unreachable!("unknown campaign experiment {other}"),
        };
        CampaignFolder {
            spec: self.clone(),
            next: 0,
            fold,
        }
    }
}

fn robust_payload(s: &RobustTrial) -> Json {
    Json::Obj(vec![
        ("outcome".to_string(), Json::UInt(s.outcome_idx as u64)),
        ("retries".to_string(), Json::UInt(s.retries)),
        ("serialized".to_string(), Json::Bool(s.serialized)),
        ("identified".to_string(), Json::Bool(s.identified)),
        ("success".to_string(), Json::Bool(s.success)),
        ("retrans".to_string(), Json::UInt(s.retrans)),
        ("fault_drops".to_string(), Json::UInt(s.fault_drops)),
    ])
}

fn robust_from_payload(p: &Json) -> Result<RobustTrial, String> {
    let u = |k: &str| {
        p.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("payload missing integer field {k:?}"))
    };
    let b = |k: &str| {
        p.get(k)
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("payload missing bool field {k:?}"))
    };
    let outcome_idx = u("outcome")? as usize;
    if outcome_idx > 3 {
        return Err(format!("payload outcome index {outcome_idx} out of range"));
    }
    Ok(RobustTrial {
        outcome_idx,
        retries: u("retries")?,
        serialized: b("serialized")?,
        identified: b("identified")?,
        success: b("success")?,
        retrans: u("retrans")?,
        fault_drops: u("fault_drops")?,
    })
}

fn table1_payload(s: &crate::experiments::Table1Trial) -> Json {
    Json::Obj(vec![
        ("serialized".to_string(), Json::Bool(s.serialized)),
        ("retrans".to_string(), Json::UInt(s.retrans)),
        ("rerequests".to_string(), Json::UInt(s.rerequests)),
    ])
}

fn table1_from_payload(p: &Json) -> Result<crate::experiments::Table1Trial, String> {
    Ok(crate::experiments::Table1Trial {
        serialized: p
            .get("serialized")
            .and_then(Json::as_bool)
            .ok_or("payload missing bool field \"serialized\"")?,
        retrans: p
            .get("retrans")
            .and_then(Json::as_u64)
            .ok_or("payload missing integer field \"retrans\"")?,
        rerequests: p
            .get("rerequests")
            .and_then(Json::as_u64)
            .ok_or("payload missing integer field \"rerequests\"")?,
    })
}

/// Renders the robustness sweep's report bytes — the exact contents the
/// `robustness_sweep` bin writes to `results/robustness_sweep.json`.
pub fn robustness_report(rows: &[RobustnessRow]) -> String {
    rows.iter().map(|r| to_json(r) + "\n").collect()
}

/// Renders Table I's report bytes (the JSON dump the `table1_jitter`
/// bin prints, with a terminating newline).
pub fn table1_report(rows: &[Table1Row]) -> String {
    to_json(&rows.to_vec()) + "\n"
}

/// Renders the defense matrix's report bytes — the exact contents the
/// `defense_matrix` bin writes to `results/defense_matrix.json`.
pub fn defense_matrix_report(rows: &[DefenseMatrixRow]) -> String {
    rows.iter().map(|r| to_json(r) + "\n").collect()
}

fn defense_payload(s: &DefenseTrial) -> Json {
    Json::Obj(vec![
        ("completed".to_string(), Json::Bool(s.completed)),
        ("serialized".to_string(), Json::Bool(s.serialized)),
        ("identified".to_string(), Json::Bool(s.identified)),
        ("success".to_string(), Json::Bool(s.success)),
        ("full_ranking".to_string(), Json::Bool(s.full_ranking)),
        ("wire_bytes".to_string(), Json::UInt(s.wire_bytes)),
        ("page_ns".to_string(), Json::UInt(s.page_ns)),
    ])
}

fn defense_from_payload(p: &Json) -> Result<DefenseTrial, String> {
    let u = |k: &str| {
        p.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("payload missing integer field {k:?}"))
    };
    let b = |k: &str| {
        p.get(k)
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("payload missing bool field {k:?}"))
    };
    Ok(DefenseTrial {
        completed: b("completed")?,
        serialized: b("serialized")?,
        identified: b("identified")?,
        success: b("success")?,
        full_ranking: b("full_ranking")?,
        wire_bytes: u("wire_bytes")?,
        page_ns: u("page_ns")?,
    })
}

enum Fold {
    Robustness {
        accum: RobustnessAccum,
        rows: Vec<RobustnessRow>,
    },
    Table1 {
        accum: Table1Accum,
        rows: Vec<Table1Row>,
        baseline_retrans: Option<f64>,
    },
    DefenseMatrix {
        accum: DefenseAccum,
        rows: Vec<DefenseMatrixRow>,
        baseline: Option<(f64, f64)>,
    },
}

/// Incremental, order-checked fold of campaign cell payloads into the
/// experiment's final report bytes.
///
/// [`CampaignFolder::push`] must be fed every cell exactly once in
/// global cell order; any gap, duplicate, or reordering is an error —
/// this is the integrity check that makes journal replay trustworthy.
pub struct CampaignFolder {
    spec: CampaignSpec,
    next: u64,
    fold: Fold,
}

impl CampaignFolder {
    /// The global index of the next cell this folder expects.
    pub fn next_cell(&self) -> u64 {
        self.next
    }

    /// Folds in the payload of cell `(batch, trial)`.
    ///
    /// # Errors
    /// Rejects out-of-order cells and malformed payloads.
    pub fn push(&mut self, batch: u64, trial: u64, payload: &Json) -> Result<(), String> {
        let expect = self.spec.cell(self.next);
        if (batch, trial) != expect {
            return Err(format!(
                "cell out of order: got ({batch}, {trial}), expected ({}, {})",
                expect.0, expect.1
            ));
        }
        match &mut self.fold {
            Fold::Robustness { accum, .. } => accum.add(&robust_from_payload(payload)?),
            Fold::Table1 { accum, .. } => accum.add(&table1_from_payload(payload)?),
            Fold::DefenseMatrix { accum, .. } => accum.add(&defense_from_payload(payload)?),
        }
        self.next += 1;
        // Batch boundary (or end of campaign): emit the finished row and
        // reset the accumulator. Bounded memory: at most one open batch.
        let batch_done =
            self.next >= self.spec.total_cells() || self.spec.cell(self.next).0 != batch;
        if batch_done {
            match &mut self.fold {
                Fold::Robustness { accum, rows } => {
                    let intensity = ROBUSTNESS_INTENSITIES[batch as usize];
                    rows.push(accum.row(intensity));
                    *accum = RobustnessAccum::default();
                }
                Fold::Table1 {
                    accum,
                    rows,
                    baseline_retrans,
                } => {
                    let jitter = TABLE1_JITTERS_MS[batch as usize];
                    rows.push(accum.row(jitter, baseline_retrans));
                    *accum = Table1Accum::default();
                }
                Fold::DefenseMatrix {
                    accum,
                    rows,
                    baseline,
                } => {
                    let b = defense_matrix_batches()[batch as usize];
                    rows.push(accum.row(&b, baseline));
                    *accum = DefenseAccum::default();
                }
            }
        }
        Ok(())
    }

    /// Finishes the fold and renders the report bytes.
    ///
    /// # Errors
    /// Rejects an incomplete campaign (missing cells).
    pub fn finish(self) -> Result<String, String> {
        let total = self.spec.total_cells();
        if self.next != total {
            return Err(format!(
                "campaign incomplete: {} of {total} cells folded",
                self.next
            ));
        }
        Ok(match self.fold {
            Fold::Robustness { rows, .. } => robustness_report(&rows),
            Fold::Table1 { rows, .. } => table1_report(&rows),
            Fold::DefenseMatrix { rows, .. } => defense_matrix_report(&rows),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_index_roundtrip() {
        let spec = CampaignSpec::for_experiment("robustness_sweep", 3).unwrap();
        assert_eq!(spec.total_cells(), 18);
        for i in 0..spec.total_cells() {
            let (b, t) = spec.cell(i);
            assert_eq!(spec.index(b, t), i);
        }
        assert_eq!(spec.cell(0), (0, 0));
        assert_eq!(spec.cell(3), (1, 0));
        assert_eq!(spec.cell(17), (5, 2));
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(CampaignSpec::for_experiment("nope", 5).is_none());
    }

    #[test]
    fn folder_rejects_out_of_order_and_duplicate_cells() {
        let spec = CampaignSpec::for_experiment("table1", 2).unwrap();
        let mut folder = spec.folder();
        let p = spec.run_cell(0, 0);
        folder.push(0, 0, &p).unwrap();
        let err = folder.push(0, 0, &p).unwrap_err();
        assert!(err.contains("out of order"), "{err}");
        let err = folder.push(1, 1, &p).unwrap_err();
        assert!(err.contains("out of order"), "{err}");
    }

    #[test]
    fn folder_rejects_incomplete_campaign() {
        let spec = CampaignSpec::for_experiment("table1", 1).unwrap();
        let mut folder = spec.folder();
        folder.push(0, 0, &spec.run_cell(0, 0)).unwrap();
        let err = folder.finish().unwrap_err();
        assert!(err.contains("incomplete"), "{err}");
    }

    #[test]
    fn payload_roundtrip_is_exact() {
        let s = RobustTrial {
            outcome_idx: 2,
            retries: 1,
            serialized: true,
            identified: false,
            success: false,
            retrans: 1234,
            fault_drops: 9,
        };
        let p = robust_payload(&s);
        let parsed = Json::parse(&p.to_string_compact()).unwrap();
        assert_eq!(robust_from_payload(&parsed).unwrap(), s);
    }

    #[test]
    fn defense_payload_roundtrip_is_exact() {
        let s = DefenseTrial {
            completed: true,
            serialized: true,
            identified: false,
            success: false,
            full_ranking: false,
            wire_bytes: 1_234_567,
            page_ns: 16_000_000_000,
        };
        let p = defense_payload(&s);
        let parsed = Json::parse(&p.to_string_compact()).unwrap();
        assert_eq!(defense_from_payload(&parsed).unwrap(), s);
    }

    #[test]
    fn defense_matrix_spec_enumerates_all_cells_none_first() {
        let spec = CampaignSpec::for_experiment("defense_matrix", 2).unwrap();
        // 2 attacks x (5 H2 defenses + 5 H3 defenses) = 20 batches.
        assert_eq!(spec.batches.len(), 20);
        assert_eq!(spec.total_cells(), 40);
        for i in 0..spec.total_cells() {
            let (b, t) = spec.cell(i);
            assert_eq!(spec.index(b, t), i);
        }
        // The undefended cell leads every (attack, transport) group so
        // the streaming folder always sees its overhead baseline first.
        for group in spec.batches.chunks(5) {
            assert!(group[0].label.ends_with("/none"), "{}", group[0].label);
            let prefix = |l: &str| l.rsplit_once('/').unwrap().0.to_string();
            let head = prefix(&group[0].label);
            for b in group {
                assert_eq!(prefix(&b.label), head);
            }
        }
    }
}
