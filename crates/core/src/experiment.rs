//! The trial harness: build the client—gateway—server world, run one
//! page load (attacked or not), and collect everything the evaluation
//! needs — the client's report, the server's ground truth, the
//! adversary's capture, and the attack timeline.

use crate::attack::{AttackConfig, AttackEvent, AttackPolicy};
use crate::defense::Defense;
use crate::metrics::{degree_of_multiplexing, is_serialized, ObjectMux};
use crate::predictor::{
    predict_from_datagram_trace, predict_from_trace, Prediction, SizeMap, HTML_LABEL,
};
use h2priv_h2::{ClientConfig, ClientNode, ClientReport, ServeRecord, ServerConfig, ServerNode};
use h2priv_netsim::faults::{FaultConfig, FaultStats};
use h2priv_netsim::middlebox::{Middlebox, MiddleboxPolicy, MiddleboxStats, Passthrough};
use h2priv_netsim::prelude::*;
use h2priv_netsim::time::SimTime as AttackTime;
use h2priv_netsim::time::SimTime;
use h2priv_quic::{H3ClientNode, H3ServerNode};
use h2priv_tcp::TcpStats;
use h2priv_tls::WireMap;
use h2priv_trace::analysis::UnitConfig;
use h2priv_trace::capture::{shared_trace, Trace};
use h2priv_trace::datagram::DatagramUnitConfig;
use h2priv_util::impl_to_json;
use h2priv_util::telemetry;
use h2priv_web::{IsideWith, ObjectId, Party, Site};

/// Fault configurations for the two halves of the path; each applies to
/// both directions of its link pair. Empty by default (no impairments,
/// no extra RNG draws — existing seeded runs stay byte-identical).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Faults on the client ↔ middlebox links.
    pub client_link: Option<FaultConfig>,
    /// Faults on the middlebox ↔ server links.
    pub server_link: Option<FaultConfig>,
}

impl FaultPlan {
    /// `true` when no fault configuration is attached anywhere.
    pub fn is_empty(&self) -> bool {
        self.client_link.is_none() && self.server_link.is_none()
    }
}

/// Options for one trial.
#[derive(Debug, Clone)]
pub struct TrialOptions {
    /// RNG seed (also drives the survey-result permutation).
    pub seed: u64,
    /// Adversary configuration; `None` runs a passive baseline.
    pub attack: Option<AttackConfig>,
    /// Server behaviour.
    pub server: ServerConfig,
    /// Client behaviour.
    pub client: ClientConfig,
    /// Path link parameters.
    pub path: PathConfig,
    /// Simulation horizon (safety net; page loads finish well before).
    pub horizon: SimDuration,
    /// Network impairments to inject (empty = pristine path).
    pub faults: FaultPlan,
    /// Stall-watchdog window: a trial that makes no forward progress
    /// (no packets delivered, no client-visible progress) across a full
    /// window is classified as stalled. Zero disables the watchdog
    /// (one window equal to the horizon).
    pub stall_window: SimDuration,
    /// When `true`, the watchdog ends the simulation at the first full
    /// stalled window instead of running out the horizon. Keep `false`
    /// (the default) to preserve the exact event sequence of a plain
    /// `run_until_idle(horizon)` run.
    pub fail_fast: bool,
    /// Countermeasure under test. [`Defense::None`] (the default)
    /// changes nothing: no config knobs move, no site transformation
    /// runs, no extra RNG draws occur — seeded runs stay byte-identical.
    /// Applied by the isidewith-level wrappers
    /// ([`run_isidewith_trial_with`], [`run_isidewith_h3_trial_with`]);
    /// callers of the raw site-trial entry points set the equivalent
    /// config knobs themselves.
    pub defense: Defense,
}

impl TrialOptions {
    /// Default options with the given seed and attack.
    pub fn new(seed: u64, attack: Option<AttackConfig>) -> TrialOptions {
        TrialOptions {
            seed,
            attack,
            server: ServerConfig::default(),
            client: ClientConfig::default(),
            path: PathConfig::default(),
            horizon: SimDuration::from_secs(120),
            faults: FaultPlan::default(),
            stall_window: SimDuration::from_secs(30),
            fail_fast: false,
            defense: Defense::None,
        }
    }
}

/// How a trial ended. Every trial terminates with exactly one of these;
/// the experiment runners aggregate the degraded ones into their reports
/// instead of silently folding them into the success statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrialOutcome {
    /// The page load finished.
    Completed,
    /// No forward progress across a full stall window and the connection
    /// never finished (e.g. a permanent link outage with unbounded
    /// retransmission).
    Stalled,
    /// The TCP connection aborted after exhausting its retransmissions
    /// (the paper's "broken connection").
    ConnectionAborted,
    /// The simulation was still making progress when the horizon hit.
    HorizonExhausted,
}

impl_to_json!(
    enum TrialOutcome {
        Completed,
        Stalled,
        ConnectionAborted,
        HorizonExhausted,
    }
);

impl TrialOutcome {
    /// `true` for every outcome other than [`TrialOutcome::Completed`].
    pub fn is_degraded(self) -> bool {
        !matches!(self, TrialOutcome::Completed)
    }

    /// A stable lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            TrialOutcome::Completed => "completed",
            TrialOutcome::Stalled => "stalled",
            TrialOutcome::ConnectionAborted => "connection_aborted",
            TrialOutcome::HorizonExhausted => "horizon_exhausted",
        }
    }
}

/// Snapshot of the adversary's observable state after a trial.
#[derive(Debug, Clone, Default)]
pub struct AttackSnapshot {
    /// Timeline of phase events.
    pub events: Vec<AttackEvent>,
    /// GETs the monitor counted.
    pub gets_seen: u64,
    /// Packets the drop gate discarded.
    pub packets_dropped: u64,
    /// Packets the pacer delayed.
    pub packets_delayed: u64,
}

/// Server-side end-of-run diagnostics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerDiag {
    /// Remaining connection send window.
    pub conn_send_window: u64,
    /// DATA bytes still queued in the frame scheduler.
    pub queued_data_bytes: u64,
    /// TCP bytes written but untransmitted.
    pub tcp_bytes_unsent: u64,
    /// TCP bytes in flight.
    pub tcp_bytes_in_flight: u64,
    /// Minimum connection send window seen while pumping.
    pub min_window_seen: u64,
    /// Pump stalls on flow control with DATA queued.
    pub window_blocked_events: u64,
}

/// Everything collected from one trial.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// The client's page-load report.
    pub client: ClientReport,
    /// The server's ground-truth serve log.
    pub serve_log: Vec<ServeRecord>,
    /// Ground-truth wire map of the server→client stream.
    pub wire_map: WireMap,
    /// The adversary's capture.
    pub trace: Trace,
    /// Middlebox counters.
    pub mbox_stats: MiddleboxStats,
    /// Server TCP statistics.
    pub server_tcp: TcpStats,
    /// Client TCP statistics.
    pub client_tcp: TcpStats,
    /// Attack timeline (empty snapshot for passive baselines).
    pub attack: AttackSnapshot,
    /// Server-side end-of-run diagnostics.
    pub server_diag: ServerDiag,
    /// Pump-stall log: (time, window, queued DATA bytes).
    pub server_diag2: Vec<(SimTime, u64, u64)>,
    /// How the trial terminated.
    pub outcome: TrialOutcome,
    /// Total discrete events the simulator dispatched for this trial
    /// (the denominator behind `perfbench`'s events/sec).
    pub sim_events: u64,
    /// Virtual time when the simulation stopped.
    pub ended_at: SimTime,
    /// When the watchdog first saw a full window without progress that
    /// was never followed by more progress; `None` for clean runs.
    pub stall_detected_at: Option<SimTime>,
    /// Fault-layer counters for each link a fault config was attached
    /// to, in topology order (client→mbox, mbox→client, mbox→server,
    /// server→mbox). Empty when the trial ran without faults.
    pub fault_stats: Vec<FaultStats>,
    /// Padding bytes the server added on the wire (TLS record fill on
    /// H2, PADDING-frame bytes on H3). 0 when padding is off.
    pub pad_overhead_bytes: u64,
    /// Dummy DATA cells the shaping layer emitted (H2 only).
    pub dummy_cells_sent: u64,
    /// Response datagrams routed over the untapped alternate path (H3
    /// traffic splitting only).
    pub split_alt_datagrams: u64,
}

impl TrialResult {
    /// The paper's "number of retransmissions" measurement: wire-level
    /// (TCP) retransmissions on both endpoints, as a tshark capture
    /// counts them. Application-layer re-requests (whose served copies
    /// the paper calls "retransmitted versions of the object") are
    /// reported separately in [`ClientReport::h2_rerequests`].
    pub fn total_retransmissions(&self) -> u64 {
        self.server_tcp.retransmits() + self.client_tcp.retransmits()
    }

    /// Degree of multiplexing of `object` (all served copies).
    pub fn degree(&self, object: ObjectId) -> ObjectMux {
        degree_of_multiplexing(&self.wire_map, object)
    }

    /// Runs the predictor over this trial's capture.
    pub fn predict(&self, map: &SizeMap) -> Prediction {
        predict_from_trace(&self.trace, map, &UnitConfig::default(), None)
    }

    /// Runs the datagram-delimiter predictor over this trial's capture —
    /// the pipeline for QUIC trials, where no TLS record stream exists
    /// to reassemble.
    pub fn predict_datagram(&self, map: &SizeMap) -> Prediction {
        predict_from_datagram_trace(&self.trace, map, &DatagramUnitConfig::default(), None)
    }
}

/// Runs one trial of `site`.
pub fn run_site_trial(site: Site, opts: &TrialOptions) -> TrialResult {
    let mut sim = Simulator::new(opts.seed);
    let collector = shared_trace();
    sim.set_capture_sink(collector.clone());

    let mut client_cfg = opts.client.clone();
    client_cfg.addr = opts.path.client_addr;
    client_cfg.server_addr = opts.path.server_addr;
    let mut server_cfg = opts.server.clone();
    server_cfg.addr = opts.path.server_addr;
    server_cfg.client_addr = opts.path.client_addr;

    let client = ClientNode::new(site.clone(), client_cfg);
    let server = ServerNode::new(site, server_cfg);

    let (policy, attack_state): (Box<dyn MiddleboxPolicy>, _) = match &opts.attack {
        Some(cfg) => {
            let (p, s) = AttackPolicy::new(cfg.clone());
            (Box::new(p), Some(s))
        }
        None => (Box::new(Passthrough), None),
    };

    let topo = PathTopology::build(&mut sim, client, policy, server, &opts.path);

    let mut faulted_links = Vec::new();
    if let Some(cfg) = &opts.faults.client_link {
        faulted_links.push(topo.client_to_mbox);
        faulted_links.push(topo.mbox_to_client);
        sim.attach_faults(topo.client_to_mbox, cfg.clone());
        sim.attach_faults(topo.mbox_to_client, cfg.clone());
    }
    if let Some(cfg) = &opts.faults.server_link {
        faulted_links.push(topo.mbox_to_server);
        faulted_links.push(topo.server_to_mbox);
        sim.attach_faults(topo.mbox_to_server, cfg.clone());
        sim.attach_faults(topo.server_to_mbox, cfg.clone());
    }

    let (outcome, stall_detected_at) = {
        let _sp = telemetry::span("trial.sim_ns");
        run_with_watchdog(&mut sim, topo.client, opts)
    };
    telemetry::gauge("trial.sim_events", sim.stats().events);

    let client_node = sim.node_ref::<ClientNode>(topo.client);
    let server_node = sim.node_ref::<ServerNode>(topo.server);
    let mbox = sim.node_ref::<Middlebox>(topo.middlebox);

    let trace = collector.borrow_mut().take_trace();
    let attack = attack_state
        .map(|s| {
            let s = s.borrow();
            AttackSnapshot {
                events: s.events.clone(),
                gets_seen: s.gets_seen,
                packets_dropped: s.packets_dropped,
                packets_delayed: s.packets_delayed,
            }
        })
        .unwrap_or_default();

    TrialResult {
        client: client_node.report(),
        serve_log: server_node.serve_log().to_vec(),
        wire_map: server_node.wire_map().clone(),
        trace,
        mbox_stats: mbox.stats(),
        server_tcp: *server_node.tcp_stats(),
        client_tcp: *client_node.tcp_stats(),
        attack,
        server_diag: ServerDiag {
            conn_send_window: server_node.conn_send_window(),
            queued_data_bytes: server_node.queued_data_bytes(),
            tcp_bytes_unsent: server_node.tcp_bytes_unsent(),
            tcp_bytes_in_flight: server_node.tcp_bytes_in_flight(),
            min_window_seen: server_node.min_window_seen(),
            window_blocked_events: server_node.window_blocked_events(),
        },
        server_diag2: server_node.blocked_log().to_vec(),
        outcome,
        sim_events: sim.stats().events,
        ended_at: sim.now(),
        stall_detected_at,
        fault_stats: faulted_links
            .iter()
            .filter_map(|&l| sim.fault_stats(l))
            .collect(),
        pad_overhead_bytes: server_node.pad_overhead_bytes(),
        dummy_cells_sent: server_node.dummy_cells_sent(),
        split_alt_datagrams: 0,
    }
}

/// Runs one trial of `site` over the QUIC/HTTP-3 transport.
///
/// Same topology, middlebox policy, fault plan and watchdog as
/// [`run_site_trial`]; only the endpoints change. The attack config (if
/// any) should carry [`crate::attack::TransportKind::Quic`] so the
/// adversary deploys the datagram monitor — the TLS record parser would
/// desynchronise on QUIC ciphertext. QUIC transport counters are
/// reported through the [`TrialResult::server_tcp`]/`client_tcp` fields
/// in their TCP-equivalent projection (datagrams ↦ segments, PTOs ↦
/// RTOs); H2-specific diagnostics are zeroed.
pub fn run_h3_site_trial(site: Site, opts: &TrialOptions) -> TrialResult {
    let mut sim = Simulator::new(opts.seed);
    let collector = shared_trace();
    sim.set_capture_sink(collector.clone());

    let mut client_cfg = opts.client.clone();
    client_cfg.addr = opts.path.client_addr;
    client_cfg.server_addr = opts.path.server_addr;
    let mut server_cfg = opts.server.clone();
    server_cfg.addr = opts.path.server_addr;
    server_cfg.client_addr = opts.path.client_addr;

    let client = H3ClientNode::new(site.clone(), client_cfg);
    let server = H3ServerNode::new(site, server_cfg);

    let (policy, attack_state): (Box<dyn MiddleboxPolicy>, _) = match &opts.attack {
        Some(cfg) => {
            let (p, s) = AttackPolicy::new(cfg.clone());
            (Box::new(p), Some(s))
        }
        None => (Box::new(Passthrough), None),
    };

    // Traffic splitting needs a second (untapped) gateway; the primary
    // path is identical either way, so an unsplit trial's topology —
    // node ids, link ids, event order — is untouched by this branch.
    // Faults stay on the primary path only.
    let topo = if opts.server.split_burst > 0 {
        SplitPathTopology::build(&mut sim, client, policy, server, &opts.path).path
    } else {
        PathTopology::build(&mut sim, client, policy, server, &opts.path)
    };

    let mut faulted_links = Vec::new();
    if let Some(cfg) = &opts.faults.client_link {
        faulted_links.push(topo.client_to_mbox);
        faulted_links.push(topo.mbox_to_client);
        sim.attach_faults(topo.client_to_mbox, cfg.clone());
        sim.attach_faults(topo.mbox_to_client, cfg.clone());
    }
    if let Some(cfg) = &opts.faults.server_link {
        faulted_links.push(topo.mbox_to_server);
        faulted_links.push(topo.server_to_mbox);
        sim.attach_faults(topo.mbox_to_server, cfg.clone());
        sim.attach_faults(topo.server_to_mbox, cfg.clone());
    }

    let (outcome, stall_detected_at) = {
        let _sp = telemetry::span("trial.sim_ns");
        run_with_watchdog_probed(&mut sim, opts, |sim| {
            sim.node_ref::<H3ClientNode>(topo.client).progress_probe()
        })
    };
    telemetry::gauge("trial.sim_events", sim.stats().events);

    let client_report = sim.node_mut::<H3ClientNode>(topo.client).take_report();
    let client_node = sim.node_ref::<H3ClientNode>(topo.client);
    let server_node = sim.node_ref::<H3ServerNode>(topo.server);
    let mbox = sim.node_ref::<Middlebox>(topo.middlebox);

    let trace = collector.borrow_mut().take_trace();
    let attack = attack_state
        .map(|s| {
            let s = s.borrow();
            AttackSnapshot {
                events: s.events.clone(),
                gets_seen: s.gets_seen,
                packets_dropped: s.packets_dropped,
                packets_delayed: s.packets_delayed,
            }
        })
        .unwrap_or_default();

    TrialResult {
        client: client_report,
        serve_log: server_node.serve_log().to_vec(),
        wire_map: server_node.wire_map().clone(),
        trace,
        mbox_stats: mbox.stats(),
        server_tcp: server_node.tcp_stats(),
        client_tcp: client_node.tcp_stats(),
        attack,
        server_diag: ServerDiag {
            conn_send_window: server_node.conn_send_window(),
            ..ServerDiag::default()
        },
        server_diag2: Vec::new(),
        outcome,
        sim_events: sim.stats().events,
        ended_at: sim.now(),
        stall_detected_at,
        fault_stats: faulted_links
            .iter()
            .filter_map(|&l| sim.fault_stats(l))
            .collect(),
        pad_overhead_bytes: server_node.quic_stats().pad_bytes_sent,
        dummy_cells_sent: 0,
        split_alt_datagrams: server_node.split_alt_datagrams(),
    }
}

/// Drives the simulation in stall-window-sized chunks up to the horizon,
/// classifying how the trial ends.
///
/// With `fail_fast` off, the event sequence processed is exactly what a
/// single `run_until_idle(horizon)` would process — chunk boundaries only
/// partition the same ordered event stream, and the progress probes read
/// nothing that mutates state or consumes RNG draws — so default-path
/// trials stay byte-identical to the pre-watchdog harness.
fn run_with_watchdog(
    sim: &mut Simulator,
    client: NodeId,
    opts: &TrialOptions,
) -> (TrialOutcome, Option<SimTime>) {
    run_with_watchdog_probed(sim, opts, |sim| {
        sim.node_ref::<ClientNode>(client).progress_probe()
    })
}

/// Transport-agnostic watchdog core: the client's forward-progress probe
/// is supplied by the caller, so the same loop drives TCP and QUIC
/// trials. The probe must read nothing that mutates state or consumes
/// RNG draws.
fn run_with_watchdog_probed(
    sim: &mut Simulator,
    opts: &TrialOptions,
    probe_fn: impl Fn(&Simulator) -> (u64, u64, bool, bool),
) -> (TrialOutcome, Option<SimTime>) {
    let (outcome, stall_detected_at) = watchdog_loop(sim, opts, probe_fn);
    telemetry::emit("watchdog", "outcome", |ev| {
        ev.fields.push(("outcome", outcome.label().into()));
        if let Some(t) = stall_detected_at {
            ev.fields.push(("stall_detected_ns", t.as_nanos().into()));
        }
    });
    (outcome, stall_detected_at)
}

fn watchdog_loop(
    sim: &mut Simulator,
    opts: &TrialOptions,
    probe_fn: impl Fn(&Simulator) -> (u64, u64, bool, bool),
) -> (TrialOutcome, Option<SimTime>) {
    let horizon = SimTime::ZERO + opts.horizon;
    let window = if opts.stall_window.is_zero() {
        opts.horizon
    } else {
        opts.stall_window
    };
    let mut last_probe = probe_fn(sim);
    let mut last_delivered = sim.stats().packets_delivered;
    let mut stall_detected_at: Option<SimTime> = None;
    let mut chunk_end = SimTime::ZERO;
    loop {
        // Boundaries advance monotonically even when a chunk processes no
        // events (e.g. everything pending lies past the horizon), so the
        // loop always reaches the horizon.
        chunk_end = (chunk_end.max(sim.now()) + window).min(horizon);
        sim.run_until_idle(chunk_end);
        let probe = probe_fn(sim);
        let delivered = sim.stats().packets_delivered;
        let (_, _, page_done, broken) = probe;

        if sim.pending_events() == 0 {
            let outcome = if page_done {
                TrialOutcome::Completed
            } else if broken {
                TrialOutcome::ConnectionAborted
            } else {
                TrialOutcome::Stalled
            };
            return (outcome, stall_detected_at);
        }
        let progressed = probe != last_probe || delivered != last_delivered;
        if progressed {
            if stall_detected_at.is_some() {
                telemetry::emit("watchdog", "stall_recovered", |_| {});
            }
            stall_detected_at = None; // transient stall; progress resumed
        } else if stall_detected_at.is_none() {
            stall_detected_at = Some(sim.now());
            telemetry::emit("watchdog", "stall_detected", |ev| {
                ev.fields.push(("delivered", delivered.into()));
                ev.fields
                    .push(("pending_events", sim.pending_events().into()));
            });
            telemetry::count("watchdog.stalls", 1);
        }
        if chunk_end == horizon {
            let outcome = if page_done {
                TrialOutcome::Completed
            } else if broken {
                TrialOutcome::ConnectionAborted
            } else if stall_detected_at.is_some() {
                TrialOutcome::Stalled
            } else {
                TrialOutcome::HorizonExhausted
            };
            return (outcome, stall_detected_at);
        }
        if opts.fail_fast && !progressed && !page_done {
            let outcome = if broken {
                TrialOutcome::ConnectionAborted
            } else {
                TrialOutcome::Stalled
            };
            return (outcome, stall_detected_at);
        }
        last_probe = probe;
        last_delivered = delivered;
    }
}

/// Per-object attack outcome against ground truth.
#[derive(Debug, Clone, Copy)]
pub struct ObjectAttackOutcome {
    /// The object.
    pub object: ObjectId,
    /// Lowest degree of multiplexing over served copies (1.0 if never
    /// transmitted).
    pub best_degree: f64,
    /// Whether the predictor identified the object's size in the trace.
    pub identified: bool,
    /// The paper's success criterion: degree brought to zero *and*
    /// identified from the encrypted traffic.
    pub success: bool,
}

/// An isidewith trial: ground truth plus results.
#[derive(Debug, Clone)]
pub struct IsideWithTrial {
    /// The generated site and ground truth.
    pub iw: IsideWith,
    /// The collected trial data.
    pub result: TrialResult,
    /// The predictor output (isidewith size map, default segmentation).
    pub prediction: Prediction,
}

impl IsideWithTrial {
    /// The start of the adversary's analysis window: the end of the drop
    /// phase if there was one, else the trigger, else `None` (passive
    /// baseline — the whole trace is analysed). The adversary knows this
    /// time exactly since it is part of its own schedule.
    pub fn attack_window(&self) -> Option<AttackTime> {
        let mut trigger = None;
        for ev in &self.result.attack.events {
            match ev {
                AttackEvent::DropsStopped { at_ms } => {
                    return Some(AttackTime::from_millis(*at_ms));
                }
                AttackEvent::Trigger { at_ms } => trigger = Some(AttackTime::from_millis(*at_ms)),
                _ => {}
            }
        }
        trigger
    }

    /// The prediction restricted to the adversary's analysis window.
    pub fn windowed_prediction(&self) -> Prediction {
        match self.attack_window() {
            Some(t) => self.prediction.after(t),
            None => self.prediction.clone(),
        }
    }

    fn outcome_for(&self, object: ObjectId, label: &str) -> ObjectAttackOutcome {
        let mux = self.result.degree(object);
        let best_degree = mux.best().map(|(_, d)| d).unwrap_or(1.0);
        let identified = self.windowed_prediction().contains(label);
        ObjectAttackOutcome {
            object,
            best_degree,
            identified,
            success: is_serialized(best_degree) && identified,
        }
    }

    /// Outcome for the result HTML (the paper's Section IV object of
    /// interest).
    pub fn html_outcome(&self) -> ObjectAttackOutcome {
        self.outcome_for(self.iw.html, HTML_LABEL)
    }

    /// Outcomes for the 8 emblem images in request (survey-result) order,
    /// judged independently — the paper's Table II "one object at a
    /// time" criterion.
    pub fn image_outcomes(&self) -> Vec<ObjectAttackOutcome> {
        self.iw
            .images
            .iter()
            .zip(self.iw.result_order)
            .map(|(img, party)| self.outcome_for(*img, &party.to_string()))
            .collect()
    }

    /// The inferred party ranking. Under an attack the adversary reads
    /// the densest burst of party-sized units in its analysis window
    /// (it set the request spacing itself); the passive baseline falls
    /// back to first occurrences over the whole trace.
    pub fn predicted_order(&self) -> Vec<Party> {
        match self.attack_window() {
            Some(t) => self
                .prediction
                .after(t)
                .party_burst_sequence(h2priv_netsim::time::SimDuration::from_millis(1_500)),
            None => self.prediction.party_sequence(),
        }
    }

    /// Table II "all objects at a time": position `i` succeeds when the
    /// inferred ranking has the right party at `i` *and* that image was
    /// serialized (degree zero).
    pub fn sequence_success(&self) -> Vec<bool> {
        let predicted = self.predicted_order();
        let outcomes = self.image_outcomes();
        self.iw
            .result_order
            .iter()
            .enumerate()
            .map(|(i, truth)| {
                predicted.get(i) == Some(truth) && is_serialized(outcomes[i].best_degree)
            })
            .collect()
    }
}

/// Runs one isidewith trial with default options.
pub fn run_isidewith_trial(seed: u64, attack: Option<AttackConfig>) -> IsideWithTrial {
    run_isidewith_trial_with(TrialOptions::new(seed, attack))
}

/// The seed for retry `attempt` (attempt 0 is the original trial and
/// keeps the caller's seed verbatim). A splitmix64-style finalizer gives
/// each retry an independent, reproducible stream.
pub fn derive_retry_seed(seed: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        return seed;
    }
    let mut z = seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An isidewith trial plus the outcomes of the degraded attempts that
/// preceded it (empty when the first attempt completed).
#[derive(Debug, Clone)]
pub struct RetriedTrial {
    /// The final attempt (completed, or the last degraded one).
    pub trial: IsideWithTrial,
    /// Outcomes of earlier attempts that were retried.
    pub failed_attempts: Vec<TrialOutcome>,
}

impl RetriedTrial {
    /// Retries consumed before the final attempt.
    pub fn retries_used(&self) -> u32 {
        self.failed_attempts.len() as u32
    }
}

/// Runs an isidewith trial, retrying degraded outcomes up to
/// `max_retries` extra times, each with a seed derived from the
/// original via [`derive_retry_seed`]. Returns the first attempt that
/// completes, or the last attempt when every one degraded — the caller
/// always gets a terminated trial with a [`TrialOutcome`], never a hang
/// or a panic.
///
/// Pool-safe: every attempt's state (simulator, RNG streams, shared
/// trace, watchdog) lives inside the call, and the retry seed is a pure
/// function of `opts.seed`, so concurrent calls from
/// [`h2priv_util::pool`] workers on different seeds cannot observe each
/// other.
pub fn run_isidewith_trial_retrying(opts: TrialOptions, max_retries: u32) -> RetriedTrial {
    let base_seed = opts.seed;
    let mut failed_attempts = Vec::new();
    for attempt in 0..=max_retries {
        let mut attempt_opts = opts.clone();
        attempt_opts.seed = derive_retry_seed(base_seed, attempt);
        let trial = run_isidewith_trial_with(attempt_opts);
        if !trial.result.outcome.is_degraded() || attempt == max_retries {
            return RetriedTrial {
                trial,
                failed_attempts,
            };
        }
        telemetry::emit("harness", "retry", |ev| {
            ev.seq = Some(attempt as u64);
            ev.fields
                .push(("outcome", trial.result.outcome.label().into()));
            ev.fields.push((
                "next_seed",
                derive_retry_seed(base_seed, attempt + 1).into(),
            ));
        });
        telemetry::count("harness.retries", 1);
        failed_attempts.push(trial.result.outcome);
    }
    unreachable!("loop always returns on the last attempt");
}

/// Runs one isidewith trial with explicit options.
pub fn run_isidewith_trial_with(mut opts: TrialOptions) -> IsideWithTrial {
    // Derive the volunteer's survey result from the seed but on an
    // independent stream, so attack configs do not perturb it.
    let mut perm_rng = SimRng::new(
        opts.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(1),
    );
    let iw = IsideWith::generate(&mut perm_rng);
    // With Defense::None both calls are no-ops (configure leaves every
    // knob alone; transform_site is the same site.clone() an undefended
    // trial always performed), so legacy seeded runs stay byte-identical.
    let defense = opts.defense;
    defense.configure(&mut opts.server, &mut opts.client);
    let site = defense.transform_site(&iw, opts.seed);
    let result = run_site_trial(site, &opts);
    let prediction = result.predict(&SizeMap::isidewith());
    IsideWithTrial {
        iw,
        result,
        prediction,
    }
}

/// Runs one isidewith trial over QUIC/HTTP-3 with default options.
///
/// The attack config's transport is forced to
/// [`crate::attack::TransportKind::Quic`] so callers can pass the same
/// presets they use for the TCP path.
pub fn run_isidewith_h3_trial(seed: u64, attack: Option<AttackConfig>) -> IsideWithTrial {
    run_isidewith_h3_trial_with(TrialOptions::new(seed, attack))
}

/// Runs one isidewith trial over QUIC/HTTP-3 with explicit options.
///
/// Uses the same survey-permutation stream as
/// [`run_isidewith_trial_with`], so a given seed yields the same ground
/// truth on both transports and any outcome difference is attributable
/// to the transport alone.
pub fn run_isidewith_h3_trial_with(mut opts: TrialOptions) -> IsideWithTrial {
    if let Some(attack) = &mut opts.attack {
        attack.transport = crate::attack::TransportKind::Quic;
    }
    let mut perm_rng = SimRng::new(
        opts.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(1),
    );
    let iw = IsideWith::generate(&mut perm_rng);
    let defense = opts.defense;
    defense.configure(&mut opts.server, &mut opts.client);
    let site = defense.transform_site(&iw, opts.seed);
    let result = run_h3_site_trial(site, &opts);
    let prediction = result.predict_datagram(&SizeMap::isidewith());
    IsideWithTrial {
        iw,
        result,
        prediction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_pipeline_is_pool_safe() {
        // The parallel executor moves options into workers and trial
        // results back out; both directions require Send, and the
        // shared prompt data (the options a closure captures by
        // reference) requires Sync. Compile-time assertions so a new
        // non-Send field can never silently break `--jobs`.
        fn send_and_sync<T: Send + Sync>() {}
        fn send<T: Send>() {}
        send_and_sync::<TrialOptions>();
        send::<IsideWithTrial>();
        send::<RetriedTrial>();
        send::<TrialResult>();
    }

    #[test]
    fn passive_trial_completes_and_captures() {
        let trial = run_isidewith_trial(42, None);
        assert!(trial.result.client.page_completed_at.is_some());
        assert!(!trial.result.trace.is_empty());
        assert!(trial.result.mbox_stats.forwarded > 100);
        assert_eq!(
            trial.result.attack.gets_seen, 0,
            "passive baseline has no monitor"
        );
        // Every object served exactly once.
        assert_eq!(trial.result.serve_log.len(), trial.iw.site.len());
    }

    #[test]
    fn passive_html_is_usually_multiplexed() {
        // Single representative seed; the statistical claim (≈68 %) is
        // covered by the experiments module and integration tests.
        let trial = run_isidewith_trial(3, None);
        let out = trial.html_outcome();
        assert!(out.best_degree >= 0.0 && out.best_degree <= 1.0);
    }

    #[test]
    fn trials_are_deterministic() {
        let a = run_isidewith_trial(9, Some(AttackConfig::full_attack()));
        let b = run_isidewith_trial(9, Some(AttackConfig::full_attack()));
        assert_eq!(a.iw.result_order, b.iw.result_order);
        assert_eq!(a.result.trace.len(), b.result.trace.len());
        assert_eq!(
            a.result.total_retransmissions(),
            b.result.total_retransmissions()
        );
        assert_eq!(a.html_outcome().success, b.html_outcome().success);
    }

    #[test]
    fn h3_passive_trial_completes_and_captures() {
        let trial = run_isidewith_h3_trial(42, None);
        assert_eq!(trial.result.outcome, TrialOutcome::Completed);
        assert!(trial.result.client.page_completed_at.is_some());
        assert!(!trial.result.trace.is_empty());
        assert_eq!(trial.result.serve_log.len(), trial.iw.site.len());
        // Every object fully delivered.
        for obj in &trial.result.client.objects {
            assert!(obj.completed_at.is_some());
        }
    }

    #[test]
    fn h3_trial_shares_ground_truth_with_tcp_trial() {
        let h2 = run_isidewith_trial(7, None);
        let h3 = run_isidewith_h3_trial(7, None);
        assert_eq!(h2.iw.result_order, h3.iw.result_order);
    }

    #[test]
    fn h3_trials_are_deterministic() {
        let a = run_isidewith_h3_trial(9, Some(AttackConfig::full_attack()));
        let b = run_isidewith_h3_trial(9, Some(AttackConfig::full_attack()));
        assert_eq!(a.iw.result_order, b.iw.result_order);
        assert_eq!(a.result.trace.len(), b.result.trace.len());
        assert_eq!(a.html_outcome().success, b.html_outcome().success);
        assert_eq!(a.predicted_order(), b.predicted_order());
    }

    #[test]
    fn h3_monitor_counts_gets_during_attack() {
        let trial = run_isidewith_h3_trial(
            5,
            Some(AttackConfig::jitter_only(SimDuration::from_millis(25))),
        );
        assert!(
            trial.result.attack.gets_seen >= 53,
            "gets_seen = {}",
            trial.result.attack.gets_seen
        );
    }

    #[test]
    fn monitor_counts_gets_during_attack() {
        let trial = run_isidewith_trial(
            5,
            Some(AttackConfig::jitter_only(SimDuration::from_millis(25))),
        );
        // 53 objects, so at least 53 GETs must transit.
        assert!(
            trial.result.attack.gets_seen >= 53,
            "gets_seen = {}",
            trial.result.attack.gets_seen
        );
    }
}
