//! Partial-multiplexing identification — the paper's Section VII
//! extension sketch:
//!
//! > "Another possible extension would be to infer the object identity
//! > even when the object is partly multiplexed. Our preliminary
//! > experiments suggest that this is indeed possible, however, at the
//! > cost of employing complex analysis techniques."
//!
//! When two or more objects interleave, the segmentation produces one
//! *merged* transmission unit whose size estimate is (approximately) the
//! **sum** of the merged objects. This module matches merged units
//! against small subsets of the size map: a unit that matches
//! `size(A) + size(B)` within tolerance is evidence that `A` and `B`
//! were transmitted together — recovering identities (though not their
//! order) from partly multiplexed traffic.

use crate::predictor::SizeMap;
use h2priv_trace::analysis::TransmissionUnit;
use h2priv_util::impl_to_json;

/// One match of a (possibly merged) unit against the size map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialMatch {
    /// Labels of the objects inferred to make up the unit, in map order
    /// (wire order inside a merged unit is unknown).
    pub labels: Vec<String>,
    /// Whether other same-size subsets also matched (identity evidence is
    /// then ambiguous).
    pub ambiguous: bool,
}

impl_to_json!(struct PartialMatch { labels, ambiguous });

/// Configuration for subset matching.
#[derive(Debug, Clone, Copy)]
pub struct PartialConfig {
    /// Relative tolerance on the size sum.
    pub tolerance: f64,
    /// Largest subset considered (the search is exhaustive, so keep this
    /// small; the paper's merged bursts rarely exceed 3 objects).
    pub max_subset: usize,
}

impl Default for PartialConfig {
    fn default() -> Self {
        PartialConfig {
            tolerance: 0.03,
            max_subset: 3,
        }
    }
}

/// Attempts to explain `unit` as a combination of up to
/// `cfg.max_subset` distinct size-map entries.
///
/// Returns `None` when nothing matches; a [`PartialMatch`] with
/// `ambiguous = true` when several distinct subsets match (identity
/// cannot be pinned down); singleton subsets reproduce the exact
/// matcher's behaviour.
pub fn match_unit(
    unit: &TransmissionUnit,
    map: &SizeMap,
    cfg: &PartialConfig,
) -> Option<PartialMatch> {
    let entries = map.entries();
    let target = unit.estimated_payload as f64;
    // Exhaustive subsets up to max_subset (size map is small: ≤ ~16).
    struct Search<'a> {
        entries: &'a [(String, u64)],
        target: f64,
        tol: f64,
        max: usize,
        found: Vec<Vec<String>>,
    }
    impl Search<'_> {
        fn recurse(&mut self, start: usize, stack: &mut Vec<usize>, sum: u64) {
            if !stack.is_empty() {
                let s = sum as f64;
                if s >= self.target * (1.0 - self.tol) && s <= self.target * (1.0 + self.tol) {
                    self.found
                        .push(stack.iter().map(|i| self.entries[*i].0.clone()).collect());
                }
            }
            if stack.len() == self.max {
                return;
            }
            for i in start..self.entries.len() {
                stack.push(i);
                self.recurse(i + 1, stack, sum + self.entries[i].1);
                stack.pop();
            }
        }
    }
    let mut search = Search {
        entries,
        target,
        tol: cfg.tolerance,
        max: cfg.max_subset,
        found: Vec::new(),
    };
    search.recurse(0, &mut Vec::new(), 0);
    let mut found = search.found;
    // Prefer the smallest subset; ambiguity = another subset of the same
    // cardinality also matches.
    found.sort_by_key(Vec::len);
    let best = found.first()?.clone();
    let ambiguous = found.iter().filter(|f| f.len() == best.len()).count() > 1;
    Some(PartialMatch {
        labels: best,
        ambiguous,
    })
}

/// Runs partial matching over every unidentified unit of a prediction.
/// Exactly-identified units are passed through as unambiguous singletons.
pub fn explain_units(
    units: &[crate::predictor::IdentifiedUnit],
    map: &SizeMap,
    cfg: &PartialConfig,
) -> Vec<(TransmissionUnit, Option<PartialMatch>)> {
    units
        .iter()
        .map(|u| {
            let m = match &u.label {
                Some(label) => Some(PartialMatch {
                    labels: vec![label.clone()],
                    ambiguous: false,
                }),
                None => match_unit(&u.unit, map, cfg),
            };
            (u.unit, m)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_netsim::time::SimTime;

    fn unit(est: u64) -> TransmissionUnit {
        TransmissionUnit {
            start: SimTime::ZERO,
            end: SimTime::from_millis(1),
            estimated_payload: est,
            records: 1,
        }
    }

    fn map() -> SizeMap {
        SizeMap::new(
            vec![
                ("a".into(), 5_000),
                ("b".into(), 8_000),
                ("c".into(), 12_000),
                ("d".into(), 20_000),
            ],
            0.03,
        )
    }

    #[test]
    fn single_object_matches_like_exact() {
        let m = match_unit(&unit(8_100), &map(), &PartialConfig::default()).unwrap();
        assert_eq!(m.labels, vec!["b"]);
        assert!(!m.ambiguous);
    }

    #[test]
    fn merged_pair_is_decomposed() {
        // a + c = 17 000
        let m = match_unit(&unit(17_000), &map(), &PartialConfig::default()).unwrap();
        assert_eq!(m.labels, vec!["a", "c"]);
        assert!(!m.ambiguous);
    }

    #[test]
    fn merged_triple_is_decomposed() {
        // a + b + c = 25 000 (and {a,d} = 25 000 too -> ambiguous pair wins)
        let m = match_unit(&unit(25_000), &map(), &PartialConfig::default()).unwrap();
        // smallest subset preferred: {a, d} (pair) over {a, b, c} (triple)
        assert_eq!(m.labels, vec!["a", "d"]);
    }

    #[test]
    fn ambiguity_is_flagged() {
        let map = SizeMap::new(
            vec![
                ("x".into(), 6_000),
                ("y".into(), 7_000),
                ("p".into(), 5_000),
                ("q".into(), 8_000),
            ],
            0.01,
        );
        // 13 000 = x+y = p+q -> ambiguous
        let m = match_unit(&unit(13_000), &map, &PartialConfig::default()).unwrap();
        assert!(m.ambiguous);
        assert_eq!(m.labels.len(), 2);
    }

    #[test]
    fn no_match_returns_none() {
        assert!(match_unit(&unit(1_000), &map(), &PartialConfig::default()).is_none());
        assert!(match_unit(&unit(100_000), &map(), &PartialConfig::default()).is_none());
    }

    #[test]
    fn max_subset_limits_search() {
        let cfg = PartialConfig {
            max_subset: 1,
            ..PartialConfig::default()
        };
        assert!(
            match_unit(&unit(17_000), &map(), &cfg).is_none(),
            "pairs disabled"
        );
    }
}
