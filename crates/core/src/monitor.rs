//! The real-time traffic monitor running on the compromised device.
//!
//! The paper's adversary "started counting the number of GET requests in
//! the client→server path" using the tshark filter
//! `ssl.record.content_type == 23` plus prior knowledge of the request
//! sequence (Section V). This module implements that counter as an
//! incremental, in-order TLS record-boundary tracker over the cleartext
//! parts of transiting packets — no decryption, no ground truth.

use h2priv_netsim::middlebox::PacketView;
use h2priv_tls::record::{ContentType, RecordHeader, RECORD_HEADER_LEN};

/// Minimum TLS record *body* length for a client→server application-data
/// record to be counted as a GET. HTTP/2 control frames (SETTINGS,
/// WINDOW_UPDATE, PING, RST_STREAM) produce records well below this;
/// HPACK-encoded GETs land well above it.
pub const DEFAULT_GET_MIN_BODY: u16 = 80;

#[derive(Debug)]
enum ParseState {
    /// Accumulating the 5 header bytes.
    Header {
        have: usize,
        buf: [u8; RECORD_HEADER_LEN],
    },
    /// Skipping a record body.
    Body { remaining: usize },
}

/// Incremental GET counter over one direction's TCP byte stream.
///
/// Processes packets in arrival order at the middlebox; retransmitted
/// (already-seen) segments are skipped, so each GET is counted once no
/// matter how often TCP resends it.
#[derive(Debug)]
pub struct GetCounter {
    min_body: u16,
    /// Wire sequence of the next expected in-order byte.
    next_seq: Option<u32>,
    state: ParseState,
    gets: u64,
    app_records: u64,
    small_records: u64,
    skipped_retransmissions: u64,
}

impl GetCounter {
    /// Creates a counter with the given GET size threshold.
    pub fn new(min_body: u16) -> GetCounter {
        GetCounter {
            min_body,
            next_seq: None,
            state: ParseState::Header {
                have: 0,
                buf: [0; RECORD_HEADER_LEN],
            },
            gets: 0,
            app_records: 0,
            small_records: 0,
            skipped_retransmissions: 0,
        }
    }

    /// GETs counted so far.
    pub fn gets(&self) -> u64 {
        self.gets
    }

    /// Application-data records of any size seen so far.
    pub fn app_records(&self) -> u64 {
        self.app_records
    }

    /// Small application-data records (control frames: WINDOW_UPDATE,
    /// RST_STREAM, SETTINGS acks). A burst of these during a quiet, lossy
    /// phase is the wire signature of the client resetting its streams —
    /// the signal the paper's Section IV-D adversary waits for.
    pub fn small_records(&self) -> u64 {
        self.small_records
    }

    /// Segments skipped as retransmissions.
    pub fn skipped_retransmissions(&self) -> u64 {
        self.skipped_retransmissions
    }

    /// Feeds one transiting packet. Returns how many *new* GETs were
    /// recognised in it (the attack trigger fires when the cumulative
    /// count reaches the target index).
    pub fn on_packet(&mut self, pkt: &PacketView<'_>) -> u64 {
        let hdr = pkt.header();
        if hdr.flags.syn {
            self.next_seq = Some(hdr.seq.wrapping_add(1));
            return 0;
        }
        if pkt.payload_len() == 0 {
            return 0;
        }
        let Some(expected) = self.next_seq else {
            // Joined mid-stream: synchronise on the first data segment.
            self.next_seq = Some(hdr.seq);
            return self.on_packet(pkt);
        };
        if hdr.seq != expected {
            // Old (retransmitted) or out-of-order-ahead segment. The
            // client-side path has in-order delivery in this topology, so
            // anything not matching is a retransmission.
            self.skipped_retransmissions += 1;
            return 0;
        }
        self.next_seq = Some(expected.wrapping_add(pkt.payload_len()));

        let mut new_gets = 0;
        let mut bytes = &pkt.payload()[..];
        while !bytes.is_empty() {
            match &mut self.state {
                ParseState::Header { have, buf } => {
                    let take = (RECORD_HEADER_LEN - *have).min(bytes.len());
                    buf[*have..*have + take].copy_from_slice(&bytes[..take]);
                    *have += take;
                    bytes = &bytes[take..];
                    if *have == RECORD_HEADER_LEN {
                        let header = RecordHeader::decode(&buf[..])
                            .expect("monitor desynchronised from TLS stream");
                        if header.content_type == ContentType::ApplicationData {
                            self.app_records += 1;
                            if header.length >= self.min_body {
                                self.gets += 1;
                                new_gets += 1;
                            } else if header.length <= 40 {
                                self.small_records += 1;
                            }
                        }
                        self.state = ParseState::Body {
                            remaining: header.length as usize,
                        };
                    }
                }
                ParseState::Body { remaining } => {
                    let take = (*remaining).min(bytes.len());
                    *remaining -= take;
                    bytes = &bytes[take..];
                    if *remaining == 0 {
                        self.state = ParseState::Header {
                            have: 0,
                            buf: [0; RECORD_HEADER_LEN],
                        };
                    }
                }
            }
        }
        new_gets
    }
}

impl Default for GetCounter {
    fn default() -> Self {
        GetCounter::new(DEFAULT_GET_MIN_BODY)
    }
}

/// Minimum datagram payload for a client→server QUIC datagram to be
/// counted as a GET. ACK-only and reset datagrams stay well below this;
/// a HEADERS-carrying STREAM datagram lands well above it.
pub const DEFAULT_GET_MIN_DATAGRAM: u32 = 80;

/// Maximum payload of a "small" client→server datagram (ACK volleys and
/// RESET_STREAM/STOP_SENDING pairs). One- and two-range ACK datagrams
/// are 43 and 59 bytes; a reset pair is 35; a GET never fits.
pub const DEFAULT_SMALL_DATAGRAM_MAX: u32 = 66;

/// Number of leading large client→server datagrams that belong to the
/// QUIC handshake (the padded Initial and the client-Finished CRYPTO
/// flight) rather than to requests.
const CLIENT_CRYPTO_FLIGHTS: u64 = 2;

/// Per-datagram GET counter for the QUIC transport.
///
/// Against QUIC the monitor has no cleartext record headers to parse:
/// every datagram is opaque. But the *sizes* still separate cleanly —
/// request datagrams carry an HPACK-encoded HEADERS frame and land well
/// above ambient ACK traffic — so the paper's "count the GETs" monitor
/// survives as a size classifier. The first two large client→server
/// datagrams are the handshake CRYPTO flights and are skipped.
///
/// Unlike [`GetCounter`] there is no sequence-number dedup: a lost and
/// retransmitted GET datagram is counted twice. The attack only drops
/// server→client traffic, so in practice the count stays calibrated.
#[derive(Debug)]
pub struct DatagramGetCounter {
    get_min: u32,
    small_max: u32,
    crypto_skipped: u64,
    gets: u64,
    data_datagrams: u64,
    small_datagrams: u64,
}

impl DatagramGetCounter {
    /// Creates a counter with the given size thresholds.
    pub fn new(get_min: u32, small_max: u32) -> DatagramGetCounter {
        DatagramGetCounter {
            get_min,
            small_max,
            crypto_skipped: 0,
            gets: 0,
            data_datagrams: 0,
            small_datagrams: 0,
        }
    }

    /// GETs counted so far.
    pub fn gets(&self) -> u64 {
        self.gets
    }

    /// Non-empty datagrams seen so far (including handshake flights).
    pub fn data_datagrams(&self) -> u64 {
        self.data_datagrams
    }

    /// Small datagrams (ACK volleys, reset pairs) seen so far. A burst
    /// of these during the lossy window is the wire signature of the
    /// client's stream-reset volley — the QUIC analogue of the small
    /// TLS control records [`GetCounter::small_records`] watches for.
    pub fn small_datagrams(&self) -> u64 {
        self.small_datagrams
    }

    /// Feeds one transiting datagram. Returns how many new GETs were
    /// recognised (0 or 1).
    pub fn on_packet(&mut self, pkt: &PacketView<'_>) -> u64 {
        let len = pkt.payload_len();
        if len == 0 {
            return 0;
        }
        self.data_datagrams += 1;
        if len <= self.small_max {
            self.small_datagrams += 1;
            return 0;
        }
        if len >= self.get_min {
            if self.crypto_skipped < CLIENT_CRYPTO_FLIGHTS {
                self.crypto_skipped += 1;
                return 0;
            }
            self.gets += 1;
            return 1;
        }
        0
    }
}

impl Default for DatagramGetCounter {
    fn default() -> Self {
        DatagramGetCounter::new(DEFAULT_GET_MIN_DATAGRAM, DEFAULT_SMALL_DATAGRAM_MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_netsim::middlebox::PacketView;
    use h2priv_netsim::packet::{FlowId, HostAddr, Packet, TcpFlags, TcpHeader};
    use h2priv_tls::{RecordSealer, RecordTag};
    use h2priv_util::bytes::Bytes;

    fn mk_packet(seq: u32, payload: Bytes, flags: TcpFlags) -> Packet {
        Packet::new(
            TcpHeader {
                flow: FlowId {
                    src: HostAddr(1),
                    dst: HostAddr(2),
                    sport: 40_000,
                    dport: 443,
                },
                seq,
                ack: 0,
                flags,
                window: 65_535,
                ts_val: 0,
                ts_ecr: 0,
            },
            payload,
        )
    }

    fn feed(counter: &mut GetCounter, pkt: &Packet) -> u64 {
        counter.on_packet(&PacketView::of(pkt))
    }

    #[test]
    fn counts_large_app_records_once() {
        let mut sealer = RecordSealer::new();
        let get1 = sealer.seal(ContentType::ApplicationData, &[0u8; 180], RecordTag::NONE);
        let wu = sealer.seal(ContentType::ApplicationData, &[0u8; 13], RecordTag::NONE);
        let get2 = sealer.seal(ContentType::ApplicationData, &[0u8; 190], RecordTag::NONE);

        let mut c = GetCounter::default();
        assert_eq!(feed(&mut c, &mk_packet(99, Bytes::new(), TcpFlags::SYN)), 0);
        let mut seq = 100;
        assert_eq!(
            feed(&mut c, &mk_packet(seq, get1.clone(), TcpFlags::ACK)),
            1
        );
        seq += get1.len() as u32;
        assert_eq!(feed(&mut c, &mk_packet(seq, wu.clone(), TcpFlags::ACK)), 0);
        seq += wu.len() as u32;
        assert_eq!(
            feed(&mut c, &mk_packet(seq, get2.clone(), TcpFlags::ACK)),
            1
        );
        assert_eq!(c.gets(), 2);
        assert_eq!(c.app_records(), 3);
    }

    #[test]
    fn handshake_records_do_not_count() {
        let mut sealer = RecordSealer::new();
        let hello = sealer.seal(ContentType::Handshake, &[0u8; 512], RecordTag::NONE);
        let mut c = GetCounter::default();
        feed(&mut c, &mk_packet(99, Bytes::new(), TcpFlags::SYN));
        assert_eq!(feed(&mut c, &mk_packet(100, hello, TcpFlags::ACK)), 0);
        assert_eq!(c.gets(), 0);
    }

    #[test]
    fn retransmissions_are_skipped() {
        let mut sealer = RecordSealer::new();
        let get = sealer.seal(ContentType::ApplicationData, &[0u8; 200], RecordTag::NONE);
        let mut c = GetCounter::default();
        feed(&mut c, &mk_packet(99, Bytes::new(), TcpFlags::SYN));
        assert_eq!(feed(&mut c, &mk_packet(100, get.clone(), TcpFlags::ACK)), 1);
        assert_eq!(feed(&mut c, &mk_packet(100, get.clone(), TcpFlags::ACK)), 0);
        assert_eq!(c.gets(), 1);
        assert_eq!(c.skipped_retransmissions(), 1);
    }

    #[test]
    fn record_split_across_packets() {
        let mut sealer = RecordSealer::new();
        let get = sealer.seal(ContentType::ApplicationData, &[0u8; 200], RecordTag::NONE);
        // Split inside the 5-byte header: the GET is recognised only
        // once the header completes, i.e. in the second fragment.
        let (a, b) = get.split_at(3);
        let mut c = GetCounter::default();
        feed(&mut c, &mk_packet(99, Bytes::new(), TcpFlags::SYN));
        assert_eq!(
            feed(
                &mut c,
                &mk_packet(100, Bytes::copy_from_slice(a), TcpFlags::ACK)
            ),
            0
        );
        assert_eq!(
            feed(
                &mut c,
                &mk_packet(
                    100 + a.len() as u32,
                    Bytes::copy_from_slice(b),
                    TcpFlags::ACK
                )
            ),
            1
        );
    }

    #[test]
    fn datagram_counter_skips_crypto_flights_then_counts() {
        let mut c = DatagramGetCounter::default();
        // Padded Initial and client-Finished flight: large but handshake.
        assert_eq!(feed_dg(&mut c, 1_200), 0);
        assert_eq!(feed_dg(&mut c, 168), 0);
        // Request datagrams count from here on.
        assert_eq!(feed_dg(&mut c, 120), 1);
        assert_eq!(feed_dg(&mut c, 95), 1);
        assert_eq!(c.gets(), 2);
    }

    #[test]
    fn datagram_counter_separates_small_control_traffic() {
        let mut c = DatagramGetCounter::default();
        feed_dg(&mut c, 1_200);
        feed_dg(&mut c, 168);
        assert_eq!(feed_dg(&mut c, 43), 0); // one-range ACK
        assert_eq!(feed_dg(&mut c, 59), 0); // two-range ACK
        assert_eq!(feed_dg(&mut c, 35), 0); // reset pair
        assert_eq!(feed_dg(&mut c, 0), 0);
        assert_eq!(c.gets(), 0);
        assert_eq!(c.small_datagrams(), 3);
        assert_eq!(c.data_datagrams(), 5);
    }

    fn feed_dg(counter: &mut DatagramGetCounter, len: usize) -> u64 {
        let pkt = mk_packet(0, Bytes::from(vec![0u8; len]), TcpFlags::ACK);
        counter.on_packet(&PacketView::of(&pkt))
    }

    #[test]
    fn two_gets_coalesced_into_one_segment() {
        let mut sealer = RecordSealer::new();
        let mut wire = sealer
            .seal(ContentType::ApplicationData, &[0u8; 150], RecordTag::NONE)
            .to_vec();
        wire.extend_from_slice(&sealer.seal(
            ContentType::ApplicationData,
            &[0u8; 150],
            RecordTag::NONE,
        ));
        let mut c = GetCounter::default();
        feed(&mut c, &mk_packet(99, Bytes::new(), TcpFlags::SYN));
        assert_eq!(
            feed(&mut c, &mk_packet(100, Bytes::from(wire), TcpFlags::ACK)),
            2
        );
    }
}
