//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Each function runs a batch of trials and aggregates into row structs;
//! the `h2priv-bench` binaries print them next to the paper's numbers
//! (see `EXPERIMENTS.md`). Trial counts are parameters so that benches
//! can run small smoke batches and the experiment binaries the full 100
//! downloads per point the paper used.

use crate::attack::AttackConfig;
use crate::experiment::{run_isidewith_trial, run_site_trial, TrialOptions};
use crate::metrics::degree_of_multiplexing;
use crate::predictor::{SizeMap, HTML_LABEL};
use h2priv_netsim::time::SimDuration;
use h2priv_netsim::units::Bandwidth;
use h2priv_util::impl_to_json;
use h2priv_web::sites::two_object_site;
use h2priv_web::ObjectId;

/// A Table I row: effect of jitter on multiplexing of the 6th object.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Added inter-request spacing (ms).
    pub jitter_ms: u64,
    /// % of trials where the object of interest was not multiplexed
    /// (some copy at degree zero).
    pub pct_not_multiplexed: f64,
    /// Mean retransmissions per trial (TCP + app-layer re-requests).
    pub retransmissions_avg: f64,
    /// Increase over the 0 ms baseline, in %.
    pub retrans_increase_pct: f64,
    /// Mean application-layer re-requests per trial (the duplicate-copy
    /// pathology of Fig. 4).
    pub rerequests_avg: f64,
    /// Trials run.
    pub trials: usize,
}

impl_to_json!(struct Table1Row {
    jitter_ms,
    pct_not_multiplexed,
    retransmissions_avg,
    retrans_increase_pct,
    rerequests_avg,
    trials,
});

/// Regenerates Table I (jitter ∈ {0, 25, 50, 100} ms).
pub fn table1(trials: usize, base_seed: u64) -> Vec<Table1Row> {
    let jitters = [0u64, 25, 50, 100];
    let mut rows = Vec::new();
    let mut baseline_retrans = None;
    for (ji, jitter_ms) in jitters.iter().enumerate() {
        let mut serialized = 0usize;
        let mut retrans_total = 0u64;
        let mut rereq_total = 0u64;
        for t in 0..trials {
            let seed = base_seed + (ji as u64) * 10_000 + t as u64;
            let attack = AttackConfig::jitter_only(SimDuration::from_millis(*jitter_ms));
            let trial = run_isidewith_trial(seed, Some(attack));
            if crate::metrics::is_serialized(trial.html_outcome().best_degree) {
                serialized += 1;
            }
            retrans_total += trial.result.total_retransmissions();
            rereq_total += trial.result.client.h2_rerequests;
        }
        let retransmissions_avg = retrans_total as f64 / trials as f64;
        let base = *baseline_retrans.get_or_insert(retransmissions_avg.max(1e-9));
        rows.push(Table1Row {
            jitter_ms: *jitter_ms,
            pct_not_multiplexed: 100.0 * serialized as f64 / trials as f64,
            retransmissions_avg,
            retrans_increase_pct: 100.0 * (retransmissions_avg - base) / base,
            rerequests_avg: rereq_total as f64 / trials as f64,
            trials,
        });
    }
    rows
}

/// A Fig. 5 point: effect of bandwidth limitation (with 50 ms jitter).
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Bandwidth limit (Mbps).
    pub bandwidth_mbps: u64,
    /// % of trials counted as success (object serialized and
    /// identified from the trace — includes successes due to
    /// retransmitted copies, as the paper observed).
    pub pct_success: f64,
    /// Mean retransmissions per trial.
    pub retransmissions_avg: f64,
    /// % of trials where the connection broke.
    pub pct_broken: f64,
    /// Trials run.
    pub trials: usize,
}

impl_to_json!(struct Fig5Row { bandwidth_mbps, pct_success, retransmissions_avg, pct_broken, trials });

/// Regenerates Fig. 5 (bandwidth ∈ {1000, 800, 500, 100, 1} Mbps).
pub fn fig5(trials: usize, base_seed: u64) -> Vec<Fig5Row> {
    let bandwidths = [1_000u64, 800, 500, 100, 1];
    let mut rows = Vec::new();
    for (bi, mbps) in bandwidths.iter().enumerate() {
        let mut success = 0usize;
        let mut broken = 0usize;
        let mut retrans_total = 0u64;
        for t in 0..trials {
            let seed = base_seed + 1_000_000 + (bi as u64) * 10_000 + t as u64;
            let attack = AttackConfig::jitter_and_bandwidth(
                SimDuration::from_millis(50),
                Bandwidth::mbps(*mbps),
            );
            let trial = run_isidewith_trial(seed, Some(attack));
            let out = trial.html_outcome();
            if out.success {
                success += 1;
            }
            if trial.result.client.connection_broken {
                broken += 1;
            }
            retrans_total += trial.result.total_retransmissions();
        }
        rows.push(Fig5Row {
            bandwidth_mbps: *mbps,
            pct_success: 100.0 * success as f64 / trials as f64,
            retransmissions_avg: retrans_total as f64 / trials as f64,
            pct_broken: 100.0 * broken as f64 / trials as f64,
            trials,
        });
    }
    rows
}

/// A Section IV-D / Fig. 6 point: targeted drops forcing a stream reset.
#[derive(Debug, Clone)]
pub struct DropRow {
    /// Drop rate applied to server→client data packets.
    pub drop_rate: f64,
    /// % of trials where the HTML was serialized and identified.
    pub pct_success: f64,
    /// % of trials where the client actually sent RST_STREAM.
    pub pct_reset_sent: f64,
    /// % of trials where the connection broke.
    pub pct_broken: f64,
    /// Trials run.
    pub trials: usize,
}

impl_to_json!(struct DropRow { drop_rate, pct_success, pct_reset_sent, pct_broken, trials });

/// Regenerates the Section IV-D experiment (80 % drops, plus a sweep
/// showing that higher rates break the connection).
pub fn section4d(trials: usize, base_seed: u64, drop_rates: &[f64]) -> Vec<DropRow> {
    section4d_with(trials, base_seed, drop_rates, true)
}

/// Section IV-D with the pure 6-second-timer drop window (no early stop
/// on the reset signature). This is the variant where very high drop
/// rates break the connection outright, as the paper reports.
pub fn section4d_timer_only(trials: usize, base_seed: u64, drop_rates: &[f64]) -> Vec<DropRow> {
    section4d_with(trials, base_seed ^ 0xD0D0, drop_rates, false)
}

fn section4d_with(
    trials: usize,
    base_seed: u64,
    drop_rates: &[f64],
    stop_on_reset: bool,
) -> Vec<DropRow> {
    let mut rows = Vec::new();
    for (di, rate) in drop_rates.iter().enumerate() {
        let mut success = 0usize;
        let mut reset = 0usize;
        let mut broken = 0usize;
        for t in 0..trials {
            let seed = base_seed + 2_000_000 + (di as u64) * 10_000 + t as u64;
            let mut attack = AttackConfig::with_drops(*rate, SimDuration::from_secs(6));
            attack.stop_drops_on_reset = stop_on_reset;
            let trial = run_isidewith_trial(seed, Some(attack));
            if trial.html_outcome().success {
                success += 1;
            }
            if trial.result.client.resets_sent > 0 {
                reset += 1;
            }
            if trial.result.client.connection_broken {
                broken += 1;
            }
        }
        rows.push(DropRow {
            drop_rate: *rate,
            pct_success: 100.0 * success as f64 / trials as f64,
            pct_reset_sent: 100.0 * reset as f64 / trials as f64,
            pct_broken: 100.0 * broken as f64 / trials as f64,
            trials,
        });
    }
    rows
}

/// A Table II column: per-object accuracy of the full attack.
#[derive(Debug, Clone)]
pub struct Table2Column {
    /// Object label ("HTML", "I1".."I8").
    pub object: String,
    /// Mean measured gap to the previous request (ms).
    pub gap_prev_ms: f64,
    /// % success when the adversary targets objects independently
    /// ("one object at a time").
    pub pct_single_target: f64,
    /// % success for the full ranking inference ("all objects at a
    /// time").
    pub pct_all_targets: f64,
    /// Trials run.
    pub trials: usize,
}

impl_to_json!(struct Table2Column { object, gap_prev_ms, pct_single_target, pct_all_targets, trials });

/// Regenerates Table II with the full Section V attack.
pub fn table2(trials: usize, base_seed: u64) -> Vec<Table2Column> {
    let mut single = vec![0usize; 9];
    let mut sequence = vec![0usize; 9];
    let mut gap_sums = vec![0.0f64; 9];
    let mut gap_counts = vec![0usize; 9];

    for t in 0..trials {
        let seed = base_seed + 3_000_000 + t as u64;
        let trial = run_isidewith_trial(seed, Some(AttackConfig::full_attack()));

        // Column 0: the HTML.
        let html = trial.html_outcome();
        if html.success {
            single[0] += 1;
            sequence[0] += 1; // the ranking page itself
        }
        // Columns 1..=8: the images.
        for (i, out) in trial.image_outcomes().iter().enumerate() {
            if out.success {
                single[i + 1] += 1;
            }
        }
        for (i, ok) in trial.sequence_success().iter().enumerate() {
            if *ok {
                sequence[i + 1] += 1;
            }
        }
        // Measured inter-request gaps (first attempts, client-side).
        let firsts: Vec<_> = trial
            .result
            .client
            .requests
            .iter()
            .filter(|r| r.attempt == 0)
            .collect();
        let mut interest = vec![trial.iw.html];
        interest.extend_from_slice(&trial.iw.images);
        for (slot, obj) in interest.iter().enumerate() {
            if let Some(pos) = firsts.iter().position(|r| r.object == *obj) {
                if pos > 0 {
                    let gap = firsts[pos]
                        .issued_at
                        .saturating_since(firsts[pos - 1].issued_at);
                    gap_sums[slot] += gap.as_nanos() as f64 / 1e6;
                    gap_counts[slot] += 1;
                }
            }
        }
    }

    let labels = ["HTML", "I1", "I2", "I3", "I4", "I5", "I6", "I7", "I8"];
    labels
        .iter()
        .enumerate()
        .map(|(i, label)| Table2Column {
            object: (*label).to_string(),
            gap_prev_ms: if gap_counts[i] > 0 {
                gap_sums[i] / gap_counts[i] as f64
            } else {
                0.0
            },
            pct_single_target: 100.0 * single[i] as f64 / trials as f64,
            pct_all_targets: 100.0 * sequence[i] as f64 / trials as f64,
            trials,
        })
        .collect()
}

/// Baseline multiplexing statistics without any adversary.
#[derive(Debug, Clone)]
pub struct BaselineRow {
    /// Object label.
    pub object: String,
    /// Mean degree of multiplexing (first copy).
    pub mean_degree_pct: f64,
    /// % of trials with the object fully serialized by chance.
    pub pct_not_multiplexed: f64,
    /// Trials run.
    pub trials: usize,
}

impl_to_json!(struct BaselineRow { object, mean_degree_pct, pct_not_multiplexed, trials });

/// Regenerates the paper's baseline claims: HTML degree ≈98 %, images
/// 80–99 %, 6th object unmultiplexed in ≈32 % of unattacked jittered
/// runs (the paper's 0 ms row of Table I).
pub fn baseline(trials: usize, base_seed: u64) -> Vec<BaselineRow> {
    let mut degrees: Vec<Vec<f64>> = vec![Vec::new(); 9];
    for t in 0..trials {
        let seed = base_seed + 4_000_000 + t as u64;
        let trial = run_isidewith_trial(seed, None);
        let mut interest = vec![trial.iw.html];
        interest.extend_from_slice(&trial.iw.images);
        for (slot, obj) in interest.iter().enumerate() {
            if let Some((_, d)) = trial.result.degree(*obj).best() {
                degrees[slot].push(d);
            }
        }
    }
    let labels = ["HTML", "I1", "I2", "I3", "I4", "I5", "I6", "I7", "I8"];
    labels
        .iter()
        .enumerate()
        .map(|(i, label)| {
            let v = &degrees[i];
            let mean = if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            };
            let zero = v
                .iter()
                .filter(|d| crate::metrics::is_serialized(**d))
                .count();
            BaselineRow {
                object: (*label).to_string(),
                mean_degree_pct: 100.0 * mean,
                pct_not_multiplexed: 100.0 * zero as f64 / v.len().max(1) as f64,
                trials,
            }
        })
        .collect()
}

/// Fig. 1 demonstration: size estimation on serial vs multiplexed
/// two-object transfers.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Scenario label.
    pub scenario: String,
    /// True sizes of (O1, O2).
    pub truth: (u64, u64),
    /// Units found and their size estimates.
    pub estimates: Vec<u64>,
    /// Whether both objects were identified from the estimates.
    pub both_identified: bool,
}

impl_to_json!(struct Fig1Row { scenario, truth, estimates, both_identified });

/// Regenerates the Fig. 1 demonstration.
pub fn fig1(base_seed: u64) -> Vec<Fig1Row> {
    let o1 = 9_500u64;
    let o2 = 7_200u64;
    let map = SizeMap::new(vec![("o1".to_string(), o1), ("o2".to_string(), o2)], 0.03);
    let mut rows = Vec::new();
    for (label, gap_ms) in [
        ("multiplexed (IAT ~ 0)", 0u64),
        ("serial (IAT > service time)", 700),
    ] {
        let site = two_object_site(o1, o2, SimDuration::from_millis(gap_ms));
        let opts = TrialOptions::new(base_seed + gap_ms, None);
        let result = run_site_trial(site, &opts);
        let prediction = result.predict(&map);
        let estimates: Vec<u64> = prediction
            .units
            .iter()
            .map(|u| u.unit.estimated_payload)
            .collect();
        rows.push(Fig1Row {
            scenario: label.to_string(),
            truth: (o1, o2),
            both_identified: prediction.contains("o1") && prediction.contains("o2"),
            estimates,
        });
    }
    rows
}

/// Convenience: does the passive baseline multiplex the HTML? Used by
/// calibration tooling and tests.
pub fn html_baseline_degree(seed: u64) -> f64 {
    let trial = run_isidewith_trial(seed, None);
    trial.html_outcome().best_degree
}

/// Re-exported success check used by integration tests: the HTML label.
pub fn html_label() -> &'static str {
    HTML_LABEL
}

/// Degree of the two objects of a two-object site trial (test helper).
pub fn two_object_degrees(gap: SimDuration, seed: u64) -> (f64, f64) {
    let site = two_object_site(30_000, 24_000, gap);
    let result = run_site_trial(site, &TrialOptions::new(seed, None));
    let d = |o| {
        degree_of_multiplexing(&result.wire_map, ObjectId(o))
            .best()
            .map(|(_, d)| d)
            .unwrap_or(1.0)
    };
    (d(0), d(1))
}
