//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Each function runs a batch of trials and aggregates into row structs;
//! the `h2priv-bench` binaries print them next to the paper's numbers
//! (see `EXPERIMENTS.md`). Trial counts are parameters so that benches
//! can run small smoke batches and the experiment binaries the full 100
//! downloads per point the paper used.
//!
//! Every experiment takes a `jobs` argument and fans its independent,
//! seed-keyed trials across that many worker threads through
//! [`h2priv_util::pool`]. Workers return compact per-trial summaries
//! that are folded **in submission order**, so every aggregate — counts,
//! running float means, serialized JSON — is byte-identical to the
//! sequential run at any job count (`jobs = 1` is the legacy in-line
//! path, `jobs = 0` means all cores).

use crate::attack::{AttackConfig, TransportKind};
use crate::defense::Defense;
use crate::experiment::{
    run_isidewith_h3_trial, run_isidewith_h3_trial_with, run_isidewith_trial,
    run_isidewith_trial_retrying, run_isidewith_trial_with, run_site_trial, FaultPlan,
    TrialOptions, TrialOutcome,
};
use crate::metrics::degree_of_multiplexing;
use crate::predictor::{SizeMap, HTML_LABEL};
use h2priv_netsim::faults::{Duplicate, FaultConfig, GilbertElliott, Reorder};
use h2priv_netsim::time::{SimDuration, SimTime};
use h2priv_netsim::units::Bandwidth;
use h2priv_util::impl_to_json;
use h2priv_util::pool;
use h2priv_util::telemetry;
use h2priv_web::sites::two_object_site;
use h2priv_web::ObjectId;

/// A Table I row: effect of jitter on multiplexing of the 6th object.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Added inter-request spacing (ms).
    pub jitter_ms: u64,
    /// % of trials where the object of interest was not multiplexed
    /// (some copy at degree zero).
    pub pct_not_multiplexed: f64,
    /// Mean retransmissions per trial (TCP + app-layer re-requests).
    pub retransmissions_avg: f64,
    /// Increase over the 0 ms baseline, in %.
    pub retrans_increase_pct: f64,
    /// Mean application-layer re-requests per trial (the duplicate-copy
    /// pathology of Fig. 4).
    pub rerequests_avg: f64,
    /// Trials run.
    pub trials: usize,
}

impl_to_json!(struct Table1Row {
    jitter_ms,
    pct_not_multiplexed,
    retransmissions_avg,
    retrans_increase_pct,
    rerequests_avg,
    trials,
});

/// The jitter values (ms) swept by Table I.
pub const TABLE1_JITTERS_MS: [u64; 4] = [0, 25, 50, 100];

/// Compact per-trial summary of one Table I cell — everything the row
/// aggregation needs, in exactly-representable types, so a summary that
/// round-trips through the campaign journal folds to the same bytes as
/// the in-process run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Trial {
    /// Whether the HTML was fully serialized.
    pub serialized: bool,
    /// Wire retransmissions in the trial.
    pub retrans: u64,
    /// Application-layer re-requests in the trial.
    pub rerequests: u64,
}

/// Runs one Table I cell: jitter batch `ji` (an index into
/// [`TABLE1_JITTERS_MS`]), trial `t`. Pure function of its arguments —
/// the seed layout matches the original in-line loop.
pub fn table1_trial(base_seed: u64, ji: usize, t: usize) -> Table1Trial {
    let jitter_ms = TABLE1_JITTERS_MS[ji];
    let seed = base_seed + (ji as u64) * 10_000 + t as u64;
    let attack = AttackConfig::jitter_only(SimDuration::from_millis(jitter_ms));
    let trial = run_isidewith_trial(seed, Some(attack));
    Table1Trial {
        serialized: crate::metrics::is_serialized(trial.html_outcome().best_degree),
        retrans: trial.result.total_retransmissions(),
        rerequests: trial.result.client.h2_rerequests,
    }
}

/// Streaming per-batch accumulator for Table I. `baseline_retrans` is
/// cross-batch state (the 0 ms row sets the denominator for the
/// increase column), so batches must be folded in sweep order.
#[derive(Debug, Default)]
pub struct Table1Accum {
    serialized: usize,
    retrans_total: u64,
    rereq_total: u64,
    trials: usize,
}

impl Table1Accum {
    /// Folds one trial summary in.
    pub fn add(&mut self, t: &Table1Trial) {
        self.serialized += usize::from(t.serialized);
        self.retrans_total += t.retrans;
        self.rereq_total += t.rerequests;
        self.trials += 1;
    }

    /// Emits the batch's row and updates the cross-batch baseline.
    pub fn row(&self, jitter_ms: u64, baseline_retrans: &mut Option<f64>) -> Table1Row {
        let trials = self.trials;
        let retransmissions_avg = self.retrans_total as f64 / trials as f64;
        let base = *baseline_retrans.get_or_insert(retransmissions_avg.max(1e-9));
        Table1Row {
            jitter_ms,
            pct_not_multiplexed: 100.0 * self.serialized as f64 / trials as f64,
            retransmissions_avg,
            retrans_increase_pct: 100.0 * (retransmissions_avg - base) / base,
            rerequests_avg: self.rereq_total as f64 / trials as f64,
            trials,
        }
    }
}

/// Regenerates Table I (jitter ∈ {0, 25, 50, 100} ms). An empty trial
/// budget yields no rows — "no data" is explicit, never a fabricated
/// percentage.
pub fn table1(trials: usize, base_seed: u64, jobs: usize) -> Vec<Table1Row> {
    if trials == 0 {
        return Vec::new();
    }
    let mut rows = Vec::new();
    let mut baseline_retrans = None;
    for (ji, jitter_ms) in TABLE1_JITTERS_MS.iter().enumerate() {
        let batch = telemetry::open_batch(&format!("table1/jitter_{jitter_ms}ms"));
        let per_trial = pool::run_indexed(jobs, trials, |t| {
            let _tele = telemetry::trial_slot(batch, t as u64);
            table1_trial(base_seed, ji, t)
        });
        let mut accum = Table1Accum::default();
        for summary in &per_trial {
            accum.add(summary);
        }
        rows.push(accum.row(*jitter_ms, &mut baseline_retrans));
    }
    rows
}

/// A Fig. 5 point: effect of bandwidth limitation (with 50 ms jitter).
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Bandwidth limit (Mbps).
    pub bandwidth_mbps: u64,
    /// % of trials counted as success (object serialized and
    /// identified from the trace — includes successes due to
    /// retransmitted copies, as the paper observed).
    pub pct_success: f64,
    /// Mean retransmissions per trial.
    pub retransmissions_avg: f64,
    /// % of trials where the connection broke.
    pub pct_broken: f64,
    /// Trials run.
    pub trials: usize,
}

impl_to_json!(struct Fig5Row { bandwidth_mbps, pct_success, retransmissions_avg, pct_broken, trials });

/// Regenerates Fig. 5 (bandwidth ∈ {1000, 800, 500, 100, 1} Mbps).
pub fn fig5(trials: usize, base_seed: u64, jobs: usize) -> Vec<Fig5Row> {
    if trials == 0 {
        return Vec::new();
    }
    let bandwidths = [1_000u64, 800, 500, 100, 1];
    let mut rows = Vec::new();
    for (bi, mbps) in bandwidths.iter().enumerate() {
        let batch = telemetry::open_batch(&format!("fig5/bandwidth_{mbps}mbps"));
        let per_trial = pool::run_indexed(jobs, trials, |t| {
            let _tele = telemetry::trial_slot(batch, t as u64);
            let seed = base_seed + 1_000_000 + (bi as u64) * 10_000 + t as u64;
            let attack = AttackConfig::jitter_and_bandwidth(
                SimDuration::from_millis(50),
                Bandwidth::mbps(*mbps),
            );
            let trial = run_isidewith_trial(seed, Some(attack));
            (
                trial.html_outcome().success,
                trial.result.client.connection_broken,
                trial.result.total_retransmissions(),
            )
        });
        let mut success = 0usize;
        let mut broken = 0usize;
        let mut retrans_total = 0u64;
        for (ok, brk, retrans) in per_trial {
            success += usize::from(ok);
            broken += usize::from(brk);
            retrans_total += retrans;
        }
        rows.push(Fig5Row {
            bandwidth_mbps: *mbps,
            pct_success: 100.0 * success as f64 / trials as f64,
            retransmissions_avg: retrans_total as f64 / trials as f64,
            pct_broken: 100.0 * broken as f64 / trials as f64,
            trials,
        });
    }
    rows
}

/// A Section IV-D / Fig. 6 point: targeted drops forcing a stream reset.
#[derive(Debug, Clone)]
pub struct DropRow {
    /// Drop rate applied to server→client data packets.
    pub drop_rate: f64,
    /// % of trials where the HTML was serialized and identified.
    pub pct_success: f64,
    /// % of trials where the client actually sent RST_STREAM.
    pub pct_reset_sent: f64,
    /// % of trials where the connection broke.
    pub pct_broken: f64,
    /// Trials run.
    pub trials: usize,
}

impl_to_json!(struct DropRow { drop_rate, pct_success, pct_reset_sent, pct_broken, trials });

/// Regenerates the Section IV-D experiment (80 % drops, plus a sweep
/// showing that higher rates break the connection).
pub fn section4d(trials: usize, base_seed: u64, drop_rates: &[f64], jobs: usize) -> Vec<DropRow> {
    section4d_with(trials, base_seed, drop_rates, true, jobs)
}

/// Section IV-D with the pure 6-second-timer drop window (no early stop
/// on the reset signature). This is the variant where very high drop
/// rates break the connection outright, as the paper reports.
pub fn section4d_timer_only(
    trials: usize,
    base_seed: u64,
    drop_rates: &[f64],
    jobs: usize,
) -> Vec<DropRow> {
    section4d_with(trials, base_seed ^ 0xD0D0, drop_rates, false, jobs)
}

fn section4d_with(
    trials: usize,
    base_seed: u64,
    drop_rates: &[f64],
    stop_on_reset: bool,
    jobs: usize,
) -> Vec<DropRow> {
    if trials == 0 {
        return Vec::new();
    }
    let mut rows = Vec::new();
    for (di, rate) in drop_rates.iter().enumerate() {
        let batch = telemetry::open_batch(&format!("section4d/drop_rate_{rate}"));
        let per_trial = pool::run_indexed(jobs, trials, |t| {
            let _tele = telemetry::trial_slot(batch, t as u64);
            let seed = base_seed + 2_000_000 + (di as u64) * 10_000 + t as u64;
            let mut attack = AttackConfig::with_drops(*rate, SimDuration::from_secs(6));
            attack.stop_drops_on_reset = stop_on_reset;
            let trial = run_isidewith_trial(seed, Some(attack));
            (
                trial.html_outcome().success,
                trial.result.client.resets_sent > 0,
                trial.result.client.connection_broken,
            )
        });
        let mut success = 0usize;
        let mut reset = 0usize;
        let mut broken = 0usize;
        for (ok, rst, brk) in per_trial {
            success += usize::from(ok);
            reset += usize::from(rst);
            broken += usize::from(brk);
        }
        rows.push(DropRow {
            drop_rate: *rate,
            pct_success: 100.0 * success as f64 / trials as f64,
            pct_reset_sent: 100.0 * reset as f64 / trials as f64,
            pct_broken: 100.0 * broken as f64 / trials as f64,
            trials,
        });
    }
    rows
}

/// A Table II column: per-object accuracy of the full attack.
#[derive(Debug, Clone)]
pub struct Table2Column {
    /// Object label ("HTML", "I1".."I8").
    pub object: String,
    /// Mean measured gap to the previous request (ms); `None` when no
    /// trial produced a measurable gap for this slot.
    pub gap_prev_ms: Option<f64>,
    /// % success when the adversary targets objects independently
    /// ("one object at a time").
    pub pct_single_target: f64,
    /// % success for the full ranking inference ("all objects at a
    /// time").
    pub pct_all_targets: f64,
    /// Trials run.
    pub trials: usize,
}

impl_to_json!(struct Table2Column { object, gap_prev_ms, pct_single_target, pct_all_targets, trials });

/// Regenerates Table II with the full Section V attack.
pub fn table2(trials: usize, base_seed: u64, jobs: usize) -> Vec<Table2Column> {
    if trials == 0 {
        return Vec::new();
    }
    // Per-trial summary: which slots succeeded and the measured gap (at
    // most one per slot per trial).
    struct Table2Trial {
        single: [bool; 9],
        sequence: [bool; 9],
        gaps: [Option<f64>; 9],
    }

    let batch = telemetry::open_batch("table2/full_attack");
    let per_trial = pool::run_indexed(jobs, trials, |t| {
        let _tele = telemetry::trial_slot(batch, t as u64);
        let seed = base_seed + 3_000_000 + t as u64;
        let trial = run_isidewith_trial(seed, Some(AttackConfig::full_attack()));
        let mut summary = Table2Trial {
            single: [false; 9],
            sequence: [false; 9],
            gaps: [None; 9],
        };

        // Column 0: the HTML (the ranking page itself).
        let html = trial.html_outcome();
        summary.single[0] = html.success;
        summary.sequence[0] = html.success;
        // Columns 1..=8: the images.
        for (i, out) in trial.image_outcomes().iter().enumerate() {
            summary.single[i + 1] = out.success;
        }
        for (i, ok) in trial.sequence_success().iter().enumerate() {
            summary.sequence[i + 1] = *ok;
        }
        // Measured inter-request gaps (first attempts, client-side).
        let firsts: Vec<_> = trial
            .result
            .client
            .requests
            .iter()
            .filter(|r| r.attempt == 0)
            .collect();
        let mut interest = vec![trial.iw.html];
        interest.extend_from_slice(&trial.iw.images);
        for (slot, obj) in interest.iter().enumerate() {
            if let Some(pos) = firsts.iter().position(|r| r.object == *obj) {
                if pos > 0 {
                    let gap = firsts[pos]
                        .issued_at
                        .saturating_since(firsts[pos - 1].issued_at);
                    summary.gaps[slot] = Some(gap.as_nanos() as f64 / 1e6);
                }
            }
        }
        summary
    });

    let mut single = [0usize; 9];
    let mut sequence = [0usize; 9];
    let mut gap_sums = [0.0f64; 9];
    let mut gap_counts = [0usize; 9];
    for summary in per_trial {
        for i in 0..9 {
            single[i] += usize::from(summary.single[i]);
            sequence[i] += usize::from(summary.sequence[i]);
            if let Some(gap) = summary.gaps[i] {
                gap_sums[i] += gap;
                gap_counts[i] += 1;
            }
        }
    }

    let labels = ["HTML", "I1", "I2", "I3", "I4", "I5", "I6", "I7", "I8"];
    labels
        .iter()
        .enumerate()
        .map(|(i, label)| Table2Column {
            object: (*label).to_string(),
            gap_prev_ms: if gap_counts[i] > 0 {
                Some(gap_sums[i] / gap_counts[i] as f64)
            } else {
                None
            },
            pct_single_target: 100.0 * single[i] as f64 / trials as f64,
            pct_all_targets: 100.0 * sequence[i] as f64 / trials as f64,
            trials,
        })
        .collect()
}

/// Baseline multiplexing statistics without any adversary.
#[derive(Debug, Clone)]
pub struct BaselineRow {
    /// Object label.
    pub object: String,
    /// Mean degree of multiplexing (first copy); `None` when the object
    /// was never observed on the wire in any trial.
    pub mean_degree_pct: Option<f64>,
    /// % of trials with the object fully serialized by chance; `None`
    /// when there were no observations.
    pub pct_not_multiplexed: Option<f64>,
    /// Trials run.
    pub trials: usize,
}

impl_to_json!(struct BaselineRow { object, mean_degree_pct, pct_not_multiplexed, trials });

/// Regenerates the paper's baseline claims: HTML degree ≈98 %, images
/// 80–99 %, 6th object unmultiplexed in ≈32 % of unattacked jittered
/// runs (the paper's 0 ms row of Table I).
pub fn baseline(trials: usize, base_seed: u64, jobs: usize) -> Vec<BaselineRow> {
    if trials == 0 {
        return Vec::new();
    }
    let batch = telemetry::open_batch("baseline/no_attack");
    let per_trial = pool::run_indexed(jobs, trials, |t| {
        let _tele = telemetry::trial_slot(batch, t as u64);
        let seed = base_seed + 4_000_000 + t as u64;
        let trial = run_isidewith_trial(seed, None);
        let mut interest = vec![trial.iw.html];
        interest.extend_from_slice(&trial.iw.images);
        let mut slots: [Option<f64>; 9] = [None; 9];
        for (slot, obj) in interest.iter().enumerate() {
            slots[slot] = trial.result.degree(*obj).best().map(|(_, d)| d);
        }
        slots
    });
    let mut degrees: Vec<Vec<f64>> = vec![Vec::new(); 9];
    for slots in per_trial {
        for (slot, d) in slots.into_iter().enumerate() {
            if let Some(d) = d {
                degrees[slot].push(d);
            }
        }
    }
    let labels = ["HTML", "I1", "I2", "I3", "I4", "I5", "I6", "I7", "I8"];
    labels
        .iter()
        .enumerate()
        .map(|(i, label)| {
            let v = &degrees[i];
            let (mean_degree_pct, pct_not_multiplexed) = if v.is_empty() {
                // Never observed: report "no data" rather than the
                // misleading 0 % the old silent default produced.
                (None, None)
            } else {
                let mean = v.iter().sum::<f64>() / v.len() as f64;
                let zero = v
                    .iter()
                    .filter(|d| crate::metrics::is_serialized(**d))
                    .count();
                (
                    Some(100.0 * mean),
                    Some(100.0 * zero as f64 / v.len() as f64),
                )
            };
            BaselineRow {
                object: (*label).to_string(),
                mean_degree_pct,
                pct_not_multiplexed,
                trials,
            }
        })
        .collect()
}

/// Fig. 1 demonstration: size estimation on serial vs multiplexed
/// two-object transfers.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Scenario label.
    pub scenario: String,
    /// True sizes of (O1, O2).
    pub truth: (u64, u64),
    /// Units found and their size estimates.
    pub estimates: Vec<u64>,
    /// Whether both objects were identified from the estimates.
    pub both_identified: bool,
}

impl_to_json!(struct Fig1Row { scenario, truth, estimates, both_identified });

/// Regenerates the Fig. 1 demonstration.
pub fn fig1(base_seed: u64, jobs: usize) -> Vec<Fig1Row> {
    let o1 = 9_500u64;
    let o2 = 7_200u64;
    let map = SizeMap::new(vec![("o1".to_string(), o1), ("o2".to_string(), o2)], 0.03);
    let scenarios = vec![
        ("multiplexed (IAT ~ 0)", 0u64),
        ("serial (IAT > service time)", 700),
    ];
    let batch = telemetry::open_batch("fig1/size_estimation");
    pool::map_ordered(jobs, scenarios, |(label, gap_ms)| {
        // The gap is unique per scenario and sorts in submission order,
        // so it doubles as the trial id for the telemetry slot.
        let _tele = telemetry::trial_slot(batch, gap_ms);
        let site = two_object_site(o1, o2, SimDuration::from_millis(gap_ms));
        let opts = TrialOptions::new(base_seed + gap_ms, None);
        let result = run_site_trial(site, &opts);
        let prediction = result.predict(&map);
        let estimates: Vec<u64> = prediction
            .units
            .iter()
            .map(|u| u.unit.estimated_payload)
            .collect();
        Fig1Row {
            scenario: label.to_string(),
            truth: (o1, o2),
            both_identified: prediction.contains("o1") && prediction.contains("o2"),
            estimates,
        }
    })
}

/// A robustness-sweep row: the full Section V attack under increasingly
/// adverse network conditions. Degraded trials count as attack failures
/// in the percentage columns (the adversary got nothing usable), and
/// their outcome breakdown is reported alongside so no trial disappears
/// into a silent default.
#[derive(Debug, Clone)]
pub struct RobustnessRow {
    /// Fault intensity knob in `[0, 1]` (0 = pristine path).
    pub intensity: f64,
    /// Configured long-run bursty-loss rate (%).
    pub burst_loss_pct: f64,
    /// Configured per-packet reorder probability (%).
    pub reorder_pct: f64,
    /// Configured per-packet duplication probability (%).
    pub duplicate_pct: f64,
    /// Whether the schedule includes a mid-transfer link flap.
    pub flap: bool,
    /// % of trials where the result HTML was fully serialized; `None`
    /// when no trials ran.
    pub pct_html_serialized: Option<f64>,
    /// % of trials where the predictor identified the HTML; `None` when
    /// no trials ran.
    pub pct_html_identified: Option<f64>,
    /// % of trials meeting the paper's success criterion (serialized and
    /// identified); `None` when no trials ran.
    pub pct_success: Option<f64>,
    /// Mean wire retransmissions per trial; `None` when no trials ran.
    pub retransmissions_avg: Option<f64>,
    /// Mean fault-layer drops (burst + outage) per trial; `None` when no
    /// trials ran.
    pub fault_drops_avg: Option<f64>,
    /// Final attempts that completed.
    pub completed: usize,
    /// Final attempts the watchdog classified as stalled.
    pub stalled: usize,
    /// Final attempts that ended in a broken connection.
    pub aborted: usize,
    /// Final attempts that were still progressing at the horizon.
    pub horizon_exhausted: usize,
    /// Extra (retry) attempts consumed across the row.
    pub retries_used: u64,
    /// Trials run (final attempts; the denominators above).
    pub trials: usize,
}

impl_to_json!(struct RobustnessRow {
    intensity,
    burst_loss_pct,
    reorder_pct,
    duplicate_pct,
    flap,
    pct_html_serialized,
    pct_html_identified,
    pct_success,
    retransmissions_avg,
    fault_drops_avg,
    completed,
    stalled,
    aborted,
    horizon_exhausted,
    retries_used,
    trials,
});

/// The fault bundle applied to the middlebox↔server links at a given
/// sweep intensity in `[0, 1]`: bursty loss up to 5 % (mean burst 4
/// packets), reordering up to 30 % (1–20 ms extra delay), duplication up
/// to 2 %, and from intensity 0.8 a 400 ms link flap mid-transfer.
/// Intensity 0 returns an empty plan (no fault layer attached at all).
pub fn robustness_fault_plan(intensity: f64) -> FaultPlan {
    let x = intensity.clamp(0.0, 1.0);
    if x <= 0.0 {
        return FaultPlan::default();
    }
    let mut cfg = FaultConfig::none()
        .with_burst_loss(GilbertElliott::bursty(0.05 * x, 4.0))
        .with_reorder(Reorder {
            probability: 0.3 * x,
            delay_min: SimDuration::from_millis(1),
            delay_max: SimDuration::from_millis(20),
        })
        .with_duplicate(Duplicate {
            probability: 0.02 * x,
            delay: SimDuration::from_millis(1),
        });
    if x >= 0.8 {
        cfg = cfg.with_flap(SimTime::from_millis(1_000), SimDuration::from_millis(400));
    }
    FaultPlan {
        client_link: None,
        server_link: Some(cfg),
    }
}

/// The fault-intensity points swept by the robustness experiment.
pub const ROBUSTNESS_INTENSITIES: [f64; 6] = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];

/// Compact per-trial summary of one robustness cell, in
/// exactly-representable types (see [`Table1Trial`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RobustTrial {
    /// Outcome of the final attempt, as an index:
    /// completed/stalled/aborted/horizon-exhausted.
    pub outcome_idx: usize,
    /// Retry attempts consumed before the final one.
    pub retries: u64,
    /// HTML fully serialized (completed trials only).
    pub serialized: bool,
    /// HTML identified by the predictor (completed trials only).
    pub identified: bool,
    /// The paper's success criterion held.
    pub success: bool,
    /// Wire retransmissions.
    pub retrans: u64,
    /// Fault-layer drops (burst + outage) across all faulted links.
    pub fault_drops: u64,
}

/// Runs one robustness cell: batch `ii` at fault `intensity`, trial
/// `t`. Pure function of its arguments — the seed layout (keyed by the
/// batch *index*) and watchdog/retry policy match the original in-line
/// loop, so any slicing of the sweep that preserves indices lands on
/// identical seeds.
pub fn robustness_trial(base_seed: u64, ii: usize, intensity: f64, t: usize) -> RobustTrial {
    let plan = robustness_fault_plan(intensity);
    let seed = base_seed + 5_000_000 + (ii as u64) * 10_000 + t as u64;
    let mut opts = TrialOptions::new(seed, Some(AttackConfig::full_attack()));
    opts.faults = plan;
    opts.fail_fast = true;
    opts.stall_window = SimDuration::from_secs(15);
    let retried = run_isidewith_trial_retrying(opts, 1);
    let trial = &retried.trial;
    let outcome_idx = match trial.result.outcome {
        TrialOutcome::Completed => 0,
        TrialOutcome::Stalled => 1,
        TrialOutcome::ConnectionAborted => 2,
        TrialOutcome::HorizonExhausted => 3,
    };
    let completed = trial.result.outcome == TrialOutcome::Completed;
    let out = trial.html_outcome();
    RobustTrial {
        outcome_idx,
        retries: u64::from(retried.retries_used()),
        serialized: completed && crate::metrics::is_serialized(out.best_degree),
        identified: completed && out.identified,
        success: completed && out.success,
        retrans: trial.result.total_retransmissions(),
        fault_drops: trial
            .result
            .fault_stats
            .iter()
            .map(|s| s.dropped())
            .sum::<u64>(),
    }
}

/// Streaming per-batch accumulator for the robustness sweep.
#[derive(Debug, Default)]
pub struct RobustnessAccum {
    serialized: usize,
    identified: usize,
    success: usize,
    outcome_counts: [usize; 4],
    retries_used: u64,
    retrans_total: u64,
    fault_drops_total: u64,
    trials: usize,
}

impl RobustnessAccum {
    /// Folds one trial summary in.
    pub fn add(&mut self, s: &RobustTrial) {
        self.outcome_counts[s.outcome_idx.min(3)] += 1;
        self.retries_used += s.retries;
        self.serialized += usize::from(s.serialized);
        self.identified += usize::from(s.identified);
        self.success += usize::from(s.success);
        self.retrans_total += s.retrans;
        self.fault_drops_total += s.fault_drops;
        self.trials += 1;
    }

    /// Emits the batch's row.
    pub fn row(&self, intensity: f64) -> RobustnessRow {
        let trials = self.trials;
        let pct = |n: usize| Some(100.0 * n as f64 / trials as f64);
        RobustnessRow {
            intensity,
            burst_loss_pct: 100.0 * 0.05 * intensity.clamp(0.0, 1.0),
            reorder_pct: 100.0 * 0.3 * intensity.clamp(0.0, 1.0),
            duplicate_pct: 100.0 * 0.02 * intensity.clamp(0.0, 1.0),
            flap: intensity >= 0.8,
            pct_html_serialized: pct(self.serialized),
            pct_html_identified: pct(self.identified),
            pct_success: pct(self.success),
            retransmissions_avg: Some(self.retrans_total as f64 / trials as f64),
            fault_drops_avg: Some(self.fault_drops_total as f64 / trials as f64),
            completed: self.outcome_counts[0],
            stalled: self.outcome_counts[1],
            aborted: self.outcome_counts[2],
            horizon_exhausted: self.outcome_counts[3],
            retries_used: self.retries_used,
            trials,
        }
    }
}

/// Sweeps the full attack across fault intensities, reporting attack
/// serialization/identification rates against impairment level. Each
/// trial runs with the stall watchdog in fail-fast mode and one retry on
/// a derived seed; every outcome is accounted for in the row.
pub fn robustness_sweep(
    trials: usize,
    base_seed: u64,
    intensities: &[f64],
    jobs: usize,
) -> Vec<RobustnessRow> {
    if trials == 0 {
        return Vec::new();
    }
    let mut rows = Vec::new();
    for (ii, &intensity) in intensities.iter().enumerate() {
        let batch = telemetry::open_batch(&format!("robustness/intensity_{intensity}"));
        let per_trial = pool::run_indexed(jobs, trials, |t| {
            let _tele = telemetry::trial_slot(batch, t as u64);
            robustness_trial(base_seed, ii, intensity, t)
        });
        let mut accum = RobustnessAccum::default();
        for summary in &per_trial {
            accum.add(summary);
        }
        rows.push(accum.row(intensity));
    }
    rows
}

/// One cell of the H2-vs-H3 attack-transfer matrix: a (attack config,
/// transport) pair aggregated over trials.
#[derive(Debug, Clone)]
pub struct TransferRow {
    /// Attack configuration label.
    pub attack: String,
    /// Transport substrate label (`"h2-tcp"` or `"h3-quic"`).
    pub transport: String,
    /// % of trials where the result HTML was fully serialized.
    pub pct_html_serialized: f64,
    /// % of trials where the predictor identified the HTML size.
    pub pct_html_identified: f64,
    /// % of trials meeting the paper's success criterion (serialized
    /// *and* identified).
    pub pct_success: f64,
    /// % of trials where the full 8-party ranking was read off the wire
    /// (every sequence position correct).
    pub pct_full_ranking: f64,
    /// Mean wire retransmissions per trial (TCP retransmits, or the QUIC
    /// loss + PTO retransmission count in its TCP projection).
    pub retransmissions_avg: f64,
    /// % of trials where the client saw a broken connection.
    pub pct_broken: f64,
    /// Trials run per cell.
    pub trials: usize,
}

impl_to_json!(struct TransferRow {
    attack,
    transport,
    pct_html_serialized,
    pct_html_identified,
    pct_success,
    pct_full_ranking,
    retransmissions_avg,
    pct_broken,
    trials,
});

/// The attack configurations swept by [`transport_transfer`], labelled.
pub fn transfer_attack_configs() -> Vec<(&'static str, AttackConfig)> {
    vec![
        ("full_attack", AttackConfig::full_attack()),
        (
            "jitter_only_50ms",
            AttackConfig::jitter_only(SimDuration::from_millis(50)),
        ),
        (
            "jitter_and_bandwidth_800mbps",
            AttackConfig::jitter_and_bandwidth(SimDuration::from_millis(50), Bandwidth::mbps(800)),
        ),
        (
            "with_drops_80pct_6s",
            AttackConfig::with_drops(0.8, SimDuration::from_secs(6)),
        ),
    ]
}

/// The headline transport-transfer experiment: does the forced
/// serialization attack survive the move from HTTP/2-over-TCP to
/// HTTP/3-over-QUIC? Every attack configuration runs against both
/// transports on identical seeds (same survey ground truth per seed), so
/// each matrix row differs only in the substrate the victim speaks.
pub fn transport_transfer(trials: usize, base_seed: u64, jobs: usize) -> Vec<TransferRow> {
    if trials == 0 {
        return Vec::new();
    }
    let mut rows = Vec::new();
    for (cfg_idx, (label, attack)) in transfer_attack_configs().into_iter().enumerate() {
        for transport in ["h2-tcp", "h3-quic"] {
            let batch = telemetry::open_batch(&format!("transfer/{label}/{transport}"));
            let per_trial = pool::run_indexed(jobs, trials, |t| {
                let _tele = telemetry::trial_slot(batch, t as u64);
                let seed = base_seed + 6_000_000 + (cfg_idx as u64) * 10_000 + t as u64;
                let trial = if transport == "h2-tcp" {
                    run_isidewith_trial(seed, Some(attack.clone()))
                } else {
                    run_isidewith_h3_trial(seed, Some(attack.clone()))
                };
                let out = trial.html_outcome();
                (
                    crate::metrics::is_serialized(out.best_degree),
                    out.identified,
                    out.success,
                    trial.sequence_success().iter().all(|ok| *ok),
                    trial.result.client.connection_broken,
                    trial.result.total_retransmissions(),
                )
            });
            let (mut serialized, mut identified, mut success) = (0usize, 0usize, 0usize);
            let mut full_ranking = 0usize;
            let mut broken = 0usize;
            let mut retrans_total = 0u64;
            for (ser, ident, ok, rank, brk, retrans) in per_trial {
                serialized += usize::from(ser);
                identified += usize::from(ident);
                success += usize::from(ok);
                full_ranking += usize::from(rank);
                broken += usize::from(brk);
                retrans_total += retrans;
            }
            let pct = |n: usize| 100.0 * n as f64 / trials as f64;
            rows.push(TransferRow {
                attack: label.to_string(),
                transport: transport.to_string(),
                pct_html_serialized: pct(serialized),
                pct_html_identified: pct(identified),
                pct_success: pct(success),
                pct_full_ranking: pct(full_ranking),
                retransmissions_avg: retrans_total as f64 / trials as f64,
                pct_broken: pct(broken),
                trials,
            });
        }
    }
    rows
}

/// One batch of the attack × defense × transport matrix.
#[derive(Debug, Clone, Copy)]
pub struct DefenseMatrixBatch {
    /// The countermeasure under test.
    pub defense: Defense,
    /// Attack configuration label (resolved by
    /// [`defense_matrix_attack`]).
    pub attack: &'static str,
    /// Transport substrate label (`"h2-tcp"` or `"h3-quic"`).
    pub transport: &'static str,
}

impl DefenseMatrixBatch {
    /// The transport as an enum.
    pub fn transport_kind(&self) -> TransportKind {
        if self.transport == "h2-tcp" {
            TransportKind::Tcp
        } else {
            TransportKind::Quic
        }
    }
}

/// The matrix's batch enumeration, grouped `(attack, transport)`-major
/// with the undefended baseline **first in every group** — the overhead
/// columns of later rows are computed against it, so the streaming fold
/// only ever holds one group's baseline.
pub fn defense_matrix_batches() -> Vec<DefenseMatrixBatch> {
    let mut batches = Vec::new();
    for attack in ["full_attack", "jitter_only_50ms"] {
        for transport in ["h2-tcp", "h3-quic"] {
            let kind = if transport == "h2-tcp" {
                TransportKind::Tcp
            } else {
                TransportKind::Quic
            };
            for defense in Defense::ALL {
                if defense.supported_on(kind) {
                    batches.push(DefenseMatrixBatch {
                        defense,
                        attack,
                        transport,
                    });
                }
            }
        }
    }
    batches
}

/// Resolves a matrix attack label to its configuration.
///
/// # Panics
/// Panics on a label not produced by [`defense_matrix_batches`].
pub fn defense_matrix_attack(label: &str) -> AttackConfig {
    match label {
        "full_attack" => AttackConfig::full_attack(),
        "jitter_only_50ms" => AttackConfig::jitter_only(SimDuration::from_millis(50)),
        other => panic!("unknown defense-matrix attack {other:?}"),
    }
}

/// Compact per-trial summary of one defense-matrix cell, in
/// exactly-representable types (see [`Table1Trial`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefenseTrial {
    /// The page load finished.
    pub completed: bool,
    /// HTML fully serialized.
    pub serialized: bool,
    /// HTML identified by the predictor.
    pub identified: bool,
    /// The paper's success criterion (serialized *and* identified) —
    /// judged from the adversary's capture whether or not the page
    /// finished, matching [`transport_transfer`].
    pub success: bool,
    /// Every position of the 8-party ranking read correctly.
    pub full_ranking: bool,
    /// Server payload bytes on the wire, including padding fill and
    /// dummy shaping cells — the defense's bandwidth cost.
    pub wire_bytes: u64,
    /// Page-load duration in nanoseconds (0 when not completed) — the
    /// defense's latency cost.
    pub page_ns: u64,
}

/// Runs one defense-matrix cell: batch `bi`, trial `t`. Pure function
/// of its arguments; the seed layout mirrors the other experiments
/// (`base + offset + batch_idx * 10_000 + trial`).
pub fn defense_matrix_trial(base_seed: u64, bi: usize, t: usize) -> DefenseTrial {
    let b = defense_matrix_batches()[bi];
    let seed = base_seed + 7_000_000 + (bi as u64) * 10_000 + t as u64;
    let mut opts = TrialOptions::new(seed, Some(defense_matrix_attack(b.attack)));
    opts.defense = b.defense;
    let trial = match b.transport_kind() {
        TransportKind::Tcp => run_isidewith_trial_with(opts),
        TransportKind::Quic => run_isidewith_h3_trial_with(opts),
    };
    let out = trial.html_outcome();
    let completed = trial.result.outcome == TrialOutcome::Completed;
    let page_ns = match (
        trial.result.client.page_started_at,
        trial.result.client.page_completed_at,
    ) {
        (Some(a), Some(z)) => z.as_nanos().saturating_sub(a.as_nanos()),
        _ => 0,
    };
    // H2's TCP byte counter already includes TLS padding fill and dummy
    // cells (they ride the same byte stream); QUIC's stream-byte counter
    // excludes its datagram padding, which is accounted separately.
    let wire_bytes = match b.transport_kind() {
        TransportKind::Tcp => trial.result.server_tcp.bytes_sent,
        TransportKind::Quic => trial.result.server_tcp.bytes_sent + trial.result.pad_overhead_bytes,
    };
    DefenseTrial {
        completed,
        serialized: crate::metrics::is_serialized(out.best_degree),
        identified: out.identified,
        success: out.success,
        full_ranking: trial.sequence_success().iter().all(|ok| *ok),
        wire_bytes,
        page_ns,
    }
}

/// One row of the attack × defense × transport matrix.
#[derive(Debug, Clone)]
pub struct DefenseMatrixRow {
    /// Countermeasure label.
    pub defense: String,
    /// Attack configuration label.
    pub attack: String,
    /// Transport substrate label.
    pub transport: String,
    /// % of trials meeting the paper's success criterion.
    pub pct_success: f64,
    /// % of trials where the HTML size was identified.
    pub pct_identified: f64,
    /// % of trials where the full 8-party ranking was read correctly.
    pub pct_full_ranking: f64,
    /// % of trials whose page load finished.
    pub pct_completed: f64,
    /// Mean server wire bytes per trial (padding and cover traffic
    /// included).
    pub wire_bytes_avg: f64,
    /// Mean page-load time over completed trials, ms (0 when none
    /// completed).
    pub page_ms_avg: f64,
    /// Wire-byte overhead vs the undefended cell of the same (attack,
    /// transport), % (0 for the baseline row itself).
    pub bandwidth_overhead_pct: f64,
    /// Page-time overhead vs the undefended cell, % (0 when either cell
    /// has no completions).
    pub latency_overhead_pct: f64,
    /// Trials per cell.
    pub trials: usize,
}

impl_to_json!(struct DefenseMatrixRow {
    defense,
    attack,
    transport,
    pct_success,
    pct_identified,
    pct_full_ranking,
    pct_completed,
    wire_bytes_avg,
    page_ms_avg,
    bandwidth_overhead_pct,
    latency_overhead_pct,
    trials,
});

/// Streaming per-batch accumulator for the defense matrix.
#[derive(Debug, Default)]
pub struct DefenseAccum {
    success: usize,
    identified: usize,
    full_ranking: usize,
    completed: usize,
    wire_bytes_total: u64,
    page_ns_total: u64,
    trials: usize,
}

impl DefenseAccum {
    /// Folds one trial summary in.
    pub fn add(&mut self, s: &DefenseTrial) {
        self.success += usize::from(s.success);
        self.identified += usize::from(s.identified);
        self.full_ranking += usize::from(s.full_ranking);
        self.completed += usize::from(s.completed);
        self.wire_bytes_total += s.wire_bytes;
        self.page_ns_total += s.page_ns;
        self.trials += 1;
    }

    /// Emits the batch's row. `baseline` carries the current (attack,
    /// transport) group's undefended `(wire_bytes_avg, page_ms_avg)`:
    /// the `none` batch **sets** it (each group starts with `none`, see
    /// [`defense_matrix_batches`]), every other batch reads it for the
    /// overhead columns — the same cross-batch pattern as Table I's
    /// `baseline_retrans`.
    pub fn row(
        &self,
        b: &DefenseMatrixBatch,
        baseline: &mut Option<(f64, f64)>,
    ) -> DefenseMatrixRow {
        let trials = self.trials;
        let pct = |n: usize| 100.0 * n as f64 / trials as f64;
        let wire_bytes_avg = self.wire_bytes_total as f64 / trials as f64;
        let page_ms_avg = if self.completed > 0 {
            self.page_ns_total as f64 / self.completed as f64 / 1e6
        } else {
            0.0
        };
        if b.defense == Defense::None {
            *baseline = Some((wire_bytes_avg, page_ms_avg));
        }
        let (base_bytes, base_ms) = baseline.expect("baseline batch folded first in each group");
        let overhead = |v: f64, base: f64| {
            if base > 0.0 && v > 0.0 {
                100.0 * (v - base) / base
            } else {
                0.0
            }
        };
        DefenseMatrixRow {
            defense: b.defense.label().to_string(),
            attack: b.attack.to_string(),
            transport: b.transport.to_string(),
            pct_success: pct(self.success),
            pct_identified: pct(self.identified),
            pct_full_ranking: pct(self.full_ranking),
            pct_completed: pct(self.completed),
            wire_bytes_avg,
            page_ms_avg,
            bandwidth_overhead_pct: overhead(wire_bytes_avg, base_bytes),
            latency_overhead_pct: overhead(page_ms_avg, base_ms),
            trials,
        }
    }
}

/// The attack × defense × transport matrix: every countermeasure preset
/// against both matrix attacks on both transports (where supported),
/// with bandwidth and latency overhead measured against the undefended
/// cell of the same group.
pub fn defense_matrix(trials: usize, base_seed: u64, jobs: usize) -> Vec<DefenseMatrixRow> {
    if trials == 0 {
        return Vec::new();
    }
    let batches = defense_matrix_batches();
    let mut rows = Vec::new();
    let mut baseline = None;
    for (bi, b) in batches.iter().enumerate() {
        let batch = telemetry::open_batch(&format!(
            "defense/{}/{}/{}",
            b.attack,
            b.transport,
            b.defense.label()
        ));
        let per_trial = pool::run_indexed(jobs, trials, |t| {
            let _tele = telemetry::trial_slot(batch, t as u64);
            defense_matrix_trial(base_seed, bi, t)
        });
        let mut accum = DefenseAccum::default();
        for s in &per_trial {
            accum.add(s);
        }
        rows.push(accum.row(b, &mut baseline));
    }
    rows
}

/// Convenience: does the passive baseline multiplex the HTML? Used by
/// calibration tooling and tests.
pub fn html_baseline_degree(seed: u64) -> f64 {
    let trial = run_isidewith_trial(seed, None);
    trial.html_outcome().best_degree
}

/// Re-exported success check used by integration tests: the HTML label.
pub fn html_label() -> &'static str {
    HTML_LABEL
}

/// Degree of the two objects of a two-object site trial (test helper).
/// `None` means the object never appeared on the wire — callers must
/// treat that as missing data, not as "fully multiplexed".
pub fn two_object_degrees(gap: SimDuration, seed: u64) -> (Option<f64>, Option<f64>) {
    let site = two_object_site(30_000, 24_000, gap);
    let result = run_site_trial(site, &TrialOptions::new(seed, None));
    let d = |o| {
        degree_of_multiplexing(&result.wire_map, ObjectId(o))
            .best()
            .map(|(_, d)| d)
    };
    (d(0), d(1))
}
