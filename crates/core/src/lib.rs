//! # h2priv-core
//!
//! The primary contribution of *"Depending on HTTP/2 for Privacy? Good
//! Luck!"* (Mitra et al., DSN 2020), reimplemented over the `h2priv`
//! simulation stack: an **active network adversary** that breaks
//! HTTP/2-multiplexing-based privacy by forcing the server to *serialize*
//! object transmissions, making encrypted object sizes observable again.
//!
//! The adversary is a compromised on-path device with three components
//! (paper Section V):
//!
//! * **Traffic monitor** ([`monitor`]) — the tshark stand-in: counts GET
//!   requests in the client→server record stream
//!   (`ssl.record.content_type == 23` plus a size heuristic) and detects
//!   the trigger request.
//! * **Network controller** ([`controller`]) — the `tc` stand-in: paces
//!   GET-carrying packets to a minimum spacing (jitter, Section IV-B),
//!   throttles the path (Section IV-C) and drops server→client data
//!   packets to force an HTTP/2 stream reset (Section IV-D). The full
//!   three-phase schedule from Section V lives in [`attack`].
//! * **Object predictor** ([`predictor`]) — the Python stand-in:
//!   segments the server→client record stream into transmission units,
//!   estimates object sizes, and matches them against a pre-compiled
//!   size map to recover object identities (and, for isidewith.com, the
//!   user's political-party ranking).
//!
//! [`metrics`] implements the paper's privacy metric — the **degree of
//! multiplexing** (Section II-A) — from ground truth, and [`experiment`]
//! and [`experiments`] run complete trials and regenerate every table
//! and figure of the paper's evaluation.
//!
//! See `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for
//! measured-vs-paper numbers.
//!
//! ## Quickstart
//!
//! ```
//! use h2priv_core::attack::AttackConfig;
//! use h2priv_core::experiment::run_isidewith_trial;
//!
//! // One attacked page load (seed 1) with the paper's full 3-phase attack.
//! let trial = run_isidewith_trial(1, Some(AttackConfig::full_attack()));
//! let outcome = trial.html_outcome();
//! println!(
//!     "HTML degree of multiplexing {:.0}%, identified: {}",
//!     outcome.best_degree * 100.0,
//!     outcome.identified
//! );
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod attack;
pub mod campaign;
pub mod controller;
pub mod defense;
pub mod experiment;
pub mod experiments;
pub mod metrics;
pub mod monitor;
pub mod partial;
pub mod predictor;
pub mod report;

pub use attack::{AttackConfig, TransportKind};
pub use experiment::{
    run_isidewith_h3_trial, run_isidewith_trial, run_site_trial, IsideWithTrial, TrialResult,
};
pub use metrics::degree_of_multiplexing;
pub use predictor::{Prediction, SizeMap};
