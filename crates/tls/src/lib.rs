//! # h2priv-tls
//!
//! A TLS 1.2-style *record layer model* for the `h2priv` reproduction of
//! *"Depending on HTTP/2 for Privacy? Good Luck!"* (DSN 2020).
//!
//! The paper's adversary never breaks encryption; it only uses what TLS
//! leaves in the clear on the wire:
//!
//! * the 5-byte record header — in particular the **content type**
//!   (`ssl.record.content_type == 23` is the tshark filter the paper uses
//!   to count GET requests), and the record **length**;
//! * packet sizes and timing.
//!
//! Accordingly this crate does no real cryptography. [`RecordSealer`]
//! wraps plaintext into records with realistic size overhead (5-byte
//! header + 16-byte AEAD tag) and [`RecordOpener`] re-parses the byte
//! stream on the receiving side. Confidentiality is modelled by
//! convention: adversary code (in `h2priv-core`/`h2priv-trace`) only ever
//! parses record *headers* out of the stream.
//!
//! Because experiments need ground truth ("which wire bytes belonged to
//! which object?", needed for the paper's *degree of multiplexing*
//! metric), the sealer also maintains a [`WireMap`]: a list of
//! `[start, end)` TCP-stream-offset spans annotated with a [`RecordTag`].
//! This is out-of-band instrumentation, never visible to the adversary.
//!
//! ## Example
//!
//! ```
//! use h2priv_tls::{ContentType, RecordOpener, RecordSealer, RecordTag};
//!
//! let mut sealer = RecordSealer::new();
//! let wire = sealer.seal(ContentType::ApplicationData, &[0u8; 100], RecordTag::NONE);
//! assert_eq!(wire.len(), 100 + 5 + 16); // header + AEAD tag
//!
//! let mut opener = RecordOpener::new();
//! opener.push(&wire);
//! let rec = opener.poll_record().expect("one record");
//! assert_eq!(rec.content_type, ContentType::ApplicationData);
//! assert_eq!(rec.plaintext.len(), 100);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod record;
pub mod session;
pub mod wire_map;

pub use record::{
    ContentType, RecordHeader, AEAD_TAG_LEN, MAX_RECORD_PLAINTEXT, RECORD_HEADER_LEN,
    RECORD_OVERHEAD,
};
pub use session::{OpenedRecord, RecordOpener, RecordSealer, PAD_PREFIX_LEN};
pub use wire_map::{RecordTag, TrafficClass, WireMap, WireSpan};
