//! TLS record framing: the 5-byte cleartext header and size constants.

use core::fmt;
use h2priv_util::impl_to_json;

/// Length of the cleartext record header (type + version + length).
pub const RECORD_HEADER_LEN: usize = 5;

/// AEAD authentication tag length (AES-GCM).
pub const AEAD_TAG_LEN: usize = 16;

/// Total per-record size overhead on the wire.
pub const RECORD_OVERHEAD: usize = RECORD_HEADER_LEN + AEAD_TAG_LEN;

/// Maximum plaintext bytes per record (RFC 5246 §6.2.1).
pub const MAX_RECORD_PLAINTEXT: usize = 16_384;

/// TLS wire version carried in every record header (TLS 1.2 = 0x0303).
pub const WIRE_VERSION: u16 = 0x0303;

/// TLS record content types (the field the paper's tshark filter keys on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ContentType {
    /// change_cipher_spec(20)
    ChangeCipherSpec = 20,
    /// alert(21)
    Alert = 21,
    /// handshake(22)
    Handshake = 22,
    /// application_data(23) — HTTP/2 frames travel in these.
    ApplicationData = 23,
}

impl_to_json!(
    enum ContentType {
        ChangeCipherSpec,
        Alert,
        Handshake,
        ApplicationData,
    }
);

impl ContentType {
    /// Parses a content-type byte.
    pub fn from_byte(b: u8) -> Option<ContentType> {
        match b {
            20 => Some(ContentType::ChangeCipherSpec),
            21 => Some(ContentType::Alert),
            22 => Some(ContentType::Handshake),
            23 => Some(ContentType::ApplicationData),
            _ => None,
        }
    }

    /// The wire byte.
    pub fn as_byte(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for ContentType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ContentType::ChangeCipherSpec => "change_cipher_spec",
            ContentType::Alert => "alert",
            ContentType::Handshake => "handshake",
            ContentType::ApplicationData => "application_data",
        };
        write!(f, "{s}")
    }
}

/// The cleartext 5-byte header of one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordHeader {
    /// Record content type.
    pub content_type: ContentType,
    /// Protocol version (always [`WIRE_VERSION`] here).
    pub version: u16,
    /// Length of the record body (ciphertext) in bytes.
    pub length: u16,
}

impl_to_json!(struct RecordHeader { content_type, version, length });

impl RecordHeader {
    /// Encodes into the 5 wire bytes.
    pub fn encode(&self) -> [u8; RECORD_HEADER_LEN] {
        [
            self.content_type.as_byte(),
            (self.version >> 8) as u8,
            (self.version & 0xff) as u8,
            (self.length >> 8) as u8,
            (self.length & 0xff) as u8,
        ]
    }

    /// Decodes from wire bytes. Returns `None` on an unknown content type
    /// (which in this simulation indicates stream desynchronisation).
    pub fn decode(bytes: &[u8]) -> Option<RecordHeader> {
        if bytes.len() < RECORD_HEADER_LEN {
            return None;
        }
        let content_type = ContentType::from_byte(bytes[0])?;
        let version = u16::from_be_bytes([bytes[1], bytes[2]]);
        let length = u16::from_be_bytes([bytes[3], bytes[4]]);
        Some(RecordHeader {
            content_type,
            version,
            length,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_util::check::{self, Gen};
    use h2priv_util::prop_assert_eq;

    #[test]
    fn encode_decode_roundtrip() {
        let h = RecordHeader {
            content_type: ContentType::ApplicationData,
            version: WIRE_VERSION,
            length: 1234,
        };
        let enc = h.encode();
        assert_eq!(enc[0], 23);
        assert_eq!(RecordHeader::decode(&enc), Some(h));
    }

    #[test]
    fn decode_rejects_short_and_garbage() {
        assert_eq!(RecordHeader::decode(&[23, 3]), None);
        assert_eq!(RecordHeader::decode(&[99, 3, 3, 0, 0]), None);
    }

    #[test]
    fn content_type_bytes() {
        for ct in [
            ContentType::ChangeCipherSpec,
            ContentType::Alert,
            ContentType::Handshake,
            ContentType::ApplicationData,
        ] {
            assert_eq!(ContentType::from_byte(ct.as_byte()), Some(ct));
        }
        assert_eq!(ContentType::from_byte(0), None);
    }

    #[test]
    fn header_roundtrip_any_length() {
        check::run("header_roundtrip_any_length", 512, |g: &mut Gen| {
            let h = RecordHeader {
                content_type: ContentType::Handshake,
                version: WIRE_VERSION,
                length: g.u16(0, u16::MAX),
            };
            prop_assert_eq!(RecordHeader::decode(&h.encode()), Some(h));
        });
    }
}
