//! Sealing and opening of the record stream.
//!
//! [`RecordSealer`] turns plaintext messages into the on-wire byte stream
//! (splitting at the 16 KiB record limit and adding header + AEAD tag
//! overhead) while building the ground-truth [`WireMap`].
//! [`RecordOpener`] incrementally re-parses the stream on the receiving
//! side — the same reassembly an endpoint's TLS stack performs.

use crate::record::{
    ContentType, RecordHeader, AEAD_TAG_LEN, MAX_RECORD_PLAINTEXT, RECORD_HEADER_LEN, WIRE_VERSION,
};
use crate::wire_map::{RecordTag, WireMap, WireSpan};
use h2priv_util::bytes::{Bytes, BytesMut};

/// Length of the cleartext length prefix inside a padded record body.
pub const PAD_PREFIX_LEN: usize = 2;

/// Encrypt-direction half of a session: plaintext in, wire bytes out.
#[derive(Debug, Default)]
pub struct RecordSealer {
    wire_offset: u64,
    map: WireMap,
    records_sealed: u64,
    /// Pad ApplicationData record plaintexts up to a multiple of this
    /// block size (RFC 8467 style). 0 = no padding.
    pad_block: usize,
    pad_bytes: u64,
}

impl RecordSealer {
    /// Creates a sealer at stream offset zero.
    pub fn new() -> RecordSealer {
        RecordSealer::default()
    }

    /// Creates a sealer that pads every ApplicationData record's
    /// plaintext up to a multiple of `block` bytes. Padded records carry
    /// a [`PAD_PREFIX_LEN`]-byte cleartext length prefix inside the
    /// (modelled) ciphertext; the peer's opener must strip it (see
    /// [`RecordOpener::with_padding_strip`]).
    pub fn with_padding(block: usize) -> RecordSealer {
        assert!(block > 0, "pad block must be positive");
        assert!(
            block + AEAD_TAG_LEN <= MAX_RECORD_PLAINTEXT,
            "pad block exceeds record capacity"
        );
        RecordSealer {
            pad_block: block,
            ..RecordSealer::default()
        }
    }

    /// Seals one message, fragmenting into records of at most 16 KiB
    /// plaintext. Returns the wire bytes to hand to TCP.
    pub fn seal(&mut self, ct: ContentType, plaintext: &[u8], tag: RecordTag) -> Bytes {
        if self.pad_block > 0 && ct == ContentType::ApplicationData {
            return self.seal_padded(plaintext, tag);
        }
        let mut out = BytesMut::with_capacity(plaintext.len() + RECORD_HEADER_LEN + AEAD_TAG_LEN);
        let mut rest = plaintext;
        loop {
            let take = rest.len().min(MAX_RECORD_PLAINTEXT - AEAD_TAG_LEN);
            let body_len = take + AEAD_TAG_LEN;
            let header = RecordHeader {
                content_type: ct,
                version: WIRE_VERSION,
                length: body_len as u16,
            };
            out.extend_from_slice(&header.encode());
            out.extend_from_slice(&rest[..take]);
            // The AEAD tag: opaque bytes on the wire (zeros here — no
            // real cryptography in the model).
            out.extend_from_slice(&[0u8; AEAD_TAG_LEN]);
            let total = (RECORD_HEADER_LEN + body_len) as u64;
            self.map.push(WireSpan {
                start: self.wire_offset,
                end: self.wire_offset + total,
                tag,
            });
            self.wire_offset += total;
            self.records_sealed += 1;
            rest = &rest[take..];
            if rest.is_empty() {
                break;
            }
        }
        out.freeze()
    }

    /// Padded variant: each record's plaintext is
    /// `[2-byte payload len][payload][zero pad]`, rounded up to a
    /// multiple of `pad_block` (capped at the record plaintext limit).
    fn seal_padded(&mut self, plaintext: &[u8], tag: RecordTag) -> Bytes {
        let max_inner = MAX_RECORD_PLAINTEXT - AEAD_TAG_LEN;
        let mut out = BytesMut::with_capacity(plaintext.len() + RECORD_HEADER_LEN + AEAD_TAG_LEN);
        let mut rest = plaintext;
        loop {
            let take = rest.len().min(max_inner - PAD_PREFIX_LEN);
            let unpadded = PAD_PREFIX_LEN + take;
            let inner = unpadded
                .div_ceil(self.pad_block)
                .saturating_mul(self.pad_block)
                .min(max_inner);
            let body_len = inner + AEAD_TAG_LEN;
            let header = RecordHeader {
                content_type: ContentType::ApplicationData,
                version: WIRE_VERSION,
                length: body_len as u16,
            };
            out.extend_from_slice(&header.encode());
            out.put_u16(take as u16);
            out.extend_from_slice(&rest[..take]);
            out.put_zeros(inner - unpadded);
            out.extend_from_slice(&[0u8; AEAD_TAG_LEN]);
            self.pad_bytes += (inner - take) as u64;
            let total = (RECORD_HEADER_LEN + body_len) as u64;
            self.map.push(WireSpan {
                start: self.wire_offset,
                end: self.wire_offset + total,
                tag,
            });
            self.wire_offset += total;
            self.records_sealed += 1;
            rest = &rest[take..];
            if rest.is_empty() {
                break;
            }
        }
        out.freeze()
    }

    /// Total padding overhead emitted so far (prefix + zero fill), in
    /// bytes. Always 0 for an unpadded sealer.
    pub fn pad_bytes(&self) -> u64 {
        self.pad_bytes
    }

    /// Current TCP stream offset (bytes emitted so far).
    pub fn wire_offset(&self) -> u64 {
        self.wire_offset
    }

    /// Records sealed so far.
    pub fn records_sealed(&self) -> u64 {
        self.records_sealed
    }

    /// The ground-truth map built so far.
    pub fn wire_map(&self) -> &WireMap {
        &self.map
    }

    /// Consumes the sealer, returning its ground-truth map.
    pub fn into_wire_map(self) -> WireMap {
        self.map
    }
}

/// One record recovered from the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenedRecord {
    /// The content type from the cleartext header.
    pub content_type: ContentType,
    /// The recovered plaintext (body minus AEAD tag).
    pub plaintext: Bytes,
}

/// Decrypt-direction half: wire bytes in, records out.
///
/// The stream buffer is head-indexed: consuming a record advances a
/// cursor instead of shifting the tail down, so parsing a burst of n
/// records costs O(n) rather than O(n²). The consumed prefix is
/// reclaimed lazily, only when the live suffix is a small fraction of
/// the buffer.
#[derive(Debug, Default)]
pub struct RecordOpener {
    buf: Vec<u8>,
    /// Offset of the first unconsumed byte in `buf`.
    head: usize,
    /// Strip RFC 8467-style padding from ApplicationData records (the
    /// peer sealed with [`RecordSealer::with_padding`]).
    strip_padding: bool,
}

impl RecordOpener {
    /// Creates an empty opener.
    pub fn new() -> RecordOpener {
        RecordOpener::default()
    }

    /// Creates an opener that strips block padding from ApplicationData
    /// records: the first [`PAD_PREFIX_LEN`] plaintext bytes give the
    /// real payload length, the rest is zero fill.
    pub fn with_padding_strip() -> RecordOpener {
        RecordOpener {
            strip_padding: true,
            ..RecordOpener::default()
        }
    }

    /// Appends received stream bytes.
    pub fn push(&mut self, data: &[u8]) {
        if self.head == self.buf.len() {
            // Everything consumed: restart at the front so the buffer
            // never grows past one burst's worth of bytes.
            self.buf.clear();
            self.head = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Extracts the next complete record, if the buffer holds one.
    ///
    /// # Panics
    /// Panics if the stream is corrupt (unknown content type or a body
    /// shorter than the AEAD tag) — in this simulation that indicates a
    /// bug, not an attack, so failing fast is correct.
    pub fn poll_record(&mut self) -> Option<OpenedRecord> {
        let pending = &self.buf[self.head..];
        if pending.len() < RECORD_HEADER_LEN {
            return None;
        }
        let header = RecordHeader::decode(&pending[..RECORD_HEADER_LEN])
            .expect("corrupt TLS stream: bad record header");
        let body_len = header.length as usize;
        assert!(
            body_len >= AEAD_TAG_LEN,
            "corrupt TLS stream: body shorter than AEAD tag"
        );
        if pending.len() < RECORD_HEADER_LEN + body_len {
            return None;
        }
        let body = &pending[RECORD_HEADER_LEN..RECORD_HEADER_LEN + body_len - AEAD_TAG_LEN];
        let plaintext = if self.strip_padding && header.content_type == ContentType::ApplicationData
        {
            assert!(
                body.len() >= PAD_PREFIX_LEN,
                "corrupt padded record: body shorter than length prefix"
            );
            let real = u16::from_be_bytes([body[0], body[1]]) as usize;
            assert!(
                PAD_PREFIX_LEN + real <= body.len(),
                "corrupt padded record: payload length exceeds body"
            );
            Bytes::copy_from_slice(&body[PAD_PREFIX_LEN..PAD_PREFIX_LEN + real])
        } else {
            Bytes::copy_from_slice(body)
        };
        self.head += RECORD_HEADER_LEN + body_len;
        Some(OpenedRecord {
            content_type: header.content_type,
            plaintext,
        })
    }

    /// Bytes buffered but not yet forming a complete record.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.head
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_util::check::{self, Gen};
    use h2priv_util::prop_assert_eq;

    #[test]
    fn seal_open_roundtrip_single() {
        let mut s = RecordSealer::new();
        let msg: Vec<u8> = (0..200u8).collect();
        let wire = s.seal(ContentType::Handshake, &msg, RecordTag::NONE);
        let mut o = RecordOpener::new();
        o.push(&wire);
        let rec = o.poll_record().unwrap();
        assert_eq!(rec.content_type, ContentType::Handshake);
        assert_eq!(&rec.plaintext[..], &msg[..]);
        assert!(o.poll_record().is_none());
        assert_eq!(o.pending_bytes(), 0);
    }

    #[test]
    fn large_message_fragments_at_record_limit() {
        let mut s = RecordSealer::new();
        let msg = vec![7u8; 40_000];
        let wire = s.seal(ContentType::ApplicationData, &msg, RecordTag::NONE);
        assert!(s.records_sealed() >= 3);
        let mut o = RecordOpener::new();
        o.push(&wire);
        let mut total = 0;
        while let Some(rec) = o.poll_record() {
            assert!(rec.plaintext.len() <= MAX_RECORD_PLAINTEXT);
            total += rec.plaintext.len();
        }
        assert_eq!(total, 40_000);
    }

    #[test]
    fn opener_handles_byte_by_byte_arrival() {
        let mut s = RecordSealer::new();
        let wire = s.seal(
            ContentType::ApplicationData,
            b"hello records",
            RecordTag::NONE,
        );
        let mut o = RecordOpener::new();
        let mut got = None;
        for b in wire.iter() {
            o.push(&[*b]);
            if let Some(r) = o.poll_record() {
                got = Some(r);
            }
        }
        assert_eq!(&got.unwrap().plaintext[..], b"hello records");
    }

    #[test]
    fn wire_map_tracks_offsets_exactly() {
        let mut s = RecordSealer::new();
        let t1 = RecordTag {
            stream_id: 1,
            object_id: 10,
            copy: 0,
            class: crate::TrafficClass::ObjectData,
        };
        let t2 = RecordTag {
            stream_id: 3,
            object_id: 11,
            copy: 0,
            class: crate::TrafficClass::ObjectData,
        };
        let w1 = s.seal(ContentType::ApplicationData, &[0u8; 100], t1);
        let w2 = s.seal(ContentType::ApplicationData, &[0u8; 50], t2);
        let map = s.wire_map();
        assert_eq!(map.spans().len(), 2);
        assert_eq!(map.spans()[0].start, 0);
        assert_eq!(map.spans()[0].end, w1.len() as u64);
        assert_eq!(map.spans()[1].start, w1.len() as u64);
        assert_eq!(map.spans()[1].end, (w1.len() + w2.len()) as u64);
        assert_eq!(map.tag_at(3).unwrap().object_id, 10);
        assert_eq!(map.tag_at(w1.len() as u64).unwrap().object_id, 11);
    }

    #[test]
    fn multiple_records_in_one_push() {
        let mut s = RecordSealer::new();
        let mut wire = BytesMut::new();
        for i in 0..5u8 {
            wire.extend_from_slice(&s.seal(
                ContentType::ApplicationData,
                &vec![i; 10 * (i as usize + 1)],
                RecordTag::NONE,
            ));
        }
        let mut o = RecordOpener::new();
        o.push(&wire);
        let lens: Vec<usize> = std::iter::from_fn(|| o.poll_record())
            .map(|r| r.plaintext.len())
            .collect();
        assert_eq!(lens, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn padded_records_round_up_to_block_multiple() {
        let mut s = RecordSealer::with_padding(4096);
        let wire = s.seal(ContentType::ApplicationData, &[9u8; 100], RecordTag::NONE);
        // Inner plaintext = prefix(2) + 100 -> padded to 4096; body adds
        // the AEAD tag.
        assert_eq!(wire.len(), RECORD_HEADER_LEN + 4096 + AEAD_TAG_LEN);
        assert_eq!(s.pad_bytes(), 4096 - 100);
        let mut o = RecordOpener::with_padding_strip();
        o.push(&wire);
        let rec = o.poll_record().unwrap();
        assert_eq!(&rec.plaintext[..], &[9u8; 100][..]);
        assert!(o.poll_record().is_none());
    }

    #[test]
    fn padding_leaves_handshake_records_alone() {
        let mut s = RecordSealer::with_padding(4096);
        let wire = s.seal(ContentType::Handshake, b"hs", RecordTag::NONE);
        assert_eq!(wire.len(), RECORD_HEADER_LEN + 2 + AEAD_TAG_LEN);
        let mut o = RecordOpener::with_padding_strip();
        o.push(&wire);
        assert_eq!(&o.poll_record().unwrap().plaintext[..], b"hs");
    }

    #[test]
    fn strip_opener_reads_unpadded_peer_without_harm_only_when_padded() {
        // An opener without strip mode sees padded bytes verbatim
        // (prefix + zeros included) — the observer's view.
        let mut s = RecordSealer::with_padding(256);
        let wire = s.seal(ContentType::ApplicationData, &[1u8; 10], RecordTag::NONE);
        let mut o = RecordOpener::new();
        o.push(&wire);
        assert_eq!(o.poll_record().unwrap().plaintext.len(), 256);
    }

    #[test]
    fn padded_roundtrip_any_sizes_and_blocks() {
        check::run(
            "padded_roundtrip_any_sizes_and_blocks",
            128,
            |g: &mut Gen| {
                let block = [128usize, 1024, 4096, 16_368 - 2][g.usize(0, 3)];
                let mut s = RecordSealer::with_padding(block);
                let mut o = RecordOpener::with_padding_strip();
                let mut expected = Vec::new();
                for i in 0..g.usize(1, 5) {
                    let payload = vec![(i % 251) as u8; g.usize(0, 40_000)];
                    let wire = s.seal(ContentType::ApplicationData, &payload, RecordTag::NONE);
                    // Every padded record plaintext is a block multiple or
                    // at the record cap.
                    o.push(&wire);
                    expected.extend_from_slice(&payload);
                }
                let mut got = Vec::new();
                while let Some(rec) = o.poll_record() {
                    got.extend_from_slice(&rec.plaintext);
                }
                prop_assert_eq!(got.len(), expected.len());
                prop_assert_eq!(got == expected, true);
            },
        );
    }

    #[test]
    fn roundtrip_any_sizes() {
        check::run("roundtrip_any_sizes", 256, |g: &mut Gen| {
            let sizes: Vec<usize> = (0..g.usize(1, 7)).map(|_| g.usize(0, 19_999)).collect();
            let mut s = RecordSealer::new();
            let mut o = RecordOpener::new();
            let mut expected_total = 0;
            for (i, size) in sizes.iter().enumerate() {
                let payload = vec![(i % 251) as u8; *size];
                // Zero-length messages still produce a record (tag-only).
                let wire = s.seal(ContentType::ApplicationData, &payload, RecordTag::NONE);
                o.push(&wire);
                expected_total += size;
            }
            let mut got_total = 0;
            while let Some(rec) = o.poll_record() {
                got_total += rec.plaintext.len();
            }
            prop_assert_eq!(got_total, expected_total);
            prop_assert_eq!(o.pending_bytes(), 0);
        });
    }
}
