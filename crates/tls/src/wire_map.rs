//! Ground-truth annotation of wire bytes.
//!
//! The paper's central metric — the **degree of multiplexing** of an
//! object (Section II-A) — needs to know which TCP-stream bytes carry
//! which object. In a real capture the authors knew this from controlled
//! experiments; here the sealer records it exactly. The map is
//! out-of-band instrumentation: adversary code never reads it (it is only
//! joined with traces by the metrics module).

use h2priv_util::impl_to_json;

/// Coarse classification of a record for experiment accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// TLS handshake records.
    Handshake,
    /// HTTP/2 connection-control frames (SETTINGS, WINDOW_UPDATE, PING,
    /// RST_STREAM, GOAWAY...).
    Control,
    /// Request HEADERS.
    Request,
    /// Response HEADERS.
    ResponseHeaders,
    /// Response DATA (object bytes) — the spans the degree-of-multiplexing
    /// metric is computed over.
    ObjectData,
}

impl_to_json!(
    enum TrafficClass {
        Handshake,
        Control,
        Request,
        ResponseHeaders,
        ObjectData,
    }
);

/// Ground-truth label attached to a sealed record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordTag {
    /// HTTP/2 stream id carrying the record (0 for connection-level).
    pub stream_id: u32,
    /// Object identifier within the site model (`u32::MAX` = none).
    pub object_id: u32,
    /// Which served copy of the object this is (0 = first; >0 = copies
    /// triggered by re-requests, the paper's "retransmitted objects").
    pub copy: u16,
    /// Traffic class.
    pub class: TrafficClass,
}

impl_to_json!(struct RecordTag { stream_id, object_id, copy, class });

impl RecordTag {
    /// A tag for traffic not attributable to any object.
    pub const NONE: RecordTag = RecordTag {
        stream_id: 0,
        object_id: u32::MAX,
        copy: 0,
        class: TrafficClass::Control,
    };

    /// `true` if this tag denotes object payload bytes.
    pub fn is_object_data(&self) -> bool {
        self.class == TrafficClass::ObjectData && self.object_id != u32::MAX
    }
}

/// One annotated span of the TCP byte stream: `[start, end)` in stream
/// offsets (the sealer's output byte count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireSpan {
    /// First byte offset (inclusive).
    pub start: u64,
    /// One-past-last byte offset.
    pub end: u64,
    /// Ground-truth label.
    pub tag: RecordTag,
}

impl_to_json!(struct WireSpan { start, end, tag });

impl WireSpan {
    /// Length of the span in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// `true` if the span is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The ordered list of annotated spans for one direction of one
/// connection.
#[derive(Debug, Clone, Default)]
pub struct WireMap {
    spans: Vec<WireSpan>,
}

impl_to_json!(struct WireMap { spans });

impl WireMap {
    /// Creates an empty map.
    pub fn new() -> WireMap {
        WireMap::default()
    }

    /// Appends a span; `start` must not precede the previous span's end.
    pub fn push(&mut self, span: WireSpan) {
        if let Some(last) = self.spans.last() {
            debug_assert!(span.start >= last.end, "wire map spans must be ordered");
        }
        self.spans.push(span);
    }

    /// All spans in stream order.
    pub fn spans(&self) -> &[WireSpan] {
        &self.spans
    }

    /// The tag covering stream offset `off`, if any.
    pub fn tag_at(&self, off: u64) -> Option<RecordTag> {
        // Binary search over ordered, non-overlapping spans.
        let idx = self.spans.partition_point(|s| s.end <= off);
        self.spans
            .get(idx)
            .filter(|s| s.start <= off && off < s.end)
            .map(|s| s.tag)
    }

    /// Total object-data bytes attributed to `object_id` (all copies).
    pub fn object_bytes(&self, object_id: u32) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.tag.is_object_data() && s.tag.object_id == object_id)
            .map(WireSpan::len)
            .sum()
    }

    /// Iterates over spans belonging to a specific (object, copy) pair.
    pub fn object_copy_spans(
        &self,
        object_id: u32,
        copy: u16,
    ) -> impl Iterator<Item = &WireSpan> + '_ {
        self.spans.iter().filter(move |s| {
            s.tag.is_object_data() && s.tag.object_id == object_id && s.tag.copy == copy
        })
    }

    /// The copies of `object_id` present in the map, sorted.
    pub fn copies_of(&self, object_id: u32) -> Vec<u16> {
        let mut v: Vec<u16> = self
            .spans
            .iter()
            .filter(|s| s.tag.is_object_data() && s.tag.object_id == object_id)
            .map(|s| s.tag.copy)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(obj: u32, copy: u16) -> RecordTag {
        RecordTag {
            stream_id: 1,
            object_id: obj,
            copy,
            class: TrafficClass::ObjectData,
        }
    }

    #[test]
    fn tag_at_finds_covering_span() {
        let mut m = WireMap::new();
        m.push(WireSpan {
            start: 0,
            end: 10,
            tag: tag(1, 0),
        });
        m.push(WireSpan {
            start: 10,
            end: 30,
            tag: tag(2, 0),
        });
        m.push(WireSpan {
            start: 40,
            end: 50,
            tag: tag(3, 0),
        });
        assert_eq!(m.tag_at(0).unwrap().object_id, 1);
        assert_eq!(m.tag_at(9).unwrap().object_id, 1);
        assert_eq!(m.tag_at(10).unwrap().object_id, 2);
        assert_eq!(m.tag_at(35), None); // hole
        assert_eq!(m.tag_at(49).unwrap().object_id, 3);
        assert_eq!(m.tag_at(50), None);
    }

    #[test]
    fn object_bytes_sums_across_spans_and_copies() {
        let mut m = WireMap::new();
        m.push(WireSpan {
            start: 0,
            end: 10,
            tag: tag(1, 0),
        });
        m.push(WireSpan {
            start: 10,
            end: 20,
            tag: tag(2, 0),
        });
        m.push(WireSpan {
            start: 20,
            end: 35,
            tag: tag(1, 1),
        });
        assert_eq!(m.object_bytes(1), 25);
        assert_eq!(m.object_bytes(2), 10);
        assert_eq!(m.copies_of(1), vec![0, 1]);
        assert_eq!(m.object_copy_spans(1, 1).count(), 1);
    }

    #[test]
    fn none_tag_is_not_object_data() {
        assert!(!RecordTag::NONE.is_object_data());
        let mut m = WireMap::new();
        m.push(WireSpan {
            start: 0,
            end: 5,
            tag: RecordTag::NONE,
        });
        assert_eq!(m.object_bytes(u32::MAX), 0);
    }
}
