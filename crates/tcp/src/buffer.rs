//! The retransmittable send buffer.
//!
//! Holds written-but-not-yet-acknowledged application bytes, addressed by
//! absolute stream offset, so the sender can (re)read any unacked range.

use h2priv_util::bytes::{Bytes, BytesMut};
use std::collections::VecDeque;

/// A byte buffer addressed by absolute stream offsets.
#[derive(Debug, Default)]
pub(crate) struct SendBuffer {
    /// Stream offset of the first byte currently held.
    base: u64,
    chunks: VecDeque<Bytes>,
    len: u64,
}

impl SendBuffer {
    pub fn new() -> SendBuffer {
        SendBuffer::default()
    }

    /// Appends application data at the end of the stream.
    pub fn push(&mut self, data: Bytes) {
        if data.is_empty() {
            return;
        }
        self.len += data.len() as u64;
        self.chunks.push_back(data);
    }

    /// One past the last buffered offset (== total bytes ever written).
    pub fn end_offset(&self) -> u64 {
        self.base + self.len
    }

    /// Reads up to `max` bytes starting at absolute `offset`.
    ///
    /// # Panics
    /// Panics if `offset` is below the released watermark or at/past the
    /// end of written data.
    pub fn read(&self, offset: u64, max: usize) -> Bytes {
        assert!(
            offset >= self.base,
            "offset {offset} below buffer base {}",
            self.base
        );
        assert!(
            offset < self.end_offset(),
            "offset {offset} past end {}",
            self.end_offset()
        );
        let mut skip = (offset - self.base) as usize;
        let want = max.min((self.end_offset() - offset) as usize);
        let mut chunks = self.chunks.iter();
        // Fast path: the whole range lies inside one chunk — return a
        // zero-copy slice sharing that chunk's allocation. Segment-sized
        // reads out of record-sized chunks hit this almost always.
        for chunk in chunks.by_ref() {
            if skip >= chunk.len() {
                skip -= chunk.len();
                continue;
            }
            if chunk.len() - skip >= want {
                return chunk.slice(skip..skip + want);
            }
            // Range spans a chunk boundary: assemble a copy.
            let mut out = BytesMut::with_capacity(want);
            out.extend_from_slice(&chunk[skip..]);
            for chunk in chunks {
                let take = chunk.len().min(want - out.len());
                out.extend_from_slice(&chunk[..take]);
                if out.len() == want {
                    break;
                }
            }
            return out.freeze();
        }
        unreachable!("read range verified against end_offset");
    }

    /// Discards all bytes below absolute offset `upto` (clamped to the
    /// written range); they have been acknowledged.
    pub fn release(&mut self, upto: u64) {
        let upto = upto.min(self.end_offset());
        while self.base < upto {
            let Some(front) = self.chunks.front_mut() else {
                break;
            };
            let drop = ((upto - self.base) as usize).min(front.len());
            if drop == front.len() {
                self.base += front.len() as u64;
                self.len -= front.len() as u64;
                self.chunks.pop_front();
            } else {
                let _ = front.split_to(drop);
                self.base += drop as u64;
                self.len -= drop as u64;
            }
        }
        self.base = self.base.max(upto.min(self.end_offset()));
    }

    /// Bytes currently held (written minus released).
    #[allow(dead_code)] // used by tests; kept for API completeness
    pub fn buffered(&self) -> u64 {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn push_and_read_across_chunks() {
        let mut sb = SendBuffer::new();
        sb.push(b("hello "));
        sb.push(b("world"));
        assert_eq!(sb.end_offset(), 11);
        assert_eq!(sb.read(0, 11), b("hello world"));
        assert_eq!(sb.read(3, 5), b("lo wo"));
        assert_eq!(sb.read(6, 100), b("world"));
    }

    #[test]
    fn release_partial_chunk() {
        let mut sb = SendBuffer::new();
        sb.push(b("abcdef"));
        sb.release(2);
        assert_eq!(sb.buffered(), 4);
        assert_eq!(sb.read(2, 4), b("cdef"));
        sb.release(6);
        assert_eq!(sb.buffered(), 0);
        assert_eq!(sb.end_offset(), 6);
    }

    #[test]
    fn release_whole_chunks_then_push_more() {
        let mut sb = SendBuffer::new();
        sb.push(b("one"));
        sb.push(b("two"));
        sb.release(6);
        sb.push(b("three"));
        assert_eq!(sb.end_offset(), 11);
        assert_eq!(sb.read(6, 5), b("three"));
    }

    #[test]
    fn release_beyond_end_clamps() {
        let mut sb = SendBuffer::new();
        sb.push(b("xy"));
        sb.release(100);
        assert_eq!(sb.buffered(), 0);
        assert_eq!(sb.end_offset(), 2);
    }

    #[test]
    #[should_panic(expected = "below buffer base")]
    fn read_released_panics() {
        let mut sb = SendBuffer::new();
        sb.push(b("abcd"));
        sb.release(2);
        let _ = sb.read(1, 1);
    }

    #[test]
    fn empty_push_is_noop() {
        let mut sb = SendBuffer::new();
        sb.push(Bytes::new());
        assert_eq!(sb.end_offset(), 0);
        assert_eq!(sb.buffered(), 0);
    }
}
