//! Congestion control.
//!
//! A pluggable [`CongestionController`] trait with the Reno implementation
//! used throughout the reproduction (the paper's testbed predates
//! widespread BBR deployment, and the mechanisms it exploits — slow
//! start, AIMD, fast recovery — are Reno/NewReno behaviours).

use core::fmt;

/// Events the connection reports to the controller, and the queries it
/// makes. All quantities are in bytes.
pub trait CongestionController: fmt::Debug {
    /// The current congestion window.
    fn cwnd(&self) -> u64;

    /// The slow-start threshold.
    fn ssthresh(&self) -> u64;

    /// `bytes` of new data were cumulatively acknowledged.
    fn on_ack(&mut self, bytes: u64);

    /// A fast retransmit fired with `flight` bytes outstanding; enter fast
    /// recovery.
    fn on_fast_retransmit(&mut self, flight: u64);

    /// A duplicate ACK arrived while in fast recovery (window inflation).
    fn on_dup_ack_in_recovery(&mut self);

    /// The ACK that ends fast recovery arrived (window deflation).
    fn on_recovery_exit(&mut self);

    /// A retransmission timeout fired with `flight` bytes outstanding.
    fn on_timeout(&mut self, flight: u64);

    /// `true` while in fast recovery.
    fn in_recovery(&self) -> bool;
}

/// Reno congestion control (RFC 5681) with simplified NewReno-style fast
/// recovery.
#[derive(Debug, Clone)]
pub struct Reno {
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    in_recovery: bool,
    /// Fractional-segment accumulator for congestion avoidance.
    ca_acc: u64,
}

impl Reno {
    /// Creates a Reno controller.
    pub fn new(mss: u32, initial_cwnd: u64) -> Reno {
        Reno {
            mss: mss as u64,
            cwnd: initial_cwnd,
            ssthresh: u64::MAX / 2,
            in_recovery: false,
            ca_acc: 0,
        }
    }

    fn floor(&self) -> u64 {
        self.mss
    }
}

impl CongestionController for Reno {
    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn on_ack(&mut self, bytes: u64) {
        if self.in_recovery {
            return; // window managed by inflation/deflation during recovery
        }
        if self.cwnd < self.ssthresh {
            // Slow start: grow by min(acked, MSS) per ACK (RFC 3465 L=1).
            self.cwnd += bytes.min(self.mss);
        } else {
            // Congestion avoidance: +1 MSS per cwnd of acked data.
            self.ca_acc += bytes;
            if self.ca_acc >= self.cwnd {
                self.ca_acc -= self.cwnd;
                self.cwnd += self.mss;
            }
        }
    }

    fn on_fast_retransmit(&mut self, flight: u64) {
        self.ssthresh = (flight / 2).max(2 * self.mss);
        self.cwnd = self.ssthresh + 3 * self.mss;
        self.in_recovery = true;
        self.ca_acc = 0;
    }

    fn on_dup_ack_in_recovery(&mut self) {
        if self.in_recovery {
            self.cwnd += self.mss;
        }
    }

    fn on_recovery_exit(&mut self) {
        if self.in_recovery {
            self.in_recovery = false;
            self.cwnd = self.ssthresh.max(self.floor());
        }
    }

    fn on_timeout(&mut self, flight: u64) {
        self.ssthresh = (flight / 2).max(2 * self.mss);
        self.cwnd = self.floor();
        self.in_recovery = false;
        self.ca_acc = 0;
    }

    fn in_recovery(&self) -> bool {
        self.in_recovery
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1000;

    fn reno() -> Reno {
        Reno::new(MSS, 10_000)
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let mut r = reno();
        // Ack a full window in MSS chunks: cwnd should double.
        for _ in 0..10 {
            r.on_ack(MSS as u64);
        }
        assert_eq!(r.cwnd(), 20_000);
    }

    #[test]
    fn congestion_avoidance_is_linear() {
        let mut r = reno();
        r.on_timeout(10_000); // ssthresh = 5000, cwnd = 1000
        assert_eq!(r.ssthresh(), 5_000);
        assert_eq!(r.cwnd(), 1_000);
        // Grow back through slow start to ssthresh.
        for _ in 0..4 {
            r.on_ack(MSS as u64);
        }
        assert_eq!(r.cwnd(), 5_000);
        // Now avoidance: one full window of ACKs adds one MSS.
        let before = r.cwnd();
        let mut acked = 0;
        while acked < before {
            r.on_ack(MSS as u64);
            acked += MSS as u64;
        }
        assert_eq!(r.cwnd(), before + MSS as u64);
    }

    #[test]
    fn fast_retransmit_halves_and_inflates() {
        let mut r = reno();
        r.on_fast_retransmit(10_000);
        assert!(r.in_recovery());
        assert_eq!(r.ssthresh(), 5_000);
        assert_eq!(r.cwnd(), 5_000 + 3_000);
        r.on_dup_ack_in_recovery();
        assert_eq!(r.cwnd(), 9_000);
        r.on_recovery_exit();
        assert!(!r.in_recovery());
        assert_eq!(r.cwnd(), 5_000);
    }

    #[test]
    fn timeout_collapses_to_one_mss() {
        let mut r = reno();
        r.on_timeout(20_000);
        assert_eq!(r.cwnd(), MSS as u64);
        assert_eq!(r.ssthresh(), 10_000);
    }

    #[test]
    fn ssthresh_floor_is_two_mss() {
        let mut r = reno();
        r.on_timeout(100);
        assert_eq!(r.ssthresh(), 2 * MSS as u64);
    }

    #[test]
    fn acks_during_recovery_do_not_grow_window() {
        let mut r = reno();
        r.on_fast_retransmit(10_000);
        let w = r.cwnd();
        r.on_ack(5 * MSS as u64);
        assert_eq!(r.cwnd(), w);
    }
}
