//! Round-trip-time estimation and retransmission-timeout computation
//! (RFC 6298).

use h2priv_netsim::time::SimDuration;

/// Smoothed RTT estimator with RFC 6298 constants
/// (`SRTT`, `RTTVAR`, `RTO = SRTT + 4·RTTVAR`).
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto_min: SimDuration,
    rto_max: SimDuration,
    rto_initial: SimDuration,
}

impl RttEstimator {
    /// Creates an estimator with the given RTO bounds.
    pub fn new(rto_initial: SimDuration, rto_min: SimDuration, rto_max: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto_min,
            rto_max,
            rto_initial,
        }
    }

    /// Incorporates a new RTT sample. Samples from retransmitted segments
    /// must not be fed in (Karn's algorithm) — that filtering is the
    /// caller's job.
    pub fn on_sample(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                // First measurement: SRTT = R, RTTVAR = R/2.
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − R|
                let delta = if srtt >= rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = (self.rttvar * 3) / 4 + delta / 4;
                // SRTT = 7/8·SRTT + 1/8·R
                self.srtt = Some((srtt * 7) / 8 + rtt / 8);
            }
        }
    }

    /// The smoothed RTT, if at least one sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// The current retransmission timeout (before exponential backoff).
    pub fn rto(&self) -> SimDuration {
        match self.srtt {
            None => self.rto_initial,
            Some(srtt) => {
                let var4 = self.rttvar * 4;
                // Granularity floor of 1 ms stands in for the clock tick G.
                let g = SimDuration::from_millis(1);
                (srtt + var4.max(g)).clamp(self.rto_min, self.rto_max)
            }
        }
    }

    /// The RTO after `backoffs` consecutive expirations (doubling each
    /// time, capped at the configured maximum).
    pub fn rto_backed_off(&self, backoffs: u32) -> SimDuration {
        let mut rto = self.rto();
        for _ in 0..backoffs.min(16) {
            rto = (rto * 2).min(self.rto_max);
        }
        rto
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::new(
            SimDuration::from_millis(1_000),
            SimDuration::from_millis(200),
            SimDuration::from_secs(60),
        )
    }

    #[test]
    fn initial_rto_is_configured_value() {
        assert_eq!(est().rto(), SimDuration::from_millis(1_000));
    }

    #[test]
    fn first_sample_seeds_srtt() {
        let mut e = est();
        e.on_sample(SimDuration::from_millis(100));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
        // RTO = 100 + 4*50 = 300 ms
        assert_eq!(e.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn steady_samples_converge_and_clamp_to_min() {
        let mut e = est();
        for _ in 0..100 {
            e.on_sample(SimDuration::from_millis(20));
        }
        // Variance decays towards zero, RTO clamps at the 200 ms floor.
        assert_eq!(e.rto(), SimDuration::from_millis(200));
        let srtt = e.srtt().unwrap();
        assert!((19..=21).contains(&srtt.as_millis()), "srtt = {srtt}");
    }

    #[test]
    fn variance_reacts_to_spikes() {
        let mut e = est();
        for _ in 0..20 {
            e.on_sample(SimDuration::from_millis(20));
        }
        let calm = e.rto();
        e.on_sample(SimDuration::from_millis(500));
        assert!(e.rto() > calm);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = est();
        e.on_sample(SimDuration::from_millis(100)); // RTO 300 ms
        assert_eq!(e.rto_backed_off(0), SimDuration::from_millis(300));
        assert_eq!(e.rto_backed_off(1), SimDuration::from_millis(600));
        assert_eq!(e.rto_backed_off(2), SimDuration::from_millis(1_200));
        assert_eq!(e.rto_backed_off(30), SimDuration::from_secs(60));
    }

    #[test]
    fn backoff_count_is_clamped_above_sixteen() {
        // Past the doubling clamp every backoff count yields the same
        // RTO — including absurd counts that would overflow if the loop
        // actually ran that many doublings.
        let mut e = est();
        e.on_sample(SimDuration::from_millis(100));
        let at_clamp = e.rto_backed_off(16);
        assert_eq!(e.rto_backed_off(17), at_clamp);
        assert_eq!(e.rto_backed_off(1_000), at_clamp);
        assert_eq!(e.rto_backed_off(u32::MAX), at_clamp);
    }

    #[test]
    fn backoff_saturates_at_rto_max() {
        // 300 ms doubles past 60 s after 8 backoffs; from there on the
        // cap holds exactly.
        let mut e = est();
        e.on_sample(SimDuration::from_millis(100));
        for backoffs in 8..=16 {
            assert_eq!(e.rto_backed_off(backoffs), SimDuration::from_secs(60));
        }
    }

    #[test]
    fn backoff_with_rto_already_at_max_stays_at_max() {
        // rto_min == rto_max pins the base RTO at the cap; backoff must
        // not push it beyond.
        let mut e = RttEstimator::new(
            SimDuration::from_secs(60),
            SimDuration::from_secs(60),
            SimDuration::from_secs(60),
        );
        e.on_sample(SimDuration::from_millis(100));
        assert_eq!(e.rto(), SimDuration::from_secs(60));
        assert_eq!(e.rto_backed_off(0), SimDuration::from_secs(60));
        assert_eq!(e.rto_backed_off(u32::MAX), SimDuration::from_secs(60));
    }
}
