//! 32-bit TCP sequence-number arithmetic.
//!
//! Wire sequence numbers wrap modulo 2³²; internally the connection works
//! with monotone 64-bit *stream offsets* (0 = first payload byte). These
//! helpers convert between the two. A single simulated connection
//! transfers far less than 4 GiB, so unwrapping is exact under the
//! documented precondition.

/// Wraps a stream offset into wire sequence space.
///
/// `base` is the sequence number of offset 0 (for the data stream this is
/// `ISS + 1`, because the SYN consumes one sequence number).
pub fn wrap(base: u32, offset: u64) -> u32 {
    base.wrapping_add(offset as u32)
}

/// Recovers a stream offset from a wire sequence number.
///
/// Exact when the true offset is below 2³² (single-connection transfers
/// in this simulation are megabytes, so this always holds).
pub fn unwrap(base: u32, wire: u32) -> u64 {
    wire.wrapping_sub(base) as u64
}

/// `true` if sequence `a` is strictly before `b` in wrapped 32-bit space
/// (RFC 793 comparison: the signed distance is negative).
pub fn before(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// `true` if sequence `a` is at-or-before `b` in wrapped space.
pub fn before_eq(a: u32, b: u32) -> bool {
    a == b || before(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_util::check::{self, Gen};
    use h2priv_util::{prop_assert, prop_assert_eq};

    #[test]
    fn wrap_unwrap_simple() {
        assert_eq!(wrap(1000, 0), 1000);
        assert_eq!(wrap(1000, 24), 1024);
        assert_eq!(unwrap(1000, 1024), 24);
    }

    #[test]
    fn wraps_around_u32_boundary() {
        let base = u32::MAX - 10;
        assert_eq!(wrap(base, 20), 9);
        assert_eq!(unwrap(base, 9), 20);
    }

    #[test]
    fn before_handles_wraparound() {
        assert!(before(u32::MAX - 5, 5));
        assert!(!before(5, u32::MAX - 5));
        assert!(before(0, 1));
        assert!(!before(1, 0));
        assert!(!before(7, 7));
        assert!(before_eq(7, 7));
    }

    #[test]
    fn wrap_unwrap_roundtrip() {
        check::run("wrap_unwrap_roundtrip", 512, |g: &mut Gen| {
            let base = g.u32(0, u32::MAX);
            let offset = g.u64(0, u64::from(u32::MAX) - 1);
            prop_assert_eq!(unwrap(base, wrap(base, offset)), offset);
        });
    }

    #[test]
    fn before_is_antisymmetric_for_close_values() {
        check::run(
            "before_is_antisymmetric_for_close_values",
            512,
            |g: &mut Gen| {
                let a = g.u32(0, u32::MAX);
                let d = g.u32(1, (1 << 30) - 1);
                let b = a.wrapping_add(d);
                prop_assert!(before(a, b));
                prop_assert!(!before(b, a));
            },
        );
    }
}
