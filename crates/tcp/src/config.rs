//! Tunables of the TCP state machine.

use h2priv_netsim::time::SimDuration;

/// Configuration for one [`crate::TcpConnection`].
///
/// Defaults mirror a contemporary Linux stack at the scale of this
/// simulation: MSS 1460, initial window 10 segments, min RTO 200 ms.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment (payload) size in bytes.
    pub mss: u32,
    /// Initial congestion window, in segments (RFC 6928 uses 10).
    pub initial_cwnd_segments: u32,
    /// Receive window advertised to the peer, in bytes.
    pub recv_window: u32,
    /// Initial retransmission timeout before any RTT sample exists.
    pub rto_initial: SimDuration,
    /// Lower bound for the RTO.
    pub rto_min: SimDuration,
    /// Upper bound for the RTO.
    pub rto_max: SimDuration,
    /// Consecutive RTO expiries on the same datum before the connection
    /// aborts ("broken connection" in the paper's terminology).
    pub max_rto_retries: u32,
    /// Number of duplicate ACKs that triggers a fast retransmit.
    pub dup_ack_threshold: u32,
    /// Initial send sequence number (deterministic by default; vary per
    /// connection if multiple flows share a trace).
    pub iss: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            initial_cwnd_segments: 10,
            recv_window: 1 << 20, // 1 MiB
            rto_initial: SimDuration::from_millis(1_000),
            rto_min: SimDuration::from_millis(200),
            rto_max: SimDuration::from_secs(60),
            max_rto_retries: 8,
            dup_ack_threshold: 3,
            iss: 1_000,
        }
    }
}

impl TcpConfig {
    /// Initial congestion window in bytes.
    pub fn initial_cwnd(&self) -> u64 {
        self.mss as u64 * self.initial_cwnd_segments as u64
    }

    /// Returns `self` with a different ISS (useful when many connections
    /// must be distinguishable in one capture).
    pub fn with_iss(mut self, iss: u32) -> TcpConfig {
        self.iss = iss;
        self
    }

    /// Returns `self` with a different MSS.
    ///
    /// # Panics
    /// Panics if `mss` is zero.
    pub fn with_mss(mut self, mss: u32) -> TcpConfig {
        assert!(mss > 0, "mss must be positive");
        self.mss = mss;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_initial_cwnd_is_ten_segments() {
        let c = TcpConfig::default();
        assert_eq!(c.initial_cwnd(), 14_600);
    }

    #[test]
    fn builder_methods() {
        let c = TcpConfig::default().with_iss(7).with_mss(500);
        assert_eq!(c.iss, 7);
        assert_eq!(c.mss, 500);
    }

    #[test]
    #[should_panic(expected = "mss must be positive")]
    fn zero_mss_rejected() {
        let _ = TcpConfig::default().with_mss(0);
    }
}
