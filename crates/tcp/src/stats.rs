//! Per-connection counters.
//!
//! The paper's Table I and Fig. 5 report *retransmission* counts; these
//! counters are where that measurement comes from on the simulated stack.

/// Counters maintained by a [`crate::TcpConnection`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpStats {
    /// Data segments transmitted (first transmissions only).
    pub segments_sent: u64,
    /// Data segments retransmitted via fast retransmit.
    pub fast_retransmits: u64,
    /// Data segments retransmitted after an RTO.
    pub timeout_retransmits: u64,
    /// Pure ACK segments sent.
    pub acks_sent: u64,
    /// Duplicate ACKs sent (out-of-order data seen).
    pub dup_acks_sent: u64,
    /// Duplicate ACKs received.
    pub dup_acks_received: u64,
    /// RTO expiry events.
    pub rto_events: u64,
    /// Payload bytes sent (first transmissions).
    pub bytes_sent: u64,
    /// Payload bytes cumulatively acknowledged by the peer.
    pub bytes_acked: u64,
    /// Payload bytes delivered to the application in order.
    pub bytes_delivered: u64,
    /// Segments received (with payload).
    pub segments_received: u64,
    /// Out-of-order segments buffered.
    pub out_of_order_segments: u64,
}

impl TcpStats {
    /// Total retransmitted segments (fast + timeout).
    pub fn retransmits(&self) -> u64 {
        self.fast_retransmits + self.timeout_retransmits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retransmits_sums_both_kinds() {
        let s = TcpStats {
            fast_retransmits: 3,
            timeout_retransmits: 2,
            ..Default::default()
        };
        assert_eq!(s.retransmits(), 5);
    }
}
