//! The TCP connection state machine.
//!
//! Sans-I/O: the connection produces outgoing segments through
//! [`TcpConnection::poll_segment`] and application-visible events through
//! [`TcpConnection::poll_event`]; the host glue (in `h2priv-h2`) moves
//! segments across the simulated network and calls
//! [`TcpConnection::on_segment`] / [`TcpConnection::on_timer`].
//!
//! Implemented behaviours (all load-bearing for the paper's attack):
//! three-way handshake, cumulative ACKs, out-of-order reassembly with
//! duplicate ACK generation, Reno congestion control with fast
//! retransmit/fast recovery, RTO with exponential backoff and go-back-N
//! recovery, connection abort after repeated RTO expiry ("broken
//! connection"), and graceful FIN teardown.

use crate::buffer::SendBuffer;
use crate::config::TcpConfig;
use crate::congestion::{CongestionController, Reno};
use crate::rtt::RttEstimator;
use crate::seq;
use crate::stats::TcpStats;
use h2priv_netsim::packet::{FlowId, TcpFlags, TcpHeader};
use h2priv_netsim::time::SimTime;
use h2priv_util::bytes::Bytes;
use h2priv_util::telemetry;
use std::collections::{BTreeMap, VecDeque};

/// Connection lifecycle states (condensed RFC 793 set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// No connection yet (client before `open`).
    Closed,
    /// Passive open, waiting for a SYN.
    Listen,
    /// SYN sent, awaiting SYN-ACK.
    SynSent,
    /// SYN received, SYN-ACK sent, awaiting ACK.
    SynReceived,
    /// Data transfer.
    Established,
    /// We sent a FIN and are draining.
    FinWait,
    /// Peer sent a FIN; we may still send.
    CloseWait,
    /// Both sides finished.
    Done,
    /// Torn down by RST or retry exhaustion.
    Aborted,
}

/// Why a connection aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The RTO expired more than `max_rto_retries` times in a row —
    /// the "broken connection" outcome the paper reports for drop rates
    /// above 80 % and for excessive jitter.
    RetriesExceeded,
    /// The peer sent RST.
    PeerReset,
    /// Local application called [`TcpConnection::abort`].
    LocalAbort,
}

/// Events surfaced to the application layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpEvent {
    /// Handshake completed.
    Connected,
    /// In-order payload bytes.
    Data(Bytes),
    /// Peer sent FIN (no more data will arrive).
    PeerFin,
    /// Connection fully closed.
    Closed,
    /// Connection aborted.
    Aborted(AbortReason),
}

/// A Reno-style TCP connection endpoint. See the crate docs for an
/// end-to-end example.
#[derive(Debug)]
pub struct TcpConnection {
    cfg: TcpConfig,
    /// Flow from our perspective (src = this endpoint).
    flow: FlowId,
    state: TcpState,

    // ---- send side ----
    iss: u32,
    /// Wire sequence of stream offset 0 (ISS + 1; SYN consumes one).
    snd_base: u32,
    /// Lowest unacknowledged stream offset.
    snd_una: u64,
    /// Next stream offset to transmit.
    snd_nxt: u64,
    /// Highest offset ever transmitted (for retransmission accounting).
    high_water: u64,
    send_buf: SendBuffer,
    fin_queued: bool,
    fin_sent: bool,
    fin_acked: bool,
    cc: Reno,
    rtt: RttEstimator,
    rto_deadline: Option<SimTime>,
    rto_backoffs: u32,
    dup_acks: u32,
    /// Fast-recovery exit point (snd_nxt at loss detection).
    recover: u64,
    /// Current virtual time, refreshed at every public entry point, so
    /// internal helpers can stamp RFC 7323 timestamps.
    clock: SimTime,
    /// Latest timestamp value received from the peer (echoed back).
    ts_recent: u64,
    peer_rwnd: u64,

    // ---- receive side ----
    /// Wire sequence of peer stream offset 0 (IRS + 1), once known.
    rcv_base: Option<u32>,
    /// Next expected peer stream offset.
    rcv_nxt: u64,
    /// Out-of-order segments keyed by stream offset.
    ooo: BTreeMap<u64, Bytes>,
    /// Peer FIN position in stream-offset space, once seen.
    peer_fin_at: Option<u64>,
    peer_fin_done: bool,

    out: VecDeque<(TcpHeader, Bytes)>,
    events: VecDeque<TcpEvent>,
    stats: TcpStats,
}

impl TcpConnection {
    /// Creates the active-open (client) side. Call
    /// [`TcpConnection::open`] to start the handshake.
    pub fn client(flow: FlowId, cfg: TcpConfig) -> TcpConnection {
        Self::new(flow, cfg, TcpState::Closed)
    }

    /// Creates the passive-open (server) side; it waits in `Listen` for a
    /// SYN on its flow.
    pub fn server(flow: FlowId, cfg: TcpConfig) -> TcpConnection {
        Self::new(flow, cfg, TcpState::Listen)
    }

    fn new(flow: FlowId, cfg: TcpConfig, state: TcpState) -> TcpConnection {
        let iss = cfg.iss;
        let rtt = RttEstimator::new(cfg.rto_initial, cfg.rto_min, cfg.rto_max);
        let cc = Reno::new(cfg.mss, cfg.initial_cwnd());
        TcpConnection {
            flow,
            state,
            iss,
            snd_base: iss.wrapping_add(1),
            snd_una: 0,
            snd_nxt: 0,
            high_water: 0,
            send_buf: SendBuffer::new(),
            fin_queued: false,
            fin_sent: false,
            fin_acked: false,
            cc,
            rtt,
            rto_deadline: None,
            rto_backoffs: 0,
            dup_acks: 0,
            recover: 0,
            clock: SimTime::ZERO,
            ts_recent: 0,
            peer_rwnd: u32::MAX as u64,
            rcv_base: None,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            peer_fin_at: None,
            peer_fin_done: false,
            out: VecDeque::new(),
            events: VecDeque::new(),
            stats: TcpStats::default(),
            cfg,
        }
    }

    // ------------------------------------------------------------------
    // Public API
    // ------------------------------------------------------------------

    /// Starts the three-way handshake (client side).
    ///
    /// # Panics
    /// Panics unless the connection is in [`TcpState::Closed`].
    pub fn open(&mut self, now: SimTime) {
        assert_eq!(
            self.state,
            TcpState::Closed,
            "open() on non-closed connection"
        );
        self.clock = now;
        self.state = TcpState::SynSent;
        let hdr = TcpHeader {
            flow: self.flow,
            seq: self.iss,
            ack: 0,
            flags: TcpFlags::SYN,
            window: self.cfg.recv_window,
            ts_val: self.ts_now(),
            ts_ecr: 0,
        };
        self.out.push_back((hdr, Bytes::new()));
        self.arm_rto(now);
    }

    /// Queues application data for transmission. Ignored after close or
    /// abort.
    pub fn write(&mut self, data: Bytes) {
        if self.fin_queued || matches!(self.state, TcpState::Aborted | TcpState::Done) {
            return;
        }
        self.send_buf.push(data);
    }

    /// Requests a graceful close once all queued data is sent.
    pub fn close(&mut self) {
        self.fin_queued = true;
    }

    /// Aborts immediately, emitting an RST to the peer.
    pub fn abort(&mut self) {
        if matches!(self.state, TcpState::Aborted | TcpState::Done) {
            return;
        }
        let hdr = self.mk_header(TcpFlags::RST, self.wire_seq(self.snd_nxt));
        self.out.push_back((hdr, Bytes::new()));
        self.enter_abort(AbortReason::LocalAbort);
    }

    /// Feeds one received segment into the state machine.
    pub fn on_segment(&mut self, now: SimTime, hdr: &TcpHeader, payload: Bytes) {
        debug_assert_eq!(
            hdr.flow,
            self.flow.reversed(),
            "segment routed to wrong connection"
        );
        if matches!(self.state, TcpState::Aborted | TcpState::Done) {
            return;
        }
        self.clock = now;
        // RFC 7323: remember the peer's timestamp for echoing.
        if hdr.ts_val > 0 {
            self.ts_recent = hdr.ts_val;
        }
        if hdr.flags.rst {
            self.enter_abort(AbortReason::PeerReset);
            return;
        }
        self.peer_rwnd = hdr.window as u64;

        match self.state {
            TcpState::Listen => {
                if hdr.flags.syn {
                    self.rcv_base = Some(hdr.seq.wrapping_add(1));
                    self.rcv_nxt = 0;
                    self.state = TcpState::SynReceived;
                    self.send_syn_ack();
                    self.arm_rto(now);
                }
            }
            TcpState::SynSent => {
                if hdr.flags.syn && hdr.flags.ack && hdr.ack == self.iss.wrapping_add(1) {
                    self.rcv_base = Some(hdr.seq.wrapping_add(1));
                    self.rcv_nxt = 0;
                    self.state = TcpState::Established;
                    self.rto_backoffs = 0;
                    self.rto_deadline = None;
                    self.events.push_back(TcpEvent::Connected);
                    self.push_ack(false);
                }
            }
            TcpState::SynReceived => {
                if hdr.flags.syn && !hdr.flags.ack {
                    // Retransmitted SYN: repeat our SYN-ACK.
                    self.send_syn_ack();
                    return;
                }
                if hdr.flags.ack && hdr.ack == self.iss.wrapping_add(1) {
                    self.state = TcpState::Established;
                    self.rto_backoffs = 0;
                    self.rto_deadline = None;
                    self.events.push_back(TcpEvent::Connected);
                    // Fall through to normal processing for piggybacked data.
                    self.process_established(now, hdr, payload);
                }
            }
            TcpState::Established | TcpState::FinWait | TcpState::CloseWait => {
                self.process_established(now, hdr, payload);
            }
            TcpState::Closed | TcpState::Done | TcpState::Aborted => {}
        }
    }

    /// Drives time-based behaviour; call whenever
    /// [`TcpConnection::next_timeout`] has been reached.
    pub fn on_timer(&mut self, now: SimTime) {
        self.clock = now;
        let Some(deadline) = self.rto_deadline else {
            return;
        };
        if now < deadline {
            return;
        }
        self.stats.rto_events += 1;
        self.rto_backoffs += 1;
        telemetry::emit("tcp", "rto", |ev| {
            ev.seq = Some(self.snd_una);
            ev.fields.push(("backoffs", self.rto_backoffs.into()));
            ev.fields.push(("in_flight", self.bytes_in_flight().into()));
            ev.fields.push((
                "rto_ns",
                self.rtt.rto_backed_off(self.rto_backoffs).as_nanos().into(),
            ));
        });
        telemetry::count("tcp.rto_events", 1);
        if self.rto_backoffs > self.cfg.max_rto_retries {
            self.enter_abort(AbortReason::RetriesExceeded);
            return;
        }
        match self.state {
            TcpState::SynSent => {
                let hdr = TcpHeader {
                    flow: self.flow,
                    seq: self.iss,
                    ack: 0,
                    flags: TcpFlags::SYN,
                    window: self.cfg.recv_window,
                    ts_val: 0,
                    ts_ecr: 0,
                };
                self.out.push_back((hdr, Bytes::new()));
                self.arm_rto(now);
            }
            TcpState::SynReceived => {
                self.send_syn_ack();
                self.arm_rto(now);
            }
            _ => {
                if self.bytes_in_flight() == 0 {
                    self.rto_deadline = None;
                    return;
                }
                // Timeout loss recovery: collapse the window and go back
                // to the first unacked byte (go-back-N without SACK).
                self.cc.on_timeout(self.bytes_in_flight());
                telemetry::emit("tcp", "cwnd_collapse", |ev| {
                    ev.seq = Some(self.snd_una);
                    ev.fields.push(("cwnd", self.cc.cwnd().into()));
                });
                telemetry::gauge("tcp.cwnd", self.cc.cwnd());
                self.dup_acks = 0;
                self.snd_nxt = self.snd_una;
                if self.fin_sent && self.snd_una >= self.data_end() {
                    self.fin_sent = false; // FIN itself needs resending
                }
                self.arm_rto(now);
            }
        }
    }

    /// Next outgoing segment, if the window and state allow one.
    /// Call in a loop until it returns `None`.
    pub fn poll_segment(&mut self, now: SimTime) -> Option<(TcpHeader, Bytes)> {
        self.clock = now;
        if let Some(seg) = self.out.pop_front() {
            return Some(seg);
        }
        if !matches!(
            self.state,
            TcpState::Established | TcpState::CloseWait | TcpState::FinWait
        ) {
            return None;
        }
        let window = self.cc.cwnd().min(self.peer_rwnd.max(self.cfg.mss as u64));
        let in_flight = self.bytes_in_flight();
        let data_end = self.data_end();
        if self.snd_nxt < data_end && in_flight < window {
            let available = (data_end - self.snd_nxt) as usize;
            let len = available.min(self.cfg.mss as usize);
            let payload = self.send_buf.read(self.snd_nxt, len);
            let seq_wire = self.wire_seq(self.snd_nxt);
            let is_retx = self.snd_nxt < self.high_water;
            self.snd_nxt += payload.len() as u64;
            if is_retx {
                self.stats.timeout_retransmits += 1;
            } else {
                self.high_water = self.snd_nxt;
                self.stats.segments_sent += 1;
                self.stats.bytes_sent += payload.len() as u64;
            }
            if self.rto_deadline.is_none() {
                self.arm_rto(now);
            }
            let mut flags = TcpFlags::ACK;
            flags.psh = self.snd_nxt == data_end;
            let hdr = self.mk_header(flags, seq_wire);
            return Some((hdr, payload));
        }
        // FIN once all data is out.
        if self.fin_queued && !self.fin_sent && self.snd_nxt == data_end {
            self.fin_sent = true;
            let seq_wire = self.wire_seq(self.snd_nxt);
            self.snd_nxt += 1; // FIN consumes one sequence number
            self.high_water = self.high_water.max(self.snd_nxt);
            if self.state == TcpState::Established {
                self.state = TcpState::FinWait;
            } else if self.state == TcpState::CloseWait {
                // we already got peer FIN; after ours is acked we are Done
            }
            if self.rto_deadline.is_none() {
                self.arm_rto(now);
            }
            let hdr = self.mk_header(TcpFlags::FIN_ACK, seq_wire);
            return Some((hdr, Bytes::new()));
        }
        None
    }

    /// Next application event, if any.
    pub fn poll_event(&mut self) -> Option<TcpEvent> {
        self.events.pop_front()
    }

    /// The earliest time at which [`TcpConnection::on_timer`] needs to be
    /// called, if a timer is armed.
    pub fn next_timeout(&self) -> Option<SimTime> {
        self.rto_deadline
    }

    /// Current lifecycle state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Counters.
    pub fn stats(&self) -> &TcpStats {
        &self.stats
    }

    /// Bytes transmitted but not yet acknowledged.
    pub fn bytes_in_flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Bytes written by the application but not yet transmitted.
    pub fn bytes_unsent(&self) -> u64 {
        self.data_end() - self.snd_nxt.min(self.data_end())
    }

    /// The current congestion window in bytes (for tests and reports).
    pub fn cwnd(&self) -> u64 {
        self.cc.cwnd()
    }

    /// The flow this endpoint sends on.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn data_end(&self) -> u64 {
        self.send_buf.end_offset()
    }

    fn wire_seq(&self, offset: u64) -> u32 {
        seq::wrap(self.snd_base, offset)
    }

    fn ts_now(&self) -> u64 {
        self.clock.as_nanos().max(1)
    }

    fn mk_header(&self, flags: TcpFlags, seq_wire: u32) -> TcpHeader {
        let ack = match self.rcv_base {
            Some(base) => seq::wrap(base, self.rcv_nxt),
            None => 0,
        };
        TcpHeader {
            flow: self.flow,
            seq: seq_wire,
            ack,
            flags,
            window: self.cfg.recv_window,
            ts_val: self.ts_now(),
            ts_ecr: self.ts_recent,
        }
    }

    fn send_syn_ack(&mut self) {
        let mut flags = TcpFlags::SYN_ACK;
        flags.psh = false;
        let hdr = TcpHeader {
            flow: self.flow,
            seq: self.iss,
            ack: self
                .rcv_base
                .map(|b| seq::wrap(b, self.rcv_nxt))
                .expect("SYN-ACK requires peer ISS"),
            flags,
            window: self.cfg.recv_window,
            ts_val: 0,
            ts_ecr: 0,
        };
        self.out.push_back((hdr, Bytes::new()));
    }

    fn push_ack(&mut self, dup: bool) {
        let hdr = self.mk_header(TcpFlags::ACK, self.wire_seq(self.snd_nxt));
        self.stats.acks_sent += 1;
        if dup {
            self.stats.dup_acks_sent += 1;
        }
        self.out.push_back((hdr, Bytes::new()));
    }

    fn arm_rto(&mut self, now: SimTime) {
        self.rto_deadline = Some(now + self.rtt.rto_backed_off(self.rto_backoffs));
    }

    fn enter_abort(&mut self, reason: AbortReason) {
        telemetry::emit("tcp", "abort", |ev| {
            ev.fields.push(("reason", format!("{reason:?}").into()));
        });
        telemetry::count("tcp.aborts", 1);
        self.state = TcpState::Aborted;
        self.rto_deadline = None;
        self.events.push_back(TcpEvent::Aborted(reason));
    }

    fn process_established(&mut self, now: SimTime, hdr: &TcpHeader, payload: Bytes) {
        if hdr.flags.ack {
            self.process_ack(now, hdr, payload.is_empty());
        }
        if !payload.is_empty() {
            self.process_data(hdr, payload.clone());
        }
        if hdr.flags.fin {
            self.process_fin(hdr, payload.len() as u64);
        }
        self.maybe_finish();
    }

    fn process_ack(&mut self, now: SimTime, hdr: &TcpHeader, empty_payload: bool) {
        let ack_off = seq::unwrap(self.snd_base, hdr.ack);
        if ack_off > self.snd_nxt.max(self.high_water) {
            return; // acknowledges data we never sent; ignore
        }
        if ack_off > self.snd_una {
            let newly = ack_off - self.snd_una;
            self.snd_una = ack_off;
            self.snd_nxt = self.snd_nxt.max(self.snd_una);
            self.stats.bytes_acked += newly;
            self.send_buf.release(self.snd_una.min(self.data_end()));
            self.rto_backoffs = 0;
            if self.fin_sent && self.snd_una > self.data_end() {
                self.fin_acked = true;
            }
            // RFC 7323 timestamp sample: valid even when the covered
            // range was retransmitted, because the echo identifies the
            // exact segment copy that triggered this ACK.
            if hdr.ts_ecr > 0 {
                self.rtt
                    .on_sample(now.saturating_since(SimTime::from_nanos(hdr.ts_ecr)));
            }
            if self.cc.in_recovery() {
                if self.snd_una >= self.recover {
                    self.cc.on_recovery_exit();
                    self.dup_acks = 0;
                } else {
                    // Partial ACK (NewReno): retransmit the next hole.
                    self.retransmit_front(true);
                }
            } else {
                self.dup_acks = 0;
                self.cc.on_ack(newly);
            }
            if self.bytes_in_flight() == 0 && self.bytes_unsent() == 0 {
                self.rto_deadline = None;
            } else {
                self.arm_rto(now);
            }
        } else if ack_off == self.snd_una
            && self.bytes_in_flight() > 0
            && empty_payload
            && !hdr.flags.syn
            && !hdr.flags.fin
        {
            self.dup_acks += 1;
            self.stats.dup_acks_received += 1;
            if self.cc.in_recovery() {
                self.cc.on_dup_ack_in_recovery();
            } else if self.dup_acks == self.cfg.dup_ack_threshold {
                self.recover = self.snd_nxt;
                self.cc.on_fast_retransmit(self.bytes_in_flight());
                telemetry::emit("tcp", "fast_retransmit", |ev| {
                    ev.seq = Some(self.snd_una);
                    ev.fields.push(("dup_acks", self.dup_acks.into()));
                    ev.fields.push(("cwnd", self.cc.cwnd().into()));
                });
                telemetry::count("tcp.fast_retransmits", 1);
                self.retransmit_front(false);
                self.arm_rto(now);
            }
        }
    }

    /// Re-emits the segment at `snd_una` ahead of everything else.
    fn retransmit_front(&mut self, from_partial_ack: bool) {
        let data_end = self.data_end();
        if self.snd_una < data_end {
            let len = ((data_end - self.snd_una) as usize).min(self.cfg.mss as usize);
            let payload = self.send_buf.read(self.snd_una, len);
            let mut flags = TcpFlags::ACK;
            flags.psh = true;
            let hdr = self.mk_header(flags, self.wire_seq(self.snd_una));
            self.stats.fast_retransmits += 1;
            let _ = from_partial_ack;
            self.out.push_back((hdr, payload));
        } else if self.fin_sent && !self.fin_acked {
            let hdr = self.mk_header(TcpFlags::FIN_ACK, self.wire_seq(data_end));
            self.stats.fast_retransmits += 1;
            self.out.push_back((hdr, Bytes::new()));
        }
    }

    fn process_data(&mut self, hdr: &TcpHeader, payload: Bytes) {
        let Some(rcv_base) = self.rcv_base else {
            return;
        };
        self.stats.segments_received += 1;
        let seg_off = seq::unwrap(rcv_base, hdr.seq);
        let len = payload.len() as u64;
        if seg_off + len <= self.rcv_nxt {
            // Entirely old: re-ACK so the sender can advance.
            self.push_ack(true);
            return;
        }
        let (off, data) = if seg_off < self.rcv_nxt {
            let skip = (self.rcv_nxt - seg_off) as usize;
            (self.rcv_nxt, payload.slice(skip..))
        } else {
            (seg_off, payload)
        };
        if off == self.rcv_nxt {
            self.deliver(data);
            self.drain_ooo();
            self.push_ack(false);
        } else {
            self.stats.out_of_order_segments += 1;
            self.ooo.entry(off).or_insert(data);
            self.push_ack(true);
        }
    }

    fn deliver(&mut self, data: Bytes) {
        self.rcv_nxt += data.len() as u64;
        self.stats.bytes_delivered += data.len() as u64;
        self.events.push_back(TcpEvent::Data(data));
    }

    fn drain_ooo(&mut self) {
        while let Some((&off, _)) = self.ooo.iter().next() {
            if off > self.rcv_nxt {
                break;
            }
            let (off, data) = self.ooo.pop_first().expect("checked non-empty");
            let len = data.len() as u64;
            if off + len <= self.rcv_nxt {
                continue; // fully duplicate
            }
            let skip = (self.rcv_nxt - off) as usize;
            self.deliver(data.slice(skip..));
        }
    }

    fn process_fin(&mut self, hdr: &TcpHeader, payload_len: u64) {
        let Some(rcv_base) = self.rcv_base else {
            return;
        };
        let fin_off = seq::unwrap(rcv_base, hdr.seq) + payload_len;
        self.peer_fin_at = Some(fin_off);
        self.try_consume_fin();
        // ACK the FIN (or dup-ACK if data is still missing).
        self.push_ack(!self.peer_fin_done);
    }

    fn try_consume_fin(&mut self) {
        if self.peer_fin_done {
            return;
        }
        if let Some(fin_off) = self.peer_fin_at {
            if self.rcv_nxt == fin_off {
                self.rcv_nxt += 1;
                self.peer_fin_done = true;
                self.events.push_back(TcpEvent::PeerFin);
                if self.state == TcpState::Established {
                    self.state = TcpState::CloseWait;
                }
            }
        }
    }

    fn maybe_finish(&mut self) {
        self.try_consume_fin();
        if self.fin_acked && self.peer_fin_done && self.state != TcpState::Done {
            self.state = TcpState::Done;
            self.rto_deadline = None;
            self.events.push_back(TcpEvent::Closed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_netsim::packet::HostAddr;
    use h2priv_netsim::time::SimDuration;

    fn flow() -> FlowId {
        FlowId {
            src: HostAddr(1),
            dst: HostAddr(2),
            sport: 40_000,
            dport: 443,
        }
    }

    /// A deterministic two-endpoint harness with a scriptable wire.
    struct Pipe {
        client: TcpConnection,
        server: TcpConnection,
        now: SimTime,
        /// Packets in flight in each direction: (deliver_at, hdr, payload).
        c2s: Vec<(SimTime, TcpHeader, Bytes)>,
        s2c: Vec<(SimTime, TcpHeader, Bytes)>,
        one_way: SimDuration,
        /// Scripted per-direction drop pattern: drop the i-th *data*
        /// transmission (client→server counts all segments).
        drop_c2s: Vec<u64>,
        drop_s2c: Vec<u64>,
        sent_c2s: u64,
        sent_s2c: u64,
    }

    impl Pipe {
        fn new() -> Pipe {
            let cfg_c = TcpConfig::default().with_iss(100);
            let cfg_s = TcpConfig::default().with_iss(5_000);
            Pipe {
                client: TcpConnection::client(flow(), cfg_c),
                server: TcpConnection::server(flow().reversed(), cfg_s),
                now: SimTime::ZERO,
                c2s: vec![],
                s2c: vec![],
                one_way: SimDuration::from_millis(10),
                drop_c2s: vec![],
                drop_s2c: vec![],
                sent_c2s: 0,
                sent_s2c: 0,
            }
        }

        fn pump_polls(&mut self) {
            loop {
                let mut quiet = true;
                while let Some((h, p)) = self.client.poll_segment(self.now) {
                    self.sent_c2s += 1;
                    if !self.drop_c2s.contains(&self.sent_c2s) {
                        self.c2s.push((self.now + self.one_way, h, p));
                    }
                    quiet = false;
                }
                while let Some((h, p)) = self.server.poll_segment(self.now) {
                    self.sent_s2c += 1;
                    if !self.drop_s2c.contains(&self.sent_s2c) {
                        self.s2c.push((self.now + self.one_way, h, p));
                    }
                    quiet = false;
                }
                if quiet {
                    break;
                }
            }
        }

        /// Advances virtual time to the next interesting instant and
        /// processes everything due. Returns false when nothing is
        /// pending anywhere.
        fn tick(&mut self) -> bool {
            self.pump_polls();
            let mut candidates: Vec<SimTime> = vec![];
            candidates.extend(self.c2s.iter().map(|e| e.0));
            candidates.extend(self.s2c.iter().map(|e| e.0));
            candidates.extend(self.client.next_timeout());
            candidates.extend(self.server.next_timeout());
            let Some(&next) = candidates.iter().min() else {
                return false;
            };
            self.now = self.now.max(next);

            let due_c2s: Vec<_> = {
                let mut due: Vec<_> = Vec::new();
                self.c2s.retain(|e| {
                    if e.0 <= next {
                        due.push(e.clone());
                        false
                    } else {
                        true
                    }
                });
                due
            };
            for (_, h, p) in due_c2s {
                self.server.on_segment(self.now, &h, p);
            }
            let due_s2c: Vec<_> = {
                let mut due: Vec<_> = Vec::new();
                self.s2c.retain(|e| {
                    if e.0 <= next {
                        due.push(e.clone());
                        false
                    } else {
                        true
                    }
                });
                due
            };
            for (_, h, p) in due_s2c {
                self.client.on_segment(self.now, &h, p);
            }
            if self.client.next_timeout().is_some_and(|t| t <= self.now) {
                self.client.on_timer(self.now);
            }
            if self.server.next_timeout().is_some_and(|t| t <= self.now) {
                self.server.on_timer(self.now);
            }
            self.pump_polls();
            true
        }

        fn run(&mut self, max_ticks: u32) {
            self.client.open(self.now);
            for _ in 0..max_ticks {
                if !self.tick() {
                    break;
                }
            }
        }

        fn drain_events(conn: &mut TcpConnection) -> Vec<TcpEvent> {
            std::iter::from_fn(|| conn.poll_event()).collect()
        }

        fn received_bytes(conn: &mut TcpConnection) -> Vec<u8> {
            let mut out = vec![];
            for ev in Self::drain_events(conn) {
                if let TcpEvent::Data(d) = ev {
                    out.extend_from_slice(&d);
                }
            }
            out
        }
    }

    #[test]
    fn handshake_completes() {
        let mut p = Pipe::new();
        p.run(10);
        let ce = Pipe::drain_events(&mut p.client);
        let se = Pipe::drain_events(&mut p.server);
        assert!(ce.contains(&TcpEvent::Connected));
        assert!(se.contains(&TcpEvent::Connected));
        assert_eq!(p.client.state(), TcpState::Established);
        assert_eq!(p.server.state(), TcpState::Established);
    }

    #[test]
    fn small_transfer_round_trips() {
        let mut p = Pipe::new();
        p.client.write(Bytes::from_static(b"GET /index.html"));
        p.run(50);
        assert_eq!(Pipe::received_bytes(&mut p.server), b"GET /index.html");
    }

    #[test]
    fn bulk_transfer_spans_many_segments() {
        let mut p = Pipe::new();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        p.server.write(Bytes::from(data.clone()));
        p.run(2_000);
        let got = Pipe::received_bytes(&mut p.client);
        assert_eq!(got.len(), data.len());
        assert_eq!(got, data);
        assert!(p.server.stats().segments_sent >= 68); // 100k / 1460
        assert_eq!(p.server.stats().retransmits(), 0);
    }

    #[test]
    fn dropped_segment_recovers_by_fast_retransmit() {
        let mut p = Pipe::new();
        let data: Vec<u8> = (0..60_000u32).map(|i| (i % 253) as u8).collect();
        p.server.write(Bytes::from(data.clone()));
        // Drop one mid-stream data segment from the server (segment #5
        // counting every s2c transmission incl. handshake).
        p.drop_s2c = vec![5];
        p.run(4_000);
        let got = Pipe::received_bytes(&mut p.client);
        assert_eq!(got, data);
        assert!(
            p.server.stats().fast_retransmits >= 1,
            "expected a fast retransmit"
        );
        assert!(p.client.stats().dup_acks_sent >= 3);
    }

    #[test]
    fn total_blackhole_aborts_after_retries() {
        let mut p = Pipe::new();
        let data: Vec<u8> = vec![7; 20_000];
        p.server.write(Bytes::from(data));
        // Drop every server transmission after the handshake completes.
        p.drop_s2c = (3..400).collect();
        p.run(10_000);
        let events = Pipe::drain_events(&mut p.server);
        assert!(
            events.contains(&TcpEvent::Aborted(AbortReason::RetriesExceeded)),
            "server should give up, got {events:?}"
        );
        assert!(p.server.stats().rto_events >= 8);
    }

    #[test]
    fn rto_backoff_grows_exponentially() {
        let mut p = Pipe::new();
        p.server.write(Bytes::from(vec![1u8; 5_000]));
        p.drop_s2c = (3..200).collect();
        p.client.open(p.now);
        let mut rto_times: Vec<SimTime> = vec![];
        for _ in 0..5_000 {
            let before = p.server.stats().rto_events;
            if !p.tick() {
                break;
            }
            if p.server.stats().rto_events > before {
                rto_times.push(p.now);
            }
        }
        assert!(
            rto_times.len() >= 4,
            "expected several RTOs, got {}",
            rto_times.len()
        );
        let gaps: Vec<u64> = rto_times
            .windows(2)
            .map(|w| (w[1] - w[0]).as_millis().max(1))
            .collect();
        for w in gaps.windows(2) {
            assert!(w[1] >= w[0] * 3 / 2, "backoff not growing: gaps {gaps:?}");
        }
    }

    #[test]
    fn reordering_produces_dup_acks_but_no_data_loss() {
        // Deliver segments 2..5 before segment 1 by dropping nothing but
        // using the ooo path: we simulate by manual segment injection.
        let mut p = Pipe::new();
        p.run(10); // handshake only
        let mss = 1460usize;
        let data: Vec<u8> = (0..mss * 4).map(|i| (i % 250) as u8).collect();
        p.server.write(Bytes::from(data.clone()));
        // Pull all four segments out of the server directly.
        let mut segs = vec![];
        while let Some(s) = p.server.poll_segment(p.now) {
            segs.push(s);
        }
        assert_eq!(segs.len(), 4);
        // Deliver out of order: 2, 3, 4, then 1.
        let (first, rest) = segs.split_first().unwrap();
        for (h, d) in rest {
            p.client.on_segment(p.now, h, d.clone());
        }
        p.client.on_segment(p.now, &first.0, first.1.clone());
        let got = Pipe::received_bytes(&mut p.client);
        assert_eq!(got, data);
        assert_eq!(p.client.stats().out_of_order_segments, 3);
        assert!(p.client.stats().dup_acks_sent >= 3);
    }

    #[test]
    fn graceful_close_both_sides() {
        let mut p = Pipe::new();
        p.client.write(Bytes::from_static(b"req"));
        p.client.close();
        p.run(100);
        // Server saw data + FIN.
        let sev = Pipe::drain_events(&mut p.server);
        assert!(sev.iter().any(|e| matches!(e, TcpEvent::PeerFin)));
        // Now server closes too.
        p.server.close();
        for _ in 0..100 {
            if !p.tick() {
                break;
            }
        }
        assert_eq!(p.client.state(), TcpState::Done);
        assert_eq!(p.server.state(), TcpState::Done);
    }

    #[test]
    fn abort_sends_rst_and_peer_sees_reset() {
        let mut p = Pipe::new();
        p.run(10);
        p.client.abort();
        for _ in 0..20 {
            if !p.tick() {
                break;
            }
        }
        let sev = Pipe::drain_events(&mut p.server);
        assert!(
            sev.contains(&TcpEvent::Aborted(AbortReason::PeerReset)),
            "{sev:?}"
        );
    }

    #[test]
    fn cwnd_grows_during_bulk_transfer() {
        let mut p = Pipe::new();
        let initial = p.server.cwnd();
        p.server.write(Bytes::from(vec![0u8; 200_000]));
        p.run(3_000);
        assert!(
            p.server.cwnd() > initial * 2,
            "cwnd should have grown in slow start"
        );
    }

    #[test]
    fn write_after_close_is_ignored() {
        let mut p = Pipe::new();
        p.client.close();
        p.client.write(Bytes::from_static(b"late"));
        p.run(60);
        assert!(Pipe::received_bytes(&mut p.server).is_empty());
    }

    #[test]
    fn segments_carry_monotone_nonoverlapping_payload() {
        let mut p = Pipe::new();
        p.server.write(Bytes::from(vec![9u8; 30_000]));
        p.client.open(p.now);
        let mut covered: Vec<(u64, u64)> = vec![];
        for _ in 0..2_000 {
            p.pump_polls();
            // intercept fresh transmissions without disturbing delivery
            for (_, h, d) in &p.s2c {
                if !d.is_empty() {
                    let off = seq::unwrap(p.server.snd_base, h.seq);
                    covered.push((off, off + d.len() as u64));
                }
            }
            if !p.tick() {
                break;
            }
        }
        covered.sort();
        covered.dedup();
        // In a lossless run every byte range is sent exactly once.
        let mut expect = 0;
        for (start, end) in covered {
            assert_eq!(start, expect, "gap or overlap in transmitted stream");
            expect = end;
        }
        assert_eq!(expect, 30_000);
    }
}
