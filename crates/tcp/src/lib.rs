//! # h2priv-tcp
//!
//! A sans-I/O, Reno-style TCP implementation used as the transport
//! substrate of the `h2priv` workspace (reproduction of *"Depending on
//! HTTP/2 for Privacy? Good Luck!"*, DSN 2020).
//!
//! The paper's adversary works by perturbing exactly the dynamics this
//! crate implements:
//!
//! * **Reordering → dup-ACKs → fast retransmit** (paper Section IV-B):
//!   holding a GET request back at the middlebox lets later segments
//!   arrive first; the receiver answers with duplicate ACKs and the
//!   sender fast-retransmits after three of them.
//! * **Bandwidth ↓ → BDP ↓ → congestion window ↓** (Section IV-C):
//!   throttling fills the bottleneck queue, losses shrink `cwnd`, and the
//!   number of outstanding (and hence retransmittable) packets falls.
//! * **Sustained loss → RTO backoff → stalled / broken connections**
//!   (Section IV-D): 80 % targeted drops force retransmission timeouts
//!   whose exponential backoff quiets the wire long enough for the HTTP/2
//!   layer to reset streams; beyond that the connection aborts.
//!
//! The state machine is *sans-I/O*: it never touches the network itself.
//! Feed it segments with [`TcpConnection::on_segment`], pump its clock
//! with [`TcpConnection::on_timer`], and drain outgoing segments with
//! [`TcpConnection::poll_segment`] and application events with
//! [`TcpConnection::poll_event`]. The `h2priv-h2` crate glues it to the
//! `h2priv-netsim` event loop.
//!
//! ## Example
//!
//! ```
//! use h2priv_tcp::{TcpConfig, TcpConnection, TcpEvent};
//! use h2priv_netsim::packet::{FlowId, HostAddr};
//! use h2priv_netsim::time::SimTime;
//! use h2priv_util::bytes::Bytes;
//!
//! let flow = FlowId { src: HostAddr(1), dst: HostAddr(2), sport: 40000, dport: 443 };
//! let mut client = TcpConnection::client(flow, TcpConfig::default());
//! let mut server = TcpConnection::server(flow.reversed(), TcpConfig::default());
//!
//! let t0 = SimTime::ZERO;
//! client.open(t0);
//! // Run the handshake over a lossless, zero-latency "wire".
//! let mut guard = 0;
//! loop {
//!     let mut quiet = true;
//!     while let Some((h, p)) = client.poll_segment(t0) { server.on_segment(t0, &h, p); quiet = false; }
//!     while let Some((h, p)) = server.poll_segment(t0) { client.on_segment(t0, &h, p); quiet = false; }
//!     if quiet { break; }
//!     guard += 1; assert!(guard < 32);
//! }
//! assert!(matches!(client.poll_event(), Some(TcpEvent::Connected)));
//! client.write(Bytes::from_static(b"GET /"));
//! # let _ = server.poll_event();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod buffer;
pub mod config;
pub mod congestion;
pub mod connection;
pub mod rtt;
pub mod seq;
pub mod stats;

pub use config::TcpConfig;
pub use connection::{AbortReason, TcpConnection, TcpEvent, TcpState};
pub use stats::TcpStats;
