//! Adversarial-network stress tests for the TCP state machine: random
//! loss, reordering and delay schedules must never corrupt the delivered
//! byte stream — they may only slow it down or abort the connection.

use h2priv_netsim::packet::{FlowId, HostAddr, TcpHeader};
use h2priv_netsim::time::{SimDuration, SimTime};
use h2priv_tcp::{TcpConfig, TcpConnection, TcpEvent};
use h2priv_util::bytes::Bytes;
use h2priv_util::check::{self, Gen};
use h2priv_util::{prop_assert, prop_assert_eq};

fn flow() -> FlowId {
    FlowId {
        src: HostAddr(1),
        dst: HostAddr(2),
        sport: 40_000,
        dport: 443,
    }
}

/// A little deterministic network between two connections with
/// per-packet scripted fate: (drop?, extra delay ms).
struct Net {
    client: TcpConnection,
    server: TcpConnection,
    now: SimTime,
    /// pending deliveries: (deliver_at_ns, seq#, to_server?, header, payload)
    wire: Vec<(u64, u64, bool, TcpHeader, Bytes)>,
    counter: u64,
    fates: Vec<(bool, u64)>,
    fate_idx: usize,
    one_way: SimDuration,
}

impl Net {
    fn new(fates: Vec<(bool, u64)>) -> Net {
        Net {
            client: TcpConnection::client(flow(), TcpConfig::default().with_iss(7)),
            server: TcpConnection::server(flow().reversed(), TcpConfig::default().with_iss(99)),
            now: SimTime::ZERO,
            wire: Vec::new(),
            counter: 0,
            fates,
            fate_idx: 0,
            one_way: SimDuration::from_millis(10),
        }
    }

    fn next_fate(&mut self) -> (bool, u64) {
        if self.fates.is_empty() {
            return (false, 0);
        }
        let f = self.fates[self.fate_idx % self.fates.len()];
        self.fate_idx += 1;
        f
    }

    fn pump(&mut self) {
        loop {
            let mut quiet = true;
            while let Some((h, p)) = self.client.poll_segment(self.now) {
                let (drop, delay) = self.next_fate();
                if !drop {
                    let at = (self.now + self.one_way + SimDuration::from_millis(delay)).as_nanos();
                    self.counter += 1;
                    self.wire.push((at, self.counter, true, h, p));
                }
                quiet = false;
            }
            while let Some((h, p)) = self.server.poll_segment(self.now) {
                let (drop, delay) = self.next_fate();
                if !drop {
                    let at = (self.now + self.one_way + SimDuration::from_millis(delay)).as_nanos();
                    self.counter += 1;
                    self.wire.push((at, self.counter, false, h, p));
                }
                quiet = false;
            }
            if quiet {
                break;
            }
        }
    }

    /// Advance to the next event (delivery or timer). Returns false when
    /// nothing is pending.
    fn tick(&mut self) -> bool {
        self.pump();
        let next_wire = self.wire.iter().map(|(at, ..)| *at).min();
        let next_timer = [self.client.next_timeout(), self.server.next_timeout()]
            .into_iter()
            .flatten()
            .map(SimTime::as_nanos)
            .min();
        let Some(next) = [next_wire, next_timer].into_iter().flatten().min() else {
            return false;
        };
        self.now = SimTime::from_nanos(next.max(self.now.as_nanos()));
        loop {
            // deliver due packets in (time, seq) order
            let due_idx = self
                .wire
                .iter()
                .enumerate()
                .filter(|(_, (at, ..))| *at <= self.now.as_nanos())
                .min_by_key(|(_, (at, c, ..))| (*at, *c))
                .map(|(i, _)| i);
            let Some(i) = due_idx else { break };
            let (_, _, to_server, h, p) = self.wire.swap_remove(i);
            if to_server {
                self.server.on_segment(self.now, &h, p);
            } else {
                self.client.on_segment(self.now, &h, p);
            }
        }
        if self.client.next_timeout().is_some_and(|t| t <= self.now) {
            self.client.on_timer(self.now);
        }
        if self.server.next_timeout().is_some_and(|t| t <= self.now) {
            self.server.on_timer(self.now);
        }
        self.pump();
        true
    }

    fn drain(conn: &mut TcpConnection) -> (Vec<u8>, bool) {
        let mut data = Vec::new();
        let mut aborted = false;
        while let Some(ev) = conn.poll_event() {
            match ev {
                TcpEvent::Data(d) => data.extend_from_slice(&d),
                TcpEvent::Aborted(_) => aborted = true,
                _ => {}
            }
        }
        (data, aborted)
    }
}

/// Whatever the loss/delay schedule, the client either receives a
/// prefix-correct byte stream (no corruption, no holes, no
/// duplication) or the connection aborts.
#[test]
fn delivered_stream_is_always_a_correct_prefix() {
    check::run(
        "delivered_stream_is_always_a_correct_prefix",
        24,
        |g: &mut Gen| {
            let n_fates = g.usize(4, 63);
            let mut fates: Vec<(bool, u64)> =
                (0..n_fates).map(|_| (g.bool(0.5), g.u64(0, 399))).collect();
            let size = g.usize(1, 119_999);
            // Keep the handshake survivable: never drop the first 6 packets.
            for f in fates.iter_mut().take(6) {
                f.0 = false;
            }
            let payload: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
            let mut net = Net::new(fates);
            net.client.open(net.now);
            net.server.write(Bytes::from(payload.clone()));
            let mut received = Vec::new();
            let mut aborted = false;
            for _ in 0..200_000 {
                if !net.tick() {
                    break;
                }
                let (d, a) = Net::drain(&mut net.client);
                received.extend_from_slice(&d);
                aborted |= a;
                let (_, a) = Net::drain(&mut net.server);
                aborted |= a;
                if received.len() == payload.len() || aborted {
                    break;
                }
            }
            prop_assert!(received.len() <= payload.len(), "over-delivery");
            prop_assert_eq!(
                &received[..],
                &payload[..received.len()],
                "delivered bytes must be an exact prefix"
            );
            if !aborted {
                prop_assert_eq!(received.len(), payload.len(), "no abort implies completion");
            }
        },
    );
}

/// Bidirectional transfer under mild loss completes with both
/// streams intact.
#[test]
fn bidirectional_transfer_completes() {
    check::run("bidirectional_transfer_completes", 24, |g: &mut Gen| {
        let n_fates = g.usize(8, 39);
        // ~10% loss pattern derived from a 0..10 draw.
        let mut fates: Vec<(bool, u64)> = (0..n_fates)
            .map(|_| (g.u8(0, 9) == 0, g.u64(0, 59)))
            .collect();
        let up = g.usize(1, 19_999);
        let down = g.usize(1, 59_999);
        for f in fates.iter_mut().take(6) {
            f.0 = false;
        }
        let up_data: Vec<u8> = (0..up).map(|i| (i % 241) as u8).collect();
        let down_data: Vec<u8> = (0..down).map(|i| (i % 239) as u8).collect();
        let mut net = Net::new(fates);
        net.client.open(net.now);
        net.client.write(Bytes::from(up_data.clone()));
        net.server.write(Bytes::from(down_data.clone()));
        let mut got_up = Vec::new();
        let mut got_down = Vec::new();
        for _ in 0..400_000 {
            if !net.tick() {
                break;
            }
            let (d, _) = Net::drain(&mut net.server);
            got_up.extend_from_slice(&d);
            let (d, _) = Net::drain(&mut net.client);
            got_down.extend_from_slice(&d);
            if got_up.len() == up && got_down.len() == down {
                break;
            }
        }
        prop_assert_eq!(got_up, up_data);
        prop_assert_eq!(got_down, down_data);
    });
}

/// Gilbert–Elliott bursty loss — the fault layer's loss model — driven
/// through the scripted-fate harness: consecutive drops hit whole RTO
/// windows, and the connection must still terminate every time, either
/// delivering the full payload or aborting cleanly, with the delivered
/// bytes a correct prefix throughout. A run that neither completes, nor
/// aborts, nor drains is a hang and fails.
#[test]
fn bursty_loss_completes_or_aborts_cleanly() {
    use h2priv_netsim::faults::GilbertElliott;
    check::run(
        "bursty_loss_completes_or_aborts_cleanly",
        16,
        |g: &mut Gen| {
            let ge = GilbertElliott::bursty(g.f64(0.05, 0.35), g.f64(2.0, 8.0));
            // Script fates from the two-state chain so losses arrive in
            // bursts rather than i.i.d. like the other stress tests.
            let mut bad = g.bool(ge.long_run_loss());
            let mut fates: Vec<(bool, u64)> = (0..256)
                .map(|_| {
                    bad = if bad {
                        !g.bool(ge.p_exit_bad)
                    } else {
                        g.bool(ge.p_enter_bad)
                    };
                    let loss = if bad { ge.loss_bad } else { ge.loss_good };
                    (g.bool(loss), g.u64(0, 49))
                })
                .collect();
            // Keep the handshake survivable: never drop the first 6 packets.
            for f in fates.iter_mut().take(6) {
                f.0 = false;
            }
            let size = g.usize(1, 79_999);
            let payload: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
            let mut net = Net::new(fates);
            net.client.open(net.now);
            net.server.write(Bytes::from(payload.clone()));
            let mut received = Vec::new();
            let mut aborted = false;
            let mut idle = false;
            for _ in 0..200_000 {
                if !net.tick() {
                    idle = true;
                    break;
                }
                let (d, a) = Net::drain(&mut net.client);
                received.extend_from_slice(&d);
                aborted |= a;
                let (_, a) = Net::drain(&mut net.server);
                aborted |= a;
                if received.len() == payload.len() || aborted {
                    break;
                }
            }
            prop_assert!(
                received.len() == payload.len() || aborted || idle,
                "hang: {} of {} bytes, neither aborted nor drained",
                received.len(),
                payload.len()
            );
            prop_assert!(received.len() <= payload.len(), "over-delivery");
            prop_assert_eq!(
                &received[..],
                &payload[..received.len()],
                "delivered bytes must be an exact prefix"
            );
        },
    );
}

#[test]
fn timestamps_adapt_rto_to_long_holds() {
    // Delay every client->server data packet by 900 ms (an adversarial
    // pacer); with RFC 7323 samples the client's SRTT must grow well
    // beyond the base RTT instead of RTO-ing forever.
    let fates = vec![(false, 0); 8]; // handshake clean
    let mut net = Net::new(fates);
    net.one_way = SimDuration::from_millis(10);
    net.client.open(net.now);
    // Finish handshake.
    for _ in 0..50 {
        if !net.tick() {
            break;
        }
    }
    // Now hold every subsequent packet 900 ms.
    net.fates = vec![(false, 900)];
    net.fate_idx = 0;
    for i in 0..40u32 {
        net.client.write(Bytes::from(vec![i as u8; 400]));
        for _ in 0..40 {
            if !net.tick() {
                break;
            }
        }
    }
    let (got, _) = Net::drain(&mut net.server);
    assert!(!got.is_empty());
    let retx = net.client.stats().retransmits();
    assert!(
        retx <= 6,
        "RTO should adapt to the held path instead of retransmitting everything (retx = {retx})"
    );
}
