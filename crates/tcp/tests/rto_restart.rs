//! RFC 6298 §5.3 regression: every ACK that acknowledges new data must
//! *restart* the retransmission timer from the ACK's arrival time — and
//! clear the exponential backoff — rather than leave the old deadline
//! armed. On the event core this is the cancel-and-rearm pattern the
//! timer wheel serves in O(1); here the protocol half of the contract is
//! pinned with hand-crafted ACKs (`ts_ecr = 0` suppresses RTT samples,
//! so the RTO stays at exactly `rto_initial` and deadlines are exact).

use h2priv_netsim::packet::{FlowId, HostAddr, TcpFlags, TcpHeader};
use h2priv_netsim::time::{SimDuration, SimTime};
use h2priv_tcp::{TcpConfig, TcpConnection};
use h2priv_util::bytes::Bytes;

const ISS: u32 = 7;

fn flow() -> FlowId {
    FlowId {
        src: HostAddr(1),
        dst: HostAddr(2),
        sport: 40_000,
        dport: 443,
    }
}

/// Wire ACK number for a client byte offset (`snd_base = iss + 1`).
fn wire_ack(offset: u64) -> u32 {
    (ISS + 1).wrapping_add(offset as u32)
}

/// A bare ACK from the peer covering everything below `offset`.
/// `ts_ecr = 0` keeps the client's RTT estimator untouched.
fn peer_ack(offset: u64) -> TcpHeader {
    TcpHeader {
        flow: flow().reversed(),
        seq: 5_001,
        ack: wire_ack(offset),
        flags: TcpFlags::ACK,
        window: 1 << 20,
        ts_val: 0,
        ts_ecr: 0,
    }
}

/// Opens the client and walks it to Established with a crafted SYN-ACK.
fn established_client(now: SimTime) -> TcpConnection {
    let mut c = TcpConnection::client(flow(), TcpConfig::default().with_iss(ISS));
    c.open(now);
    let (syn, _) = c.poll_segment(now).expect("client emits SYN");
    assert!(syn.flags.syn);
    let syn_ack = TcpHeader {
        flow: flow().reversed(),
        seq: 5_000,
        ack: wire_ack(0),
        flags: TcpFlags::SYN_ACK,
        window: 1 << 20,
        ts_val: 0,
        ts_ecr: 0,
    };
    c.on_segment(now, &syn_ack, Bytes::new());
    while c.poll_segment(now).is_some() {} // drain the handshake ACK
    assert_eq!(c.next_timeout(), None, "no timer armed while idle");
    c
}

#[test]
fn ack_of_new_data_restarts_the_rto_from_ack_time() {
    let rto = TcpConfig::default().rto_initial;
    let t1 = SimTime::from_millis(10);
    let mut c = established_client(t1);

    // Three segments in flight; the first transmission arms the RTO.
    c.write(Bytes::from(vec![0xAB; 4_096]));
    let t2 = SimTime::from_millis(20);
    let mut sent = 0u64;
    while let Some((_, payload)) = c.poll_segment(t2) {
        sent += payload.len() as u64;
    }
    assert_eq!(sent, 4_096);
    assert_eq!(c.next_timeout(), Some(t2 + rto), "armed at first send");

    // A partial ACK (first segment only) leaves data in flight: the
    // deadline must move to exactly ack-arrival + RTO, not stay put.
    let t3 = SimTime::from_millis(220);
    c.on_segment(t3, &peer_ack(1_460), Bytes::new());
    assert_eq!(c.bytes_in_flight(), 4_096 - 1_460);
    assert_eq!(
        c.next_timeout(),
        Some(t3 + rto),
        "ACK of new data restarts the RTO from the ACK's arrival"
    );

    // Acknowledging everything disarms the timer entirely.
    let t4 = SimTime::from_millis(300);
    c.on_segment(t4, &peer_ack(4_096), Bytes::new());
    assert_eq!(c.bytes_in_flight(), 0);
    assert_eq!(c.next_timeout(), None, "nothing in flight, nothing armed");
}

#[test]
fn rto_expiry_backs_off_and_an_ack_resets_the_backoff() {
    let rto = TcpConfig::default().rto_initial;
    let t1 = SimTime::from_millis(10);
    let mut c = established_client(t1);

    c.write(Bytes::from(vec![0xCD; 1_460]));
    let t2 = SimTime::from_millis(20);
    while c.poll_segment(t2).is_some() {}
    let d0 = c.next_timeout().expect("armed after send");
    assert_eq!(d0, t2 + rto);

    // First expiry: backoff doubles the next interval.
    c.on_timer(d0);
    let d1 = c.next_timeout().expect("re-armed after expiry");
    assert_eq!(d1, d0 + rto * 2, "first backoff doubles the RTO");
    while c.poll_segment(d0).is_some() {} // emit the retransmission

    // Second expiry: doubles again.
    c.on_timer(d1);
    let d2 = c.next_timeout().expect("re-armed after second expiry");
    assert_eq!(d2, d1 + rto * 4, "second backoff doubles again");
    while c.poll_segment(d1).is_some() {}
    assert_eq!(c.stats().rto_events, 2);
    assert!(c.stats().timeout_retransmits >= 2);

    // An ACK for the outstanding byte range clears the timer *and* the
    // backoff state: the next transmission arms at the base RTO again,
    // not at the 4x backed-off interval.
    let t5 = d1 + SimDuration::from_millis(10);
    c.on_segment(t5, &peer_ack(1_460), Bytes::new());
    assert_eq!(c.next_timeout(), None, "fully acked: timer disarmed");

    c.write(Bytes::from(vec![0xEF; 1_460]));
    let t6 = t5 + SimDuration::from_millis(5);
    while c.poll_segment(t6).is_some() {}
    assert_eq!(
        c.next_timeout(),
        Some(t6 + rto),
        "ACK reset the backoff: fresh data arms at the base RTO"
    );
}
