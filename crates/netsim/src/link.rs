//! Unidirectional links with bandwidth, propagation delay, a drop-tail
//! queue, and random loss.
//!
//! A duplex connection between two nodes is a pair of links; the topology
//! helpers register each as the other's reverse. Bandwidth is mutable at
//! runtime — that is the primitive behind the adversary's throttling
//! (paper Section IV-C).

use crate::node::NodeId;
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};
use crate::units::Bandwidth;
use core::fmt;
use std::collections::VecDeque;

/// Identifies a link within one simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub(crate) usize);

impl LinkId {
    /// The raw index (stable for the lifetime of the simulator).
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds a `LinkId` from a raw index. Only meaningful for ids that
    /// came from [`Self::index`]; provided so downstream crates can
    /// construct capture points in tests.
    pub fn from_raw(index: usize) -> LinkId {
        LinkId(index)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Clamps a loss probability into `[0, 1]`; NaN maps to `0`.
///
/// Loss rates can now be composed at runtime (fault schedules, sweeps over
/// computed intensities), so out-of-range values are coerced instead of
/// aborting the whole run. Debug builds log a warning when a value actually
/// had to be clamped.
pub fn clamp_loss(loss: f64) -> f64 {
    if loss.is_nan() {
        #[cfg(debug_assertions)]
        eprintln!("warning: NaN loss probability clamped to 0");
        return 0.0;
    }
    if !(0.0..=1.0).contains(&loss) {
        let clamped = loss.clamp(0.0, 1.0);
        #[cfg(debug_assertions)]
        eprintln!("warning: loss probability {loss} out of range, clamped to {clamped}");
        return clamped;
    }
    loss
}

/// Static configuration of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Serialization rate; `None` models an unconstrained link.
    pub bandwidth: Option<Bandwidth>,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Drop-tail queue capacity in bytes (packets beyond this are dropped).
    /// Ignored when `bandwidth` is `None` (nothing ever queues).
    pub queue_bytes: u64,
    /// Independent random loss probability per packet.
    pub loss: f64,
}

impl LinkConfig {
    /// A fast local link: 1 Gbps, 0.1 ms delay, 256 KiB queue, no loss.
    pub fn lan() -> LinkConfig {
        LinkConfig {
            bandwidth: Some(Bandwidth::gbps(1)),
            delay: SimDuration::from_micros(100),
            queue_bytes: 256 * 1024,
            loss: 0.0,
        }
    }

    /// A wide-area link: 1 Gbps, the given one-way delay, 512 KiB queue.
    pub fn wan(one_way: SimDuration) -> LinkConfig {
        LinkConfig {
            bandwidth: Some(Bandwidth::gbps(1)),
            delay: one_way,
            queue_bytes: 512 * 1024,
            loss: 0.0,
        }
    }

    /// An ideal link with no bandwidth constraint and the given delay.
    pub fn unconstrained(one_way: SimDuration) -> LinkConfig {
        LinkConfig {
            bandwidth: None,
            delay: one_way,
            queue_bytes: u64::MAX,
            loss: 0.0,
        }
    }

    /// Returns `self` with a different bandwidth.
    pub fn with_bandwidth(mut self, bw: Bandwidth) -> LinkConfig {
        self.bandwidth = Some(bw);
        self
    }

    /// Returns `self` with a different loss probability. Out-of-range
    /// values are clamped into `[0, 1]` (see [`clamp_loss`]).
    pub fn with_loss(mut self, loss: f64) -> LinkConfig {
        self.loss = clamp_loss(loss);
        self
    }

    /// Returns `self` with a different propagation delay.
    pub fn with_delay(mut self, delay: SimDuration) -> LinkConfig {
        self.delay = delay;
        self
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::lan()
    }
}

/// Per-link counters, exposed through [`crate::sim::Simulator::link_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets accepted for transmission.
    pub sent: u64,
    /// Packets delivered to the far end.
    pub delivered: u64,
    /// Packets dropped by random loss.
    pub dropped_loss: u64,
    /// Packets dropped by queue overflow.
    pub dropped_queue: u64,
    /// Payload + header bytes delivered.
    pub bytes_delivered: u64,
}

#[derive(Debug)]
pub(crate) struct Link {
    pub cfg: LinkConfig,
    pub from: NodeId,
    pub to: NodeId,
    pub reverse: Option<LinkId>,
    /// Packet currently being serialized, if any.
    pub transmitting: Option<Packet>,
    pub queue: VecDeque<Packet>,
    pub queued_bytes: u64,
    pub stats: LinkStats,
}

impl Link {
    fn new(from: NodeId, to: NodeId, cfg: LinkConfig) -> Link {
        Link {
            cfg,
            from,
            to,
            reverse: None,
            transmitting: None,
            queue: VecDeque::new(),
            queued_bytes: 0,
            stats: LinkStats::default(),
        }
    }
}

/// The registry of all links in a simulator.
#[derive(Debug, Default)]
pub(crate) struct Links {
    links: Vec<Link>,
}

impl Links {
    pub fn new() -> Links {
        Links::default()
    }

    pub fn add(&mut self, from: NodeId, to: NodeId, cfg: LinkConfig) -> LinkId {
        let id = LinkId(self.links.len());
        self.links.push(Link::new(from, to, cfg));
        id
    }

    pub fn pair(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) -> (LinkId, LinkId) {
        let ab = self.add(a, b, cfg);
        let ba = self.add(b, a, cfg);
        self.links[ab.0].reverse = Some(ba);
        self.links[ba.0].reverse = Some(ab);
        (ab, ba)
    }

    pub fn get(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    pub fn get_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.0]
    }

    pub fn origin_of(&self, id: LinkId) -> NodeId {
        self.links[id.0].from
    }

    pub fn target_of(&self, id: LinkId) -> NodeId {
        self.links[id.0].to
    }

    pub fn reverse_of(&self, id: LinkId) -> Option<LinkId> {
        self.links[id.0].reverse
    }

    pub fn links_from(&self, node: NodeId) -> Vec<LinkId> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.from == node)
            .map(|(i, _)| LinkId(i))
            .collect()
    }

    pub fn set_bandwidth(&mut self, id: LinkId, bw: Option<Bandwidth>) {
        self.links[id.0].cfg.bandwidth = bw;
    }

    pub fn set_loss(&mut self, id: LinkId, loss: f64) {
        self.links[id.0].cfg.loss = clamp_loss(loss);
    }

    pub fn stats(&self, id: LinkId) -> LinkStats {
        self.links[id.0].stats
    }

    /// Computes when a packet handed to the link *right now* would finish
    /// serializing, assuming nothing is queued. Used by tests.
    #[allow(dead_code)]
    pub fn ideal_latency(&self, id: LinkId, wire_bytes: u32) -> SimDuration {
        let l = &self.links[id.0];
        let tx = l
            .cfg
            .bandwidth
            .map(|bw| bw.transmit_time(wire_bytes))
            .unwrap_or(SimDuration::ZERO);
        tx + l.cfg.delay
    }

    /// The absolute time at which the next queued packet would finish, for
    /// introspection in tests.
    #[allow(dead_code)]
    pub fn busy(&self, id: LinkId) -> bool {
        self.links[id.0].transmitting.is_some()
    }
}

/// What a link does with a packet submitted to it (computed by the world).
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum SubmitOutcome {
    /// Start serializing now; TxComplete should fire after the duration.
    StartTx(SimDuration),
    /// Queued behind the in-flight packet.
    Queued,
    /// Dropped by random loss.
    DroppedLoss,
    /// Dropped because the queue is full.
    DroppedQueue,
    /// Unconstrained link: deliver directly after the propagation delay.
    DeliverAfter(SimDuration),
}

impl Link {
    /// Decides what to do with `pkt`, updating queue state. `lossy_draw`
    /// is the pre-drawn uniform sample for the loss decision (drawn by the
    /// caller so that the RNG lives in one place).
    pub(crate) fn submit(
        &mut self,
        pkt: Packet,
        lossy_draw: f64,
    ) -> (SubmitOutcome, Option<Packet>) {
        if self.cfg.loss > 0.0 && lossy_draw < self.cfg.loss {
            self.stats.dropped_loss += 1;
            return (SubmitOutcome::DroppedLoss, Some(pkt));
        }
        self.stats.sent += 1;
        match self.cfg.bandwidth {
            None => (SubmitOutcome::DeliverAfter(self.cfg.delay), Some(pkt)),
            Some(bw) => {
                if self.transmitting.is_none() {
                    let tx = bw.transmit_time(pkt.wire_size());
                    self.transmitting = Some(pkt);
                    (SubmitOutcome::StartTx(tx), None)
                } else if self.queued_bytes + pkt.wire_size() as u64 <= self.cfg.queue_bytes {
                    self.queued_bytes += pkt.wire_size() as u64;
                    self.queue.push_back(pkt);
                    (SubmitOutcome::Queued, None)
                } else {
                    self.stats.sent -= 1; // not actually sent
                    self.stats.dropped_queue += 1;
                    (SubmitOutcome::DroppedQueue, Some(pkt))
                }
            }
        }
    }

    /// Finishes the in-flight packet: returns it plus, if another packet is
    /// queued, the serialization time of the next one (which becomes the
    /// new in-flight packet).
    pub(crate) fn tx_complete(&mut self) -> (Packet, Option<SimDuration>) {
        let done = self.transmitting.take().expect("tx_complete on idle link");
        let next = self.queue.pop_front().map(|p| {
            self.queued_bytes -= p.wire_size() as u64;
            let bw = self
                .cfg
                .bandwidth
                .expect("queued packet on unconstrained link");
            let tx = bw.transmit_time(p.wire_size());
            self.transmitting = Some(p);
            tx
        });
        (done, next)
    }
}

/// The absolute delivery time for a packet that finished serializing at
/// `now` on a link with the given config.
pub(crate) fn delivery_time(now: SimTime, cfg: &LinkConfig) -> SimTime {
    now + cfg.delay
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, HostAddr, TcpFlags, TcpHeader};
    use h2priv_util::bytes::Bytes;

    fn mk(size: usize) -> Packet {
        Packet::new(
            TcpHeader {
                flow: FlowId {
                    src: HostAddr(0),
                    dst: HostAddr(1),
                    sport: 1,
                    dport: 2,
                },
                seq: 0,
                ack: 0,
                flags: TcpFlags::ACK,
                window: 0,
                ts_val: 0,
                ts_ecr: 0,
            },
            Bytes::from(vec![0u8; size]),
        )
    }

    #[test]
    fn idle_link_starts_transmitting() {
        let mut l = Link::new(NodeId(0), NodeId(1), LinkConfig::lan());
        let (o, _) = l.submit(mk(1446), 1.0);
        match o {
            SubmitOutcome::StartTx(tx) => {
                // 1500 bytes at 1 Gbps = 12 us
                assert_eq!(tx, SimDuration::from_micros(12));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(l.transmitting.is_some());
    }

    #[test]
    fn busy_link_queues_then_drains_fifo() {
        let mut l = Link::new(NodeId(0), NodeId(1), LinkConfig::lan());
        let _ = l.submit(mk(100), 1.0);
        let mut a = mk(200);
        a.header.seq = 1;
        let mut b = mk(300);
        b.header.seq = 2;
        assert_eq!(l.submit(a, 1.0).0, SubmitOutcome::Queued);
        assert_eq!(l.submit(b, 1.0).0, SubmitOutcome::Queued);

        let (first, next) = l.tx_complete();
        assert_eq!(first.header.seq, 0);
        assert!(next.is_some());
        let (second, next) = l.tx_complete();
        assert_eq!(second.header.seq, 1);
        assert!(next.is_some());
        let (third, next) = l.tx_complete();
        assert_eq!(third.header.seq, 2);
        assert!(next.is_none());
    }

    #[test]
    fn queue_overflow_drops() {
        let mut cfg = LinkConfig::lan();
        cfg.queue_bytes = 100; // too small for one more packet
        let mut l = Link::new(NodeId(0), NodeId(1), cfg);
        let _ = l.submit(mk(1000), 1.0); // in-flight
        let (o, returned) = l.submit(mk(1000), 1.0);
        assert_eq!(o, SubmitOutcome::DroppedQueue);
        assert!(returned.is_some());
        assert_eq!(l.stats.dropped_queue, 1);
    }

    #[test]
    fn loss_draw_below_threshold_drops() {
        let cfg = LinkConfig::lan().with_loss(0.5);
        let mut l = Link::new(NodeId(0), NodeId(1), cfg);
        let (o, _) = l.submit(mk(10), 0.2);
        assert_eq!(o, SubmitOutcome::DroppedLoss);
        let (o, _) = l.submit(mk(10), 0.9);
        assert!(matches!(o, SubmitOutcome::StartTx(_)));
    }

    #[test]
    fn unconstrained_link_delivers_after_delay() {
        let cfg = LinkConfig::unconstrained(SimDuration::from_millis(7));
        let mut l = Link::new(NodeId(0), NodeId(1), cfg);
        let (o, p) = l.submit(mk(10_000), 1.0);
        assert_eq!(o, SubmitOutcome::DeliverAfter(SimDuration::from_millis(7)));
        assert!(p.is_some());
    }

    #[test]
    fn pair_registers_reverse() {
        let mut links = Links::new();
        let (ab, ba) = links.pair(NodeId(0), NodeId(1), LinkConfig::lan());
        assert_eq!(links.reverse_of(ab), Some(ba));
        assert_eq!(links.reverse_of(ba), Some(ab));
        assert_eq!(links.origin_of(ab), NodeId(0));
        assert_eq!(links.target_of(ab), NodeId(1));
        assert_eq!(links.links_from(NodeId(0)), vec![ab]);
    }

    #[test]
    fn invalid_loss_clamped() {
        assert_eq!(LinkConfig::lan().with_loss(1.5).loss, 1.0);
        assert_eq!(LinkConfig::lan().with_loss(-0.2).loss, 0.0);
        assert_eq!(LinkConfig::lan().with_loss(f64::NAN).loss, 0.0);
        assert_eq!(LinkConfig::lan().with_loss(0.25).loss, 0.25);

        let mut links = Links::new();
        let id = links.add(NodeId(0), NodeId(1), LinkConfig::lan());
        links.set_loss(id, 7.0);
        assert_eq!(links.get(id).cfg.loss, 1.0);
        links.set_loss(id, f64::NEG_INFINITY);
        assert_eq!(links.get(id).cfg.loss, 0.0);
    }
}
