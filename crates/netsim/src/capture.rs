//! The capture hook: a tshark-like tap on the simulated wire.
//!
//! The `h2priv-trace` crate implements [`CaptureSink`] to build packet
//! traces; the simulator and the middlebox feed it [`CaptureEvent`]s. The
//! sink is shared via `Rc<RefCell<..>>` because the simulation is strictly
//! single-threaded.

use crate::link::LinkId;
use crate::packet::{Direction, Packet};
use crate::time::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// Where on the path an event was captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CapturePoint {
    /// The packet transited the adversary's middlebox (the paper's
    /// compromised gateway). This is the vantage point all attack logic
    /// uses.
    Middlebox,
    /// The packet was dropped by a link (loss or queue overflow).
    LinkDrop(LinkId),
    /// The packet was delivered to its destination node.
    Delivery(LinkId),
}

/// One captured wire event.
#[derive(Debug, Clone)]
pub struct CaptureEvent {
    /// When it happened.
    pub time: SimTime,
    /// Travel direction relative to the client-server path, when known.
    pub direction: Option<Direction>,
    /// The packet involved. Payload bytes are ciphertext-equivalent: sinks
    /// may record sizes and the cleartext TLS record headers, nothing else
    /// is meaningful to an eavesdropper.
    pub packet: Packet,
    /// Whether the middlebox's policy dropped this packet (only meaningful
    /// at [`CapturePoint::Middlebox`]).
    pub dropped_by_policy: bool,
}

/// A consumer of capture events.
pub trait CaptureSink {
    /// Records one event. Implementations must not assume events arrive in
    /// any order other than non-decreasing time.
    fn record(&mut self, point: CapturePoint, event: &CaptureEvent);
}

/// A shareable, interiorly-mutable capture sink handle.
pub type SharedSink = Rc<RefCell<dyn CaptureSink>>;

/// A sink that counts events; useful in tests and as a default.
#[derive(Debug, Default, Clone)]
pub struct CountingSink {
    /// Events seen at the middlebox.
    pub middlebox: u64,
    /// Drop events.
    pub drops: u64,
    /// Delivery events.
    pub deliveries: u64,
}

impl CaptureSink for CountingSink {
    fn record(&mut self, point: CapturePoint, _event: &CaptureEvent) {
        match point {
            CapturePoint::Middlebox => self.middlebox += 1,
            CapturePoint::LinkDrop(_) => self.drops += 1,
            CapturePoint::Delivery(_) => self.deliveries += 1,
        }
    }
}

/// Wraps a sink for sharing with the simulator.
pub fn shared<S: CaptureSink + 'static>(sink: S) -> Rc<RefCell<S>> {
    Rc::new(RefCell::new(sink))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, HostAddr, TcpFlags, TcpHeader};
    use h2priv_util::bytes::Bytes;

    fn ev() -> CaptureEvent {
        CaptureEvent {
            time: SimTime::ZERO,
            direction: Some(Direction::ClientToServer),
            packet: Packet::new(
                TcpHeader {
                    flow: FlowId {
                        src: HostAddr(0),
                        dst: HostAddr(1),
                        sport: 1,
                        dport: 443,
                    },
                    seq: 0,
                    ack: 0,
                    flags: TcpFlags::ACK,
                    window: 0,
                    ts_val: 0,
                    ts_ecr: 0,
                },
                Bytes::new(),
            ),
            dropped_by_policy: false,
        }
    }

    #[test]
    fn counting_sink_counts_by_point() {
        let mut s = CountingSink::default();
        s.record(CapturePoint::Middlebox, &ev());
        s.record(CapturePoint::Middlebox, &ev());
        s.record(CapturePoint::LinkDrop(LinkId(0)), &ev());
        s.record(CapturePoint::Delivery(LinkId(1)), &ev());
        assert_eq!((s.middlebox, s.drops, s.deliveries), (2, 1, 1));
    }

    #[test]
    fn shared_sink_is_usable_through_handle() {
        let handle = shared(CountingSink::default());
        handle.borrow_mut().record(CapturePoint::Middlebox, &ev());
        assert_eq!(handle.borrow().middlebox, 1);
    }
}
