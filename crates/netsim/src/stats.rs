//! Whole-simulation counters.

/// Aggregate counters maintained by the simulator core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events dispatched.
    pub events: u64,
    /// Packets delivered to any node.
    pub packets_delivered: u64,
    /// Packets dropped by any link (loss or queue overflow).
    pub packets_dropped: u64,
}

impl SimStats {
    /// Fraction of submitted packets that were dropped, in `[0, 1]`.
    /// Returns 0 when nothing was transmitted.
    pub fn drop_ratio(&self) -> f64 {
        let total = self.packets_delivered + self.packets_dropped;
        if total == 0 {
            0.0
        } else {
            self.packets_dropped as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_ratio_handles_zero() {
        assert_eq!(SimStats::default().drop_ratio(), 0.0);
    }

    #[test]
    fn drop_ratio_computes() {
        let s = SimStats {
            events: 0,
            packets_delivered: 75,
            packets_dropped: 25,
        };
        assert!((s.drop_ratio() - 0.25).abs() < 1e-12);
    }
}
