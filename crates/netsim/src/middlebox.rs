//! The adversary's vantage point: a programmable on-path middlebox.
//!
//! The paper's threat model (Section III) is a compromised network device
//! that can (1) read unencrypted header fields, (2) observe encrypted
//! packet sizes, (3) delay packets, (4) throttle the link, and (5) drop
//! packets. [`Middlebox`] provides exactly those capabilities to a
//! [`MiddleboxPolicy`] and nothing more: the policy receives a
//! [`PacketView`] rather than the packet itself, and acts by returning a
//! [`Verdict`] or by calling the throttle/timer methods on [`PolicyCtx`].

use crate::capture::{CaptureEvent, CapturePoint};
use crate::link::LinkId;
use crate::node::{Ctx, Node, TimerId};
use crate::packet::{Direction, Packet, TcpHeader};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::units::Bandwidth;
use h2priv_util::bytes::Bytes;
use std::collections::HashMap;

/// What a policy decides to do with one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Forward immediately.
    Forward,
    /// Hold the packet and forward it after the given extra delay.
    /// Later packets may overtake it — this is how the adversary creates
    /// reordering and jitter (paper Section IV-B).
    Delay(SimDuration),
    /// Drop the packet (paper Section IV-D, targeted drops).
    Drop,
}

/// An eavesdropper's view of a packet.
///
/// Exposes what a real on-path device sees: the cleartext TCP/IP header,
/// sizes, and the raw payload bytes (which on a real wire are TLS
/// ciphertext — record headers cleartext, everything else opaque). Policy
/// implementations in `h2priv-core` restrict themselves to header fields,
/// sizes and TLS record headers, mirroring the paper's adversary.
#[derive(Debug, Clone, Copy)]
pub struct PacketView<'a> {
    pkt: &'a Packet,
}

impl<'a> PacketView<'a> {
    /// Creates an eavesdropper view of a packet (what a policy receives;
    /// also useful for feeding monitors in tests and offline analysis).
    pub fn of(pkt: &'a Packet) -> PacketView<'a> {
        PacketView { pkt }
    }

    /// The cleartext TCP/IP header.
    pub fn header(&self) -> &TcpHeader {
        &self.pkt.header
    }

    /// TCP payload length in bytes.
    pub fn payload_len(&self) -> u32 {
        self.pkt.payload_len()
    }

    /// Total on-wire size including headers.
    pub fn wire_size(&self) -> u32 {
        self.pkt.wire_size()
    }

    /// The raw payload bytes as they appear on the wire. For
    /// post-handshake traffic this is the TLS record stream: the 5-byte
    /// record headers are cleartext, the bodies are ciphertext.
    pub fn payload(&self) -> &Bytes {
        &self.pkt.payload
    }
}

/// Capabilities available to a policy during a callback.
pub struct PolicyCtx<'a, 'b> {
    inner: &'a mut Ctx<'b>,
    ports: PortMap,
    token_registrations: Vec<(TimerId, u64)>,
}

impl<'a, 'b> PolicyCtx<'a, 'b> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.now()
    }

    /// The simulation RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        self.inner.rng()
    }

    /// Schedules a policy timer; `token` is handed back to
    /// [`MiddleboxPolicy::on_timer`] when it fires.
    pub fn schedule_token(&mut self, after: SimDuration, token: u64) {
        let id = self.inner.schedule(after);
        self.token_registrations.push((id, token));
    }

    /// Throttles (or unthrottles, with `None`) the egress link in the
    /// given direction. The paper's adversary throttles both directions;
    /// call this twice for that.
    pub fn set_bandwidth(&mut self, dir: Direction, bw: Option<Bandwidth>) {
        let link = self.ports.egress(dir);
        self.inner.set_link_bandwidth(link, bw);
    }

    /// Sets the random loss rate on the egress link in `dir`.
    pub fn set_loss(&mut self, dir: Direction, loss: f64) {
        let link = self.ports.egress(dir);
        self.inner.set_link_loss(link, loss);
    }
}

/// The decision logic running on the middlebox. Implemented by the
/// adversary in `h2priv-core`; trivial implementations ([`Passthrough`])
/// are provided here for baselines.
pub trait MiddleboxPolicy {
    /// Classifies one transiting packet.
    fn on_packet(
        &mut self,
        ctx: &mut PolicyCtx<'_, '_>,
        dir: Direction,
        pkt: PacketView<'_>,
    ) -> Verdict;

    /// A timer scheduled via [`PolicyCtx::schedule_token`] fired.
    fn on_timer(&mut self, ctx: &mut PolicyCtx<'_, '_>, token: u64) {
        let _ = (ctx, token);
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str {
        "policy"
    }
}

/// A policy that forwards everything untouched — the "no adversary"
/// baseline used to measure natural multiplexing.
#[derive(Debug, Default, Clone, Copy)]
pub struct Passthrough;

impl MiddleboxPolicy for Passthrough {
    fn on_packet(
        &mut self,
        _ctx: &mut PolicyCtx<'_, '_>,
        _dir: Direction,
        _pkt: PacketView<'_>,
    ) -> Verdict {
        Verdict::Forward
    }

    fn name(&self) -> &'static str {
        "passthrough"
    }
}

/// Counters describing middlebox activity, for reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MiddleboxStats {
    /// Packets observed client→server.
    pub observed_c2s: u64,
    /// Packets observed server→client.
    pub observed_s2c: u64,
    /// Packets forwarded unchanged.
    pub forwarded: u64,
    /// Packets held and released later.
    pub delayed: u64,
    /// Packets dropped by policy.
    pub dropped: u64,
}

#[derive(Debug, Clone, Copy)]
struct PortMap {
    to_client: LinkId,
    to_server: LinkId,
    from_client: LinkId,
    from_server: LinkId,
}

impl PortMap {
    fn egress(&self, dir: Direction) -> LinkId {
        match dir {
            Direction::ClientToServer => self.to_server,
            Direction::ServerToClient => self.to_client,
        }
    }

    fn direction_of_ingress(&self, from: LinkId) -> Direction {
        if from == self.from_client {
            Direction::ClientToServer
        } else if from == self.from_server {
            Direction::ServerToClient
        } else {
            panic!("packet arrived on unknown middlebox port {from}");
        }
    }
}

/// The middlebox node. Construct with a policy, wire into the topology
/// (see [`crate::topology::PathTopology`]), and the policy takes it from
/// there.
pub struct Middlebox {
    policy: Box<dyn MiddleboxPolicy>,
    ports: Option<PortMap>,
    held: HashMap<u64, (Direction, Packet)>,
    tokens: HashMap<u64, u64>,
    stats: MiddleboxStats,
    tapped: bool,
}

impl Middlebox {
    /// Creates a middlebox running `policy`.
    pub fn new(policy: Box<dyn MiddleboxPolicy>) -> Middlebox {
        Middlebox {
            policy,
            ports: None,
            held: HashMap::new(),
            tokens: HashMap::new(),
            stats: MiddleboxStats::default(),
            tapped: true,
        }
    }

    /// Creates a middlebox that forwards like [`Middlebox::new`] but
    /// records nothing to the capture sink — a gateway the adversary has
    /// *not* compromised. Used as the second path of a traffic-splitting
    /// countermeasure: bytes routed through it are invisible to the
    /// attack's trace.
    pub fn untapped(policy: Box<dyn MiddleboxPolicy>) -> Middlebox {
        Middlebox {
            tapped: false,
            ..Middlebox::new(policy)
        }
    }

    /// Wires the four ports. Normally called by the topology builder.
    pub fn set_ports(
        &mut self,
        to_client: LinkId,
        to_server: LinkId,
        from_client: LinkId,
        from_server: LinkId,
    ) {
        self.ports = Some(PortMap {
            to_client,
            to_server,
            from_client,
            from_server,
        });
    }

    /// Activity counters.
    pub fn stats(&self) -> MiddleboxStats {
        self.stats
    }

    /// The policy, for post-run inspection (downcast by the caller).
    pub fn policy(&self) -> &dyn MiddleboxPolicy {
        self.policy.as_ref()
    }

    fn ports(&self) -> PortMap {
        self.ports
            .expect("middlebox ports not wired; use PathTopology::build")
    }

    fn run_policy<R>(
        &mut self,
        ctx: &mut Ctx<'_>,
        f: impl FnOnce(&mut dyn MiddleboxPolicy, &mut PolicyCtx<'_, '_>) -> R,
    ) -> R {
        let ports = self.ports();
        let mut pctx = PolicyCtx {
            inner: ctx,
            ports,
            token_registrations: Vec::new(),
        };
        let r = f(self.policy.as_mut(), &mut pctx);
        for (timer, token) in pctx.token_registrations {
            self.tokens.insert(timer.0, token);
        }
        r
    }
}

impl Node for Middlebox {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, from: LinkId, pkt: Packet) {
        let ports = self.ports();
        let dir = ports.direction_of_ingress(from);
        match dir {
            Direction::ClientToServer => self.stats.observed_c2s += 1,
            Direction::ServerToClient => self.stats.observed_s2c += 1,
        }
        let verdict = self.run_policy(ctx, |p, pctx| {
            p.on_packet(pctx, dir, PacketView { pkt: &pkt })
        });
        if self.tapped {
            ctx.capture(
                CapturePoint::Middlebox,
                CaptureEvent {
                    time: ctx.now(),
                    direction: Some(dir),
                    packet: pkt.clone(),
                    dropped_by_policy: verdict == Verdict::Drop,
                },
            );
        }
        match verdict {
            Verdict::Forward => {
                self.stats.forwarded += 1;
                ctx.send(ports.egress(dir), pkt);
            }
            Verdict::Delay(d) => {
                self.stats.delayed += 1;
                let timer = ctx.schedule(d);
                self.held.insert(timer.0, (dir, pkt));
            }
            Verdict::Drop => {
                self.stats.dropped += 1;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerId) {
        if let Some((dir, pkt)) = self.held.remove(&timer.0) {
            let ports = self.ports();
            self.stats.forwarded += 1;
            ctx.send(ports.egress(dir), pkt);
        } else if let Some(token) = self.tokens.remove(&timer.0) {
            self.run_policy(ctx, |p, pctx| p.on_timer(pctx, token));
        }
    }
}

impl core::fmt::Debug for Middlebox {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Middlebox")
            .field("policy", &self.policy.name())
            .field("held", &self.held.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, HostAddr, TcpFlags};
    use crate::sim::Simulator;
    use crate::topology::{PathConfig, PathTopology};

    struct Pitcher {
        out: Option<LinkId>,
        n: u32,
    }
    struct Catcher {
        times: Vec<SimTime>,
    }

    impl Node for Pitcher {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.out = Some(ctx.egress_links()[0]);
            ctx.schedule(SimDuration::ZERO);
        }
        fn on_packet(&mut self, _c: &mut Ctx<'_>, _f: LinkId, _p: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId) {
            for i in 0..self.n {
                let pkt = Packet::new(
                    TcpHeader {
                        flow: FlowId {
                            src: HostAddr(1),
                            dst: HostAddr(2),
                            sport: 40000,
                            dport: 443,
                        },
                        seq: i,
                        ack: 0,
                        flags: TcpFlags::ACK,
                        window: 0,
                        ts_val: 0,
                        ts_ecr: 0,
                    },
                    Bytes::from(vec![0u8; 64]),
                );
                ctx.send(self.out.unwrap(), pkt);
            }
        }
    }

    impl Node for Catcher {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _f: LinkId, _p: Packet) {
            self.times.push(ctx.now());
        }
        fn on_timer(&mut self, _c: &mut Ctx<'_>, _t: TimerId) {}
    }

    /// Delays every other packet by 50 ms.
    struct AlternatingDelay {
        count: u64,
    }
    impl MiddleboxPolicy for AlternatingDelay {
        fn on_packet(
            &mut self,
            _ctx: &mut PolicyCtx<'_, '_>,
            _dir: Direction,
            _pkt: PacketView<'_>,
        ) -> Verdict {
            self.count += 1;
            if self.count.is_multiple_of(2) {
                Verdict::Delay(SimDuration::from_millis(50))
            } else {
                Verdict::Forward
            }
        }
    }

    struct DropAll;
    impl MiddleboxPolicy for DropAll {
        fn on_packet(
            &mut self,
            _ctx: &mut PolicyCtx<'_, '_>,
            _dir: Direction,
            _pkt: PacketView<'_>,
        ) -> Verdict {
            Verdict::Drop
        }
    }

    fn run_with(policy: Box<dyn MiddleboxPolicy>, n: u32) -> (Simulator, PathTopology) {
        let mut sim = Simulator::new(5);
        let topo = PathTopology::build(
            &mut sim,
            Pitcher { out: None, n },
            policy,
            Catcher { times: vec![] },
            &PathConfig::default(),
        );
        sim.run_until_idle(SimTime::from_secs(10));
        (sim, topo)
    }

    #[test]
    fn passthrough_forwards_all() {
        let (sim, topo) = run_with(Box::new(Passthrough), 5);
        assert_eq!(sim.node_ref::<Catcher>(topo.server).times.len(), 5);
        let mb = sim.node_ref::<Middlebox>(topo.middlebox);
        assert_eq!(mb.stats().forwarded, 5);
        assert_eq!(mb.stats().observed_c2s, 5);
    }

    #[test]
    fn delay_verdict_reorders() {
        let (sim, topo) = run_with(Box::new(AlternatingDelay { count: 0 }), 4);
        let times = &sim.node_ref::<Catcher>(topo.server).times;
        assert_eq!(times.len(), 4);
        // Two arrive promptly, two arrive ~50 ms later.
        let late = times.iter().filter(|t| t.as_millis() >= 50).count();
        assert_eq!(late, 2);
        let mb = sim.node_ref::<Middlebox>(topo.middlebox);
        assert_eq!(mb.stats().delayed, 2);
    }

    #[test]
    fn drop_verdict_blackholes() {
        let (sim, topo) = run_with(Box::new(DropAll), 3);
        assert!(sim.node_ref::<Catcher>(topo.server).times.is_empty());
        assert_eq!(sim.node_ref::<Middlebox>(topo.middlebox).stats().dropped, 3);
    }

    #[test]
    fn timer_tokens_reach_policy() {
        struct TokenPolicy {
            fired: Vec<u64>,
        }
        impl MiddleboxPolicy for TokenPolicy {
            fn on_packet(
                &mut self,
                ctx: &mut PolicyCtx<'_, '_>,
                _dir: Direction,
                _pkt: PacketView<'_>,
            ) -> Verdict {
                if self.fired.is_empty() {
                    ctx.schedule_token(SimDuration::from_millis(5), 77);
                }
                Verdict::Forward
            }
            fn on_timer(&mut self, _ctx: &mut PolicyCtx<'_, '_>, token: u64) {
                self.fired.push(token);
            }
        }
        let (sim, topo) = run_with(Box::new(TokenPolicy { fired: vec![] }), 1);
        let mb = sim.node_ref::<Middlebox>(topo.middlebox);
        // Downcast via Debug formatting is ugly; check through stats instead:
        // the packet was forwarded and the policy timer must have fired,
        // which we verify by the absence of pending events and the name.
        assert_eq!(mb.stats().forwarded, 1);
        assert_eq!(sim.pending_events(), 0);
    }
}
