//! Deterministic random number generation for the simulation.
//!
//! One [`SimRng`] lives in the simulator and is threaded through every
//! callback via the context types, so a single `u64` seed reproduces an
//! entire run bit-for-bit. This is essential for the experiment harness:
//! the paper reports percentages over 100 downloads per configuration, and
//! we want each of those trials to be independently re-runnable.

use h2priv_util::rng::Xoshiro256PlusPlus;

/// The simulation's random source: a seeded xoshiro256++ generator
/// (bit-compatible with the `rand 0.8` `SmallRng` the seed release used,
/// so all pinned experiment seeds keep their streams) with convenience
/// draws used across the stack (jittered delays, loss decisions, service
/// time variation).
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Xoshiro256PlusPlus,
}

impl SimRng {
    /// Creates a generator from a seed. The same seed always produces the
    /// same stream.
    pub fn new(seed: u64) -> SimRng {
        SimRng {
            inner: Xoshiro256PlusPlus::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; used to give subsystems
    /// their own streams so adding draws in one place does not perturb
    /// another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.inner.next_u64())
    }

    /// A uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen_f64()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen_f64() < p
        }
    }

    /// A uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range inverted");
        self.inner.gen_range_u64(lo, hi)
    }

    /// A multiplicative jitter factor in `[1-spread, 1+spread]`.
    ///
    /// Used for "natural variation" of service times and browser gaps;
    /// `spread` is clamped to `[0, 1)`.
    pub fn jitter_factor(&mut self, spread: f64) -> f64 {
        let s = spread.clamp(0.0, 0.999);
        1.0 - s + 2.0 * s * self.inner.gen_f64()
    }

    /// A draw from an exponential distribution with the given mean.
    ///
    /// # Panics
    /// Panics if `mean` is not finite or negative.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean >= 0.0, "invalid mean");
        if mean == 0.0 {
            return 0.0;
        }
        let u: f64 = self.inner.gen_range_f64(f64::MIN_POSITIVE, 1.0);
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0, 1_000_000), b.range_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..16).map(|_| a.range_u64(0, u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.range_u64(0, u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_rate_roughly_matches_p() {
        let mut r = SimRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.8)).count();
        assert!((7_500..8_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn jitter_factor_bounds() {
        let mut r = SimRng::new(5);
        for _ in 0..1_000 {
            let f = r.jitter_factor(0.3);
            assert!((0.7..=1.3).contains(&f), "factor out of range: {f}");
        }
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::new(9);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(10.0)).sum();
        let mean = sum / n as f64;
        assert!((9.0..11.0).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn fork_decouples_streams() {
        let mut a = SimRng::new(21);
        let mut fork1 = a.fork();
        let after_fork: Vec<u64> = (0..8).map(|_| a.range_u64(0, u64::MAX)).collect();

        // Re-create and draw from the fork differently; parent stream unchanged.
        let mut b = SimRng::new(21);
        let mut fork2 = b.fork();
        for _ in 0..100 {
            let _ = fork2.uniform(); // extra draws on the fork
        }
        let after_fork2: Vec<u64> = (0..8).map(|_| b.range_u64(0, u64::MAX)).collect();
        assert_eq!(after_fork, after_fork2);
        let _ = fork1.uniform();
    }
}
