//! The node abstraction and the context handed to node callbacks.
//!
//! A [`Node`] is anything attached to the simulated network: the client
//! host, the server host, or the adversary's middlebox. Nodes react to
//! packet arrivals and timer expiries; everything they can do to the world
//! (send packets, schedule timers, tweak links) goes through [`Ctx`], which
//! keeps the borrow structure simple and the simulation deterministic.

use crate::capture::{CaptureEvent, CapturePoint};
use crate::link::LinkId;
use crate::packet::{Packet, PacketId};
use crate::rng::SimRng;
use crate::sim::World;
use crate::time::{SimDuration, SimTime};
use crate::units::Bandwidth;
use core::fmt;

/// Identifies a node within one simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw index (stable for the lifetime of the simulator).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a scheduled timer; returned by [`Ctx::schedule`] and passed
/// back to [`Node::on_timer`] when it fires.
///
/// Internally this is a generation-tagged slab handle into the event
/// queue, which is what makes [`Ctx::cancel`] an O(1) removal instead of
/// a tombstone: a stale id (already fired or already cancelled) simply
/// fails the generation check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

/// A participant in the simulation.
///
/// Implementations live in higher-level crates: TCP/HTTP2 hosts in
/// `h2priv-h2`, the adversary middlebox in this crate (driven by a policy
/// from `h2priv-core`).
pub trait Node {
    /// Called once when the simulation starts, before any event fires.
    /// The default does nothing; initiating nodes (e.g. a client that must
    /// open a connection) override this to schedule their first action.
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// A packet arrived on `from` (a link whose destination is this node).
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, from: LinkId, pkt: Packet);

    /// A timer scheduled by this node fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerId);
}

/// The capabilities available to a node during a callback.
pub struct Ctx<'a> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) world: &'a mut World,
}

impl<'a> Ctx<'a> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node being called.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The simulation RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.world.rng
    }

    /// Sends `pkt` on `link`, assigning it a fresh packet id.
    ///
    /// # Panics
    /// Panics if `link` does not originate at this node — a node can only
    /// transmit on its own egress links.
    pub fn send(&mut self, link: LinkId, mut pkt: Packet) -> PacketId {
        let from = self.world.links.origin_of(link);
        assert_eq!(
            from, self.node,
            "node {} attempted to send on link {} owned by {}",
            self.node, link, from
        );
        let id = PacketId(self.world.next_packet_id);
        self.world.next_packet_id += 1;
        pkt.id = id;
        self.world.submit(self.now, link, pkt);
        id
    }

    /// Schedules a timer to fire `after` from now; returns its id.
    pub fn schedule(&mut self, after: SimDuration) -> TimerId {
        self.schedule_at(self.now + after)
    }

    /// Schedules a timer at the absolute time `at` (clamped to now).
    pub fn schedule_at(&mut self, at: SimTime) -> TimerId {
        let at = at.max(self.now);
        self.world.queue.push_timer(at, self.node)
    }

    /// Cancels a previously scheduled timer, removing its event from the
    /// queue in O(1). Cancelling an already-fired or unknown timer is a
    /// no-op.
    pub fn cancel(&mut self, timer: TimerId) {
        self.world.queue.cancel(timer);
    }

    /// The link carrying traffic in the opposite direction of `link`, if
    /// the topology registered one.
    pub fn reverse_link(&self, link: LinkId) -> Option<LinkId> {
        self.world.links.reverse_of(link)
    }

    /// All links originating at this node, in creation order.
    pub fn egress_links(&self) -> Vec<LinkId> {
        self.world.links.links_from(self.node)
    }

    /// Replaces the bandwidth of `link` (`None` removes the constraint).
    ///
    /// Takes effect for packets whose serialization starts after this call;
    /// a packet already on the wire finishes at its original rate.
    pub fn set_link_bandwidth(&mut self, link: LinkId, bw: Option<Bandwidth>) {
        self.world.links.set_bandwidth(link, bw);
    }

    /// Replaces the random loss probability of `link`.
    pub fn set_link_loss(&mut self, link: LinkId, loss: f64) {
        self.world.links.set_loss(link, loss);
    }

    /// Records a capture event into the attached sink, if any.
    pub fn capture(&mut self, point: CapturePoint, ev: CaptureEvent) {
        self.world.capture(point, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::packet::{FlowId, HostAddr, TcpFlags, TcpHeader};
    use crate::sim::Simulator;
    use h2priv_util::bytes::Bytes;

    struct Sender {
        out: Option<LinkId>,
        sent: u32,
    }
    struct Receiver {
        got: Vec<u32>,
    }

    fn pkt(seq: u32) -> Packet {
        Packet::new(
            TcpHeader {
                flow: FlowId {
                    src: HostAddr(0),
                    dst: HostAddr(1),
                    sport: 1,
                    dport: 2,
                },
                seq,
                ack: 0,
                flags: TcpFlags::ACK,
                window: 0,
                ts_val: 0,
                ts_ecr: 0,
            },
            Bytes::new(),
        )
    }

    impl Node for Sender {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.out = Some(ctx.egress_links()[0]);
            ctx.schedule(SimDuration::from_millis(1));
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _from: LinkId, _pkt: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _timer: TimerId) {
            let link = self.out.expect("started");
            ctx.send(link, pkt(self.sent));
            self.sent += 1;
            if self.sent < 3 {
                ctx.schedule(SimDuration::from_millis(1));
            }
        }
    }

    impl Node for Receiver {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _from: LinkId, pkt: Packet) {
            self.got.push(pkt.header.seq);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _timer: TimerId) {}
    }

    #[test]
    fn timers_and_sends_deliver_in_order() {
        let mut sim = Simulator::new(1);
        let s = sim.add_node(Sender { out: None, sent: 0 });
        let r = sim.add_node(Receiver { got: vec![] });
        sim.connect(s, r, LinkConfig::lan());
        sim.run_until_idle(SimTime::from_secs(1));
        assert_eq!(sim.node_ref::<Receiver>(r).got, vec![0, 1, 2]);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        struct Canceller {
            fired: bool,
        }
        impl Node for Canceller {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let t = ctx.schedule(SimDuration::from_millis(10));
                ctx.cancel(t);
            }
            fn on_packet(&mut self, _c: &mut Ctx<'_>, _f: LinkId, _p: Packet) {}
            fn on_timer(&mut self, _c: &mut Ctx<'_>, _t: TimerId) {
                self.fired = true;
            }
        }
        let mut sim = Simulator::new(1);
        let n = sim.add_node(Canceller { fired: false });
        sim.run_until_idle(SimTime::from_secs(1));
        assert!(!sim.node_ref::<Canceller>(n).fired);
    }
}
