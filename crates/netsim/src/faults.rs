//! Pluggable, time-scheduled link impairments.
//!
//! The base [`crate::link::LinkConfig`] models only independent Bernoulli
//! loss. Real paths — the cover traffic the paper's adversary hides in
//! (Section IV-B) — misbehave in richer ways: loss arrives in bursts,
//! packets get reordered by parallel queues, duplicated by retransmitting
//! middleboxes, and links flap or breathe bandwidth. This module provides
//! those models as a fault layer that can be attached to any link with
//! [`crate::sim::Simulator::attach_faults`]:
//!
//! * **Bursty loss** — a two-state Gilbert–Elliott Markov chain
//!   ([`GilbertElliott`]) stepped once per submitted packet.
//! * **Reordering** — each packet independently held for an extra random
//!   delay with some probability ([`Reorder`]); later packets overtake it.
//! * **Duplication** — a copy of the packet is injected shortly after the
//!   original ([`Duplicate`]).
//! * **Scripted actions** — a time-indexed schedule of [`FaultAction`]s
//!   (link flaps, bandwidth oscillation, loss changes) driven by the
//!   event loop.
//!
//! Every random decision draws from a [`SimRng`] forked off the
//! simulator's seed at attach time, so runs stay bit-reproducible and a
//! link with no faults attached consumes no extra draws at all (existing
//! seeds are unperturbed).

use crate::link::{clamp_loss, LinkId};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::units::Bandwidth;

/// A two-state Gilbert–Elliott bursty-loss model.
///
/// The chain steps once per packet submitted to the link: in the *good*
/// state packets are lost with [`loss_good`](Self::loss_good), in the
/// *bad* state with [`loss_bad`](Self::loss_bad). Burst length is
/// geometric with mean `1 / p_exit_bad` packets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Probability of moving good → bad at each packet.
    pub p_enter_bad: f64,
    /// Probability of moving bad → good at each packet.
    pub p_exit_bad: f64,
    /// Per-packet loss probability in the good state.
    pub loss_good: f64,
    /// Per-packet loss probability in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A model calibrated to a long-run average loss rate with bursts of
    /// the given mean length (in packets, `>= 1`). The good state is
    /// loss-free and the bad state drops everything, so the chain spends
    /// a `target_loss` fraction of packets in the bad state.
    ///
    /// All inputs are clamped to valid ranges; a `target_loss` of zero
    /// yields a chain that never leaves the good state.
    pub fn bursty(target_loss: f64, mean_burst_len: f64) -> GilbertElliott {
        let loss = clamp_loss(target_loss);
        let burst = if mean_burst_len.is_finite() {
            mean_burst_len.max(1.0)
        } else {
            1.0
        };
        // Stationary bad-state share pi = p_enter / (p_enter + p_exit);
        // solve pi = loss for p_enter. A saturated target needs the chain
        // to enter the bad state and never leave it.
        let (p_enter, p_exit) = if loss >= 1.0 {
            (1.0, 0.0)
        } else {
            let p_exit = 1.0 / burst;
            ((loss * p_exit / (1.0 - loss)).min(1.0), p_exit)
        };
        GilbertElliott {
            p_enter_bad: p_enter,
            p_exit_bad: p_exit,
            loss_good: 0.0,
            loss_bad: 1.0,
        }
    }

    /// The stationary long-run loss rate implied by the parameters.
    pub fn long_run_loss(&self) -> f64 {
        let enter = clamp_loss(self.p_enter_bad);
        let exit = clamp_loss(self.p_exit_bad);
        let denom = enter + exit;
        if denom <= 0.0 {
            // A frozen chain stays in its initial (good) state forever.
            return clamp_loss(self.loss_good);
        }
        let pi_bad = enter / denom;
        (1.0 - pi_bad) * clamp_loss(self.loss_good) + pi_bad * clamp_loss(self.loss_bad)
    }

    fn clamped(self) -> GilbertElliott {
        GilbertElliott {
            p_enter_bad: clamp_loss(self.p_enter_bad),
            p_exit_bad: clamp_loss(self.p_exit_bad),
            loss_good: clamp_loss(self.loss_good),
            loss_bad: clamp_loss(self.loss_bad),
        }
    }
}

/// Random per-packet reordering: with `probability`, the packet is held
/// for an extra delay drawn uniformly from `[delay_min, delay_max]`
/// before it is handed to the link, letting later packets overtake it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reorder {
    /// Probability that a packet is held.
    pub probability: f64,
    /// Minimum extra delay.
    pub delay_min: SimDuration,
    /// Maximum extra delay.
    pub delay_max: SimDuration,
}

/// Random packet duplication: with `probability`, an identical copy of
/// the packet is injected `delay` after the original.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Duplicate {
    /// Probability that a packet is duplicated.
    pub probability: f64,
    /// How long after the original the copy is submitted.
    pub delay: SimDuration,
}

/// A scripted impairment applied to a link at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Take the link down: every packet submitted while down is dropped.
    LinkDown,
    /// Bring the link back up.
    LinkUp,
    /// Replace the link's bandwidth (`None` removes the constraint).
    SetBandwidth(Option<Bandwidth>),
    /// Replace the link's independent random loss rate (clamped).
    SetLoss(f64),
}

/// A bundle of impairments attachable to one link.
///
/// All models are optional; an empty config is a no-op. Built with the
/// `with_*` methods:
///
/// ```
/// use h2priv_netsim::faults::{FaultConfig, GilbertElliott};
/// use h2priv_netsim::time::{SimDuration, SimTime};
/// let cfg = FaultConfig::none()
///     .with_burst_loss(GilbertElliott::bursty(0.02, 4.0))
///     .with_flap(SimTime::from_secs(1), SimDuration::from_millis(1_200));
/// assert!(cfg.burst_loss.is_some());
/// assert_eq!(cfg.schedule.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultConfig {
    /// Bursty (Gilbert–Elliott) loss, stepped per packet.
    pub burst_loss: Option<GilbertElliott>,
    /// Random reordering via extra per-packet delay.
    pub reorder: Option<Reorder>,
    /// Random packet duplication.
    pub duplicate: Option<Duplicate>,
    /// Scripted actions, each applied at its absolute time.
    pub schedule: Vec<(SimTime, FaultAction)>,
}

impl FaultConfig {
    /// An empty configuration (no impairments).
    pub fn none() -> FaultConfig {
        FaultConfig::default()
    }

    /// `true` when no model and no scheduled action is configured.
    pub fn is_empty(&self) -> bool {
        self.burst_loss.is_none()
            && self.reorder.is_none()
            && self.duplicate.is_none()
            && self.schedule.is_empty()
    }

    /// Returns `self` with a bursty-loss model.
    pub fn with_burst_loss(mut self, ge: GilbertElliott) -> FaultConfig {
        self.burst_loss = Some(ge.clamped());
        self
    }

    /// Returns `self` with a reordering model (delay bounds are swapped
    /// if inverted, probability clamped).
    pub fn with_reorder(mut self, reorder: Reorder) -> FaultConfig {
        let (lo, hi) = if reorder.delay_min <= reorder.delay_max {
            (reorder.delay_min, reorder.delay_max)
        } else {
            (reorder.delay_max, reorder.delay_min)
        };
        self.reorder = Some(Reorder {
            probability: clamp_loss(reorder.probability),
            delay_min: lo,
            delay_max: hi,
        });
        self
    }

    /// Returns `self` with a duplication model (probability clamped).
    pub fn with_duplicate(mut self, dup: Duplicate) -> FaultConfig {
        self.duplicate = Some(Duplicate {
            probability: clamp_loss(dup.probability),
            delay: dup.delay,
        });
        self
    }

    /// Returns `self` with one scripted action appended.
    pub fn at(mut self, time: SimTime, action: FaultAction) -> FaultConfig {
        self.schedule.push((time, action));
        self
    }

    /// Returns `self` with a link flap: down at `down_at`, back up after
    /// `down_for` (a `down_for` of zero schedules an immediate up —
    /// pass `SimDuration::MAX`-ish values for a permanent outage, or use
    /// [`Self::at`] with only [`FaultAction::LinkDown`]).
    pub fn with_flap(self, down_at: SimTime, down_for: SimDuration) -> FaultConfig {
        self.at(down_at, FaultAction::LinkDown)
            .at(down_at + down_for, FaultAction::LinkUp)
    }

    /// Returns `self` with a square-wave bandwidth oscillation: starting
    /// at `from`, the link alternates between `low` and `high` every
    /// `half_period` until `until`, ending on `high`.
    pub fn with_bandwidth_oscillation(
        mut self,
        from: SimTime,
        until: SimTime,
        half_period: SimDuration,
        low: Bandwidth,
        high: Bandwidth,
    ) -> FaultConfig {
        if half_period == SimDuration::ZERO {
            return self;
        }
        let mut t = from;
        let mut is_low = true;
        while t < until {
            let bw = if is_low { low } else { high };
            self = self.at(t, FaultAction::SetBandwidth(Some(bw)));
            is_low = !is_low;
            t += half_period;
        }
        self.at(until, FaultAction::SetBandwidth(Some(high)))
    }
}

/// Per-link fault-layer counters, exposed through
/// [`crate::sim::Simulator::fault_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets evaluated by the fault layer.
    pub evaluated: u64,
    /// Packets dropped by the bursty-loss chain.
    pub dropped_burst: u64,
    /// Packets dropped because the link was scripted down.
    pub dropped_down: u64,
    /// Packets held for reordering delay.
    pub reordered: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
    /// Scripted actions applied so far.
    pub actions_applied: u64,
}

impl FaultStats {
    /// Packets the fault layer removed from the flow (burst + down).
    pub fn dropped(&self) -> u64 {
        self.dropped_burst + self.dropped_down
    }
}

/// What the fault layer decides for one submitted packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultVerdict {
    /// Hand the packet to the link untouched.
    Pass,
    /// Hand it to the link now and inject a copy after the delay.
    PassAndDuplicate(SimDuration),
    /// Hold the packet and hand it to the link after the delay.
    Hold(SimDuration),
    /// Drop the packet (burst loss or scripted outage).
    Drop,
}

#[derive(Debug)]
struct FaultEntry {
    cfg: FaultConfig,
    rng: SimRng,
    in_bad_state: bool,
    down: bool,
    stats: FaultStats,
}

/// The registry of per-link fault state, owned by the simulator's world.
#[derive(Debug, Default)]
pub(crate) struct FaultEngine {
    entries: Vec<Option<FaultEntry>>,
}

impl FaultEngine {
    /// `true` if `link` has an attached fault entry.
    #[allow(dead_code)] // exercised by tests; kept for API symmetry
    pub fn is_attached(&self, link: LinkId) -> bool {
        self.entries.get(link.index()).is_some_and(|e| e.is_some())
    }

    /// Attaches (or replaces) the fault entry for `link`. `rng` must be a
    /// stream independent of the main simulation RNG so fault draws do not
    /// perturb link-loss draws.
    pub fn attach(&mut self, link: LinkId, cfg: FaultConfig, rng: SimRng) {
        let idx = link.index();
        if self.entries.len() <= idx {
            self.entries.resize_with(idx + 1, || None);
        }
        self.entries[idx] = Some(FaultEntry {
            cfg,
            rng,
            in_bad_state: false,
            down: false,
            stats: FaultStats::default(),
        });
    }

    pub fn stats(&self, link: LinkId) -> Option<FaultStats> {
        self.entries
            .get(link.index())
            .and_then(|e| e.as_ref())
            .map(|e| e.stats)
    }

    /// Applies a scheduled action that targets `link`'s state machine
    /// (down/up). Returns `false` for actions that must instead be applied
    /// to the link registry (bandwidth/loss), which the caller owns.
    pub fn apply_state_action(&mut self, link: LinkId, action: FaultAction) -> bool {
        let Some(entry) = self.entries.get_mut(link.index()).and_then(|e| e.as_mut()) else {
            return true; // no entry (detached); swallow the action
        };
        entry.stats.actions_applied += 1;
        match action {
            FaultAction::LinkDown => {
                entry.down = true;
                true
            }
            FaultAction::LinkUp => {
                entry.down = false;
                true
            }
            FaultAction::SetBandwidth(_) | FaultAction::SetLoss(_) => false,
        }
    }

    /// Evaluates the fault models for one packet submitted to `link`.
    /// Links without an entry take the fast path and consume no draws.
    pub fn evaluate(&mut self, link: LinkId) -> FaultVerdict {
        let Some(entry) = self.entries.get_mut(link.index()).and_then(|e| e.as_mut()) else {
            return FaultVerdict::Pass;
        };
        entry.stats.evaluated += 1;
        if entry.down {
            entry.stats.dropped_down += 1;
            return FaultVerdict::Drop;
        }
        if let Some(ge) = entry.cfg.burst_loss {
            // Step the chain, then draw the state's loss probability.
            if entry.in_bad_state {
                if entry.rng.chance(ge.p_exit_bad) {
                    entry.in_bad_state = false;
                }
            } else if entry.rng.chance(ge.p_enter_bad) {
                entry.in_bad_state = true;
            }
            let loss = if entry.in_bad_state {
                ge.loss_bad
            } else {
                ge.loss_good
            };
            if entry.rng.chance(loss) {
                entry.stats.dropped_burst += 1;
                return FaultVerdict::Drop;
            }
        }
        if let Some(re) = entry.cfg.reorder {
            if entry.rng.chance(re.probability) {
                let lo = re.delay_min.as_nanos();
                let hi = re.delay_max.as_nanos();
                let extra = if lo == hi {
                    lo
                } else {
                    entry.rng.range_u64(lo, hi)
                };
                entry.stats.reordered += 1;
                return FaultVerdict::Hold(SimDuration::from_nanos(extra));
            }
        }
        if let Some(dup) = entry.cfg.duplicate {
            if entry.rng.chance(dup.probability) {
                entry.stats.duplicated += 1;
                return FaultVerdict::PassAndDuplicate(dup.delay);
            }
        }
        FaultVerdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursty_constructor_hits_target_long_run_loss() {
        for (target, burst) in [(0.01, 2.0), (0.05, 4.0), (0.3, 8.0)] {
            let ge = GilbertElliott::bursty(target, burst);
            assert!(
                (ge.long_run_loss() - target).abs() < 1e-9,
                "target {target}, got {}",
                ge.long_run_loss()
            );
        }
    }

    #[test]
    fn bursty_constructor_clamps_garbage() {
        let ge = GilbertElliott::bursty(7.0, -3.0);
        assert!(ge.p_enter_bad <= 1.0);
        assert!((ge.long_run_loss() - 1.0).abs() < 1e-9);
        let none = GilbertElliott::bursty(0.0, 4.0);
        assert_eq!(none.long_run_loss(), 0.0);
    }

    #[test]
    fn frozen_chain_long_run_loss_is_good_state() {
        let ge = GilbertElliott {
            p_enter_bad: 0.0,
            p_exit_bad: 0.0,
            loss_good: 0.1,
            loss_bad: 1.0,
        };
        assert!((ge.long_run_loss() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_config_is_empty() {
        assert!(FaultConfig::none().is_empty());
        assert!(!FaultConfig::none()
            .with_duplicate(Duplicate {
                probability: 0.1,
                delay: SimDuration::from_millis(1),
            })
            .is_empty());
    }

    #[test]
    fn flap_builder_schedules_down_then_up() {
        let cfg = FaultConfig::none().with_flap(SimTime::from_secs(2), SimDuration::from_secs(1));
        assert_eq!(
            cfg.schedule,
            vec![
                (SimTime::from_secs(2), FaultAction::LinkDown),
                (SimTime::from_secs(3), FaultAction::LinkUp),
            ]
        );
    }

    #[test]
    fn oscillation_builder_alternates_and_restores() {
        let cfg = FaultConfig::none().with_bandwidth_oscillation(
            SimTime::from_secs(1),
            SimTime::from_secs(3),
            SimDuration::from_secs(1),
            Bandwidth::mbps(1),
            Bandwidth::mbps(100),
        );
        assert_eq!(cfg.schedule.len(), 3);
        assert_eq!(
            cfg.schedule[0],
            (
                SimTime::from_secs(1),
                FaultAction::SetBandwidth(Some(Bandwidth::mbps(1)))
            )
        );
        // Ends restored to high.
        assert_eq!(
            cfg.schedule[2],
            (
                SimTime::from_secs(3),
                FaultAction::SetBandwidth(Some(Bandwidth::mbps(100)))
            )
        );
    }

    #[test]
    fn engine_fast_path_without_entry() {
        let mut eng = FaultEngine::default();
        assert_eq!(eng.evaluate(LinkId::from_raw(3)), FaultVerdict::Pass);
        assert!(eng.stats(LinkId::from_raw(3)).is_none());
        assert!(!eng.is_attached(LinkId::from_raw(3)));
    }

    #[test]
    fn engine_down_state_drops_everything() {
        let mut eng = FaultEngine::default();
        let link = LinkId::from_raw(0);
        eng.attach(link, FaultConfig::none(), SimRng::new(1));
        assert!(eng.apply_state_action(link, FaultAction::LinkDown));
        for _ in 0..5 {
            assert_eq!(eng.evaluate(link), FaultVerdict::Drop);
        }
        assert!(eng.apply_state_action(link, FaultAction::LinkUp));
        assert_eq!(eng.evaluate(link), FaultVerdict::Pass);
        let stats = eng.stats(link).unwrap();
        assert_eq!(stats.dropped_down, 5);
        assert_eq!(stats.evaluated, 6);
        assert_eq!(stats.actions_applied, 2);
    }

    #[test]
    fn engine_ge_loss_rate_tracks_configuration() {
        let mut eng = FaultEngine::default();
        let link = LinkId::from_raw(0);
        let ge = GilbertElliott::bursty(0.2, 5.0);
        eng.attach(
            link,
            FaultConfig::none().with_burst_loss(ge),
            SimRng::new(99),
        );
        let n = 50_000u64;
        let mut dropped = 0u64;
        for _ in 0..n {
            if eng.evaluate(link) == FaultVerdict::Drop {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / n as f64;
        assert!(
            (rate - ge.long_run_loss()).abs() < 0.02,
            "observed {rate}, expected {}",
            ge.long_run_loss()
        );
    }

    #[test]
    fn engine_deterministic_for_same_rng_seed() {
        let run = || {
            let mut eng = FaultEngine::default();
            let link = LinkId::from_raw(0);
            eng.attach(
                link,
                FaultConfig::none()
                    .with_burst_loss(GilbertElliott::bursty(0.1, 3.0))
                    .with_reorder(Reorder {
                        probability: 0.2,
                        delay_min: SimDuration::from_millis(1),
                        delay_max: SimDuration::from_millis(9),
                    })
                    .with_duplicate(Duplicate {
                        probability: 0.05,
                        delay: SimDuration::from_millis(1),
                    }),
                SimRng::new(7),
            );
            (0..2_000).map(|_| eng.evaluate(link)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
