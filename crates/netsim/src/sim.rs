//! The simulator driver: owns the clock, the event queue, the nodes and
//! the links, and dispatches events until the simulation goes idle or a
//! deadline is reached.

use crate::capture::{CaptureEvent, CapturePoint, CaptureSink};
use crate::event::{EventKind, EventQueue};
use crate::faults::{FaultAction, FaultConfig, FaultEngine, FaultStats, FaultVerdict};
use crate::link::{self, LinkConfig, LinkId, LinkStats, Links, SubmitOutcome};
use crate::node::{Ctx, Node, NodeId};
use crate::packet::Packet;
use crate::rng::SimRng;
use crate::stats::SimStats;
use crate::time::SimTime;
use h2priv_util::telemetry;

use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

/// Everything a node can reach through its [`Ctx`]: links, event queue,
/// RNG, capture sink. Kept separate from the node storage so that a node
/// can be mutably borrowed while the world is mutated.
pub(crate) struct World {
    pub queue: EventQueue,
    pub links: Links,
    pub rng: SimRng,
    pub next_packet_id: u64,
    pub stats: SimStats,
    pub sink: Option<Rc<RefCell<dyn CaptureSink>>>,
    pub faults: FaultEngine,
}

impl World {
    /// Hands `pkt` to `link` at time `now`, first running it through the
    /// fault layer (if any faults are attached to the link). Links without
    /// attached faults go straight to [`World::submit_direct`] and consume
    /// no extra RNG draws, so existing seeded runs are unperturbed.
    pub fn submit(&mut self, now: SimTime, link_id: LinkId, pkt: Packet) {
        match self.faults.evaluate(link_id) {
            FaultVerdict::Pass => self.submit_direct(now, link_id, pkt),
            FaultVerdict::PassAndDuplicate(delay) => {
                telemetry::emit("netsim", "fault_duplicate", |ev| {
                    ev.seq = Some(pkt.id.0);
                    ev.fields.push(("link", link_id.0.into()));
                    ev.fields.push(("delay_ns", delay.as_nanos().into()));
                });
                let copy = pkt.clone();
                self.queue.push(
                    now + delay,
                    EventKind::FaultRelease {
                        link: link_id,
                        pkt: copy,
                    },
                );
                self.submit_direct(now, link_id, pkt);
            }
            FaultVerdict::Hold(delay) => {
                telemetry::emit("netsim", "fault_hold", |ev| {
                    ev.seq = Some(pkt.id.0);
                    ev.fields.push(("link", link_id.0.into()));
                    ev.fields.push(("delay_ns", delay.as_nanos().into()));
                });
                self.queue
                    .push(now + delay, EventKind::FaultRelease { link: link_id, pkt });
            }
            FaultVerdict::Drop => {
                telemetry::emit("netsim", "fault_drop", |ev| {
                    ev.seq = Some(pkt.id.0);
                    ev.fields.push(("link", link_id.0.into()));
                    ev.fields.push(("wire_size", pkt.wire_size().into()));
                });
                telemetry::count("netsim.fault_drops", 1);
                self.stats.packets_dropped += 1;
                self.capture(
                    CapturePoint::LinkDrop(link_id),
                    CaptureEvent {
                        time: now,
                        direction: None,
                        packet: pkt,
                        dropped_by_policy: false,
                    },
                );
            }
        }
    }

    /// Hands `pkt` to `link` at time `now`, scheduling whatever follow-up
    /// events the link model requires. Bypasses the fault layer — used for
    /// packets the fault layer already evaluated (releases, duplicates).
    pub fn submit_direct(&mut self, now: SimTime, link_id: LinkId, pkt: Packet) {
        let draw = self.rng.uniform();
        let link = self.links.get_mut(link_id);
        let (outcome, returned) = link.submit(pkt, draw);
        match outcome {
            SubmitOutcome::StartTx(tx) => {
                self.queue
                    .push(now + tx, EventKind::LinkTxComplete { link: link_id });
            }
            SubmitOutcome::Queued => {}
            SubmitOutcome::DeliverAfter(delay) => {
                let pkt = returned.expect("unconstrained submit returns packet");
                self.queue
                    .push(now + delay, EventKind::LinkDeliver { link: link_id, pkt });
            }
            SubmitOutcome::DroppedLoss | SubmitOutcome::DroppedQueue => {
                self.stats.packets_dropped += 1;
                let pkt = returned.expect("drop returns packet");
                let kind = match outcome {
                    SubmitOutcome::DroppedLoss => "drop_loss",
                    _ => "drop_queue",
                };
                telemetry::emit("netsim", kind, |ev| {
                    ev.seq = Some(pkt.id.0);
                    ev.fields.push(("link", link_id.0.into()));
                    ev.fields.push(("wire_size", pkt.wire_size().into()));
                });
                telemetry::count("netsim.link_drops", 1);
                self.capture(
                    CapturePoint::LinkDrop(link_id),
                    CaptureEvent {
                        time: now,
                        direction: None,
                        packet: pkt,
                        dropped_by_policy: false,
                    },
                );
            }
        }
    }

    pub fn capture(&mut self, point: CapturePoint, ev: CaptureEvent) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().record(point, &ev);
        }
    }
}

trait AnyNode: Node {
    fn as_any_mut(&mut self) -> &mut dyn Any;
    fn as_any(&self) -> &dyn Any;
}

impl<N: Node + 'static> AnyNode for N {
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The deterministic discrete-event simulator.
///
/// See the crate-level documentation for an end-to-end example.
pub struct Simulator {
    now: SimTime,
    started: bool,
    nodes: Vec<Option<Box<dyn AnyNode>>>,
    world: World,
}

/// Initial event-heap capacity. A page-load trial keeps a few hundred
/// events pending at its peak (in-flight packets, timers, fault
/// releases); preallocating for that population keeps the hot
/// push/pop path free of heap growth.
const EVENT_QUEUE_CAPACITY: usize = 1024;

impl Simulator {
    /// Creates an empty simulator whose RNG is seeded with `seed`.
    pub fn new(seed: u64) -> Simulator {
        Simulator {
            now: SimTime::ZERO,
            started: false,
            nodes: Vec::new(),
            world: World {
                queue: EventQueue::with_capacity(EVENT_QUEUE_CAPACITY),
                links: Links::new(),
                rng: SimRng::new(seed),
                next_packet_id: 0,
                stats: SimStats::default(),
                sink: None,
                faults: FaultEngine::default(),
            },
        }
    }

    /// Attaches a capture sink; replaces any previous one.
    pub fn set_capture_sink(&mut self, sink: Rc<RefCell<dyn CaptureSink>>) {
        self.world.sink = Some(sink);
    }

    /// Adds a node, returning its id.
    pub fn add_node<N: Node + 'static>(&mut self, node: N) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(Box::new(node)));
        id
    }

    /// Creates a duplex link pair between `a` and `b` with identical
    /// configuration; returns `(a_to_b, b_to_a)`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) -> (LinkId, LinkId) {
        self.world.links.pair(a, b, cfg)
    }

    /// Creates a single unidirectional link.
    pub fn connect_oneway(&mut self, from: NodeId, to: NodeId, cfg: LinkConfig) -> LinkId {
        self.world.links.add(from, to, cfg)
    }

    /// Immutable access to a node, downcast to its concrete type.
    ///
    /// # Panics
    /// Panics if `id` is invalid, the node is currently being dispatched,
    /// or `N` is not its concrete type.
    pub fn node_ref<N: Node + 'static>(&self, id: NodeId) -> &N {
        self.nodes[id.0]
            .as_deref()
            .expect("node is being dispatched")
            .as_any()
            .downcast_ref::<N>()
            .expect("node type mismatch")
    }

    /// Mutable access to a node, downcast to its concrete type.
    ///
    /// # Panics
    /// Same conditions as [`Simulator::node_ref`].
    pub fn node_mut<N: Node + 'static>(&mut self, id: NodeId) -> &mut N {
        self.nodes[id.0]
            .as_deref_mut()
            .expect("node is being dispatched")
            .as_any_mut()
            .downcast_mut::<N>()
            .expect("node type mismatch")
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The RNG (e.g. to fork seeds for per-trial structures).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.world.rng
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &SimStats {
        &self.world.stats
    }

    /// Per-link statistics.
    pub fn link_stats(&self, link: LinkId) -> LinkStats {
        self.world.links.stats(link)
    }

    /// Attaches a fault configuration to `link`, replacing any previous
    /// one. The fault layer gets its own RNG stream forked from the
    /// simulator seed (one parent draw), so fault decisions never perturb
    /// the main loss/jitter streams. Scheduled actions are queued as
    /// ordinary events at their configured times.
    pub fn attach_faults(&mut self, link: LinkId, cfg: FaultConfig) {
        let rng = self.world.rng.fork();
        for &(time, action) in &cfg.schedule {
            self.world
                .queue
                .push(time, EventKind::FaultAction { link, action });
        }
        self.world.faults.attach(link, cfg, rng);
    }

    /// Per-link fault-layer statistics; `None` when no faults were ever
    /// attached to the link.
    pub fn fault_stats(&self, link: LinkId) -> Option<FaultStats> {
        self.world.faults.stats(link)
    }

    /// Calls every node's `on_start` exactly once. Invoked automatically by
    /// the run methods; callable explicitly when a test wants to step
    /// manually afterwards.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            self.with_node(NodeId(i), |node, ctx| node.on_start(ctx));
        }
    }

    fn with_node<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut dyn AnyNode, &mut Ctx<'_>) -> R,
    ) -> R {
        let mut node = self.nodes[id.0].take().expect("node re-entrancy");
        let mut ctx = Ctx {
            now: self.now,
            node: id,
            world: &mut self.world,
        };
        let r = f(node.as_mut(), &mut ctx);
        self.nodes[id.0] = Some(node);
        r
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.start();
        let Some(ev) = self.world.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "time went backwards");
        self.now = ev.time;
        telemetry::set_sim_now(self.now.as_nanos());
        self.world.stats.events += 1;
        match ev.kind {
            EventKind::NodeTimer { node, timer } => {
                // Cancelled timers were unlinked from the queue eagerly,
                // so every timer event that surfaces here is live.
                self.with_node(node, |n, ctx| n.on_timer(ctx, timer));
            }
            EventKind::LinkTxComplete { link } => {
                let (pkt, next_tx) = self.world.links.get_mut(link).tx_complete();
                let cfg = self.world.links.get(link).cfg;
                self.world.queue.push(
                    link::delivery_time(self.now, &cfg),
                    EventKind::LinkDeliver { link, pkt },
                );
                if let Some(tx) = next_tx {
                    self.world
                        .queue
                        .push(self.now + tx, EventKind::LinkTxComplete { link });
                }
            }
            EventKind::LinkDeliver { link, pkt } => {
                let to = self.world.links.target_of(link);
                let stats = &mut self.world.links.get_mut(link).stats;
                stats.delivered += 1;
                stats.bytes_delivered += pkt.wire_size() as u64;
                self.world.stats.packets_delivered += 1;
                self.with_node(to, |n, ctx| n.on_packet(ctx, link, pkt));
            }
            EventKind::FaultRelease { link, pkt } => {
                self.world.submit_direct(self.now, link, pkt);
            }
            EventKind::FaultAction { link, action } => {
                if !self.world.faults.apply_state_action(link, action) {
                    match action {
                        FaultAction::SetBandwidth(bw) => {
                            self.world.links.set_bandwidth(link, bw);
                        }
                        FaultAction::SetLoss(loss) => self.world.links.set_loss(link, loss),
                        FaultAction::LinkDown | FaultAction::LinkUp => unreachable!(),
                    }
                }
            }
        }
        true
    }

    /// Runs until the queue is empty or the next event is later than
    /// `deadline`; the clock ends at `min(deadline, last event time)`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.start();
        while let Some(t) = self.world.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.now = self.now.max(self.now).min(deadline).max(self.now);
    }

    /// Runs until the event queue drains, but never past `deadline`
    /// (a safety net against livelocked models).
    pub fn run_until_idle(&mut self, deadline: SimTime) {
        self.start();
        while !self.world.queue.is_empty() {
            let t = self.world.queue.peek_time().expect("non-empty queue peeks");
            if t > deadline {
                break;
            }
            self.step();
        }
    }

    /// Number of pending events (for tests).
    pub fn pending_events(&self) -> usize {
        self.world.queue.len()
    }

    /// Number of cancelled events still occupying queue storage. The
    /// timer wheel unlinks cancelled timers eagerly so this is always 0;
    /// under the `reference-queue` feature it counts heap tombstones.
    pub fn pending_dead_events(&self) -> usize {
        self.world.queue.dead()
    }
}

impl core::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.world.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{shared, CountingSink};
    use crate::packet::{FlowId, HostAddr, TcpFlags, TcpHeader};
    use crate::time::SimDuration;
    use h2priv_util::bytes::Bytes;

    struct Blaster {
        out: Option<LinkId>,
        count: u32,
        payload: usize,
    }
    struct Sink {
        received: Vec<(SimTime, u32)>,
    }

    impl Node for Blaster {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.out = Some(ctx.egress_links()[0]);
            ctx.schedule(SimDuration::ZERO);
        }
        fn on_packet(&mut self, _c: &mut Ctx<'_>, _f: LinkId, _p: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: crate::node::TimerId) {
            let link = self.out.unwrap();
            for i in 0..self.count {
                let pkt = Packet::new(
                    TcpHeader {
                        flow: FlowId {
                            src: HostAddr(0),
                            dst: HostAddr(1),
                            sport: 1,
                            dport: 2,
                        },
                        seq: i,
                        ack: 0,
                        flags: TcpFlags::ACK,
                        window: 0,
                        ts_val: 0,
                        ts_ecr: 0,
                    },
                    Bytes::from(vec![0u8; self.payload]),
                );
                ctx.send(link, pkt);
            }
        }
    }

    impl Node for Sink {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _f: LinkId, p: Packet) {
            self.received.push((ctx.now(), p.header.seq));
        }
        fn on_timer(&mut self, _c: &mut Ctx<'_>, _t: crate::node::TimerId) {}
    }

    fn build(count: u32, payload: usize, cfg: LinkConfig) -> (Simulator, NodeId) {
        let mut sim = Simulator::new(99);
        let b = sim.add_node(Blaster {
            out: None,
            count,
            payload,
        });
        let s = sim.add_node(Sink { received: vec![] });
        sim.connect(b, s, cfg);
        (sim, s)
    }

    #[test]
    fn serialization_spaces_back_to_back_packets() {
        // 1 Mbps: a 125-byte wire packet takes exactly 1 ms to serialize.
        let cfg = LinkConfig {
            bandwidth: Some(crate::units::Bandwidth::mbps(1)),
            delay: SimDuration::from_millis(10),
            queue_bytes: 1 << 20,
            loss: 0.0,
        };
        let (mut sim, s) = build(3, 125 - 54, cfg);
        sim.run_until_idle(SimTime::from_secs(5));
        let recv = &sim.node_ref::<Sink>(s).received;
        assert_eq!(recv.len(), 3);
        // First packet: 1 ms tx + 10 ms prop = 11 ms; then 1 ms apart.
        assert_eq!(recv[0].0, SimTime::from_millis(11));
        assert_eq!(recv[1].0, SimTime::from_millis(12));
        assert_eq!(recv[2].0, SimTime::from_millis(13));
        // FIFO order preserved.
        assert_eq!(recv.iter().map(|r| r.1).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn full_loss_drops_everything() {
        let cfg = LinkConfig::lan().with_loss(1.0);
        let (mut sim, s) = build(5, 100, cfg);
        sim.run_until_idle(SimTime::from_secs(1));
        assert!(sim.node_ref::<Sink>(s).received.is_empty());
        assert_eq!(sim.stats().packets_dropped, 5);
    }

    #[test]
    fn capture_sink_sees_drops() {
        let sink = shared(CountingSink::default());
        let cfg = LinkConfig::lan().with_loss(1.0);
        let (mut sim, _) = build(4, 100, cfg);
        sim.set_capture_sink(sink.clone());
        sim.run_until_idle(SimTime::from_secs(1));
        assert_eq!(sink.borrow().drops, 4);
    }

    #[test]
    fn run_until_respects_deadline() {
        let cfg = LinkConfig {
            bandwidth: Some(crate::units::Bandwidth::mbps(1)),
            delay: SimDuration::from_millis(100),
            queue_bytes: 1 << 20,
            loss: 0.0,
        };
        let (mut sim, s) = build(1, 100, cfg);
        sim.run_until_idle(SimTime::from_millis(50));
        assert!(sim.node_ref::<Sink>(s).received.is_empty());
        sim.run_until_idle(SimTime::from_secs(1));
        assert_eq!(sim.node_ref::<Sink>(s).received.len(), 1);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mk = || {
            let cfg = LinkConfig::lan().with_loss(0.3);
            let (mut sim, s) = build(50, 500, cfg);
            sim.run_until_idle(SimTime::from_secs(1));
            sim.node_ref::<Sink>(s).received.clone()
        };
        assert_eq!(mk(), mk());
    }
}
