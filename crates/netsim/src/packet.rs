//! Wire packets and their cleartext headers.
//!
//! The simulator carries TCP/IP-shaped packets. Only the parts of a packet
//! that a real on-path eavesdropper could read are modelled as structured
//! fields ([`TcpHeader`], sizes); the payload is an opaque byte buffer that
//! in a real deployment would be TLS ciphertext. Higher layers (the
//! `h2priv-tls` crate) additionally keep the 5-byte TLS record headers in
//! the clear inside the payload, exactly as TLS 1.2 does on the wire.

use core::fmt;
use h2priv_util::bytes::Bytes;
use h2priv_util::impl_to_json;

/// Bytes of link + network + transport header overhead per packet on the
/// wire (14 Ethernet + 20 IPv4 + 20 TCP, ignoring options).
pub const WIRE_OVERHEAD: u32 = 54;

/// A host address in the simulated network.
///
/// Addresses are small integers; the topology builder assigns them. Display
/// renders them as `h<N>` for readable traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct HostAddr(pub u16);

impl_to_json!(newtype HostAddr);

impl fmt::Display for HostAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A TCP flow 4-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId {
    /// Source host.
    pub src: HostAddr,
    /// Destination host.
    pub dst: HostAddr,
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
}

impl_to_json!(struct FlowId { src, dst, sport, dport });

impl FlowId {
    /// The flow in the opposite direction (for matching replies).
    pub fn reversed(self) -> FlowId {
        FlowId {
            src: self.dst,
            dst: self.src,
            sport: self.dport,
            dport: self.sport,
        }
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}->{}:{}",
            self.src, self.sport, self.dst, self.dport
        )
    }
}

/// TCP header flags. A plain struct of bools is used instead of a bitflags
/// type because only five flags are ever needed and pattern-matching on
/// named fields keeps call sites readable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags {
    /// Synchronize sequence numbers (connection open).
    pub syn: bool,
    /// Acknowledgement field significant.
    pub ack: bool,
    /// No more data from sender (connection close).
    pub fin: bool,
    /// Reset the connection.
    pub rst: bool,
    /// Push function.
    pub psh: bool,
}

impl_to_json!(struct TcpFlags { syn, ack, fin, rst, psh });

impl TcpFlags {
    /// Flags for a pure ACK segment.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// Flags for an initial SYN.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
        psh: false,
    };
    /// Flags for a SYN-ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// Flags for a FIN-ACK.
    pub const FIN_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: true,
        rst: false,
        psh: false,
    };
    /// Flags for an RST.
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
        psh: false,
    };
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut any = false;
        for (set, name) in [
            (self.syn, "SYN"),
            (self.ack, "ACK"),
            (self.fin, "FIN"),
            (self.rst, "RST"),
            (self.psh, "PSH"),
        ] {
            if set {
                if any {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                any = true;
            }
        }
        if !any {
            write!(f, "-")?;
        }
        Ok(())
    }
}

/// The cleartext TCP/IP header of a packet, visible to any on-path device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// The flow 4-tuple.
    pub flow: FlowId,
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Acknowledgement number (valid when `flags.ack`).
    pub ack: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// Advertised receive window in bytes.
    pub window: u32,
    /// RFC 7323 timestamp value (sender clock, ns; 0 = unset). Lets the
    /// peer measure RTT robustly even across retransmissions — without
    /// it, long adversarial holds would cause endless spurious RTOs that
    /// real stacks do not exhibit.
    pub ts_val: u64,
    /// RFC 7323 timestamp echo reply (0 = unset).
    pub ts_ecr: u64,
}

impl_to_json!(struct TcpHeader { flow, seq, ack, flags, window, ts_val, ts_ecr });

/// Direction of travel relative to the client/server path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Client towards server (requests).
    ClientToServer,
    /// Server towards client (responses).
    ServerToClient,
}

impl_to_json!(
    enum Direction {
        ClientToServer,
        ServerToClient,
    }
);

impl Direction {
    /// The opposite direction.
    pub fn reversed(self) -> Direction {
        match self {
            Direction::ClientToServer => Direction::ServerToClient,
            Direction::ServerToClient => Direction::ClientToServer,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::ClientToServer => write!(f, "c->s"),
            Direction::ServerToClient => write!(f, "s->c"),
        }
    }
}

/// A unique per-simulation packet identifier, assigned at send time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

impl_to_json!(newtype PacketId);

/// A packet on the simulated wire.
///
/// `payload` holds the TCP payload bytes — for post-handshake traffic this
/// is the TLS record stream. An eavesdropper sees everything in this struct
/// (ciphertext included); confidentiality comes from the payload *content*
/// being unintelligible, which the adversary crates respect by only parsing
/// TLS record headers out of it.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Unique id (assigned by the simulator when first sent).
    pub id: PacketId,
    /// Cleartext TCP/IP header.
    pub header: TcpHeader,
    /// TCP payload bytes.
    pub payload: Bytes,
}

impl Packet {
    /// Creates a packet; the id is a placeholder until the simulator assigns
    /// one at send time.
    pub fn new(header: TcpHeader, payload: Bytes) -> Packet {
        Packet {
            id: PacketId(0),
            header,
            payload,
        }
    }

    /// Payload length in bytes (what tshark calls `tcp.len`).
    pub fn payload_len(&self) -> u32 {
        self.payload.len() as u32
    }

    /// Total size on the wire including link/network/transport overhead.
    pub fn wire_size(&self) -> u32 {
        self.payload_len() + WIRE_OVERHEAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowId {
        FlowId {
            src: HostAddr(1),
            dst: HostAddr(2),
            sport: 40000,
            dport: 443,
        }
    }

    #[test]
    fn flow_reversal_is_involutive() {
        let f = flow();
        assert_eq!(f.reversed().reversed(), f);
        assert_eq!(f.reversed().src, HostAddr(2));
        assert_eq!(f.reversed().dport, 40000);
    }

    #[test]
    fn wire_size_includes_overhead() {
        let p = Packet::new(
            TcpHeader {
                flow: flow(),
                seq: 0,
                ack: 0,
                flags: TcpFlags::ACK,
                window: 65535,
                ts_val: 0,
                ts_ecr: 0,
            },
            Bytes::from(vec![0u8; 100]),
        );
        assert_eq!(p.payload_len(), 100);
        assert_eq!(p.wire_size(), 100 + WIRE_OVERHEAD);
    }

    #[test]
    fn flags_display() {
        assert_eq!(TcpFlags::SYN_ACK.to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::default().to_string(), "-");
    }

    #[test]
    fn direction_reverses() {
        assert_eq!(
            Direction::ClientToServer.reversed(),
            Direction::ServerToClient
        );
        assert_eq!(
            Direction::ServerToClient.reversed(),
            Direction::ClientToServer
        );
    }
}
