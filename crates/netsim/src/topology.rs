//! Topology builders.
//!
//! The paper's setup is always a three-node path:
//! `client — compromised gateway (middlebox) — server`.
//! [`PathTopology::build`] wires that up and returns all the ids needed to
//! inspect the pieces after a run.

use crate::link::{LinkConfig, LinkId};
use crate::middlebox::{Middlebox, MiddleboxPolicy};
use crate::node::{Node, NodeId};
use crate::packet::HostAddr;
use crate::sim::Simulator;
use crate::time::SimDuration;

/// Link configuration for the two halves of the client—middlebox—server
/// path, plus the host addresses.
#[derive(Debug, Clone)]
pub struct PathConfig {
    /// Client ↔ middlebox (both directions share this config).
    pub client_link: LinkConfig,
    /// Middlebox ↔ server (both directions share this config).
    pub server_link: LinkConfig,
    /// Address assigned to the client host.
    pub client_addr: HostAddr,
    /// Address assigned to the server host.
    pub server_addr: HostAddr,
}

impl Default for PathConfig {
    /// A LAN client behind a 1 Gbps gateway talking to a server ~10 ms
    /// away (≈20 ms RTT) over a WAN with a small natural loss rate,
    /// echoing the paper's lab-gateway setup (their baseline
    /// retransmission count is nonzero, Table I).
    fn default() -> Self {
        PathConfig {
            client_link: LinkConfig::lan(),
            server_link: LinkConfig::wan(SimDuration::from_millis(10)).with_loss(0.003),
            client_addr: HostAddr(1),
            server_addr: HostAddr(2),
        }
    }
}

/// Ids of everything on a built client—middlebox—server path.
#[derive(Debug, Clone, Copy)]
pub struct PathTopology {
    /// The client node.
    pub client: NodeId,
    /// The middlebox node (a [`Middlebox`]).
    pub middlebox: NodeId,
    /// The server node.
    pub server: NodeId,
    /// Link client → middlebox.
    pub client_to_mbox: LinkId,
    /// Link middlebox → client.
    pub mbox_to_client: LinkId,
    /// Link middlebox → server.
    pub mbox_to_server: LinkId,
    /// Link server → middlebox.
    pub server_to_mbox: LinkId,
}

impl PathTopology {
    /// Adds the three nodes and four links to `sim` and wires the
    /// middlebox ports.
    pub fn build<C, S>(
        sim: &mut Simulator,
        client: C,
        policy: Box<dyn MiddleboxPolicy>,
        server: S,
        cfg: &PathConfig,
    ) -> PathTopology
    where
        C: Node + 'static,
        S: Node + 'static,
    {
        let client_id = sim.add_node(client);
        let mbox_id = sim.add_node(Middlebox::new(policy));
        let server_id = sim.add_node(server);
        let (c2m, m2c) = sim.connect(client_id, mbox_id, cfg.client_link);
        let (m2s, s2m) = sim.connect(mbox_id, server_id, cfg.server_link);
        sim.node_mut::<Middlebox>(mbox_id)
            .set_ports(m2c, m2s, c2m, s2m);
        PathTopology {
            client: client_id,
            middlebox: mbox_id,
            server: server_id,
            client_to_mbox: c2m,
            mbox_to_client: m2c,
            mbox_to_server: m2s,
            server_to_mbox: s2m,
        }
    }
}

/// Ids of a split path: the standard tapped path plus a second,
/// *untapped* gateway (connection-migration style traffic splitting —
/// bytes routed via the alternate path never reach the adversary's
/// capture).
#[derive(Debug, Clone, Copy)]
pub struct SplitPathTopology {
    /// The primary (tapped) path.
    pub path: PathTopology,
    /// The alternate middlebox node (untapped, always forwarding).
    pub alt_middlebox: NodeId,
    /// Link client → alternate middlebox.
    pub client_to_alt: LinkId,
    /// Link alternate middlebox → client.
    pub alt_to_client: LinkId,
    /// Link alternate middlebox → server.
    pub alt_to_server: LinkId,
    /// Link server → alternate middlebox.
    pub server_to_alt: LinkId,
}

impl SplitPathTopology {
    /// Like [`PathTopology::build`], plus a second client—gateway—server
    /// path through an untapped [`Middlebox`] running
    /// [`crate::middlebox::Passthrough`]. Endpoint egress link order:
    /// the primary path's link first, the alternate second — endpoints
    /// that only know one link keep working unchanged on `egress[0]`.
    pub fn build<C, S>(
        sim: &mut Simulator,
        client: C,
        policy: Box<dyn MiddleboxPolicy>,
        server: S,
        cfg: &PathConfig,
    ) -> SplitPathTopology
    where
        C: Node + 'static,
        S: Node + 'static,
    {
        let client_id = sim.add_node(client);
        let mbox_id = sim.add_node(Middlebox::new(policy));
        let server_id = sim.add_node(server);
        let (c2m, m2c) = sim.connect(client_id, mbox_id, cfg.client_link);
        let (m2s, s2m) = sim.connect(mbox_id, server_id, cfg.server_link);
        sim.node_mut::<Middlebox>(mbox_id)
            .set_ports(m2c, m2s, c2m, s2m);
        let alt_id = sim.add_node(Middlebox::untapped(Box::new(crate::middlebox::Passthrough)));
        let (c2a, a2c) = sim.connect(client_id, alt_id, cfg.client_link);
        let (a2s, s2a) = sim.connect(alt_id, server_id, cfg.server_link);
        sim.node_mut::<Middlebox>(alt_id)
            .set_ports(a2c, a2s, c2a, s2a);
        SplitPathTopology {
            path: PathTopology {
                client: client_id,
                middlebox: mbox_id,
                server: server_id,
                client_to_mbox: c2m,
                mbox_to_client: m2c,
                mbox_to_server: m2s,
                server_to_mbox: s2m,
            },
            alt_middlebox: alt_id,
            client_to_alt: c2a,
            alt_to_client: a2c,
            alt_to_server: a2s,
            server_to_alt: s2a,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middlebox::Passthrough;
    use crate::node::Ctx;
    use crate::node::TimerId;
    use crate::packet::Packet;

    struct Dummy;
    impl Node for Dummy {
        fn on_packet(&mut self, _c: &mut Ctx<'_>, _f: LinkId, _p: Packet) {}
        fn on_timer(&mut self, _c: &mut Ctx<'_>, _t: TimerId) {}
    }

    #[test]
    fn build_wires_three_nodes_and_four_links() {
        let mut sim = Simulator::new(0);
        let topo = PathTopology::build(
            &mut sim,
            Dummy,
            Box::new(Passthrough),
            Dummy,
            &PathConfig::default(),
        );
        assert_ne!(topo.client, topo.server);
        assert_ne!(topo.client, topo.middlebox);
        // Links have distinct ids.
        let ids = [
            topo.client_to_mbox,
            topo.mbox_to_client,
            topo.mbox_to_server,
            topo.server_to_mbox,
        ];
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(ids[i], ids[j]);
            }
        }
    }

    #[test]
    fn split_path_adds_untapped_second_gateway() {
        use crate::capture::{shared, CountingSink};
        use crate::middlebox::Middlebox;
        use crate::packet::{FlowId, Packet, TcpFlags, TcpHeader};
        use h2priv_util::bytes::Bytes;

        /// Sends one packet down each of its egress links at t=0.
        struct Fan;
        impl Node for Fan {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.schedule(SimDuration::ZERO);
            }
            fn on_packet(&mut self, _c: &mut Ctx<'_>, _f: LinkId, _p: Packet) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId) {
                let links = ctx.egress_links();
                for link in links {
                    let pkt = Packet::new(
                        TcpHeader {
                            flow: FlowId {
                                src: HostAddr(1),
                                dst: HostAddr(2),
                                sport: 40_000,
                                dport: 443,
                            },
                            seq: 0,
                            ack: 0,
                            flags: TcpFlags::ACK,
                            window: 0,
                            ts_val: 0,
                            ts_ecr: 0,
                        },
                        Bytes::from(vec![0u8; 64]),
                    );
                    ctx.send(link, pkt);
                }
            }
        }

        let mut sim = Simulator::new(7);
        let sink = shared(CountingSink::default());
        sim.set_capture_sink(sink.clone());
        let topo = SplitPathTopology::build(
            &mut sim,
            Fan,
            Box::new(Passthrough),
            Dummy,
            &PathConfig::default(),
        );
        sim.run_until_idle(crate::time::SimTime::from_secs(5));
        // Both gateways forwarded one packet each…
        assert_eq!(
            sim.node_ref::<Middlebox>(topo.path.middlebox)
                .stats()
                .forwarded,
            1
        );
        assert_eq!(
            sim.node_ref::<Middlebox>(topo.alt_middlebox)
                .stats()
                .forwarded,
            1
        );
        // …but only the tapped one reached the capture sink.
        assert_eq!(sink.borrow().middlebox, 1);
    }

    #[test]
    fn default_config_has_wan_rtt() {
        let cfg = PathConfig::default();
        // Two traversals of each one-way delay ≈ 20.2 ms RTT.
        let rtt = (cfg.client_link.delay + cfg.server_link.delay) * 2;
        assert_eq!(rtt.as_millis(), 20);
    }
}
