//! Topology builders.
//!
//! The paper's setup is always a three-node path:
//! `client — compromised gateway (middlebox) — server`.
//! [`PathTopology::build`] wires that up and returns all the ids needed to
//! inspect the pieces after a run.

use crate::link::{LinkConfig, LinkId};
use crate::middlebox::{Middlebox, MiddleboxPolicy};
use crate::node::{Node, NodeId};
use crate::packet::HostAddr;
use crate::sim::Simulator;
use crate::time::SimDuration;

/// Link configuration for the two halves of the client—middlebox—server
/// path, plus the host addresses.
#[derive(Debug, Clone)]
pub struct PathConfig {
    /// Client ↔ middlebox (both directions share this config).
    pub client_link: LinkConfig,
    /// Middlebox ↔ server (both directions share this config).
    pub server_link: LinkConfig,
    /// Address assigned to the client host.
    pub client_addr: HostAddr,
    /// Address assigned to the server host.
    pub server_addr: HostAddr,
}

impl Default for PathConfig {
    /// A LAN client behind a 1 Gbps gateway talking to a server ~10 ms
    /// away (≈20 ms RTT) over a WAN with a small natural loss rate,
    /// echoing the paper's lab-gateway setup (their baseline
    /// retransmission count is nonzero, Table I).
    fn default() -> Self {
        PathConfig {
            client_link: LinkConfig::lan(),
            server_link: LinkConfig::wan(SimDuration::from_millis(10)).with_loss(0.003),
            client_addr: HostAddr(1),
            server_addr: HostAddr(2),
        }
    }
}

/// Ids of everything on a built client—middlebox—server path.
#[derive(Debug, Clone, Copy)]
pub struct PathTopology {
    /// The client node.
    pub client: NodeId,
    /// The middlebox node (a [`Middlebox`]).
    pub middlebox: NodeId,
    /// The server node.
    pub server: NodeId,
    /// Link client → middlebox.
    pub client_to_mbox: LinkId,
    /// Link middlebox → client.
    pub mbox_to_client: LinkId,
    /// Link middlebox → server.
    pub mbox_to_server: LinkId,
    /// Link server → middlebox.
    pub server_to_mbox: LinkId,
}

impl PathTopology {
    /// Adds the three nodes and four links to `sim` and wires the
    /// middlebox ports.
    pub fn build<C, S>(
        sim: &mut Simulator,
        client: C,
        policy: Box<dyn MiddleboxPolicy>,
        server: S,
        cfg: &PathConfig,
    ) -> PathTopology
    where
        C: Node + 'static,
        S: Node + 'static,
    {
        let client_id = sim.add_node(client);
        let mbox_id = sim.add_node(Middlebox::new(policy));
        let server_id = sim.add_node(server);
        let (c2m, m2c) = sim.connect(client_id, mbox_id, cfg.client_link);
        let (m2s, s2m) = sim.connect(mbox_id, server_id, cfg.server_link);
        sim.node_mut::<Middlebox>(mbox_id)
            .set_ports(m2c, m2s, c2m, s2m);
        PathTopology {
            client: client_id,
            middlebox: mbox_id,
            server: server_id,
            client_to_mbox: c2m,
            mbox_to_client: m2c,
            mbox_to_server: m2s,
            server_to_mbox: s2m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middlebox::Passthrough;
    use crate::node::Ctx;
    use crate::node::TimerId;
    use crate::packet::Packet;

    struct Dummy;
    impl Node for Dummy {
        fn on_packet(&mut self, _c: &mut Ctx<'_>, _f: LinkId, _p: Packet) {}
        fn on_timer(&mut self, _c: &mut Ctx<'_>, _t: TimerId) {}
    }

    #[test]
    fn build_wires_three_nodes_and_four_links() {
        let mut sim = Simulator::new(0);
        let topo = PathTopology::build(
            &mut sim,
            Dummy,
            Box::new(Passthrough),
            Dummy,
            &PathConfig::default(),
        );
        assert_ne!(topo.client, topo.server);
        assert_ne!(topo.client, topo.middlebox);
        // Links have distinct ids.
        let ids = [
            topo.client_to_mbox,
            topo.mbox_to_client,
            topo.mbox_to_server,
            topo.server_to_mbox,
        ];
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(ids[i], ids[j]);
            }
        }
    }

    #[test]
    fn default_config_has_wan_rtt() {
        let cfg = PathConfig::default();
        // Two traversals of each one-way delay ≈ 20.2 ms RTT.
        let rtt = (cfg.client_link.delay + cfg.server_link.delay) * 2;
        assert_eq!(rtt.as_millis(), 20);
    }
}
