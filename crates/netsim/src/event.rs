//! The discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`: the sequence number is a
//! monotone counter assigned at scheduling time, so simultaneous events are
//! dispatched in the order they were scheduled. This tie-break makes the
//! whole simulation deterministic.
//!
//! The queue is backed by the hierarchical timer wheel in [`crate::queue`];
//! building with the `reference-queue` cargo feature swaps in the
//! `BinaryHeap`-backed reference implementation instead, which is how the
//! verify gate proves both schedulers produce byte-identical results.

use crate::faults;
use crate::link::LinkId;
use crate::node::{NodeId, TimerId};
use crate::packet::Packet;
use crate::queue::{Handle, Queue};
use crate::time::SimTime;

#[cfg(not(feature = "reference-queue"))]
type Inner = crate::queue::TimerWheel<EventKind>;
#[cfg(feature = "reference-queue")]
type Inner = crate::queue::ReferenceQueue<EventKind>;

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// A node timer expires.
    NodeTimer { node: NodeId, timer: TimerId },
    /// A link finishes serializing the packet currently on its wire.
    LinkTxComplete { link: LinkId },
    /// A packet arrives at the receiving end of a link.
    LinkDeliver { link: LinkId, pkt: Packet },
    /// A packet held by the fault layer (reordering delay or duplicate
    /// copy) is released to its link.
    FaultRelease { link: LinkId, pkt: Packet },
    /// A scripted fault action fires against a link.
    FaultAction {
        link: LinkId,
        action: faults::FaultAction,
    },
}

#[derive(Debug)]
pub(crate) struct ScheduledEvent {
    pub time: SimTime,
    #[allow(dead_code)] // kept for tests asserting the tie-break order
    pub seq: u64,
    pub kind: EventKind,
}

/// A min-ordered queue of scheduled events.
#[derive(Default)]
pub(crate) struct EventQueue {
    inner: Inner,
}

impl EventQueue {
    /// A queue whose slab storage is preallocated for `cap` events, so
    /// the steady-state event population never reallocates mid-run.
    pub fn with_capacity(cap: usize) -> EventQueue {
        EventQueue {
            inner: Inner::with_capacity(cap),
        }
    }

    /// Schedules `kind` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        self.inner.push(time, kind);
    }

    /// Schedules a `NodeTimer` event for `node` at `time`; the returned
    /// [`TimerId`] wraps the slab handle, so it can later be cancelled in
    /// O(1) via [`EventQueue::cancel`].
    pub fn push_timer(&mut self, time: SimTime, node: NodeId) -> TimerId {
        let handle = self.inner.push_with(time, |handle| EventKind::NodeTimer {
            node,
            timer: TimerId(handle.raw()),
        });
        TimerId(handle.raw())
    }

    /// Cancels a pending timer event. Stale ids (already fired or already
    /// cancelled) are a no-op; returns whether a live event was removed.
    pub fn cancel(&mut self, timer: TimerId) -> bool {
        self.inner.cancel(Handle::from_raw(timer.0)).is_some()
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        self.inner.pop().map(|p| ScheduledEvent {
            time: p.time,
            seq: p.seq,
            kind: p.payload,
        })
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.inner.peek_time()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Number of cancelled events still occupying queue storage (always 0
    /// for the timer wheel; the reference queue counts heap tombstones).
    pub fn dead(&self) -> usize {
        self.inner.dead()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl core::fmt::Debug for EventQueue {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: usize, t: u64) -> EventKind {
        EventKind::NodeTimer {
            node: NodeId(node),
            timer: TimerId(t),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::default();
        q.push(SimTime::from_millis(30), timer(0, 0));
        q.push(SimTime::from_millis(10), timer(0, 1));
        q.push(SimTime::from_millis(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_millis())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut q = EventQueue::default();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.push(t, timer(0, i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::NodeTimer { timer, .. } => timer.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn with_capacity_preallocates_and_behaves_identically() {
        let mut q = EventQueue::with_capacity(64);
        assert!(q.is_empty());
        q.push(SimTime::from_millis(2), timer(0, 0));
        q.push(SimTime::from_millis(1), timer(0, 1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().time, SimTime::from_millis(1));
        assert_eq!(q.pop().unwrap().time, SimTime::from_millis(2));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_tracks_min() {
        let mut q = EventQueue::default();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(9), timer(0, 0));
        q.push(SimTime::from_millis(3), timer(0, 1));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn timer_events_cancel_exactly_once() {
        let mut q = EventQueue::default();
        let a = q.push_timer(SimTime::from_millis(1), NodeId(0));
        let b = q.push_timer(SimTime::from_millis(2), NodeId(0));
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        let fired = q.pop().expect("b still pending");
        match fired.kind {
            EventKind::NodeTimer { timer, .. } => assert_eq!(timer, b),
            _ => unreachable!(),
        }
        assert!(!q.cancel(b), "cancel after fire is a no-op");
        assert!(q.is_empty());
    }
}
