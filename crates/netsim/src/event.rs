//! The discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`: the sequence number is a
//! monotone counter assigned at scheduling time, so simultaneous events are
//! dispatched in the order they were scheduled. This tie-break makes the
//! whole simulation deterministic.

use crate::faults;
use crate::link::LinkId;
use crate::node::{NodeId, TimerId};
use crate::packet::Packet;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// A node timer expires.
    NodeTimer { node: NodeId, timer: TimerId },
    /// A link finishes serializing the packet currently on its wire.
    LinkTxComplete { link: LinkId },
    /// A packet arrives at the receiving end of a link.
    LinkDeliver { link: LinkId, pkt: Packet },
    /// A packet held by the fault layer (reordering delay or duplicate
    /// copy) is released to its link.
    FaultRelease { link: LinkId, pkt: Packet },
    /// A scripted fault action fires against a link.
    FaultAction {
        link: LinkId,
        action: faults::FaultAction,
    },
}

#[derive(Debug)]
pub(crate) struct ScheduledEvent {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A min-ordered queue of scheduled events.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
}

impl EventQueue {
    /// A queue whose heap storage is preallocated for `cap` events, so
    /// the steady-state event population never reallocates mid-run.
    pub fn with_capacity(cap: usize) -> EventQueue {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `kind` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { time, seq, kind });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        self.heap.pop()
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: usize, t: u64) -> EventKind {
        EventKind::NodeTimer {
            node: NodeId(node),
            timer: TimerId(t),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::default();
        q.push(SimTime::from_millis(30), timer(0, 0));
        q.push(SimTime::from_millis(10), timer(0, 1));
        q.push(SimTime::from_millis(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_millis())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut q = EventQueue::default();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.push(t, timer(0, i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::NodeTimer { timer, .. } => timer.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn with_capacity_preallocates_and_behaves_identically() {
        let mut q = EventQueue::with_capacity(64);
        assert!(q.is_empty());
        q.push(SimTime::from_millis(2), timer(0, 0));
        q.push(SimTime::from_millis(1), timer(0, 1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().time, SimTime::from_millis(1));
        assert_eq!(q.pop().unwrap().time, SimTime::from_millis(2));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_tracks_min() {
        let mut q = EventQueue::default();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(9), timer(0, 0));
        q.push(SimTime::from_millis(3), timer(0, 1));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
