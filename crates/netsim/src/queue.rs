//! The event-core scheduling structures: a hierarchical timer wheel and a
//! `BinaryHeap`-backed reference queue, both driven through the [`Queue`]
//! trait.
//!
//! ## Ordering invariant
//!
//! Both implementations pop events in strict `(time, seq)` order, where
//! `seq` is a monotone counter assigned at push time. Ties in `time` are
//! therefore broken by insertion order, which is what makes the whole
//! simulation deterministic. The differential suite in
//! `tests/queue_differential.rs` drives both implementations over
//! randomized schedule/cancel/pop workloads and asserts identical pop
//! sequences; `scripts/verify.sh` additionally re-runs the end-to-end
//! seed-stability tests with the reference queue swapped in (cargo feature
//! `reference-queue`) to prove results are byte-identical either way.
//!
//! ## Wheel layout
//!
//! The virtual clock is quantized into ticks of 2^12 ns (~4.1 µs). The
//! wheel has 6 levels of 64 slots; level `l` spans 64^(l+1) ticks, so the
//! whole wheel covers 2^36 ticks ≈ 78 virtual hours. Events beyond the
//! horizon sit in an overflow list until the cursor gets close enough.
//! Each level keeps a 64-bit occupancy bitmap, so finding the next
//! non-empty slot is a rotate + trailing-zeros. Events within one tick of
//! "now" live in a sorted ready buffer that preserves the exact
//! `(time, seq)` order; draining a level-0 slot moves its (unordered)
//! intrusive list into that buffer and sorts it. Higher-level slots
//! cascade down as the cursor crosses their start tick.
//!
//! Events are slab-allocated: [`Handle`] packs a slab index and a
//! generation tag, so cancelling is an O(1) unlink from the slot's
//! doubly-linked list (no tombstones left behind) and stale handles are
//! rejected by the generation check.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Sentinel for "no entry" in the intrusive lists.
const NIL: u32 = u32::MAX;
/// Bucket marker: the entry is on the free list.
const FREE_MARK: u32 = u32::MAX;
/// Bucket marker: the entry sits in the sorted ready buffer.
const READY_MARK: u32 = u32::MAX - 1;
/// Bucket marker: the entry sits in the overflow list.
const OVERFLOW_MARK: u32 = u32::MAX - 2;

/// log2 of the number of slots per wheel level.
const LEVEL_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of wheel levels.
const LEVELS: usize = 6;
/// log2 of the tick size in nanoseconds (2^12 ns ≈ 4.1 µs).
const TICK_SHIFT: u32 = 12;
/// Wheel horizon in ticks: events at `now + SPAN_TICKS` or later overflow.
const SPAN_TICKS: u64 = 1 << (LEVEL_BITS * LEVELS as u32);

#[inline]
fn tick_of(time: SimTime) -> u64 {
    time.as_nanos() >> TICK_SHIFT
}

/// A generation-tagged reference to a scheduled event.
///
/// Packs a slab index and a generation counter; once the event fires or is
/// cancelled the generation advances, so a stale handle can never cancel an
/// unrelated event that happens to reuse the slab slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Handle(u64);

impl Handle {
    #[inline]
    fn new(idx: u32, generation: u32) -> Handle {
        Handle((u64::from(generation) << 32) | u64::from(idx))
    }

    /// The packed representation (stable within one queue's lifetime).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from [`Handle::raw`].
    #[inline]
    pub fn from_raw(raw: u64) -> Handle {
        Handle(raw)
    }

    #[inline]
    fn idx(self) -> u32 {
        self.0 as u32
    }

    #[inline]
    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// An event removed from a queue by [`Queue::pop`].
#[derive(Debug)]
pub struct Popped<T> {
    /// The absolute time the event was scheduled for.
    pub time: SimTime,
    /// The insertion-order tie-break counter assigned at push time.
    pub seq: u64,
    /// The (now spent) handle the event was scheduled under.
    pub handle: Handle,
    /// The scheduled payload.
    pub payload: T,
}

/// The scheduling interface shared by [`TimerWheel`] and
/// [`ReferenceQueue`], so the simulator and the differential oracle can
/// drive either implementation.
pub trait Queue<T> {
    /// A queue preallocated for roughly `cap` concurrently pending events.
    fn with_capacity(cap: usize) -> Self
    where
        Self: Sized;

    /// Schedules the payload produced by `make` at absolute time `time`.
    /// `make` receives the handle the event will be scheduled under, which
    /// lets a payload embed its own handle (used for timer ids).
    fn push_with(&mut self, time: SimTime, make: impl FnOnce(Handle) -> T) -> Handle;

    /// Schedules `payload` at absolute time `time`.
    fn push(&mut self, time: SimTime, payload: T) -> Handle
    where
        Self: Sized,
    {
        self.push_with(time, |_| payload)
    }

    /// Removes and returns the earliest event in `(time, seq)` order.
    fn pop(&mut self) -> Option<Popped<T>>;

    /// Cancels a pending event, returning its payload. Stale handles
    /// (already fired, already cancelled, or never issued) return `None`.
    fn cancel(&mut self, handle: Handle) -> Option<T>;

    /// The time of the earliest pending event. Takes `&mut self` because
    /// implementations may advance internal cursors to find it.
    fn peek_time(&mut self) -> Option<SimTime>;

    /// Number of live (pending, not cancelled) events.
    fn len(&self) -> usize;

    /// `true` if no live events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of dead entries still occupying internal storage. The wheel
    /// cancels eagerly and always reports 0; the reference queue leaves a
    /// tombstone per cancel until its heap entry surfaces.
    fn dead(&self) -> usize;
}

// ---------------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct WheelEntry<T> {
    generation: u32,
    /// Where the entry currently lives: a `level * SLOTS + slot` bucket,
    /// or one of the `*_MARK` sentinels.
    bucket: u32,
    prev: u32,
    next: u32,
    time: SimTime,
    seq: u64,
    payload: Option<T>,
}

#[derive(Debug, Clone, Copy)]
struct ReadySlot {
    time: SimTime,
    seq: u64,
    idx: u32,
}

/// The hierarchical timer wheel backing the simulator's event queue.
///
/// See the module docs for the layout and the ordering invariant.
#[derive(Debug)]
pub struct TimerWheel<T> {
    entries: Vec<WheelEntry<T>>,
    free_head: u32,
    live: usize,
    next_seq: u64,
    /// Wheel cursor: the tick of the most recently drained slot. Entries
    /// at or before this tick go straight to the ready buffer.
    now_tick: u64,
    occupied: [u64; LEVELS],
    buckets: [u32; LEVELS * SLOTS],
    overflow_head: u32,
    /// Current-tick events sorted by `(time, seq)`; `ready_head` indexes
    /// the next unconsumed element.
    ready: Vec<ReadySlot>,
    ready_head: usize,
    /// Lower bound on the earliest start tick of anything filed in the
    /// wheel levels or the overflow list (`u64::MAX` when both are known
    /// empty). Lets [`TimerWheel::prepare`] skip the level scan when the
    /// ready front is already provably the global minimum — the common
    /// case, since `run_until` peeks and then pops every event. A bound
    /// left stale-low by a cancel only costs one redundant scan; every
    /// full scan re-tightens it exactly.
    pending_bound: u64,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> TimerWheel<T> {
        <TimerWheel<T> as Queue<T>>::with_capacity(0)
    }
}

impl<T> TimerWheel<T> {
    fn alloc(&mut self) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            self.free_head = self.entries[idx as usize].next;
            idx
        } else {
            let idx = self.entries.len() as u32;
            self.entries.push(WheelEntry {
                generation: 0,
                bucket: FREE_MARK,
                prev: NIL,
                next: NIL,
                time: SimTime::ZERO,
                seq: 0,
                payload: None,
            });
            idx
        }
    }

    /// Frees `idx` (already unlinked), returning the handle it was live
    /// under and its payload. Advances the generation so the old handle
    /// goes stale.
    fn release(&mut self, idx: u32) -> (Handle, Option<T>) {
        let free_head = self.free_head;
        let e = &mut self.entries[idx as usize];
        let handle = Handle::new(idx, e.generation);
        e.generation = e.generation.wrapping_add(1);
        e.bucket = FREE_MARK;
        e.prev = NIL;
        e.next = free_head;
        let payload = e.payload.take();
        self.free_head = idx;
        self.live -= 1;
        (handle, payload)
    }

    fn insert_ready(&mut self, time: SimTime, seq: u64, idx: u32) {
        let key = (time, seq);
        let pos = self.ready[self.ready_head..].partition_point(|r| (r.time, r.seq) < key);
        self.ready
            .insert(self.ready_head + pos, ReadySlot { time, seq, idx });
    }

    /// Files entry `idx` (time/seq already set, links cleared) into the
    /// ready buffer, a wheel bucket, or the overflow list.
    fn link(&mut self, idx: u32) {
        let (time, seq) = {
            let e = &self.entries[idx as usize];
            (e.time, e.seq)
        };
        let tick = tick_of(time);
        if tick <= self.now_tick {
            self.entries[idx as usize].bucket = READY_MARK;
            self.insert_ready(time, seq, idx);
            return;
        }
        let delta = tick - self.now_tick;
        if delta >= SPAN_TICKS {
            let head = self.overflow_head;
            let e = &mut self.entries[idx as usize];
            e.bucket = OVERFLOW_MARK;
            e.prev = NIL;
            e.next = head;
            self.overflow_head = idx;
            if head != NIL {
                self.entries[head as usize].prev = idx;
            }
            self.pending_bound = self.pending_bound.min(tick);
            return;
        }
        // delta >= 1, so 63 - leading_zeros is the highest set bit index.
        let level = ((63 - delta.leading_zeros()) / LEVEL_BITS) as usize;
        let shift = LEVEL_BITS * level as u32;
        let slot = ((tick >> shift) & (SLOTS as u64 - 1)) as usize;
        self.pending_bound = self.pending_bound.min((tick >> shift) << shift);
        let b = level * SLOTS + slot;
        let head = self.buckets[b];
        let e = &mut self.entries[idx as usize];
        e.bucket = b as u32;
        e.prev = NIL;
        e.next = head;
        self.buckets[b] = idx;
        self.occupied[level] |= 1u64 << slot;
        if head != NIL {
            self.entries[head as usize].prev = idx;
        }
    }

    /// Unlinks a live entry from whichever structure holds it.
    fn unlink(&mut self, idx: u32) {
        let (bucket, prev, next) = {
            let e = &self.entries[idx as usize];
            (e.bucket, e.prev, e.next)
        };
        match bucket {
            READY_MARK => {
                let e = &self.entries[idx as usize];
                let key = (e.time, e.seq);
                let tail = &self.ready[self.ready_head..];
                let pos = tail.partition_point(|r| (r.time, r.seq) < key);
                debug_assert!(pos < tail.len() && tail[pos].idx == idx);
                self.ready.remove(self.ready_head + pos);
            }
            OVERFLOW_MARK => {
                if prev != NIL {
                    self.entries[prev as usize].next = next;
                } else {
                    self.overflow_head = next;
                }
                if next != NIL {
                    self.entries[next as usize].prev = prev;
                }
            }
            b => {
                let b = b as usize;
                if prev != NIL {
                    self.entries[prev as usize].next = next;
                } else {
                    self.buckets[b] = next;
                }
                if next != NIL {
                    self.entries[next as usize].prev = prev;
                }
                if self.buckets[b] == NIL {
                    let (level, slot) = (b / SLOTS, b % SLOTS);
                    self.occupied[level] &= !(1u64 << slot);
                }
            }
        }
    }

    /// The start tick and slot of the earliest occupied bucket at `level`
    /// (relative to cursor position `now_tick`), if any.
    fn level_candidate(&self, level: usize, now_tick: u64) -> Option<(u64, usize)> {
        let occ = self.occupied[level];
        if occ == 0 {
            return None;
        }
        let base = now_tick >> (LEVEL_BITS * level as u32);
        let cur = (base & (SLOTS as u64 - 1)) as u32;
        // Bit j of `rotated` is slot (cur + 1 + j) mod 64, so the first
        // set bit is the next occupied slot after the cursor.
        let rotated = occ.rotate_right(cur + 1);
        let k = u64::from(rotated.trailing_zeros()) + 1;
        let tick = (base + k) << (LEVEL_BITS * level as u32);
        let slot = ((base + k) & (SLOTS as u64 - 1)) as usize;
        Some((tick, slot))
    }

    /// The earliest bucket start tick across all levels.
    fn next_candidate(&self) -> Option<u64> {
        (0..LEVELS)
            .filter_map(|level| self.level_candidate(level, self.now_tick).map(|(t, _)| t))
            .min()
    }

    fn overflow_min(&self) -> Option<u64> {
        let mut idx = self.overflow_head;
        let mut min: Option<u64> = None;
        while idx != NIL {
            let e = &self.entries[idx as usize];
            let t = tick_of(e.time);
            min = Some(min.map_or(t, |m| m.min(t)));
            idx = e.next;
        }
        min
    }

    /// Advances the cursor (cascading and draining buckets) until the
    /// ready buffer's front is the globally earliest event, or the queue
    /// is empty.
    fn prepare(&mut self) {
        // Fast path: the ready front is strictly earlier than every tick
        // still filed in the wheel or overflow list, so it is the global
        // minimum and no cursor work is needed.
        if self.ready_head < self.ready.len()
            && tick_of(self.ready[self.ready_head].time) < self.pending_bound
        {
            return;
        }
        loop {
            if self.ready_head >= self.ready.len() {
                self.ready.clear();
                self.ready_head = 0;
            }
            let ready_front = self.ready.get(self.ready_head).map(|r| tick_of(r.time));
            let candidate = self.next_candidate();
            let omin = (self.overflow_head != NIL)
                .then(|| self.overflow_min().expect("non-empty overflow has a min"));
            if let Some(omin) = omin {
                let beats_levels = candidate.is_none_or(|t| omin <= t);
                let beats_ready = ready_front.is_none_or(|rt| omin <= rt);
                if beats_levels && beats_ready {
                    if omin.saturating_sub(self.now_tick) >= SPAN_TICKS {
                        // Everything pending is beyond the horizon: jump.
                        self.now_tick = omin;
                    }
                    let mut idx = self.overflow_head;
                    self.overflow_head = NIL;
                    while idx != NIL {
                        let next = self.entries[idx as usize].next;
                        self.entries[idx as usize].prev = NIL;
                        self.entries[idx as usize].next = NIL;
                        self.link(idx);
                        idx = next;
                    }
                    continue;
                }
            }
            let Some(tick) = candidate else {
                // Wheel levels empty: anything still pending is overflow.
                self.pending_bound = omin.unwrap_or(u64::MAX);
                return;
            };
            if let Some(rt) = ready_front {
                if rt < tick {
                    self.pending_bound = omin.map_or(tick, |o| o.min(tick));
                    return;
                }
            }
            debug_assert!(tick > self.now_tick, "wheel cursor went backwards");
            // Several levels can hold a bucket starting at exactly `tick`
            // (their windows are nested and share aligned boundaries).
            // Advancing the cursor onto that boundary puts those buckets
            // at circular distance 0, where the rotate-scan can no longer
            // see them — so every tied bucket must be located against the
            // OLD cursor and processed in this pass. Crucially, all tied
            // buckets are DETACHED before any entry is relinked: cascading
            // mutates lower-level occupancy, and a cascaded slot can alias
            // to a smaller circular distance when still measured from the
            // old cursor, which would both mask the tied bucket and yield
            // a bogus candidate tick.
            let old_now = self.now_tick;
            let mut detached: [u32; LEVELS] = [NIL; LEVELS];
            for (level, head) in detached.iter_mut().enumerate() {
                let Some((t, slot)) = self.level_candidate(level, old_now) else {
                    continue;
                };
                if t != tick {
                    continue;
                }
                let b = level * SLOTS + slot;
                *head = self.buckets[b];
                self.buckets[b] = NIL;
                self.occupied[level] &= !(1u64 << slot);
            }
            self.now_tick = tick;
            // Relink relative to the new cursor: entries at exactly `tick`
            // drain into the ready buffer (the sorted insert restores
            // exact (time, seq) order), later entries cascade strictly
            // below their old level. No relink can target a tied bucket
            // position: an entry belonging to a level-l bucket that starts
            // at `tick` has delta < 64^l, so it files below level l.
            for head in detached {
                let mut idx = head;
                while idx != NIL {
                    let next = self.entries[idx as usize].next;
                    self.entries[idx as usize].prev = NIL;
                    self.entries[idx as usize].next = NIL;
                    self.link(idx);
                    idx = next;
                }
            }
        }
    }
}

impl<T> Queue<T> for TimerWheel<T> {
    fn with_capacity(cap: usize) -> TimerWheel<T> {
        TimerWheel {
            entries: Vec::with_capacity(cap),
            free_head: NIL,
            live: 0,
            next_seq: 0,
            now_tick: 0,
            occupied: [0; LEVELS],
            buckets: [NIL; LEVELS * SLOTS],
            overflow_head: NIL,
            ready: Vec::with_capacity(16),
            ready_head: 0,
            pending_bound: u64::MAX,
        }
    }

    fn push_with(&mut self, time: SimTime, make: impl FnOnce(Handle) -> T) -> Handle {
        let idx = self.alloc();
        let handle = Handle::new(idx, self.entries[idx as usize].generation);
        let seq = self.next_seq;
        self.next_seq += 1;
        let e = &mut self.entries[idx as usize];
        e.time = time;
        e.seq = seq;
        e.payload = Some(make(handle));
        e.prev = NIL;
        e.next = NIL;
        self.live += 1;
        self.link(idx);
        handle
    }

    fn pop(&mut self) -> Option<Popped<T>> {
        self.prepare();
        let slot = *self.ready.get(self.ready_head)?;
        self.ready_head += 1;
        let (handle, payload) = self.release(slot.idx);
        Some(Popped {
            time: slot.time,
            seq: slot.seq,
            handle,
            payload: payload.expect("live entry has payload"),
        })
    }

    fn cancel(&mut self, handle: Handle) -> Option<T> {
        let idx = handle.idx();
        let e = self.entries.get(idx as usize)?;
        if e.generation != handle.generation() || e.bucket == FREE_MARK {
            return None;
        }
        self.unlink(idx);
        let (_, payload) = self.release(idx);
        payload
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.prepare();
        self.ready.get(self.ready_head).map(|r| r.time)
    }

    fn len(&self) -> usize {
        self.live
    }

    fn dead(&self) -> usize {
        0
    }
}

// ---------------------------------------------------------------------------
// Reference queue (the differential oracle)
// ---------------------------------------------------------------------------

struct RefKey {
    time: SimTime,
    seq: u64,
    idx: u32,
    generation: u32,
}

impl PartialEq for RefKey {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for RefKey {}
impl PartialOrd for RefKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RefKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

struct RefEntry<T> {
    generation: u32,
    alive: bool,
    payload: Option<T>,
}

/// The `BinaryHeap`-backed reference queue: the simulator's original
/// scheduler, kept as the differential oracle (and selectable as the live
/// scheduler via the `reference-queue` cargo feature).
///
/// Cancellation leaves a tombstone in the heap that is skipped when it
/// surfaces — the behavior the timer wheel's O(1) unlink replaces.
pub struct ReferenceQueue<T> {
    heap: BinaryHeap<RefKey>,
    entries: Vec<RefEntry<T>>,
    free: Vec<u32>,
    live: usize,
    next_seq: u64,
}

impl<T> Default for ReferenceQueue<T> {
    fn default() -> ReferenceQueue<T> {
        <ReferenceQueue<T> as Queue<T>>::with_capacity(0)
    }
}

impl<T> ReferenceQueue<T> {
    /// Drops stale heap keys until the top is live (or the heap empties).
    fn prune_top(&mut self) {
        while let Some(top) = self.heap.peek() {
            let e = &self.entries[top.idx as usize];
            if e.alive && e.generation == top.generation {
                return;
            }
            self.heap.pop();
        }
    }
}

impl<T> Queue<T> for ReferenceQueue<T> {
    fn with_capacity(cap: usize) -> ReferenceQueue<T> {
        ReferenceQueue {
            heap: BinaryHeap::with_capacity(cap),
            entries: Vec::with_capacity(cap),
            free: Vec::new(),
            live: 0,
            next_seq: 0,
        }
    }

    fn push_with(&mut self, time: SimTime, make: impl FnOnce(Handle) -> T) -> Handle {
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                let idx = self.entries.len() as u32;
                self.entries.push(RefEntry {
                    generation: 0,
                    alive: false,
                    payload: None,
                });
                idx
            }
        };
        let handle = Handle::new(idx, self.entries[idx as usize].generation);
        let seq = self.next_seq;
        self.next_seq += 1;
        let e = &mut self.entries[idx as usize];
        e.alive = true;
        e.payload = Some(make(handle));
        self.heap.push(RefKey {
            time,
            seq,
            idx,
            generation: handle.generation(),
        });
        self.live += 1;
        handle
    }

    fn pop(&mut self) -> Option<Popped<T>> {
        loop {
            let key = self.heap.pop()?;
            let e = &mut self.entries[key.idx as usize];
            if !e.alive || e.generation != key.generation {
                continue; // tombstone
            }
            let handle = Handle::new(key.idx, e.generation);
            e.generation = e.generation.wrapping_add(1);
            e.alive = false;
            let payload = e.payload.take().expect("live entry has payload");
            self.free.push(key.idx);
            self.live -= 1;
            return Some(Popped {
                time: key.time,
                seq: key.seq,
                handle,
                payload,
            });
        }
    }

    fn cancel(&mut self, handle: Handle) -> Option<T> {
        let e = self.entries.get_mut(handle.idx() as usize)?;
        if !e.alive || e.generation != handle.generation() {
            return None;
        }
        e.generation = e.generation.wrapping_add(1);
        e.alive = false;
        let payload = e.payload.take();
        self.free.push(handle.idx());
        self.live -= 1;
        payload
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.prune_top();
        self.heap.peek().map(|k| k.time)
    }

    fn len(&self) -> usize {
        self.live
    }

    fn dead(&self) -> usize {
        self.heap.len() - self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn drain<Q: Queue<u32>>(q: &mut Q) -> Vec<(SimTime, u64, u32)> {
        std::iter::from_fn(|| q.pop())
            .map(|p| (p.time, p.seq, p.payload))
            .collect()
    }

    fn pops_in_time_order<Q: Queue<u32>>() {
        let mut q = Q::with_capacity(8);
        q.push(SimTime::from_millis(30), 0);
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(20), 2);
        let order: Vec<u32> = drain(&mut q).into_iter().map(|(_, _, p)| p).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn wheel_pops_in_time_order() {
        pops_in_time_order::<TimerWheel<u32>>();
    }

    #[test]
    fn reference_pops_in_time_order() {
        pops_in_time_order::<ReferenceQueue<u32>>();
    }

    fn same_tick_fifo<Q: Queue<u32>>() {
        // All inside one 4096 ns wheel tick, distinct nanosecond times.
        let mut q = Q::with_capacity(8);
        let base = SimTime::from_nanos(1 << 20);
        q.push(base + SimDuration::from_nanos(3), 0);
        q.push(base + SimDuration::from_nanos(1), 1);
        q.push(base + SimDuration::from_nanos(1), 2);
        q.push(base, 3);
        let order: Vec<u32> = drain(&mut q).into_iter().map(|(_, _, p)| p).collect();
        // Time first, then insertion order for the tie at +1 ns.
        assert_eq!(order, vec![3, 1, 2, 0]);
    }

    #[test]
    fn wheel_same_tick_fifo() {
        same_tick_fifo::<TimerWheel<u32>>();
    }

    #[test]
    fn reference_same_tick_fifo() {
        same_tick_fifo::<ReferenceQueue<u32>>();
    }

    fn cancel_is_exact<Q: Queue<u32>>() {
        let mut q = Q::with_capacity(8);
        let a = q.push(SimTime::from_millis(1), 10);
        let b = q.push(SimTime::from_millis(2), 20);
        assert_eq!(q.cancel(a), Some(10));
        assert_eq!(q.cancel(a), None, "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        let popped = q.pop().expect("b still live");
        assert_eq!(popped.payload, 20);
        assert_eq!(popped.handle, b);
        assert_eq!(q.cancel(b), None, "cancel after fire is a no-op");
        assert!(q.is_empty());
    }

    #[test]
    fn wheel_cancel_is_exact() {
        cancel_is_exact::<TimerWheel<u32>>();
    }

    #[test]
    fn reference_cancel_is_exact() {
        cancel_is_exact::<ReferenceQueue<u32>>();
    }

    #[test]
    fn wheel_cancel_leaves_no_tombstones() {
        let mut q: TimerWheel<u32> = Queue::with_capacity(8);
        for round in 0..100u32 {
            let h = q.push(SimTime::from_millis(u64::from(round) + 1), round);
            assert_eq!(q.cancel(h), Some(round));
        }
        assert_eq!(q.len(), 0);
        assert_eq!(q.dead(), 0);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn reference_cancel_leaves_tombstones() {
        let mut q: ReferenceQueue<u32> = Queue::with_capacity(8);
        let mut handles = Vec::new();
        for round in 0..10u32 {
            handles.push(q.push(SimTime::from_millis(u64::from(round) + 1), round));
        }
        for h in handles {
            q.cancel(h);
        }
        assert_eq!(q.len(), 0);
        assert_eq!(q.dead(), 10, "heap keeps a tombstone per cancel");
        assert_eq!(q.peek_time(), None, "peek prunes them");
        assert_eq!(q.dead(), 0);
    }

    fn far_future_overflow<Q: Queue<u32>>() {
        let mut q = Q::with_capacity(8);
        // ~50 virtual days: far past the 2^48 ns wheel horizon.
        let far = SimTime::from_secs(50 * 24 * 3600);
        q.push(far, 0);
        q.push(SimTime::from_millis(5), 1);
        q.push(far + SimDuration::from_nanos(1), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(5)));
        let order: Vec<u32> = drain(&mut q).into_iter().map(|(_, _, p)| p).collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn wheel_far_future_overflow() {
        far_future_overflow::<TimerWheel<u32>>();
    }

    #[test]
    fn reference_far_future_overflow() {
        far_future_overflow::<ReferenceQueue<u32>>();
    }

    #[test]
    fn wheel_interleaves_pop_and_push() {
        let mut q: TimerWheel<u32> = Queue::with_capacity(8);
        q.push(SimTime::from_millis(1), 0);
        q.push(SimTime::from_secs(2), 1);
        assert_eq!(q.pop().unwrap().payload, 0);
        // Push earlier than the pending far event, later than "now".
        q.push(SimTime::from_millis(500), 2);
        // Push at (conceptually) the current instant.
        q.push(SimTime::from_millis(1), 3);
        assert_eq!(q.pop().unwrap().payload, 3);
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.pop().unwrap().payload, 1);
        assert!(q.pop().is_none());
    }

    #[test]
    fn handle_raw_round_trips() {
        let h = Handle::new(7, 42);
        assert_eq!(Handle::from_raw(h.raw()), h);
        assert_eq!(h.idx(), 7);
        assert_eq!(h.generation(), 42);
    }

    /// Regression: a level-0 bucket and a level-1 bucket can start at the
    /// exact same aligned tick. Advancing the cursor onto that boundary and
    /// cascading the level-1 bucket first used to alias the cascaded slot
    /// into the old cursor's scan window, masking the level-0 bucket — its
    /// event was stranded and popped far out of order. Minimized from a
    /// differential-oracle failure against the fault-layer workload.
    #[test]
    fn tied_bucket_starts_across_levels_pop_in_order() {
        let mut q: TimerWheel<u64> = Queue::with_capacity(8);
        // Ticks (at 2^12 ns/tick): 1398 and 1263. Popping 1263 then 1320
        // leaves the cursor at 1320; the next push lands at tick 1344,
        // which is both a level-0 slot and the start of the level-1 bucket
        // [1344, 1408) still holding the tick-1398 event.
        q.push(SimTime::from_nanos(5_729_000), 0);
        q.push(SimTime::from_nanos(5_177_032), 1);
        assert_eq!(q.pop().unwrap().payload, 1);
        q.push(SimTime::from_nanos(5_407_032), 2);
        assert_eq!(q.pop().unwrap().payload, 2);
        q.push(SimTime::from_nanos(5_507_032), 3);
        assert_eq!(q.pop().unwrap().payload, 3, "tied level-0 bucket lost");
        assert_eq!(q.pop().unwrap().payload, 0);
        assert!(q.pop().is_none());
    }
}
