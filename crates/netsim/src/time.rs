//! Virtual simulation time.
//!
//! The simulator never consults a wall clock: all temporal behaviour is
//! expressed in terms of [`SimTime`] (an instant) and [`SimDuration`]
//! (a span), both nanosecond-precision `u64` newtypes. Keeping these as
//! dedicated types (rather than raw integers or `std::time` types) prevents
//! accidental mixing of wall-clock and virtual-clock values.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use h2priv_util::impl_to_json;

/// An instant on the virtual simulation clock, in nanoseconds since the
/// start of the simulation.
///
/// # Example
/// ```
/// use h2priv_netsim::time::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// # Example
/// ```
/// use h2priv_netsim::time::SimDuration;
/// assert_eq!(SimDuration::from_millis(2) * 3, SimDuration::from_micros(6_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl_to_json!(newtype SimTime);
impl_to_json!(newtype SimDuration);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never" for timers.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }
    /// Creates an instant `micros` microseconds after the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }
    /// Creates an instant `millis` milliseconds after the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }
    /// Creates an instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Whole microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }
    /// Whole milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }
    /// Seconds since the epoch as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// Saturates to zero if `earlier` is actually later, which makes it safe
    /// to use with timestamps that may race in either order.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// `self + d`, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The later of `self` and `other`.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of `self` and `other`.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span; used as "infinite".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }
    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }
    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }
    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }
    /// Creates a span from a float number of seconds (rounds down to ns).
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1e9) as u64)
    }

    /// The span as nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// The span as whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }
    /// The span as whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }
    /// The span as a float number of seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `self * factor` with `f64` rounding, saturating at [`SimDuration::MAX`].
    ///
    /// # Panics
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor: {factor}"
        );
        let v = self.0 as f64 * factor;
        if v >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(v as u64)
        }
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Clamps `self` into `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn clamp(self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        assert!(lo <= hi, "clamp bounds inverted");
        self.max(lo).min(hi)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(5), SimDuration::from_millis(10));
        assert_eq!(SimDuration::from_millis(6) / 2, SimDuration::from_millis(3));
        assert_eq!(
            SimDuration::from_millis(6) * 2,
            SimDuration::from_millis(12)
        );
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(1));
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_millis(1).saturating_sub(SimDuration::from_millis(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn mul_f64_rounds_and_saturates() {
        assert_eq!(
            SimDuration::from_millis(10).mul_f64(1.5),
            SimDuration::from_millis(15)
        );
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
    }

    #[test]
    #[should_panic(expected = "invalid factor")]
    fn mul_f64_rejects_negative() {
        let _ = SimDuration::from_millis(1).mul_f64(-1.0);
    }

    #[test]
    fn clamp_orders() {
        let lo = SimDuration::from_millis(10);
        let hi = SimDuration::from_millis(20);
        assert_eq!(SimDuration::from_millis(5).clamp(lo, hi), lo);
        assert_eq!(SimDuration::from_millis(25).clamp(lo, hi), hi);
        assert_eq!(
            SimDuration::from_millis(15).clamp(lo, hi),
            SimDuration::from_millis(15)
        );
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }
}
