//! Physical units used by the link model: bandwidth and byte counts.

use crate::time::SimDuration;
use core::fmt;
use h2priv_util::impl_to_json;

/// A link bandwidth, stored as bits per second.
///
/// The paper's adversary throttles the path through values between
/// 1000 Mbps and 1 Mbps (Fig. 5); [`Bandwidth::mbps`] is the natural
/// constructor for those sweeps.
///
/// # Example
/// ```
/// use h2priv_netsim::units::Bandwidth;
/// let bw = Bandwidth::mbps(800);
/// assert_eq!(bw.bits_per_sec(), 800_000_000);
/// // 1500 bytes at 800 Mbps = 15 microseconds
/// assert_eq!(bw.transmit_time(1500).as_micros(), 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth(u64);

impl_to_json!(newtype Bandwidth);

impl Bandwidth {
    /// Creates a bandwidth of `bps` bits per second.
    ///
    /// # Panics
    /// Panics if `bps` is zero; use `Option<Bandwidth>` with `None` to model
    /// an unconstrained link instead.
    pub fn bps(bps: u64) -> Self {
        assert!(bps > 0, "bandwidth must be positive");
        Bandwidth(bps)
    }

    /// Creates a bandwidth of `kbps` kilobits per second.
    pub fn kbps(kbps: u64) -> Self {
        Self::bps(kbps * 1_000)
    }

    /// Creates a bandwidth of `mbps` megabits per second.
    pub fn mbps(mbps: u64) -> Self {
        Self::bps(mbps * 1_000_000)
    }

    /// Creates a bandwidth of `gbps` gigabits per second.
    pub fn gbps(gbps: u64) -> Self {
        Self::bps(gbps * 1_000_000_000)
    }

    /// The raw bits-per-second value.
    pub const fn bits_per_sec(self) -> u64 {
        self.0
    }

    /// The time needed to serialize `bytes` bytes onto the wire at this rate.
    pub fn transmit_time(self, bytes: u32) -> SimDuration {
        // nanos = bytes * 8 * 1e9 / bps. Every real frame keeps the
        // numerator inside u64 (bytes < 2^31), which avoids the u128
        // software-division intrinsic on the per-packet hot path; the
        // u128 fallback only exists for pathological sizes and produces
        // the same quotient.
        let nanos = match (bytes as u64).checked_mul(8_000_000_000) {
            Some(num) => num / self.0,
            None => ((bytes as u128 * 8 * 1_000_000_000) / self.0 as u128) as u64,
        };
        SimDuration::from_nanos(nanos)
    }

    /// The bandwidth-delay product for a given round-trip delay, in bytes.
    ///
    /// The paper (Section IV-C) relies on the BDP shrinking when the
    /// adversary throttles the path, which in turn shrinks the TCP window.
    pub fn bandwidth_delay_product(self, rtt: SimDuration) -> u64 {
        ((self.0 as u128 * rtt.as_nanos() as u128) / (8 * 1_000_000_000)) as u64
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 && self.0.is_multiple_of(1_000_000_000) {
            write!(f, "{}Gbps", self.0 / 1_000_000_000)
        } else if self.0 >= 1_000_000 && self.0.is_multiple_of(1_000_000) {
            write!(f, "{}Mbps", self.0 / 1_000_000)
        } else if self.0 >= 1_000 && self.0.is_multiple_of(1_000) {
            write!(f, "{}kbps", self.0 / 1_000)
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

/// A count of bytes, with human-readable construction and display.
///
/// # Example
/// ```
/// use h2priv_netsim::units::ByteCount;
/// assert_eq!(ByteCount::kib(9).get() + ByteCount::new(308).get(), 9_524);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteCount(u64);

impl_to_json!(newtype ByteCount);

impl ByteCount {
    /// A zero byte count.
    pub const ZERO: ByteCount = ByteCount(0);

    /// Creates a count of exactly `n` bytes.
    pub const fn new(n: u64) -> Self {
        ByteCount(n)
    }

    /// Creates a count of `n` kibibytes (1024 bytes each).
    pub const fn kib(n: u64) -> Self {
        ByteCount(n * 1024)
    }

    /// Creates a count of `n` mebibytes.
    pub const fn mib(n: u64) -> Self {
        ByteCount(n * 1024 * 1024)
    }

    /// The raw byte count.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl From<u64> for ByteCount {
    fn from(n: u64) -> Self {
        ByteCount(n)
    }
}

impl fmt::Display for ByteCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 {
            write!(f, "{:.2}MiB", self.0 as f64 / (1024.0 * 1024.0))
        } else if self.0 >= 1024 {
            write!(f, "{:.2}KiB", self.0 as f64 / 1024.0)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmit_time_scales_inversely_with_bandwidth() {
        let fast = Bandwidth::gbps(1);
        let slow = Bandwidth::mbps(1);
        let b = 1_500;
        assert_eq!(
            fast.transmit_time(b).as_nanos() * 1000,
            slow.transmit_time(b).as_nanos()
        );
    }

    #[test]
    fn transmit_time_exact() {
        // 1 Mbps, 125 bytes = 1000 bits => 1 ms
        assert_eq!(
            Bandwidth::mbps(1).transmit_time(125),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn bdp_matches_hand_computation() {
        // 800 Mbps * 40 ms RTT = 4,000,000 bytes
        let bdp = Bandwidth::mbps(800).bandwidth_delay_product(SimDuration::from_millis(40));
        assert_eq!(bdp, 4_000_000);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = Bandwidth::bps(0);
    }

    #[test]
    fn display_units() {
        assert_eq!(Bandwidth::gbps(1).to_string(), "1Gbps");
        assert_eq!(Bandwidth::mbps(800).to_string(), "800Mbps");
        assert_eq!(Bandwidth::kbps(64).to_string(), "64kbps");
        assert_eq!(ByteCount::kib(9).to_string(), "9.00KiB");
    }
}
