//! # h2priv-netsim
//!
//! A deterministic, single-threaded, discrete-event network simulator.
//!
//! This crate is the bottom substrate of the `h2priv` workspace, which
//! reproduces the DSN 2020 paper *"Depending on HTTP/2 for Privacy? Good
//! Luck!"*. The paper's adversary is a compromised on-path network device
//! that observes encrypted traffic and manipulates network parameters
//! (jitter, bandwidth, targeted drops). Everything the adversary can do is
//! expressed here as a [`middlebox::MiddleboxPolicy`] running on a
//! [`middlebox::Middlebox`] node between a client host and a server host.
//!
//! ## Design
//!
//! * **Virtual time.** [`time::SimTime`] is a nanosecond counter; nothing in
//!   the simulation reads the wall clock, so every run is exactly
//!   reproducible from its RNG seed.
//! * **Event queue.** A hierarchical timer wheel ([`queue`]) of scheduled
//!   events ordered by `(time, sequence)`; ties are broken by insertion
//!   order so iteration is deterministic. Events are slab-allocated with
//!   generation-tagged handles, so timer cancellation is an O(1) unlink.
//!   A `BinaryHeap`-backed reference queue (cargo feature
//!   `reference-queue`) serves as the differential oracle.
//! * **Nodes and links.** [`node::Node`]s exchange [`packet::Packet`]s over
//!   unidirectional [`link::Link`]s that model serialization delay
//!   (bandwidth), propagation delay, a drop-tail queue, and random loss.
//!   Bandwidth can be changed at runtime, which is how the adversary
//!   throttles the path.
//! * **Capture.** Every wire event can be mirrored into a
//!   [`capture::CaptureSink`], the hook used by the `h2priv-trace` crate to
//!   implement its tshark-like capture.
//!
//! ## Example
//!
//! ```
//! use h2priv_netsim::prelude::*;
//!
//! /// A node that echoes every packet back on the link it arrived from.
//! struct Echo;
//! impl Node for Echo {
//!     fn on_packet(&mut self, ctx: &mut Ctx<'_>, from: LinkId, pkt: Packet) {
//!         // send it back on the reverse link
//!         if let Some(rev) = ctx.reverse_link(from) {
//!             ctx.send(rev, pkt);
//!         }
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _timer: TimerId) {}
//! }
//!
//! # fn main() {
//! let mut sim = Simulator::new(42);
//! let a = sim.add_node(Echo);
//! let b = sim.add_node(Echo);
//! let (_ab, _ba) = sim.connect(a, b, LinkConfig::lan());
//! sim.run_until(SimTime::from_secs(1));
//! assert!(sim.now() <= SimTime::from_secs(1));
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod capture;
pub mod event;
pub mod faults;
pub mod link;
pub mod middlebox;
pub mod node;
pub mod packet;
pub mod queue;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;
pub mod topology;
pub mod units;

/// True when the `reference-queue` cargo feature swapped the timer wheel
/// for the `BinaryHeap` oracle scheduler. Results are byte-identical
/// either way, but incidental observables that the oracle suite does not
/// pin — exact allocation counts, chiefly — differ between the two
/// queues, and tests that assert them consult this to relax.
pub const REFERENCE_QUEUE: bool = cfg!(feature = "reference-queue");

/// Convenient glob-import of the most commonly used simulator types.
pub mod prelude {
    pub use crate::capture::{CaptureEvent, CapturePoint, CaptureSink, SharedSink};
    pub use crate::faults::{
        Duplicate, FaultAction, FaultConfig, FaultStats, GilbertElliott, Reorder,
    };
    pub use crate::link::{LinkConfig, LinkId};
    pub use crate::middlebox::{Middlebox, MiddleboxPolicy, PacketView, PolicyCtx, Verdict};
    pub use crate::node::{Ctx, Node, NodeId, TimerId};
    pub use crate::packet::{Direction, FlowId, HostAddr, Packet, TcpFlags, TcpHeader};
    pub use crate::rng::SimRng;
    pub use crate::sim::Simulator;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{PathConfig, PathTopology, SplitPathTopology};
    pub use crate::units::{Bandwidth, ByteCount};
}
