//! Differential oracle: drives the hierarchical timer wheel and the
//! `BinaryHeap`-backed reference queue over randomized schedule / cancel /
//! pop / peek workloads and asserts identical observable behavior — pop
//! sequences (time, seq, payload), peeked times, lengths, and cancel
//! results. The workloads cover same-tick FIFO tie-breaks, far-future
//! overflow ticks, and cancel-then-reschedule of the same handle.
//!
//! Re-run with: `cargo test -p h2priv-netsim --test queue_differential`

use h2priv_netsim::queue::{Handle, Popped, Queue, ReferenceQueue, TimerWheel};
use h2priv_netsim::time::SimTime;
use h2priv_util::check::{self, Gen};

/// One live event scheduled in both queues.
struct LivePair {
    wheel: Handle,
    reference: Handle,
    payload: u64,
}

fn assert_same_pop(w: Option<Popped<u64>>, r: Option<Popped<u64>>) -> Option<(SimTime, u64)> {
    match (w, r) {
        (None, None) => None,
        (Some(w), Some(r)) => {
            assert_eq!(w.time, r.time, "pop time diverged");
            assert_eq!(w.seq, r.seq, "pop seq diverged");
            assert_eq!(w.payload, r.payload, "pop payload diverged");
            Some((w.time, w.payload))
        }
        (w, r) => panic!(
            "pop presence diverged: wheel={:?} reference={:?}",
            w.map(|p| p.payload),
            r.map(|p| p.payload)
        ),
    }
}

/// Picks a schedule time for a new event. `now` is the time of the last
/// pop; the simulator never schedules into the past, but the queues must
/// tolerate it, so a small fraction of pushes land at or before `now`.
fn gen_time(g: &mut Gen, now: SimTime) -> SimTime {
    let base = now.as_nanos();
    let offset = match g.u8(0, 9) {
        // Same few nanoseconds: exercises same-tick FIFO ties.
        0 | 1 => g.u64(0, 3),
        // Within one wheel tick (2^12 ns).
        2 | 3 => g.u64(0, (1 << 12) - 1),
        // Level 0..2 territory: up to ~1 s.
        4..=6 => g.u64(0, 1_000_000_000),
        // Level 3..5 territory: up to ~2 h.
        7 => g.u64(0, 8_000_000_000_000),
        // Beyond the 2^48 ns wheel horizon: overflow list.
        8 => (1u64 << 48) + g.u64(0, 1 << 50),
        // At or slightly before now (saturating).
        _ => return SimTime::from_nanos(base.saturating_sub(g.u64(0, 1 << 13))),
    };
    SimTime::from_nanos(base.saturating_add(offset))
}

fn run_workload(g: &mut Gen, ops: usize) {
    let mut wheel: TimerWheel<u64> = Queue::with_capacity(8);
    let mut reference: ReferenceQueue<u64> = Queue::with_capacity(8);
    let mut live: Vec<LivePair> = Vec::new();
    let mut spent: Vec<LivePair> = Vec::new();
    let mut now = SimTime::ZERO;
    let mut next_payload = 0u64;

    for _ in 0..ops {
        match g.u8(0, 9) {
            // Push (weighted heaviest so the population grows).
            0..=4 => {
                let t = gen_time(g, now);
                let payload = next_payload;
                next_payload += 1;
                let wh = wheel.push(t, payload);
                let rh = reference.push(t, payload);
                live.push(LivePair {
                    wheel: wh,
                    reference: rh,
                    payload,
                });
            }
            // Pop from both; advance "now" to the popped time.
            5 | 6 => {
                if let Some((t, payload)) = assert_same_pop(wheel.pop(), reference.pop()) {
                    now = now.max(t);
                    let pos = live
                        .iter()
                        .position(|p| p.payload == payload)
                        .expect("popped event was live");
                    spent.push(live.swap_remove(pos));
                }
            }
            // Cancel a random live event in both queues.
            7 => {
                if live.is_empty() {
                    continue;
                }
                let pos = g.usize(0, live.len() - 1);
                let pair = live.swap_remove(pos);
                assert_eq!(wheel.cancel(pair.wheel), Some(pair.payload));
                assert_eq!(reference.cancel(pair.reference), Some(pair.payload));
                // Cancel-then-reschedule at a fresh time: the spent handle
                // must stay dead while the new event lives independently.
                if g.bool(0.5) {
                    let t = gen_time(g, now);
                    let payload = next_payload;
                    next_payload += 1;
                    let wh = wheel.push(t, payload);
                    let rh = reference.push(t, payload);
                    assert_eq!(wheel.cancel(pair.wheel), None, "stale handle revived");
                    assert_eq!(reference.cancel(pair.reference), None);
                    live.push(LivePair {
                        wheel: wh,
                        reference: rh,
                        payload,
                    });
                } else {
                    spent.push(pair);
                }
            }
            // Cancel a spent (fired or cancelled) handle: no-op in both.
            8 => {
                if let Some(pair) = spent.last() {
                    assert_eq!(wheel.cancel(pair.wheel), None);
                    assert_eq!(reference.cancel(pair.reference), None);
                }
            }
            // Peek.
            _ => {
                assert_eq!(wheel.peek_time(), reference.peek_time(), "peek diverged");
            }
        }
        assert_eq!(wheel.len(), reference.len(), "len diverged");
        assert_eq!(wheel.dead(), 0, "wheel cancel left a tombstone");
    }

    // Drain to the end: the full remaining pop sequences must match.
    loop {
        let done = assert_same_pop(wheel.pop(), reference.pop()).is_none();
        if done {
            break;
        }
    }
    assert!(wheel.is_empty() && reference.is_empty());
}

#[test]
fn wheel_matches_reference_on_random_workloads() {
    check::run("queue-differential", 256, |g| {
        let ops = g.usize(16, 384);
        run_workload(g, ops);
    });
}

#[test]
fn wheel_matches_reference_on_long_workloads() {
    // Fewer cases, bigger populations: deep cascades and large same-tick
    // batches.
    check::run("queue-differential-long", 24, |g| {
        run_workload(g, 3000);
    });
}

#[test]
fn wheel_matches_reference_on_metronome_workloads() {
    // Fault-layer-shaped traffic: periodic timers plus small hold/release
    // delays, so `now` advances steadily and almost every push lands within
    // a few level-0 windows (64 ticks = 2^18 ns) of the cursor. This keeps
    // the workload at the level-0/level-1 boundary where bucket start ticks
    // tie across levels — the regime that exposed the tied-bucket aliasing
    // bug (see `tied_bucket_starts_across_levels_pop_in_order`).
    check::run("queue-differential-metronome", 128, |g| {
        let mut wheel: TimerWheel<u64> = Queue::with_capacity(8);
        let mut reference: ReferenceQueue<u64> = Queue::with_capacity(8);
        let mut now = SimTime::ZERO;
        let mut payload = 0u64;
        let period = g.u64(50_000, 400_000);
        for _ in 0..g.usize(64, 512) {
            for _ in 0..g.usize(1, 3) {
                // Deltas clustered around 1–4 level-0 windows ahead.
                let delta = g.u64(0, 4 << 18);
                let t = SimTime::from_nanos(now.as_nanos() + period + delta);
                wheel.push(t, payload);
                reference.push(t, payload);
                payload += 1;
            }
            if g.bool(0.7) {
                if let Some((t, _)) = assert_same_pop(wheel.pop(), reference.pop()) {
                    now = now.max(t);
                }
            }
        }
        loop {
            if assert_same_pop(wheel.pop(), reference.pop()).is_none() {
                break;
            }
        }
    });
}

#[test]
fn same_tick_fifo_burst_matches() {
    // A thousand events at the exact same instant must pop in insertion
    // order from both queues.
    let mut wheel: TimerWheel<u64> = Queue::with_capacity(8);
    let mut reference: ReferenceQueue<u64> = Queue::with_capacity(8);
    let t = SimTime::from_millis(7);
    for i in 0..1000u64 {
        wheel.push(t, i);
        reference.push(t, i);
    }
    for i in 0..1000u64 {
        let (w, r) = (wheel.pop().unwrap(), reference.pop().unwrap());
        assert_eq!(w.payload, i);
        assert_eq!(r.payload, i);
        assert_eq!(w.seq, r.seq);
    }
}

#[test]
fn far_future_then_near_events_interleave_identically() {
    let mut wheel: TimerWheel<u64> = Queue::with_capacity(8);
    let mut reference: ReferenceQueue<u64> = Queue::with_capacity(8);
    // Overflow-resident events at several far-future ticks, then a stream
    // of near events popped in between.
    for (i, t) in [
        SimTime::from_secs(1 << 20),
        SimTime::from_secs(1 << 24),
        SimTime::MAX,
        SimTime::from_secs((1 << 20) + 1),
    ]
    .into_iter()
    .enumerate()
    {
        wheel.push(t, 1000 + i as u64);
        reference.push(t, 1000 + i as u64);
    }
    for i in 0..64u64 {
        let t = SimTime::from_millis(i * 37);
        wheel.push(t, i);
        reference.push(t, i);
    }
    loop {
        if assert_same_pop(wheel.pop(), reference.pop()).is_none() {
            break;
        }
    }
}
