//! Property tests for the simulator core: determinism, link FIFO
//! ordering, conservation of packets, and middlebox verdict behaviour
//! under randomized workloads.

use h2priv_netsim::middlebox::{MiddleboxPolicy, PacketView, PolicyCtx, Verdict};
use h2priv_netsim::prelude::*;
use h2priv_util::bytes::Bytes;
use h2priv_util::check::{self, Gen};
use h2priv_util::{prop_assert, prop_assert_eq};

/// A node that sends `plan` packets at given times on its first egress
/// link and records everything it receives.
struct Scripted {
    plan: Vec<(u64, u32, usize)>, // (send at ms, seq, payload len)
    sent: Vec<bool>,
    out: Option<LinkId>,
    received: Vec<(u64, u32)>, // (ms, seq)
}

impl Scripted {
    fn new(plan: Vec<(u64, u32, usize)>) -> Scripted {
        let sent = vec![false; plan.len()];
        Scripted {
            plan,
            sent,
            out: None,
            received: Vec::new(),
        }
    }
}

fn mk_pkt(seq: u32, len: usize) -> Packet {
    Packet::new(
        TcpHeader {
            flow: FlowId {
                src: HostAddr(1),
                dst: HostAddr(2),
                sport: 1,
                dport: 2,
            },
            seq,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 0,
            ts_val: 0,
            ts_ecr: 0,
        },
        Bytes::from(vec![0u8; len]),
    )
}

impl Node for Scripted {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.out = ctx.egress_links().first().copied();
        for (at, _, _) in &self.plan {
            ctx.schedule_at(SimTime::from_millis(*at));
        }
    }
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _from: LinkId, pkt: Packet) {
        self.received.push((ctx.now().as_millis(), pkt.header.seq));
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId) {
        // Send every plan entry whose time has arrived and not yet sent.
        let now = ctx.now().as_millis();
        let due: Vec<(usize, u32, usize)> = self
            .plan
            .iter()
            .enumerate()
            .filter(|(i, (at, _, _))| *at <= now && !self.sent[*i])
            .map(|(i, (_, s, l))| (i, *s, *l))
            .collect();
        if let Some(link) = self.out {
            for (i, seq, len) in due {
                self.sent[i] = true;
                ctx.send(link, mk_pkt(seq, len));
            }
        }
    }
}

fn run_pair(plan: Vec<(u64, u32, usize)>, cfg: LinkConfig, seed: u64) -> Vec<(u64, u32)> {
    let mut sim = Simulator::new(seed);
    let a = sim.add_node(Scripted::new(plan));
    let b = sim.add_node(Scripted::new(vec![]));
    sim.connect(a, b, cfg);
    sim.run_until_idle(SimTime::from_secs(120));
    sim.node_ref::<Scripted>(b).received.clone()
}

/// On a lossless link, every packet is delivered exactly once and in
/// FIFO order per send instant.
#[test]
fn lossless_link_conserves_and_orders() {
    check::run("lossless_link_conserves_and_orders", 48, |g: &mut Gen| {
        let n = g.usize(1, 39);
        let sends: Vec<(u64, usize)> = (0..n).map(|_| (g.u64(0, 199), g.usize(1, 2_999))).collect();
        let seed = g.u64(0, 999);
        let plan: Vec<(u64, u32, usize)> = sends
            .iter()
            .enumerate()
            .map(|(i, (at, len))| (*at, i as u32, *len))
            .collect();
        let received = run_pair(plan.clone(), LinkConfig::lan(), seed);
        prop_assert_eq!(received.len(), plan.len(), "conservation");
        // Delivery time order must be non-decreasing, and among packets
        // sent at the same instant, seq order is preserved (FIFO link).
        for w in received.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "delivery times must be ordered");
        }
        let mut by_instant: std::collections::HashMap<u64, Vec<u32>> = Default::default();
        for (at, seq, _) in &plan {
            by_instant.entry(*at).or_default().push(*seq);
        }
        for seqs in by_instant.values() {
            let pos: Vec<usize> = seqs
                .iter()
                .map(|s| {
                    received
                        .iter()
                        .position(|(_, r)| r == s)
                        .expect("delivered")
                })
                .collect();
            for w in pos.windows(2) {
                prop_assert!(w[0] < w[1], "same-instant sends must stay FIFO");
            }
        }
    });
}

/// Loss never duplicates or reorders what does get through, and the
/// delivered set is a subset of the sent set.
#[test]
fn lossy_link_delivers_subset() {
    check::run("lossy_link_delivers_subset", 48, |g: &mut Gen| {
        let n = g.usize(1, 59);
        let loss = g.f64_unit();
        let seed = g.u64(0, 999);
        let plan: Vec<(u64, u32, usize)> = (0..n).map(|i| (i as u64, i as u32, 100)).collect();
        let received = run_pair(plan, LinkConfig::lan().with_loss(loss), seed);
        prop_assert!(received.len() <= n);
        let mut seen = std::collections::HashSet::new();
        for (_, seq) in &received {
            prop_assert!((*seq as usize) < n, "delivered something never sent");
            prop_assert!(seen.insert(*seq), "duplicate delivery");
        }
        // FIFO even under loss.
        for w in received.windows(2) {
            prop_assert!(w[0].1 < w[1].1, "lossy FIFO violated");
        }
    });
}

/// The same seed gives the same trace; a different seed may differ
/// but only in loss outcomes.
#[test]
fn determinism_under_seed() {
    check::run("determinism_under_seed", 48, |g: &mut Gen| {
        let n = g.usize(1, 39);
        let seed = g.u64(0, 999);
        let plan: Vec<(u64, u32, usize)> = (0..n).map(|i| (i as u64 * 3, i as u32, 500)).collect();
        let cfg = LinkConfig::lan().with_loss(0.4);
        let a = run_pair(plan.clone(), cfg, seed);
        let b = run_pair(plan, cfg, seed);
        prop_assert_eq!(a, b);
    });
}

/// A policy that delays even-seq packets and drops seq % 5 == 4.
struct EvenDelayer;
impl MiddleboxPolicy for EvenDelayer {
    fn on_packet(
        &mut self,
        _ctx: &mut PolicyCtx<'_, '_>,
        _dir: Direction,
        pkt: PacketView<'_>,
    ) -> Verdict {
        let seq = pkt.header().seq;
        if seq % 5 == 4 {
            Verdict::Drop
        } else if seq.is_multiple_of(2) {
            Verdict::Delay(SimDuration::from_millis(40))
        } else {
            Verdict::Forward
        }
    }
}

#[test]
fn middlebox_delays_create_reordering_and_drops_remove() {
    let n = 20u32;
    let plan: Vec<(u64, u32, usize)> = (0..n).map(|i| (i as u64, i, 200)).collect();
    let mut sim = Simulator::new(7);
    let topo = PathTopology::build(
        &mut sim,
        Scripted::new(plan),
        Box::new(EvenDelayer),
        Scripted::new(vec![]),
        &PathConfig {
            server_link: LinkConfig::wan(SimDuration::from_millis(5)),
            ..PathConfig::default()
        },
    );
    sim.run_until_idle(SimTime::from_secs(10));
    let received = &sim.node_ref::<Scripted>(topo.server).received;
    let dropped: Vec<u32> = (0..n).filter(|s| s % 5 == 4).collect();
    for d in &dropped {
        assert!(
            !received.iter().any(|(_, s)| s == d),
            "dropped seq {d} was delivered"
        );
    }
    assert_eq!(received.len() as u32, n - dropped.len() as u32);
    // Delayed evens arrive after nearby odds: at least one inversion.
    let seqs: Vec<u32> = received.iter().map(|(_, s)| *s).collect();
    assert!(
        seqs.windows(2).any(|w| w[0] > w[1]),
        "expected reordering from selective delays, got {seqs:?}"
    );
}

#[test]
fn bandwidth_change_applies_to_later_packets() {
    // Two bursts; between them the link is throttled via a policy-less
    // direct call (tested at the simulator API level elsewhere); here we
    // verify the throttle path through the middlebox policy ctx.
    struct ThrottleOnFirst {
        done: bool,
    }
    impl MiddleboxPolicy for ThrottleOnFirst {
        fn on_packet(
            &mut self,
            ctx: &mut PolicyCtx<'_, '_>,
            dir: Direction,
            _pkt: PacketView<'_>,
        ) -> Verdict {
            if !self.done && dir == Direction::ClientToServer {
                self.done = true;
                ctx.set_bandwidth(Direction::ClientToServer, Some(Bandwidth::kbps(80)));
            }
            Verdict::Forward
        }
    }
    // 10 kB payloads: at 1 Gbps they cross instantly; at 80 kbps each
    // takes ~1 s of serialization.
    let plan: Vec<(u64, u32, usize)> = (0..3).map(|i| (i as u64, i as u32, 10_000)).collect();
    let mut sim = Simulator::new(1);
    let topo = PathTopology::build(
        &mut sim,
        Scripted::new(plan),
        Box::new(ThrottleOnFirst { done: false }),
        Scripted::new(vec![]),
        &PathConfig::default(),
    );
    sim.run_until_idle(SimTime::from_secs(60));
    let received = &sim.node_ref::<Scripted>(topo.server).received;
    assert_eq!(received.len(), 3);
    // The throttle applies from the first packet's own egress onwards:
    // each ~10 kB packet serializes for ~1 s at 80 kbps.
    assert!(received[0].0 > 900, "throttle must apply: {received:?}");
    for w in received.windows(2) {
        assert!(
            w[1].0 - w[0].0 > 900,
            "packets must serialize ~1 s apart: {received:?}"
        );
    }
}
