//! Property tests for the fault-injection layer: packet conservation
//! across the fault/link accounting, Gilbert–Elliott long-run loss
//! convergence, scripted flap windows, duplication/reordering effects,
//! and determinism with faults attached.

use h2priv_netsim::faults::{Duplicate, FaultConfig, GilbertElliott, Reorder};
use h2priv_netsim::prelude::*;
use h2priv_util::bytes::Bytes;
use h2priv_util::check::{self, Gen};
use h2priv_util::{prop_assert, prop_assert_eq};

/// Sends `count` packets, `spacing_us` apart, on its first egress link,
/// and counts everything it receives.
struct Pulser {
    count: u32,
    spacing_us: u64,
    sent: u32,
    out: Option<LinkId>,
    received: Vec<(u64, u32)>, // (us, seq)
}

impl Pulser {
    fn new(count: u32, spacing_us: u64) -> Pulser {
        Pulser {
            count,
            spacing_us,
            sent: 0,
            out: None,
            received: Vec::new(),
        }
    }
}

fn mk_pkt(seq: u32, len: usize) -> Packet {
    Packet::new(
        TcpHeader {
            flow: FlowId {
                src: HostAddr(1),
                dst: HostAddr(2),
                sport: 1,
                dport: 2,
            },
            seq,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 0,
            ts_val: 0,
            ts_ecr: 0,
        },
        Bytes::from(vec![0u8; len]),
    )
}

impl Node for Pulser {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.out = ctx.egress_links().first().copied();
        if self.count > 0 {
            ctx.schedule(SimDuration::ZERO);
        }
    }
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _from: LinkId, pkt: Packet) {
        self.received.push((ctx.now().as_micros(), pkt.header.seq));
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId) {
        if let Some(link) = self.out {
            ctx.send(link, mk_pkt(self.sent, 200));
            self.sent += 1;
            if self.sent < self.count {
                ctx.schedule(SimDuration::from_micros(self.spacing_us));
            }
        }
    }
}

struct Built {
    sim: Simulator,
    sink: NodeId,
    link: LinkId,
}

fn build(count: u32, spacing_us: u64, cfg: LinkConfig, faults: FaultConfig, seed: u64) -> Built {
    let mut sim = Simulator::new(seed);
    let a = sim.add_node(Pulser::new(count, spacing_us));
    let b = sim.add_node(Pulser::new(0, 0));
    let (ab, _) = sim.connect(a, b, cfg);
    sim.attach_faults(ab, faults);
    Built {
        sim,
        sink: b,
        link: ab,
    }
}

/// Every packet submitted to a faulty link is accounted for exactly once:
/// fault-evaluated originals plus injected duplicates either reach the
/// link (sent, dropped by loss, dropped by queue) or are removed by the
/// fault layer (burst loss, scripted outage).
#[test]
fn fault_layer_conserves_packets() {
    check::run("fault_layer_conserves_packets", 32, |g: &mut Gen| {
        let count = g.u32(1, 300);
        let mut faults = FaultConfig::none();
        if g.bool(0.7) {
            faults =
                faults.with_burst_loss(GilbertElliott::bursty(g.f64(0.0, 0.5), g.f64(1.0, 8.0)));
        }
        if g.bool(0.7) {
            faults = faults.with_reorder(Reorder {
                probability: g.f64(0.0, 0.5),
                delay_min: SimDuration::from_micros(g.u64(0, 500)),
                delay_max: SimDuration::from_micros(g.u64(500, 5_000)),
            });
        }
        if g.bool(0.7) {
            faults = faults.with_duplicate(Duplicate {
                probability: g.f64(0.0, 0.3),
                delay: SimDuration::from_micros(g.u64(1, 1_000)),
            });
        }
        if g.bool(0.3) {
            let down_at = SimTime::from_micros(g.u64(0, 10_000));
            faults = faults.with_flap(down_at, SimDuration::from_micros(g.u64(1, 10_000)));
        }
        let link_loss = if g.bool(0.5) { g.f64(0.0, 0.3) } else { 0.0 };
        let built = build(
            count,
            g.u64(1, 200),
            LinkConfig::lan().with_loss(link_loss),
            faults,
            g.u64(0, 9_999),
        );
        let mut sim = built.sim;
        sim.run_until_idle(SimTime::from_secs(300));
        assert_eq!(sim.pending_events(), 0, "simulation must drain");

        let fs = sim.fault_stats(built.link).expect("faults attached");
        let ls = sim.link_stats(built.link);
        prop_assert_eq!(fs.evaluated, u64::from(count), "every send evaluated once");
        prop_assert_eq!(
            fs.evaluated + fs.duplicated,
            ls.sent + ls.dropped_loss + ls.dropped_queue + fs.dropped(),
            "conservation: {fs:?} vs {ls:?}"
        );
        // Whatever the link accepted was delivered (nothing in flight).
        prop_assert_eq!(ls.sent, ls.delivered);
        prop_assert_eq!(
            ls.delivered,
            sim.node_ref::<Pulser>(built.sink).received.len() as u64
        );
    });
}

/// The Gilbert–Elliott chain's observed loss rate over a long run matches
/// its configured stationary average within tolerance.
#[test]
fn gilbert_elliott_long_run_loss_converges() {
    check::run(
        "gilbert_elliott_long_run_loss_converges",
        8,
        |g: &mut Gen| {
            let target = g.f64(0.02, 0.4);
            let burst = g.f64(1.0, 6.0);
            let ge = GilbertElliott::bursty(target, burst);
            prop_assert!((ge.long_run_loss() - target).abs() < 1e-9);

            let count = 40_000;
            let built = build(
                count,
                10,
                LinkConfig::lan(),
                FaultConfig::none().with_burst_loss(ge),
                g.u64(0, 9_999),
            );
            let mut sim = built.sim;
            sim.run_until_idle(SimTime::from_secs(600));
            let fs = sim.fault_stats(built.link).expect("faults attached");
            let observed = fs.dropped_burst as f64 / fs.evaluated as f64;
            // Bursty losses are correlated, so the effective sample size is
            // roughly count / burst; 0.03 absolute tolerance is ~4 sigma.
            prop_assert!(
                (observed - target).abs() < 0.03,
                "observed {observed}, target {target}, burst {burst}"
            );
        },
    );
}

/// A scripted flap drops exactly the packets submitted inside the outage
/// window and delivers the rest.
#[test]
fn scripted_flap_window_is_exact() {
    // 100 packets, 1 ms apart (sent at t = 0, 1, ..., 99 ms); link down
    // covering [30 ms, 60 ms).
    let faults =
        FaultConfig::none().with_flap(SimTime::from_millis(30), SimDuration::from_millis(30));
    let built = build(100, 1_000, LinkConfig::lan(), faults, 5);
    let mut sim = built.sim;
    sim.run_until_idle(SimTime::from_secs(10));
    let fs = sim.fault_stats(built.link).unwrap();
    // Sends at 30..59 ms inclusive fall inside the window. The down event
    // at exactly 30 ms is scheduled before the send timer (attach_faults
    // runs first), so the 30 ms send is dropped too.
    assert_eq!(fs.dropped_down, 30, "{fs:?}");
    assert_eq!(fs.actions_applied, 2);
    let received = &sim.node_ref::<Pulser>(built.sink).received;
    assert_eq!(received.len(), 70);
    assert!(received.iter().all(|&(_, seq)| !(30..60).contains(&seq)));
}

/// Duplication delivers extra copies; reordering produces at least one
/// sequence inversion on an otherwise FIFO link.
#[test]
fn duplication_and_reordering_are_observable() {
    let faults = FaultConfig::none()
        .with_duplicate(Duplicate {
            probability: 0.2,
            delay: SimDuration::from_micros(50),
        })
        .with_reorder(Reorder {
            probability: 0.3,
            delay_min: SimDuration::from_millis(1),
            delay_max: SimDuration::from_millis(5),
        });
    let built = build(200, 100, LinkConfig::lan(), faults, 11);
    let mut sim = built.sim;
    sim.run_until_idle(SimTime::from_secs(10));
    let fs = sim.fault_stats(built.link).unwrap();
    assert!(fs.duplicated > 0);
    assert!(fs.reordered > 0);
    let received = &sim.node_ref::<Pulser>(built.sink).received;
    assert_eq!(received.len() as u64, 200 + fs.duplicated);
    let seqs: Vec<u32> = received.iter().map(|&(_, s)| s).collect();
    assert!(
        seqs.windows(2).any(|w| w[0] > w[1]),
        "expected reordering, got FIFO delivery"
    );
}

/// Attaching faults keeps the simulation fully deterministic under a
/// fixed seed.
#[test]
fn faults_preserve_seed_determinism() {
    let run = |seed: u64| {
        let faults = FaultConfig::none()
            .with_burst_loss(GilbertElliott::bursty(0.1, 4.0))
            .with_reorder(Reorder {
                probability: 0.2,
                delay_min: SimDuration::from_micros(100),
                delay_max: SimDuration::from_millis(2),
            })
            .with_duplicate(Duplicate {
                probability: 0.1,
                delay: SimDuration::from_micros(10),
            });
        let built = build(500, 50, LinkConfig::lan().with_loss(0.05), faults, seed);
        let mut sim = built.sim;
        sim.run_until_idle(SimTime::from_secs(60));
        (
            sim.node_ref::<Pulser>(built.sink).received.clone(),
            sim.fault_stats(built.link).unwrap(),
        )
    };
    assert_eq!(run(3), run(3));
    assert_ne!(run(3).0, run(4).0);
}
