//! Regression tests for the retransmission-timer *rearm* pattern on the
//! event core: a node that repeatedly cancels its pending timeout and
//! schedules a fresh one — the shape of TCP's RTO restart on every new
//! ACK (RFC 6298 §5.3) and QUIC's PTO rearm on every newly-acked packet
//! (RFC 9002 §6.2). The timer wheel cancels in O(1) by unlinking the
//! slab entry, so churn must leave **zero** dead entries behind; the
//! `reference-queue` BinaryHeap instead leaves a tombstone per cancel.
//! These tests count live vs dead events *mid-run*, where the difference
//! is observable, not just after the queue drains.

use h2priv_netsim::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Shared observation window into the node (the simulator owns it).
#[derive(Default)]
struct RearmStats {
    acks_seen: u32,
    rto_fired: u32,
    rto_cancelled: u32,
}

/// A retransmission-timer caricature: a metronome timer plays the role
/// of the ACK clock; every tick cancels the pending "RTO" and re-arms it
/// a full timeout into the future, so a healthy run never fires it.
struct RearmNode {
    stats: Rc<RefCell<RearmStats>>,
    acks_total: u32,
    ack_interval: SimDuration,
    rto: SimDuration,
    metro_timer: Option<TimerId>,
    rto_timer: Option<TimerId>,
}

impl Node for RearmNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.metro_timer = Some(ctx.schedule(self.ack_interval));
        self.rto_timer = Some(ctx.schedule(self.rto));
    }
    fn on_packet(&mut self, _c: &mut Ctx<'_>, _f: LinkId, _p: Packet) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, t: TimerId) {
        if Some(t) == self.metro_timer {
            let mut st = self.stats.borrow_mut();
            st.acks_seen += 1;
            // The "ACK" restarts the retransmission timer: O(1) cancel of
            // the armed deadline, then a fresh schedule (RFC 6298 §5.3).
            if let Some(rto) = self.rto_timer.take() {
                ctx.cancel(rto);
                st.rto_cancelled += 1;
            }
            if st.acks_seen < self.acks_total {
                self.rto_timer = Some(ctx.schedule(self.rto));
                self.metro_timer = Some(ctx.schedule(self.ack_interval));
            }
        } else if Some(t) == self.rto_timer {
            self.stats.borrow_mut().rto_fired += 1;
        }
    }
}

fn build(acks_total: u32) -> (Simulator, Rc<RefCell<RearmStats>>) {
    let stats = Rc::new(RefCell::new(RearmStats::default()));
    let mut sim = Simulator::new(7);
    sim.add_node(RearmNode {
        stats: Rc::clone(&stats),
        acks_total,
        ack_interval: SimDuration::from_millis(10),
        rto: SimDuration::from_millis(100),
        metro_timer: None,
        rto_timer: None,
    });
    (sim, stats)
}

/// Steady ACK clock: the RTO is cancelled and re-armed on every tick and
/// never fires, and — on the timer wheel — every cancel frees its slab
/// entry immediately. Mid-run, exactly the live timers are pending.
#[cfg(not(feature = "reference-queue"))]
#[test]
fn rto_rearm_churn_leaves_no_tombstones() {
    let (mut sim, stats) = build(200);
    sim.start();
    for step in 1..=200u64 {
        sim.run_until(SimTime::from_millis(10 * step));
        assert_eq!(
            sim.pending_dead_events(),
            0,
            "wheel kept a tombstone after {} cancels",
            stats.borrow().rto_cancelled
        );
        // Live events only: one metronome + one RTO while rearming
        // continues, nothing once the node stops re-arming.
        let expected_live = if stats.borrow().acks_seen < 200 { 2 } else { 0 };
        assert_eq!(
            sim.pending_events(),
            expected_live,
            "live events at step {step}"
        );
    }
    let st = stats.borrow();
    assert_eq!(st.acks_seen, 200, "every ACK tick fired");
    assert_eq!(st.rto_cancelled, 200, "every tick restarted the RTO");
    assert_eq!(st.rto_fired, 0, "a restarted RTO never expires");
}

/// The same workload on the reference BinaryHeap accumulates one
/// tombstone per cancel until sim-time passes each dead deadline — the
/// exact storage leak the wheel's O(1) unlink is required to avoid.
#[cfg(feature = "reference-queue")]
#[test]
fn reference_heap_accumulates_tombstones_under_rearm_churn() {
    let (mut sim, stats) = build(200);
    sim.start();
    // After N metronome ticks the heap holds the cancelled RTOs whose
    // 100 ms deadlines are still in the future: dead entries linger.
    sim.run_until(SimTime::from_millis(55));
    assert_eq!(stats.borrow().rto_cancelled, 5);
    assert!(
        sim.pending_dead_events() > 0,
        "heap should hold tombstones for cancelled-but-undue timers"
    );
    sim.run_until(SimTime::from_secs(30));
    assert_eq!(stats.borrow().rto_fired, 0, "cancelled timers never fire");
}

/// When the ACK clock stops (the peer goes silent), the last armed RTO
/// must still fire exactly once at its full deadline — cancel-and-rearm
/// must not eat the timeout that matters.
#[test]
fn rto_fires_once_acks_stop() {
    let stats = Rc::new(RefCell::new(RearmStats::default()));
    let mut sim = Simulator::new(11);
    sim.add_node(RearmNode {
        stats: Rc::clone(&stats),
        acks_total: 5,
        ack_interval: SimDuration::from_millis(10),
        rto: SimDuration::from_millis(100),
        metro_timer: None,
        rto_timer: None,
    });
    sim.start();
    // 5th tick at t=50 ms stops the metronome but leaves no RTO armed
    // (acks_seen reached acks_total), so nothing fires afterwards...
    sim.run_until_idle(SimTime::from_secs(5));
    assert_eq!(stats.borrow().acks_seen, 5);
    assert_eq!(stats.borrow().rto_fired, 0);

    // ...whereas stopping one tick *before* the cancel leaves the RTO
    // armed at t=40+100 ms and it must fire exactly once.
    let stats2 = Rc::new(RefCell::new(RearmStats::default()));
    let mut sim2 = Simulator::new(12);
    sim2.add_node(DropClockNode {
        stats: Rc::clone(&stats2),
        ticks_before_silence: 4,
        ack_interval: SimDuration::from_millis(10),
        rto: SimDuration::from_millis(100),
        metro_timer: None,
        rto_timer: None,
        fired_at: None,
    });
    sim2.start();
    sim2.run_until_idle(SimTime::from_secs(5));
    let st = stats2.borrow();
    assert_eq!(st.acks_seen, 4);
    assert_eq!(st.rto_fired, 1, "silent peer expires the RTO exactly once");
}

/// Variant whose metronome stops *without* cancelling the armed RTO, so
/// the timeout goes off — the peer-went-silent half of the RTO contract.
struct DropClockNode {
    stats: Rc<RefCell<RearmStats>>,
    ticks_before_silence: u32,
    ack_interval: SimDuration,
    rto: SimDuration,
    metro_timer: Option<TimerId>,
    rto_timer: Option<TimerId>,
    fired_at: Option<SimTime>,
}

impl Node for DropClockNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.metro_timer = Some(ctx.schedule(self.ack_interval));
        self.rto_timer = Some(ctx.schedule(self.rto));
    }
    fn on_packet(&mut self, _c: &mut Ctx<'_>, _f: LinkId, _p: Packet) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, t: TimerId) {
        if Some(t) == self.metro_timer {
            let mut st = self.stats.borrow_mut();
            st.acks_seen += 1;
            if st.acks_seen < self.ticks_before_silence {
                // Restart the RTO and keep the clock running.
                if let Some(rto) = self.rto_timer.take() {
                    ctx.cancel(rto);
                    st.rto_cancelled += 1;
                }
                self.rto_timer = Some(ctx.schedule(self.rto));
                self.metro_timer = Some(ctx.schedule(self.ack_interval));
            }
            // else: go silent, leaving the last RTO armed.
        } else if Some(t) == self.rto_timer {
            self.stats.borrow_mut().rto_fired += 1;
            self.fired_at = Some(ctx.now());
        }
    }
}
