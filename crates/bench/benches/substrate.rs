//! Micro-benchmarks of the substrate layers: simulator event loop, TCP
//! bulk transfer, metric computation, predictor pipeline. These guard
//! against performance regressions that would make the experiment
//! binaries impractically slow.

use h2priv_bench::timing::{BatchSize, Harness};
use h2priv_core::experiment::{run_site_trial, TrialOptions};
use h2priv_core::metrics::degree_of_multiplexing;
use h2priv_core::predictor::SizeMap;
use h2priv_web::sites::{blog_site, two_object_site};
use h2priv_web::ObjectId;
use std::cell::Cell;

thread_local! {
    static SEED: Cell<u64> = const { Cell::new(1) };
}

fn next_seed() -> u64 {
    SEED.with(|s| {
        let v = s.get();
        s.set(v + 1);
        v
    })
}

fn bench_page_load(c: &mut Harness) {
    c.bench_function("substrate/blog_page_load", |b| {
        b.iter_batched(
            next_seed,
            |seed| run_site_trial(blog_site(), &TrialOptions::new(seed, None)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("substrate/two_object_transfer", |b| {
        b.iter_batched(
            next_seed,
            |seed| {
                run_site_trial(
                    two_object_site(60_000, 50_000, h2priv_netsim::time::SimDuration::ZERO),
                    &TrialOptions::new(seed, None),
                )
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_analysis(c: &mut Harness) {
    let result = run_site_trial(blog_site(), &TrialOptions::new(7, None));
    let map = SizeMap::new(vec![("hero".into(), 52_000), ("post".into(), 23_500)], 0.03);
    c.bench_function("substrate/degree_of_multiplexing", |b| {
        b.iter(|| degree_of_multiplexing(&result.wire_map, ObjectId(2)))
    });
    c.bench_function("substrate/predict_from_trace", |b| {
        b.iter(|| result.predict(&map))
    });
}

fn main() {
    let mut h = Harness::new().sample_size(10);
    bench_page_load(&mut h);
    bench_analysis(&mut h);
}
