//! Timing benches (built with `--features criterion`): one per
//! table/figure of the paper, running a small trial batch per iteration. These measure the cost of regenerating
//! each experiment point and double as smoke tests that the full
//! pipeline stays runnable; the full-scale numbers come from the
//! `src/bin/*` experiment binaries.

use h2priv_bench::timing::{BatchSize, Harness};
use h2priv_core::attack::AttackConfig;
use h2priv_core::experiment::run_isidewith_trial;
use h2priv_core::experiments::{baseline, fig1, fig5, section4d, table1, table2};
use h2priv_netsim::time::SimDuration;
use std::cell::Cell;

thread_local! {
    static SEED: Cell<u64> = const { Cell::new(0) };
}

fn next_seed() -> u64 {
    SEED.with(|s| {
        let v = s.get();
        s.set(v + 1);
        v
    })
}

fn bench_baseline(c: &mut Harness) {
    c.bench_function("baseline/one_trial_passive", |b| {
        b.iter_batched(
            next_seed,
            |seed| run_isidewith_trial(seed, None),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("baseline/table_3trials", |b| {
        b.iter_batched(
            next_seed,
            |seed| baseline(3, seed, 1),
            BatchSize::SmallInput,
        )
    });
}

fn bench_table1(c: &mut Harness) {
    c.bench_function("table1/one_trial_jitter50", |b| {
        b.iter_batched(
            next_seed,
            |seed| {
                run_isidewith_trial(
                    seed,
                    Some(AttackConfig::jitter_only(SimDuration::from_millis(50))),
                )
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("table1/rows_2trials", |b| {
        b.iter_batched(next_seed, |seed| table1(2, seed, 1), BatchSize::SmallInput)
    });
}

fn bench_fig5(c: &mut Harness) {
    c.bench_function("fig5/rows_2trials", |b| {
        b.iter_batched(next_seed, |seed| fig5(2, seed, 1), BatchSize::SmallInput)
    });
}

fn bench_fig6_drops(c: &mut Harness) {
    c.bench_function("fig6_drops/one_trial_80pct", |b| {
        b.iter_batched(
            next_seed,
            |seed| {
                run_isidewith_trial(
                    seed,
                    Some(AttackConfig::with_drops(0.8, SimDuration::from_secs(6))),
                )
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("fig6_drops/rows_2trials", |b| {
        b.iter_batched(
            next_seed,
            |seed| section4d(2, seed, &[0.8], 1),
            BatchSize::SmallInput,
        )
    });
}

fn bench_table2(c: &mut Harness) {
    c.bench_function("table2/one_trial_full_attack", |b| {
        b.iter_batched(
            next_seed,
            |seed| run_isidewith_trial(seed, Some(AttackConfig::full_attack())),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("table2/columns_2trials", |b| {
        b.iter_batched(next_seed, |seed| table2(2, seed, 1), BatchSize::SmallInput)
    });
}

fn bench_fig1(c: &mut Harness) {
    c.bench_function("fig1/both_cases", |b| {
        b.iter_batched(next_seed, |seed| fig1(seed, 1), BatchSize::SmallInput)
    });
}

fn main() {
    let mut h = Harness::new().sample_size(10);
    bench_baseline(&mut h);
    bench_table1(&mut h);
    bench_fig5(&mut h);
    bench_fig6_drops(&mut h);
    bench_table2(&mut h);
    bench_fig1(&mut h);
}
