//! Regression: the parallel trial executor must be invisible in the
//! results. Running any experiment at `jobs = 4` has to produce the same
//! JSON **bytes** as the sequential `jobs = 1` path — aggregates are
//! folded in submission order, so floating-point sums, percentages, and
//! serialized reports cannot depend on worker scheduling.

use h2priv_core::experiments::{baseline, fig1, fig5, robustness_sweep, table1, table2};
use h2priv_core::report::to_json;

fn render<T: h2priv_util::json::ToJson>(rows: &[T]) -> String {
    rows.iter().map(|r| to_json(r) + "\n").collect()
}

#[test]
fn table1_is_byte_identical_across_job_counts() {
    let seq = render(&table1(3, 42, 1));
    let par = render(&table1(3, 42, 4));
    assert_eq!(seq, par);
}

#[test]
fn fig5_is_byte_identical_across_job_counts() {
    let seq = render(&fig5(2, 43, 1));
    let par = render(&fig5(2, 43, 4));
    assert_eq!(seq, par);
}

#[test]
fn table2_is_byte_identical_across_job_counts() {
    let seq = render(&table2(2, 45, 1));
    let par = render(&table2(2, 45, 4));
    assert_eq!(seq, par);
}

#[test]
fn baseline_is_byte_identical_across_job_counts() {
    let seq = render(&baseline(3, 46, 1));
    let par = render(&baseline(3, 46, 4));
    assert_eq!(seq, par);
}

#[test]
fn fig1_is_byte_identical_across_job_counts() {
    let seq = render(&fig1(61_000, 1));
    let par = render(&fig1(61_000, 4));
    assert_eq!(seq, par);
}

#[test]
fn robustness_sweep_with_retries_is_byte_identical_across_job_counts() {
    // Exercises the watchdog + retry path (run_isidewith_trial_retrying)
    // under the pool: intensity 1.0 trials hit faults and may retry.
    let seq = render(&robustness_sweep(2, 81_000, &[0.0, 1.0], 1));
    let par = render(&robustness_sweep(2, 81_000, &[0.0, 1.0], 4));
    assert_eq!(seq, par);
}
