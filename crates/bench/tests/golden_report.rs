//! Golden-report regression: the experiment binaries' JSON output must be
//! byte-identical to the fixture produced before the serde_json → in-tree
//! writer swap. Guards the writer's pretty layout (2-space indent, `": "`
//! separators) and float formatting, and the determinism of the trial
//! pipeline behind the rows.

use h2priv_core::experiments::fig1;
use h2priv_core::report::to_json;

#[test]
fn fig1_report_matches_golden_fixture_byte_for_byte() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/golden_fig1.json"
    );
    let golden = std::fs::read_to_string(golden_path).expect("golden fixture present");
    let rendered: String = fig1(61_000, 1)
        .iter()
        .map(|row| to_json(row) + "\n")
        .collect();
    assert_eq!(
        rendered, golden,
        "report output drifted from the golden fixture"
    );
}
