//! Supervisor failure-policy regression: stalled workers are killed
//! past the heartbeat timeout and their range is recovered; a retired
//! shard's range is reassigned to survivors; a permanently-crashing
//! cell fails the campaign with a structured error naming the poisoned
//! range; and output error paths exit cleanly instead of panicking.

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_base(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("h2priv_super_{}_{tag}_{n}", std::process::id()))
}

fn read(path: &PathBuf) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

struct CampaignRun {
    status: std::process::ExitStatus,
    stderr: String,
}

fn campaign(journal: &PathBuf, out: Option<&PathBuf>, extra: &[&str]) -> CampaignRun {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_campaign"));
    cmd.args(["robustness_sweep", "1", "--journal"])
        .arg(journal);
    if let Some(out) = out {
        cmd.arg("--out").arg(out);
    }
    let output = cmd
        .arg("--quiet")
        .args(extra)
        .output()
        .expect("campaign binary runs");
    CampaignRun {
        status: output.status,
        stderr: String::from_utf8_lossy(&output.stderr).into_owned(),
    }
}

fn baseline() -> (Vec<u8>, Vec<u8>) {
    let journal = temp_base("base").with_extension("jsonl");
    let out = temp_base("base").with_extension("json");
    let run = campaign(&journal, Some(&out), &["--shards", "1"]);
    assert!(run.status.success(), "{}", run.stderr);
    let bytes = (read(&journal), read(&out));
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&out);
    bytes
}

#[test]
fn stalled_worker_is_killed_after_heartbeat_and_campaign_completes_identically() {
    let (ref_journal, ref_report) = baseline();
    let journal = temp_base("stall").with_extension("jsonl");
    let out = temp_base("stall").with_extension("json");
    // Worker on the second shard hangs before cell 4; a 300 ms
    // heartbeat reaps it and the respawn finishes the range.
    let run = campaign(
        &journal,
        Some(&out),
        &[
            "--shards",
            "2",
            "--heartbeat-ms",
            "300",
            "--inject-stall",
            "trial=4",
        ],
    );
    assert!(run.status.success(), "{}", run.stderr);
    assert!(
        run.stderr.contains("stall kill"),
        "stall recovery should be reported: {}",
        run.stderr
    );
    assert_eq!(
        read(&journal),
        ref_journal,
        "stall kill changed the journal"
    );
    assert_eq!(read(&out), ref_report, "stall kill changed the report");
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&out);
}

#[test]
fn retired_shards_range_is_reassigned_to_survivors() {
    let (ref_journal, ref_report) = baseline();
    let journal = temp_base("retire").with_extension("jsonl");
    let out = temp_base("retire").with_extension("json");
    // With a zero respawn budget, the injected crash retires the shard
    // immediately; the surviving shard must pick up its range.
    let run = campaign(
        &journal,
        Some(&out),
        &[
            "--shards",
            "2",
            "--max-respawns",
            "0",
            "--inject-kill",
            "shard=1,trial=4",
        ],
    );
    assert!(run.status.success(), "{}", run.stderr);
    assert!(
        run.stderr.contains("range reassignment"),
        "reassignment should be reported: {}",
        run.stderr
    );
    assert_eq!(
        read(&journal),
        ref_journal,
        "reassignment changed the journal"
    );
    assert_eq!(read(&out), ref_report, "reassignment changed the report");
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&out);
}

#[test]
fn permanently_crashing_cell_fails_with_a_poisoned_range_error() {
    let journal = temp_base("poison").with_extension("jsonl");
    let run = campaign(
        &journal,
        None,
        &["--shards", "1", "--inject-kill", "trial=3,repeat"],
    );
    assert!(!run.status.success(), "poisoned campaign must fail");
    assert!(
        run.stderr.contains("poisoned trial range")
            && run.stderr.contains("cells 3..6")
            && run.stderr.contains("crashed its worker 3 times"),
        "error must name the poisoned range: {}",
        run.stderr
    );
    // The journal keeps the good prefix (header + cells before the
    // poisoned one) so a fixed binary can still resume.
    let text = String::from_utf8(read(&journal)).unwrap();
    assert_eq!(text.lines().count(), 4, "header + cells 0..3:\n{text}");
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn broken_stdout_pipe_is_a_clean_nonzero_exit_not_a_panic() {
    let journal = temp_base("pipe").with_extension("jsonl");
    // No --out: the report goes to stdout, whose read end we close
    // immediately. The write must surface as a clean exit.
    let mut child = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args(["robustness_sweep", "1", "--journal"])
        .arg(&journal)
        .args(["--shards", "1", "--quiet"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("campaign binary runs");
    drop(child.stdout.take());
    let status = child.wait().expect("campaign exits");
    let mut stderr = String::new();
    std::io::Read::read_to_string(child.stderr.as_mut().unwrap(), &mut stderr).unwrap();
    assert!(!status.success(), "broken pipe must be a nonzero exit");
    assert!(
        !stderr.contains("panicked"),
        "broken pipe must not panic: {stderr}"
    );
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn unwritable_report_path_is_a_clean_error() {
    let journal = temp_base("unwritable").with_extension("jsonl");
    let out = PathBuf::from("/nonexistent-dir/report.json");
    let run = campaign(&journal, Some(&out), &["--shards", "1"]);
    assert!(!run.status.success());
    assert!(
        run.stderr.contains("error: writing") && !run.stderr.contains("panicked"),
        "unexpected stderr: {}",
        run.stderr
    );
    let _ = std::fs::remove_file(&journal);
}
