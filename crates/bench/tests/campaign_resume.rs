//! Resume-identity regression for the sharded campaign runner: whatever
//! happens to a campaign — run at any shard count, killed at any batch
//! boundary and resumed — the journal and the folded report must come
//! out **byte-identical** to an uninterrupted single-shard run. This is
//! the process-level extension of `parallel_identity.rs`: scheduling
//! (and now crashing) is invisible in the results.

use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};

const TRIALS: &str = "2";
/// A robustness_sweep campaign with 2 trials has 6 batches of 2 cells;
/// these are the first cells of each batch (the batch boundaries).
const BATCH_BOUNDARIES: [u64; 6] = [0, 2, 4, 6, 8, 10];

fn temp_base(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("h2priv_resume_{}_{tag}_{n}", std::process::id()))
}

struct CampaignRun {
    status: std::process::ExitStatus,
    stderr: String,
}

fn campaign(journal: &PathBuf, out: &PathBuf, extra: &[&str]) -> CampaignRun {
    let output = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .arg("robustness_sweep")
        .arg(TRIALS)
        .arg("--journal")
        .arg(journal)
        .arg("--out")
        .arg(out)
        .arg("--quiet")
        .args(extra)
        .output()
        .expect("campaign binary runs");
    CampaignRun {
        status: output.status,
        stderr: String::from_utf8_lossy(&output.stderr).into_owned(),
    }
}

fn read(path: &PathBuf) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn cleanup(paths: &[&PathBuf]) {
    for p in paths {
        let _ = std::fs::remove_file(p);
    }
}

/// The uninterrupted single-shard journal and report bytes.
fn baseline() -> (Vec<u8>, Vec<u8>) {
    let journal = temp_base("baseline").with_extension("jsonl");
    let out = temp_base("baseline").with_extension("json");
    let run = campaign(&journal, &out, &["--shards", "1"]);
    assert!(run.status.success(), "baseline failed: {}", run.stderr);
    let bytes = (read(&journal), read(&out));
    cleanup(&[&journal, &out]);
    bytes
}

#[test]
fn journal_and_report_are_byte_identical_across_shard_counts() {
    let (ref_journal, ref_report) = baseline();
    for shards in ["1", "2", "4"] {
        let journal = temp_base("shards").with_extension("jsonl");
        let out = temp_base("shards").with_extension("json");
        let run = campaign(&journal, &out, &["--shards", shards]);
        assert!(run.status.success(), "shards={shards}: {}", run.stderr);
        assert_eq!(
            read(&journal),
            ref_journal,
            "journal differs at {shards} shard(s)"
        );
        assert_eq!(
            read(&out),
            ref_report,
            "report differs at {shards} shard(s)"
        );
        cleanup(&[&journal, &out]);
    }
}

#[test]
fn kill_at_every_batch_boundary_then_resume_is_byte_identical() {
    let (ref_journal, ref_report) = baseline();
    for boundary in BATCH_BOUNDARIES {
        let journal = temp_base("kill").with_extension("jsonl");
        let out = temp_base("kill").with_extension("json");
        let kill = format!("trial={boundary}");
        let interrupted = campaign(
            &journal,
            &out,
            &["--shards", "2", "--fail-on-crash", "--inject-kill", &kill],
        );
        assert!(
            !interrupted.status.success(),
            "kill at cell {boundary} should abort the campaign"
        );
        assert!(
            interrupted.stderr.contains("fail-on-crash"),
            "cell {boundary}: {}",
            interrupted.stderr
        );
        // The journal must already be a valid prefix: strictly the
        // header plus cells [0, k) for some k <= boundary's position.
        let prefix = read(&journal);
        assert!(
            ref_journal.starts_with(&prefix),
            "cell {boundary}: interrupted journal is not a prefix of the reference"
        );

        let resumed = campaign(&journal, &out, &["--shards", "2", "--resume"]);
        assert!(
            resumed.status.success(),
            "resume after kill at {boundary}: {}",
            resumed.stderr
        );
        assert_eq!(
            read(&journal),
            ref_journal,
            "journal differs after kill at cell {boundary} + resume"
        );
        assert_eq!(
            read(&out),
            ref_report,
            "report differs after kill at cell {boundary} + resume"
        );
        cleanup(&[&journal, &out]);
    }
}

#[test]
fn resume_recovers_a_torn_final_journal_line() {
    let (ref_journal, ref_report) = baseline();
    let journal = temp_base("torn").with_extension("jsonl");
    let out = temp_base("torn").with_extension("json");
    let run = campaign(
        &journal,
        &out,
        &[
            "--shards",
            "1",
            "--fail-on-crash",
            "--inject-kill",
            "trial=9",
        ],
    );
    assert!(!run.status.success());
    // Simulate the crash happening mid-append: tear the last line.
    let mut bytes = read(&journal);
    bytes.truncate(bytes.len() - 37);
    assert!(
        bytes.last() != Some(&b'\n'),
        "tear must land mid-line for this test"
    );
    std::fs::write(&journal, &bytes).unwrap();

    let resumed = campaign(&journal, &out, &["--shards", "2", "--resume"]);
    assert!(resumed.status.success(), "{}", resumed.stderr);
    assert!(
        resumed.stderr.contains("partial final line"),
        "tail drop should be reported: {}",
        resumed.stderr
    );
    assert_eq!(read(&journal), ref_journal);
    assert_eq!(read(&out), ref_report);
    cleanup(&[&journal, &out]);
}

#[test]
fn resume_refuses_a_journal_from_a_different_campaign() {
    let journal = temp_base("mismatch").with_extension("jsonl");
    let out = temp_base("mismatch").with_extension("json");
    let run = campaign(&journal, &out, &["--shards", "1"]);
    assert!(run.status.success(), "{}", run.stderr);

    // Same journal, different trial budget -> different campaign.
    let output = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args(["robustness_sweep", "3", "--journal"])
        .arg(&journal)
        .args(["--resume", "--quiet"])
        .output()
        .expect("campaign binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("different campaign"),
        "unexpected error: {stderr}"
    );
    cleanup(&[&journal, &out]);
}
