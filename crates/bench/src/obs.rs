//! CLI plumbing for the deterministic observability layer.
//!
//! Every experiment binary calls [`init`] before running trials and
//! [`finish`] after printing its results. Both are no-ops unless the
//! operator passed `--trace FILE` (write every collected trace event as
//! one jsonl line) or `--metrics` (print the folded per-trial metric
//! registries as a summary block). With neither flag the telemetry
//! layer stays disabled and the binary's output — including every
//! committed `results/*.json` — is byte-for-byte what it was before
//! this layer existed.
//!
//! Determinism: slots drain sorted by `(batch, trial)`, batches are
//! opened sequentially on the main thread and events within a trial are
//! in emission order of that trial's deterministic simulation, so the
//! jsonl bytes are identical at any `--jobs` level.

use crate::oplog::{self, Level};
use h2priv_util::telemetry;

/// What the operator asked for on the command line.
pub struct Observability {
    /// Destination for the jsonl trace, when `--trace FILE` was given.
    pub trace_path: Option<String>,
    /// Whether `--metrics` asked for the summary block.
    pub metrics: bool,
}

/// Parses `--trace FILE` / `--trace=FILE`, `--metrics` and `--quiet`
/// from the command line and arms the telemetry layer accordingly.
/// Call once, before any trials run.
pub fn init() -> Observability {
    let args: Vec<String> = std::env::args().collect();
    let mut trace_path: Option<String> = None;
    let mut metrics = false;
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--trace=") {
            trace_path = Some(v.to_string());
        } else if a == "--trace" {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") && !v.is_empty() => {
                    trace_path = Some(v.clone());
                }
                _ => {
                    oplog::log(Level::Error, "error: --trace requires a file path");
                    oplog::log(
                        Level::Error,
                        "usage: [--trace out.jsonl] [--metrics] [--quiet]",
                    );
                    std::process::exit(2);
                }
            }
        } else if a == "--metrics" {
            metrics = true;
        } else if a == "--quiet" {
            oplog::set_max_level(Level::Info);
        }
    }
    telemetry::set_trace_enabled(trace_path.is_some());
    telemetry::set_metrics_enabled(metrics);
    Observability {
        trace_path,
        metrics,
    }
}

/// Drains the telemetry registry and delivers what [`init`] armed: the
/// jsonl trace file and/or the metrics summary block. No-op when
/// neither flag was given.
pub fn finish(obs: &Observability) {
    if obs.trace_path.is_none() && !obs.metrics {
        return;
    }
    let slots = telemetry::drain_slots();
    if let Some(path) = &obs.trace_path {
        let mut out = String::new();
        let mut events = 0usize;
        for slot in &slots {
            for ev in &slot.telemetry.events {
                out.push_str(&ev.to_json_line(&slot.label, slot.trial));
                out.push('\n');
                events += 1;
            }
        }
        match std::fs::write(path, out) {
            Ok(()) => oplog::log(Level::Info, &format!("trace: {events} events -> {path}")),
            Err(e) => {
                oplog::log(Level::Error, &format!("error: writing trace {path}: {e}"));
                std::process::exit(1);
            }
        }
    }
    if obs.metrics {
        print_metrics_summary(&slots);
    }
}

/// Folds every slot's registry (in submission order — counters add,
/// gauges take the last trial's value, histograms merge) and prints the
/// sorted summary block.
fn print_metrics_summary(slots: &[telemetry::SlotRecord]) {
    let mut folded = telemetry::Metrics::default();
    let mut trials = 0usize;
    for slot in slots {
        if !slot.telemetry.metrics.is_empty() {
            trials += 1;
        }
        folded.merge(&slot.telemetry.metrics);
    }
    oplog::log(Level::Info, &format!("\n=== metrics ({trials} trials) ==="));
    if folded.is_empty() {
        oplog::log(Level::Info, "(nothing recorded)");
        return;
    }
    for (name, v) in &folded.counters {
        oplog::log(Level::Info, &format!("counter  {name:<28} {v}"));
    }
    for (name, v) in &folded.gauges {
        oplog::log(
            Level::Info,
            &format!("gauge    {name:<28} {v}  (last trial)"),
        );
    }
    for (name, h) in &folded.histograms {
        oplog::log(
            Level::Info,
            &format!(
                "hist     {name:<28} count {}  min {}  mean {:.1}  max {}",
                h.count,
                h.min,
                h.mean().unwrap_or(0.0),
                h.max
            ),
        );
    }
}
