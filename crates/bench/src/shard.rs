//! `--shard-worker` mode: the campaign runner's child-process side.
//!
//! The `campaign` bin re-invokes an experiment's own bench binary with
//! `--shard-worker --cells A-B` (plus the trial count and any injected
//! faults). [`maybe_worker`] is the first thing those binaries call:
//! when the flag is absent it returns `false` and the binary runs its
//! normal interactive path; when present it runs the assigned cell
//! range and exits the main function via `true`.
//!
//! Protocol (stdout, one checksummed line each, flushed per line so the
//! supervisor's view is current to the last completed cell):
//!
//! 1. `hello` echoing the assigned range,
//! 2. one `record` per cell, in range order — each cell a pure function
//!    of the campaign spec, so any worker (or resume) produces identical
//!    bytes for the same cell,
//! 3. `done`.
//!
//! Injected faults fire *before* the named cell runs: `--inject-kill K`
//! exits with status 101 (a crash, from the supervisor's viewpoint),
//! `--inject-stall K` sleeps far past any heartbeat so the supervisor's
//! stall-kill path is exercised. A broken pipe mid-stream (the
//! supervisor died) is a quiet nonzero exit, not a panic.

use std::io::Write;

use h2priv_campaign::record;
use h2priv_core::campaign::CampaignSpec;

use crate::{flag_present, flag_value, flag_values, oerror, trials_arg};

/// Exit status a worker uses for an injected kill; anything nonzero
/// reads as a crash to the supervisor.
pub const INJECTED_KILL_EXIT: i32 = 101;

fn parse_cells(spec: &str) -> Option<(u64, u64)> {
    let (a, b) = spec.split_once('-')?;
    let a: u64 = a.parse().ok()?;
    let b: u64 = b.parse().ok()?;
    (a < b).then_some((a, b))
}

fn inject_cells(flag: &str) -> Vec<u64> {
    flag_values(flag)
        .iter()
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                oerror!("error: invalid {flag} {v:?} (expected a cell index)");
                std::process::exit(2);
            })
        })
        .collect()
}

/// Runs the binary's shard-worker mode when `--shard-worker` is on the
/// command line; returns `false` (do the normal thing) otherwise.
///
/// `experiment` is this binary's campaign experiment name and
/// `default_trials` its usual trial default (used when the supervisor
/// does not pass a count).
pub fn maybe_worker(experiment: &str, default_trials: usize) -> bool {
    if !flag_present("--shard-worker") {
        return false;
    }
    let trials = trials_arg(default_trials);
    let spec = CampaignSpec::for_experiment(experiment, trials as u64)
        .unwrap_or_else(|| panic!("binary {experiment} is not a campaign experiment"));
    let cells = flag_value("--cells").and_then(|v| parse_cells(&v));
    let Some((start, end)) = cells else {
        oerror!("error: --shard-worker requires --cells A-B (half-open, A < B)");
        std::process::exit(2);
    };
    if end > spec.total_cells() {
        oerror!(
            "error: --cells {start}-{end} exceeds the campaign's {} cells",
            spec.total_cells()
        );
        std::process::exit(2);
    }
    let kills = inject_cells("--inject-kill");
    let stalls = inject_cells("--inject-stall");

    let mut stdout = std::io::stdout().lock();
    let mut emit = |line: String| {
        let write = stdout
            .write_all(line.as_bytes())
            .and_then(|()| stdout.write_all(b"\n"))
            .and_then(|()| stdout.flush());
        if write.is_err() {
            // The supervisor hung up; nothing useful left to do.
            std::process::exit(1);
        }
    };
    emit(record::stamp(&record::hello_body(start, end)));
    for cell in start..end {
        if kills.contains(&cell) {
            std::process::exit(INJECTED_KILL_EXIT);
        }
        if stalls.contains(&cell) {
            // Hang until the supervisor's heartbeat timeout kills us.
            std::thread::sleep(std::time::Duration::from_secs(3_600));
        }
        let (batch, trial) = spec.cell(cell);
        let payload = spec.run_cell(batch, trial);
        emit(record::stamp(&record::record_body(
            cell, batch, trial, payload,
        )));
    }
    emit(record::stamp(&record::done_body(end - start)));
    true
}
