//! Regenerates the **Section IV-D / Fig. 6** experiment — targeted packet
//! drops forcing an HTTP/2 stream reset (plus a drop-rate sweep showing
//! the broken-connection cliff).
//!
//! ```sh
//! cargo run --release -p h2priv-bench --bin section4d_drops -- [trials=100] [--jobs N] [--trace out.jsonl] [--metrics]
//! ```

use h2priv_bench::{jobs_arg, obs, odetail, oinfo, trials_arg};
use h2priv_core::experiments::{section4d, section4d_timer_only};
use h2priv_core::report::{pct, render_table, to_json};

fn main() {
    let o = obs::init();
    let trials = trials_arg(100);
    let jobs = jobs_arg();
    odetail!("Section IV-D: {trials} downloads per drop rate...");
    let rows = section4d(trials, 31_000, &[0.5, 0.7, 0.8, 0.9, 0.97], jobs);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.drop_rate * 100.0),
                pct(r.pct_success),
                pct(r.pct_reset_sent),
                pct(r.pct_broken),
            ]
        })
        .collect();
    oinfo!(
        "{}",
        render_table(
            &[
                "drop rate (%)",
                "success (%)",
                "reset sent (%)",
                "broken (%)"
            ],
            &table
        )
    );
    oinfo!("paper: 80% drops for 6 s -> ~90% success; higher rates break the connection.");
    odetail!("{}", to_json(&rows));

    odetail!("timer-only drop window (no early stop on reset)...");
    let rows2 = section4d_timer_only(trials, 32_000, &[0.8, 0.9, 0.97], jobs);
    let table: Vec<Vec<String>> = rows2
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.drop_rate * 100.0),
                pct(r.pct_success),
                pct(r.pct_reset_sent),
                pct(r.pct_broken),
            ]
        })
        .collect();
    oinfo!("\nvariant: fixed 6 s drop window (paper's timer mechanism):");
    oinfo!(
        "{}",
        render_table(
            &[
                "drop rate (%)",
                "success (%)",
                "reset sent (%)",
                "broken (%)"
            ],
            &table
        )
    );
    odetail!("{}", to_json(&rows2));
    obs::finish(&o);
}
