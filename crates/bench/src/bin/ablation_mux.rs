//! Ablations of the design choices called out in DESIGN.md:
//!
//! * server mux policy (Concurrent vs Serial — i.e. HTTP/1.1-like),
//! * duplicate-serving pathology on/off,
//! * client re-request timeout.
//!
//! ```sh
//! cargo run --release -p h2priv-bench --bin ablation_mux -- [trials=25] [--jobs N] [--trace out.jsonl] [--metrics]
//! ```

use h2priv_bench::{banner, jobs_arg, obs, oinfo, trials_arg};
use h2priv_core::attack::AttackConfig;
use h2priv_core::experiment::{run_isidewith_trial_with, TrialOptions};
use h2priv_h2::MuxPolicy;
use h2priv_netsim::time::SimDuration;
use h2priv_util::{pool, telemetry};

fn run(
    label: &str,
    trials: usize,
    jobs: usize,
    base: u64,
    f: impl Fn(&mut TrialOptions) + Sync,
) -> (f64, f64, f64) {
    let batch = telemetry::open_batch(&format!("ablation/{label}"));
    let per_trial = pool::run_indexed(jobs, trials, |t| {
        let _tele = telemetry::trial_slot(batch, t as u64);
        let mut opts = TrialOptions::new(base + t as u64, None);
        f(&mut opts);
        let trial = run_isidewith_trial_with(opts);
        (
            h2priv_core::metrics::is_serialized(trial.html_outcome().best_degree),
            trial.result.client.h2_rerequests,
            trial.result.serve_log.iter().filter(|s| s.copy > 0).count() as u64,
        )
    });
    let mut serial = 0usize;
    let mut rereq = 0u64;
    let mut copies = 0u64;
    for (ser, rq, cp) in per_trial {
        serial += usize::from(ser);
        rereq += rq;
        copies += cp;
    }
    (
        100.0 * serial as f64 / trials as f64,
        rereq as f64 / trials as f64,
        copies as f64 / trials as f64,
    )
}

fn main() {
    let o = obs::init();
    let trials = trials_arg(25);
    let jobs = jobs_arg();

    banner("mux policy (no adversary)");
    let (serial_pct, _, _) = run("mux_concurrent", trials, jobs, 81_000, |_| {});
    oinfo!("  Concurrent (HTTP/2): html serialized by chance {serial_pct:.0}%");
    let (serial_pct, _, _) = run("mux_serial", trials, jobs, 82_000, |o| {
        o.server.mux = MuxPolicy::Serial
    });
    oinfo!("  Serial (HTTP/1.1-like): html serialized {serial_pct:.0}% (expected ~100%)");

    banner("duplicate-serving pathology under 200 ms jitter");
    let attack = Some(AttackConfig::jitter_only(SimDuration::from_millis(200)));
    let a = attack.clone();
    let (_, rereq, copies) = run("dup_on", trials, jobs, 83_000, move |o| {
        o.attack = a.clone()
    });
    oinfo!(
        "  serve_duplicates=on : re-requests/trial {rereq:.1}, duplicate copies/trial {copies:.1}"
    );
    let a = attack.clone();
    let (_, rereq, copies) = run("dup_off", trials, jobs, 84_000, move |o| {
        o.attack = a.clone();
        o.server.serve_duplicates = false;
    });
    oinfo!(
        "  serve_duplicates=off: re-requests/trial {rereq:.1}, duplicate copies/trial {copies:.1}"
    );

    banner("client re-request timeout under 200 ms jitter");
    for timeout_ms in [600u64, 1_200, 2_400, 4_800] {
        let a = attack.clone();
        let (_, rereq, copies) = run(
            &format!("timeout_{timeout_ms}ms"),
            trials,
            jobs,
            85_000 + timeout_ms,
            move |o| {
                o.attack = a.clone();
                o.client.rerequest.timeout = SimDuration::from_millis(timeout_ms);
            },
        );
        oinfo!("  timeout {timeout_ms:>4} ms: re-requests/trial {rereq:.1}, duplicate copies/trial {copies:.1}");
    }
    obs::finish(&o);
}
