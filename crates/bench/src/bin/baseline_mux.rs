//! Regenerates the paper's **baseline multiplexing** claims (Section IV
//! prose): HTML degree ≈98 %, image degrees 80–99 %, 6th object
//! serialized by chance in ≈32 % of runs.
//!
//! ```sh
//! cargo run --release -p h2priv-bench --bin baseline_mux -- [trials=100] [--jobs N] [--trace out.jsonl] [--metrics]
//! ```

use h2priv_bench::{jobs_arg, obs, odetail, oinfo, trials_arg};
use h2priv_core::experiments::baseline;
use h2priv_core::report::{pct_opt, render_table, to_json};

fn main() {
    let o = obs::init();
    let trials = trials_arg(100);
    let jobs = jobs_arg();
    odetail!("baseline: {trials} unattacked downloads...");
    let rows = baseline(trials, 51_000, jobs);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.object.clone(),
                pct_opt(r.mean_degree_pct),
                pct_opt(r.pct_not_multiplexed),
            ]
        })
        .collect();
    oinfo!(
        "{}",
        render_table(
            &[
                "object",
                "mean degree of multiplexing (%)",
                "serialized by chance (%)"
            ],
            &table
        )
    );
    oinfo!("paper: HTML degree ~98%, images 80-99%; HTML serialized by chance in 32% of runs.");
    odetail!("{}", to_json(&rows));
    obs::finish(&o);
}
