//! Sweeps the full Section V attack across increasing network-fault
//! intensity (bursty loss, reordering, duplication, and a link flap at
//! the top end) and reports attack serialization / identification rates
//! against impairment level, writing the JSON report next to the other
//! figures.
//!
//! ```sh
//! cargo run --release -p h2priv-bench --bin robustness_sweep -- [trials=50] [--jobs N] [--trace out.jsonl] [--metrics]
//! ```

use h2priv_bench::{jobs_arg, obs, odetail, oinfo, out, shard, trials_arg};
use h2priv_core::campaign::robustness_report;
use h2priv_core::experiments::{robustness_sweep, ROBUSTNESS_INTENSITIES};
use h2priv_core::report::{pct, pct_opt, render_table};

fn main() {
    if shard::maybe_worker("robustness_sweep", 50) {
        return;
    }
    let o = obs::init();
    let trials = trials_arg(50);
    let jobs = jobs_arg();
    odetail!("robustness sweep: {trials} attacked downloads per intensity...");
    let rows = robustness_sweep(trials, 81_000, &ROBUSTNESS_INTENSITIES, jobs);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.1}", r.intensity),
                pct(r.burst_loss_pct),
                pct(r.reorder_pct),
                if r.flap { "yes".into() } else { "no".into() },
                pct_opt(r.pct_html_serialized),
                pct_opt(r.pct_success),
                pct_opt(r.retransmissions_avg),
                format!(
                    "{}/{}/{}/{}",
                    r.completed, r.stalled, r.aborted, r.horizon_exhausted
                ),
                r.retries_used.to_string(),
            ]
        })
        .collect();
    oinfo!(
        "{}",
        render_table(
            &[
                "intensity",
                "burst loss (%)",
                "reorder (%)",
                "flap",
                "HTML serialized (%)",
                "attack success (%)",
                "retransmissions (avg)",
                "ok/stall/abort/horizon",
                "retries",
            ],
            &table
        )
    );
    oinfo!("reading: the attack's forced serialization should survive mild");
    oinfo!("impairment and decay gracefully — every degraded trial is classified,");
    oinfo!("never silently folded into a success percentage.");

    let json = robustness_report(&rows);
    let out_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/robustness_sweep.json"
    );
    out::write_result_file(out_path, &json);
    odetail!("wrote {out_path}");
    out::stderr_str(&json);
    obs::finish(&o);
}
