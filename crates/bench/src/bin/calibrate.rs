//! Calibration tool: prints the key statistics the paper's evaluation
//! hinges on, with timing diagnostics, so the model constants in
//! `h2priv-web`/`h2priv-h2` can be tuned against the paper's bands.
//!
//! ```sh
//! cargo run --release -p h2priv-bench --bin calibrate -- [trials] [--trace out.jsonl] [--metrics]
//! ```

use h2priv_bench::{banner, obs, oinfo, trials_arg};
use h2priv_core::attack::AttackConfig;
use h2priv_core::experiment::run_isidewith_trial;
use h2priv_netsim::time::SimDuration;
use h2priv_util::telemetry;

fn main() {
    let o = obs::init();
    let trials = trials_arg(30);

    banner("baseline (no adversary)");
    let batch = telemetry::open_batch("calibrate/baseline");
    let mut html_degrees = vec![];
    let mut html_serial = 0;
    let mut img_degrees = vec![];
    let mut identified_html = 0;
    for t in 0..trials {
        let _tele = telemetry::trial_slot(batch, t as u64);
        let trial = run_isidewith_trial(500_000 + t as u64, None);
        let out = trial.html_outcome();
        html_degrees.push(out.best_degree);
        if h2priv_core::metrics::is_serialized(out.best_degree) {
            html_serial += 1;
        }
        if out.identified {
            identified_html += 1;
        }
        for o in trial.image_outcomes() {
            img_degrees.push(o.best_degree);
        }
        if t == 0 {
            // Timing diagnostics from ground truth.
            let html_log: Vec<_> = trial
                .result
                .serve_log
                .iter()
                .filter(|s| s.object == trial.iw.html)
                .collect();
            oinfo!("  [diag] html serve record: {html_log:?}");
            let next: Vec<_> = trial
                .result
                .serve_log
                .iter()
                .filter(|s| s.object.0 >= 6 && s.object.0 <= 8)
                .map(|s| (s.object, s.requested_at, s.first_byte_at, s.completed_at))
                .collect();
            oinfo!("  [diag] first embedded serves: {next:?}");
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    oinfo!(
        "  html: mean degree {:.1}% | serial in {:.0}% of runs (paper: ~98% / 32%) | identified {:.0}%",
        100.0 * mean(&html_degrees),
        100.0 * html_serial as f64 / trials as f64,
        100.0 * identified_html as f64 / trials as f64,
    );
    oinfo!(
        "  images: mean degree {:.1}% (paper: 80-99%)",
        100.0 * mean(&img_degrees)
    );

    banner("jitter only (Table I shape)");
    for jitter_ms in [0u64, 25, 50, 100] {
        let batch = telemetry::open_batch(&format!("calibrate/jitter_{jitter_ms}ms"));
        let mut serial = 0;
        let mut retrans = 0u64;
        let mut rereq = 0u64;
        for t in 0..trials {
            let _tele = telemetry::trial_slot(batch, t as u64);
            let trial = run_isidewith_trial(
                600_000 + jitter_ms * 1_000 + t as u64,
                Some(AttackConfig::jitter_only(SimDuration::from_millis(
                    jitter_ms,
                ))),
            );
            if h2priv_core::metrics::is_serialized(trial.html_outcome().best_degree) {
                serial += 1;
            }
            retrans += trial.result.total_retransmissions();
            rereq += trial.result.client.h2_rerequests;
        }
        oinfo!(
            "  jitter {jitter_ms:>3} ms: serial {:>4.0}% | retrans avg {:>6.1} | rereq avg {:>5.1}",
            100.0 * serial as f64 / trials as f64,
            retrans as f64 / trials as f64,
            rereq as f64 / trials as f64,
        );
    }
    oinfo!("  paper: 32/46/54/54 % serial; retrans +0/+33/+130/+194 %");

    banner("full attack (Table II shape)");
    let batch = telemetry::open_batch("calibrate/full_attack");
    let mut html_succ = 0;
    let mut seq_hits = vec![0usize; 8];
    let mut single_hits = vec![0usize; 8];
    let mut broken = 0;
    for t in 0..trials {
        let _tele = telemetry::trial_slot(batch, t as u64);
        let trial = run_isidewith_trial(700_000 + t as u64, Some(AttackConfig::full_attack()));
        if trial.html_outcome().success {
            html_succ += 1;
        }
        for (i, ok) in trial.sequence_success().iter().enumerate() {
            if *ok {
                seq_hits[i] += 1;
            }
        }
        for (i, o) in trial.image_outcomes().iter().enumerate() {
            if o.success {
                single_hits[i] += 1;
            }
        }
        if trial.result.client.connection_broken {
            broken += 1;
        }
    }
    oinfo!(
        "  html success {:.0}% (paper 90%) | broken {:.0}%",
        100.0 * html_succ as f64 / trials as f64,
        100.0 * broken as f64 / trials as f64
    );
    let fmt = |v: &[usize]| {
        v.iter()
            .map(|h| format!("{:>3.0}", 100.0 * *h as f64 / trials as f64))
            .collect::<Vec<_>>()
            .join(" ")
    };
    oinfo!(
        "  single-target I1..I8: {} (paper: 100 everywhere)",
        fmt(&single_hits)
    );
    oinfo!(
        "  sequence I1..I8:      {} (paper: 90 85 81 80 62 64 78 64)",
        fmt(&seq_hits)
    );
    obs::finish(&o);
}
