//! Per-trial survey for calibration: `survey [mode] [trials]` where mode
//! is `full`, `baseline`, or a jitter in ms (e.g. `j50`). Accepts
//! `--trace out.jsonl` / `--metrics` like the experiment binaries.

use h2priv_bench::{obs, oinfo};
use h2priv_core::attack::{AttackConfig, AttackEvent};
use h2priv_core::experiment::run_isidewith_trial;
use h2priv_core::metrics::entities;
use h2priv_netsim::time::SimDuration;
use h2priv_util::telemetry;

fn main() {
    let o = obs::init();
    let mode = std::env::args().nth(1).unwrap_or_else(|| "full".into());
    let trials: u64 = h2priv_bench::count_arg(2, "trials", 30, "[full|baseline|jNN] [trials=30]");
    let batch = telemetry::open_batch(&format!("survey/{mode}"));
    for t in 0..trials {
        let _tele = telemetry::trial_slot(batch, t);
        let attack = match mode.as_str() {
            "baseline" => None,
            "full" => Some(AttackConfig::full_attack()),
            j => Some(AttackConfig::jitter_only(SimDuration::from_millis(
                j.trim_start_matches('j').parse().unwrap_or(50),
            ))),
        };
        let trial = run_isidewith_trial(700_000 + t, attack);
        let h = trial.html_outcome();
        let seq: usize = trial.sequence_success().iter().filter(|b| **b).count();
        let single: usize = trial.image_outcomes().iter().filter(|o| o.success).count();
        let stop = trial
            .result
            .attack
            .events
            .iter()
            .find_map(|e| match e {
                AttackEvent::DropsStopped { at_ms } => Some(*at_ms),
                _ => None,
            })
            .unwrap_or(0);
        // Who brackets the html's best copy?
        let ents = entities(&trial.result.wire_map);
        let mut bracketers: Vec<String> = vec![];
        if let Some((copy, d)) = trial.result.degree(trial.iw.html).best() {
            if d > 0.0 {
                if let Some(e) = ents
                    .iter()
                    .find(|e| e.id.object == trial.iw.html && e.id.copy == copy)
                {
                    for o in ents
                        .iter()
                        .filter(|o| o.id != e.id && o.start < e.end && o.end > e.start)
                    {
                        bracketers.push(format!("o{}c{}", o.id.object.0, o.id.copy));
                    }
                }
            }
        }
        oinfo!(
            "seed {t:>2}: html succ={} deg={:.2} id={} | single={single} seq={seq} | resets={} rereq={} stop@{:.1}s | brack={:?}",
            h.success,
            h.best_degree,
            h.identified,
            trial.result.client.resets_sent,
            trial.result.client.h2_rerequests,
            stop as f64 / 1000.0,
            bracketers
        );
    }
    obs::finish(&o);
}
