//! Regenerates **Fig. 5** — effect of bandwidth limitation (with 50 ms
//! jitter) on retransmissions and attack success.
//!
//! ```sh
//! cargo run --release -p h2priv-bench --bin fig5_bandwidth -- [trials=100] [--jobs N] [--trace out.jsonl] [--metrics]
//! ```

use h2priv_bench::{jobs_arg, obs, odetail, oinfo, trials_arg};
use h2priv_core::experiments::fig5;
use h2priv_core::report::{pct, render_table, to_json};

fn main() {
    let o = obs::init();
    let trials = trials_arg(100);
    let jobs = jobs_arg();
    odetail!("Fig. 5: {trials} downloads per bandwidth...");
    let rows = fig5(trials, 21_000, jobs);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.bandwidth_mbps.to_string(),
                format!("{:.1}", r.retransmissions_avg),
                pct(r.pct_success),
                pct(r.pct_broken),
            ]
        })
        .collect();
    oinfo!(
        "{}",
        render_table(
            &[
                "bandwidth (Mbps)",
                "retransmissions (avg)",
                "success (%)",
                "broken (%)"
            ],
            &table
        )
    );
    oinfo!("paper Fig. 5 shape: retransmissions fall monotonically 1000->1 Mbps;");
    oinfo!("success rises to a peak at 800 Mbps, then declines at lower bandwidths.");
    odetail!("{}", to_json(&rows));
    obs::finish(&o);
}
