//! The headline H2-vs-H3 matrix: every attack configuration against both
//! transport substrates on identical seeds, answering the question the
//! QUIC migration poses — does the forced-serialization attack survive
//! the move off TCP? Writes the JSON report next to the other figures.
//!
//! ```sh
//! cargo run --release -p h2priv-bench --bin transport_transfer -- [trials=30] [--jobs N] [--trace out.jsonl] [--metrics]
//! ```

use h2priv_bench::{jobs_arg, obs, odetail, oinfo, out, trials_arg};
use h2priv_core::experiments::transport_transfer;
use h2priv_core::report::{pct, render_table, to_json};

fn main() {
    let o = obs::init();
    let trials = trials_arg(30);
    let jobs = jobs_arg();
    odetail!("transport transfer: {trials} downloads per (attack, transport) cell...");
    let rows = transport_transfer(trials, 82_000, jobs);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.attack.clone(),
                r.transport.clone(),
                pct(r.pct_html_serialized),
                pct(r.pct_html_identified),
                pct(r.pct_success),
                pct(r.pct_full_ranking),
                format!("{:.1}", r.retransmissions_avg),
                pct(r.pct_broken),
            ]
        })
        .collect();
    oinfo!(
        "{}",
        render_table(
            &[
                "attack",
                "transport",
                "HTML serialized (%)",
                "HTML identified (%)",
                "attack success (%)",
                "full ranking (%)",
                "retransmissions (avg)",
                "broken (%)",
            ],
            &table
        )
    );
    oinfo!("reading: each attack runs on the same seeds over H2/TCP and H3/QUIC,");
    oinfo!("so any gap between the paired rows is attributable to the transport");
    oinfo!("substrate alone — per-stream delivery, datagram framing, and QUIC's");
    oinfo!("loss recovery replacing the TCP bytestream and TLS record headers.");

    let json: String = rows.iter().map(|r| to_json(r) + "\n").collect();
    let out_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/h3_transfer.json"
    );
    out::write_result_file(out_path, &json);
    odetail!("wrote {out_path}");
    out::stderr_str(&json);
    obs::finish(&o);
}
