//! Simulator throughput baseline: trials/sec and events/sec for a fixed
//! scenario set, at `jobs = 1` (the sequential legacy path) and
//! `jobs = 0` (all cores), writing `BENCH_simperf.json` at the repo root
//! so the performance trajectory is tracked alongside the figures.
//!
//! The two job counts run the same seeds and must dispatch the same
//! total event count — the run aborts if they disagree, so the perf
//! baseline doubles as a determinism check.
//!
//! ```sh
//! cargo run --release -p h2priv-bench --bin perfbench -- [trials=100] [out-path] [--trace out.jsonl] [--metrics]
//! ```

use h2priv_bench::{obs, odetail, trials_arg};
use h2priv_core::attack::AttackConfig;
use h2priv_core::experiment::{run_isidewith_h3_trial, run_isidewith_trial};
use h2priv_core::report::to_json;
use h2priv_util::impl_to_json;
use h2priv_util::{pool, telemetry};
use std::time::Instant;

/// One (scenario, jobs) measurement.
#[derive(Debug, Clone)]
struct PerfRow {
    scenario: String,
    jobs: usize,
    trials: usize,
    wall_ms: f64,
    trials_per_sec: f64,
    events_total: u64,
    events_per_sec: f64,
    /// Wall-clock speedup of this row over the same scenario at jobs=1.
    speedup_vs_jobs1: f64,
}

impl_to_json!(struct PerfRow {
    scenario,
    jobs,
    trials,
    wall_ms,
    trials_per_sec,
    events_total,
    events_per_sec,
    speedup_vs_jobs1,
});

/// The full report written to `BENCH_simperf.json`.
#[derive(Debug, Clone)]
struct PerfReport {
    /// `std::thread::available_parallelism()` on the measuring host —
    /// speedups are only meaningful relative to this.
    host_parallelism: usize,
    trials: usize,
    rows: Vec<PerfRow>,
}

impl_to_json!(struct PerfReport { host_parallelism, trials, rows });

/// Elapsed seconds for rate computation, floored at one microsecond so
/// a degenerate measurement (a scheduler hiccup rounding a tiny batch
/// to zero, or a clock with coarse resolution) yields a huge-but-finite
/// rate instead of `inf`/`NaN` poisoning the JSON report.
fn elapsed_secs_clamped(wall_ms: f64) -> f64 {
    (wall_ms / 1e3).max(1e-6)
}

/// Runs `trials` seeds of `scenario` across `jobs` workers, returning
/// (wall milliseconds, total simulator events dispatched).
fn measure(scenario: &str, trials: usize, jobs: usize) -> (f64, u64) {
    let batch = telemetry::open_batch(&format!("perf/{scenario}/jobs_{jobs}"));
    let t0 = Instant::now();
    let events = pool::run_indexed(jobs, trials, |t| {
        let _tele = telemetry::trial_slot(batch, t as u64);
        let seed = 91_000 + t as u64;
        match scenario {
            "h2_baseline" => run_isidewith_trial(seed, None).result.sim_events,
            "h2_full_attack" => {
                run_isidewith_trial(seed, Some(AttackConfig::full_attack()))
                    .result
                    .sim_events
            }
            "h3_full_attack" => {
                run_isidewith_h3_trial(seed, Some(AttackConfig::full_attack()))
                    .result
                    .sim_events
            }
            other => unreachable!("unknown scenario {other}"),
        }
    });
    let wall_ms = t0.elapsed().as_nanos() as f64 / 1e6;
    (wall_ms, events.iter().sum())
}

fn main() {
    let o = obs::init();
    // Keep the trial count non-zero so even the smoke run is meaningful.
    let trials = trials_arg(100).max(1);
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simperf.json");
    let out_path = h2priv_bench::positional(2).unwrap_or_else(|| default_out.to_string());

    let host = pool::available_jobs();
    let jobs_max = pool::resolve_jobs(0);
    odetail!("perfbench: {trials} trials/scenario, host parallelism {host}...");

    let scenarios = ["h2_baseline", "h2_full_attack", "h3_full_attack"];
    let mut rows = Vec::new();
    for scenario in scenarios {
        let (wall_1, events_1) = measure(scenario, trials, 1);
        let (wall_n, events_n) = measure(scenario, trials, jobs_max);
        assert_eq!(
            events_1, events_n,
            "{scenario}: event counts diverged between jobs=1 and jobs={jobs_max}"
        );
        for (jobs, wall_ms, events) in [(1, wall_1, events_1), (jobs_max, wall_n, events_n)] {
            let secs = elapsed_secs_clamped(wall_ms);
            rows.push(PerfRow {
                scenario: scenario.to_string(),
                jobs,
                trials,
                wall_ms,
                trials_per_sec: trials as f64 / secs,
                events_total: events,
                events_per_sec: events as f64 / secs,
                speedup_vs_jobs1: elapsed_secs_clamped(wall_1) / secs,
            });
        }
        odetail!(
            "  {scenario:<16} jobs=1 {:>9.1} ms | jobs={jobs_max} {:>9.1} ms | speedup {:.2}x",
            wall_1,
            wall_n,
            elapsed_secs_clamped(wall_1) / elapsed_secs_clamped(wall_n)
        );
    }

    let report = PerfReport {
        host_parallelism: host,
        trials,
        rows,
    };
    let json = to_json(&report) + "\n";
    std::fs::write(&out_path, &json).expect("write perf report");
    odetail!("wrote {out_path}");
    print!("{json}");
    obs::finish(&o);
}

#[cfg(test)]
mod tests {
    use super::elapsed_secs_clamped;

    #[test]
    fn zero_elapsed_is_clamped_to_a_finite_floor() {
        assert_eq!(elapsed_secs_clamped(0.0), 1e-6);
        // A rate over the clamped duration is finite.
        let rate = 100.0 / elapsed_secs_clamped(0.0);
        assert!(rate.is_finite());
    }

    #[test]
    fn near_zero_elapsed_is_clamped_up() {
        assert_eq!(elapsed_secs_clamped(1e-9), 1e-6);
        assert_eq!(elapsed_secs_clamped(-1.0), 1e-6);
    }

    #[test]
    fn normal_elapsed_passes_through() {
        assert_eq!(elapsed_secs_clamped(1_000.0), 1.0);
        assert_eq!(elapsed_secs_clamped(250.0), 0.25);
    }
}
