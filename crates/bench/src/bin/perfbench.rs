//! Simulator throughput baseline: trials/sec and events/sec for a fixed
//! scenario set, at `jobs = 1` (the sequential legacy path) and
//! `jobs = 0` (all cores), writing `BENCH_simperf.json` at the repo root
//! so the performance trajectory is tracked alongside the figures.
//!
//! The two job counts run the same seeds and must dispatch the same
//! total event count — the run aborts if they disagree, so the perf
//! baseline doubles as a determinism check. Each (scenario, jobs) cell
//! is timed `PERFBENCH_REPS` times (default 3) and the reported wall
//! time — and therefore `speedup_vs_jobs1` — is the median repetition,
//! not a single draw.
//!
//! ```sh
//! cargo run --release -p h2priv-bench --bin perfbench -- [trials=100] [out-path] [--trace out.jsonl] [--metrics]
//! ```

use h2priv_bench::{obs, odetail, out, trials_arg};
use h2priv_core::attack::AttackConfig;
use h2priv_core::experiment::{run_isidewith_h3_trial, run_isidewith_trial};
use h2priv_core::report::to_json;
use h2priv_util::impl_to_json;
use h2priv_util::json::ToJson;
use h2priv_util::{alloc, pool, telemetry};
use std::time::Instant;

/// Count every allocation the trial loop makes. The counter bump is a
/// thread-local add (~1 ns), invisible next to a malloc, so the timed
/// rows stay comparable with historical numbers.
#[global_allocator]
static ALLOC: alloc::CountingAlloc = alloc::CountingAlloc::new();

/// One (scenario, jobs) measurement.
#[derive(Debug, Clone)]
struct PerfRow {
    scenario: String,
    jobs: usize,
    trials: usize,
    wall_ms: f64,
    trials_per_sec: f64,
    events_total: u64,
    events_per_sec: f64,
    /// Wall-clock speedup of this row over the same scenario at jobs=1.
    speedup_vs_jobs1: f64,
}

impl_to_json!(struct PerfRow {
    scenario,
    jobs,
    trials,
    wall_ms,
    trials_per_sec,
    events_total,
    events_per_sec,
    speedup_vs_jobs1,
});

/// Per-scenario allocation audit: total allocations across the trial
/// sweep and the per-trial average, measured single-threaded with the
/// counting global allocator.
#[derive(Debug, Clone)]
struct AllocRow {
    scenario: String,
    trials: usize,
    allocs_total: u64,
    allocs_per_trial: f64,
    alloc_bytes_per_trial: f64,
}

impl_to_json!(struct AllocRow {
    scenario,
    trials,
    allocs_total,
    allocs_per_trial,
    alloc_bytes_per_trial,
});

/// The full report written to `BENCH_simperf.json`.
#[derive(Debug, Clone)]
struct PerfReport {
    /// `std::thread::available_parallelism()` on the measuring host —
    /// speedups are only meaningful relative to this.
    host_parallelism: usize,
    trials: usize,
    rows: Vec<PerfRow>,
    allocs: Vec<AllocRow>,
}

impl_to_json!(struct PerfReport { host_parallelism, trials, rows, allocs });

/// One appended line of `BENCH_history.jsonl`: the perf trajectory of a
/// scenario across commits. `events_per_sec` is the sequential
/// (`jobs = 1`) rate so lines from hosts with different core counts
/// stay comparable.
#[derive(Debug, Clone)]
struct HistoryLine {
    git: String,
    scenario: String,
    trials: usize,
    events_per_sec: f64,
    allocs_per_trial: f64,
}

impl_to_json!(struct HistoryLine {
    git,
    scenario,
    trials,
    events_per_sec,
    allocs_per_trial,
});

/// Elapsed seconds for rate computation, floored at one microsecond so
/// a degenerate measurement (a scheduler hiccup rounding a tiny batch
/// to zero, or a clock with coarse resolution) yields a huge-but-finite
/// rate instead of `inf`/`NaN` poisoning the JSON report.
fn elapsed_secs_clamped(wall_ms: f64) -> f64 {
    (wall_ms / 1e3).max(1e-6)
}

/// Runs one trial of `scenario` at `seed`, returning the simulator
/// event count.
fn run_scenario_trial(scenario: &str, seed: u64) -> u64 {
    match scenario {
        "h2_baseline" => run_isidewith_trial(seed, None).result.sim_events,
        "h2_full_attack" => {
            run_isidewith_trial(seed, Some(AttackConfig::full_attack()))
                .result
                .sim_events
        }
        "h3_full_attack" => {
            run_isidewith_h3_trial(seed, Some(AttackConfig::full_attack()))
                .result
                .sim_events
        }
        other => unreachable!("unknown scenario {other}"),
    }
}

/// Runs `trials` seeds of `scenario` across `jobs` workers, returning
/// (wall milliseconds, total simulator events dispatched).
fn measure(scenario: &str, trials: usize, jobs: usize) -> (f64, u64) {
    let batch = telemetry::open_batch(&format!("perf/{scenario}/jobs_{jobs}"));
    let t0 = Instant::now();
    let events = pool::run_indexed(jobs, trials, |t| {
        let _tele = telemetry::trial_slot(batch, t as u64);
        run_scenario_trial(scenario, 91_000 + t as u64)
    });
    let wall_ms = t0.elapsed().as_nanos() as f64 / 1e6;
    (wall_ms, events.iter().sum())
}

/// Counts allocations across a sequential run of all `trials` seeds on
/// the calling thread (per-thread counters, so the parallel timing
/// passes don't pollute the figure). One warm-up trial precedes the
/// count so lazily initialised statics — telemetry sinks, thread-local
/// scratch — don't inflate the steady-state number.
fn measure_allocs(scenario: &str, trials: usize) -> AllocRow {
    run_scenario_trial(scenario, 91_000);
    let ((), allocs, bytes) = alloc::counting(|| {
        for t in 0..trials {
            run_scenario_trial(scenario, 91_000 + t as u64);
        }
    });
    let per_trial = trials.max(1) as f64;
    AllocRow {
        scenario: scenario.to_string(),
        trials,
        allocs_total: allocs,
        allocs_per_trial: allocs as f64 / per_trial,
        alloc_bytes_per_trial: bytes as f64 / per_trial,
    }
}

/// `git describe --always --dirty` of the checkout this binary was
/// built from, or `"unknown"` when git is unavailable (e.g. a source
/// tarball). History lines are only comparable across commits if each
/// records which commit produced it.
fn git_describe() -> String {
    let repo = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .current_dir(repo)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Runs `measure` `reps` times and returns the median wall time plus the
/// (identical across repetitions — asserted) event total. A single timed
/// pass on a busy host can land on a scheduler hiccup; the median of an
/// odd repetition count is robust to one outlier in either direction, so
/// `speedup_vs_jobs1` compares two medians instead of two lottery draws.
fn measure_median(scenario: &str, trials: usize, jobs: usize, reps: usize) -> (f64, u64) {
    let mut walls = Vec::with_capacity(reps);
    let mut events = None;
    for _ in 0..reps.max(1) {
        let (wall, ev) = measure(scenario, trials, jobs);
        if let Some(prev) = events {
            assert_eq!(
                prev, ev,
                "{scenario}: event counts diverged between repetitions at jobs={jobs}"
            );
        }
        events = Some(ev);
        walls.push(wall);
    }
    (median(&mut walls), events.unwrap_or(0))
}

/// The median of a non-empty sample. Even lengths average the two
/// middle elements — returning the upper-middle alone would bias wall
/// times (and therefore `speedup_vs_jobs1`) upward whenever
/// `PERFBENCH_REPS` is even.
fn median(walls: &mut [f64]) -> f64 {
    walls.sort_by(|a, b| a.total_cmp(b));
    let mid = walls.len() / 2;
    if walls.len().is_multiple_of(2) {
        (walls[mid - 1] + walls[mid]) / 2.0
    } else {
        walls[mid]
    }
}

fn main() {
    let o = obs::init();
    // Keep the trial count non-zero so even the smoke run is meaningful.
    let trials = trials_arg(100).max(1);
    // Odd repetition count per (scenario, jobs) cell; the reported wall
    // time and speedup use the median run. Overridable for smoke tests.
    let reps = std::env::var("PERFBENCH_REPS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(3)
        .max(1);
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simperf.json");
    let out_path = h2priv_bench::positional(2).unwrap_or_else(|| default_out.to_string());

    let host = pool::available_jobs();
    let jobs_max = pool::resolve_jobs(0);
    odetail!("perfbench: {trials} trials/scenario, host parallelism {host}...");

    let scenarios = ["h2_baseline", "h2_full_attack", "h3_full_attack"];
    let mut rows = Vec::new();
    let mut allocs = Vec::new();
    for scenario in scenarios {
        let (wall_1, events_1) = measure_median(scenario, trials, 1, reps);
        let (wall_n, events_n) = measure_median(scenario, trials, jobs_max, reps);
        assert_eq!(
            events_1, events_n,
            "{scenario}: event counts diverged between jobs=1 and jobs={jobs_max}"
        );
        for (jobs, wall_ms, events) in [(1, wall_1, events_1), (jobs_max, wall_n, events_n)] {
            let secs = elapsed_secs_clamped(wall_ms);
            rows.push(PerfRow {
                scenario: scenario.to_string(),
                jobs,
                trials,
                wall_ms,
                trials_per_sec: trials as f64 / secs,
                events_total: events,
                events_per_sec: events as f64 / secs,
                speedup_vs_jobs1: elapsed_secs_clamped(wall_1) / secs,
            });
        }
        let audit = measure_allocs(scenario, trials);
        odetail!(
            "  {scenario:<16} jobs=1 {:>9.1} ms | jobs={jobs_max} {:>9.1} ms | speedup {:.2}x | {:.0} allocs/trial",
            wall_1,
            wall_n,
            elapsed_secs_clamped(wall_1) / elapsed_secs_clamped(wall_n),
            audit.allocs_per_trial
        );
        allocs.push(audit);
    }

    let report = PerfReport {
        host_parallelism: host,
        trials,
        rows,
        allocs,
    };
    let json = to_json(&report) + "\n";
    out::write_result_file(&out_path, &json);
    odetail!("wrote {out_path}");

    // Append one trajectory line per scenario next to the report file.
    // The sequential (jobs=1) rate is recorded so lines from hosts with
    // different core counts stay comparable across commits.
    let history_path = match out_path.rsplit_once('/') {
        Some((dir, _)) => format!("{dir}/BENCH_history.jsonl"),
        None => "BENCH_history.jsonl".to_string(),
    };
    let git = git_describe();
    for audit in &report.allocs {
        let seq = report
            .rows
            .iter()
            .find(|r| r.scenario == audit.scenario && r.jobs == 1);
        let line = HistoryLine {
            git: git.clone(),
            scenario: audit.scenario.clone(),
            trials,
            events_per_sec: seq.map_or(0.0, |r| r.events_per_sec),
            allocs_per_trial: audit.allocs_per_trial,
        };
        out::append_result_line(&history_path, &line.to_json().to_string_compact());
    }
    odetail!("appended {} lines to {history_path}", report.allocs.len());
    out::stdout_str(&json);
    obs::finish(&o);
}

#[cfg(test)]
mod tests {
    use super::{elapsed_secs_clamped, median};

    #[test]
    fn median_of_odd_sample_ignores_one_outlier_per_side() {
        assert_eq!(median(&mut [250.0, 900.0, 240.0]), 250.0);
        assert_eq!(median(&mut [10.0, 1.0, 2.0, 3.0, 4.0]), 3.0);
    }

    #[test]
    fn median_of_single_sample_is_that_sample() {
        assert_eq!(median(&mut [42.0]), 42.0);
    }

    #[test]
    fn median_of_even_sample_averages_the_middle_pair() {
        assert_eq!(median(&mut [4.0, 1.0]), 2.5);
        assert_eq!(median(&mut [10.0, 1.0, 2.0, 3.0]), 2.5);
        // An upper outlier must not drag an even-length median upward.
        assert_eq!(median(&mut [250.0, 900.0, 240.0, 245.0]), 247.5);
    }

    #[test]
    fn zero_elapsed_is_clamped_to_a_finite_floor() {
        assert_eq!(elapsed_secs_clamped(0.0), 1e-6);
        // A rate over the clamped duration is finite.
        let rate = 100.0 / elapsed_secs_clamped(0.0);
        assert!(rate.is_finite());
    }

    #[test]
    fn near_zero_elapsed_is_clamped_up() {
        assert_eq!(elapsed_secs_clamped(1e-9), 1e-6);
        assert_eq!(elapsed_secs_clamped(-1.0), 1e-6);
    }

    #[test]
    fn normal_elapsed_passes_through() {
        assert_eq!(elapsed_secs_clamped(1_000.0), 1.0);
        assert_eq!(elapsed_secs_clamped(250.0), 0.25);
    }
}
