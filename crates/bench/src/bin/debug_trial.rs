//! Deep-dive diagnostics for a single attacked trial: per-object serve
//! timing, degrees, predictor units, and the inferred vs true ranking.
//!
//! ```sh
//! cargo run --release -p h2priv-bench --bin debug_trial -- [seed=1] [--trace out.jsonl] [--metrics]
//! ```

use h2priv_bench::{obs, oinfo};
use h2priv_core::attack::AttackConfig;
use h2priv_core::experiment::run_isidewith_trial;
use h2priv_util::telemetry;

fn main() {
    let o = obs::init();
    let seed: u64 = h2priv_bench::count_arg(1, "seed", 1, "[seed=1]");
    let batch = telemetry::open_batch(&format!("debug_trial/seed_{seed}"));
    let trial = {
        let _tele = telemetry::trial_slot(batch, 0);
        run_isidewith_trial(seed, Some(AttackConfig::full_attack()))
    };

    oinfo!("attack events: {:?}", trial.result.attack.events);
    oinfo!(
        "client: rereq={} resets={} broken={} tcp_retx={} | server tcp_retx={}",
        trial.result.client.h2_rerequests,
        trial.result.client.resets_sent,
        trial.result.client.connection_broken,
        trial.result.client_tcp.retransmits(),
        trial.result.server_tcp.retransmits(),
    );

    oinfo!("\n-- objects of interest (ground truth) --");
    let mut interest = vec![
        (h2priv_web::ObjectId(4), "api/submit".to_string()),
        (trial.iw.html, "HTML".to_string()),
    ];
    for (i, img) in trial.iw.images.iter().enumerate() {
        interest.push((*img, format!("I{} ({})", i + 1, trial.iw.result_order[i])));
    }
    for (obj, label) in &interest {
        let mux = trial.result.degree(*obj);
        let serves: Vec<String> = trial
            .result
            .serve_log
            .iter()
            .filter(|s| s.object == *obj)
            .map(|s| {
                format!(
                    "copy{} req@{:.2}s fb@{} done@{} killed={}",
                    s.copy,
                    s.requested_at.as_secs_f64(),
                    s.first_byte_at
                        .map(|t| format!("{:.2}s", t.as_secs_f64()))
                        .unwrap_or("-".into()),
                    s.completed_at
                        .map(|t| format!("{:.2}s", t.as_secs_f64()))
                        .unwrap_or("-".into()),
                    s.killed
                )
            })
            .collect();
        oinfo!("  {label:<28} degrees={:?}", mux.per_copy);
        for s in serves {
            oinfo!("      {s}");
        }
    }

    {
        use h2priv_netsim::packet::Direction;
        let view = h2priv_trace::reassembly::reassemble(
            &trial.result.trace,
            Direction::ServerToClient,
            false,
        );
        let last_pkt = trial
            .result
            .trace
            .packets
            .last()
            .map(|p| p.time.as_secs_f64())
            .unwrap_or(0.0);
        let last_rec = view
            .records
            .last()
            .map(|r| r.completed_at.as_secs_f64())
            .unwrap_or(0.0);
        oinfo!(
            "\n-- s2c reassembly: records={} retx_segs={} unique={} desynced={} contiguous_end={} parse_ptr={} last_pkt@{last_pkt:.2}s last_rec@{last_rec:.2}s",
            view.records.len(), view.retransmitted_segments, view.unique_bytes,
            view.desynced, view.contiguous_end, view.parse_ptr
        );
    }
    {
        // Which entities bracket the HTML's best copy?
        use h2priv_core::metrics::entities;
        let ents = entities(&trial.result.wire_map);
        for e in ents.iter().filter(|e| e.id.object == trial.iw.html) {
            oinfo!(
                "\n-- html copy{} offsets [{}, {}) bytes={}",
                e.id.copy,
                e.start,
                e.end,
                e.bytes
            );
            for o in ents
                .iter()
                .filter(|o| o.id != e.id && o.start < e.end && o.end > e.start)
            {
                oinfo!(
                    "     overlapped by obj{} copy{} [{}, {}) bytes={}",
                    o.id.object.0,
                    o.id.copy,
                    o.start,
                    o.end,
                    o.bytes
                );
            }
        }
    }
    oinfo!("\n-- server diag: {:?}", trial.result.server_diag);
    oinfo!(
        "-- blocked log (first/last 6): {:?}",
        trial.result.server_diag2.iter().take(6).collect::<Vec<_>>()
    );
    oinfo!(
        "--                        tail: {:?}",
        trial
            .result
            .server_diag2
            .iter()
            .rev()
            .take(6)
            .collect::<Vec<_>>()
    );
    oinfo!("\n-- client request records (objects of interest) --");
    for (obj, label) in &interest {
        for r in trial
            .result
            .client
            .requests
            .iter()
            .filter(|r| r.object == *obj)
        {
            oinfo!(
                "  {label:<24} a{} {} iss@{:.2}s hdr@{} data@{} done@{} reset={}",
                r.attempt,
                r.stream,
                r.issued_at.as_secs_f64(),
                r.headers_at
                    .map(|t| format!("{:.2}", t.as_secs_f64()))
                    .unwrap_or("-".into()),
                r.first_data_at
                    .map(|t| format!("{:.2}", t.as_secs_f64()))
                    .unwrap_or("-".into()),
                r.completed_at
                    .map(|t| format!("{:.2}", t.as_secs_f64()))
                    .unwrap_or("-".into()),
                r.reset
            );
        }
    }
    oinfo!("\n-- predictor units --");
    for u in &trial.prediction.units {
        oinfo!(
            "  [{:>8.3}s..{:>8.3}s] est={:>6} recs={:>3} -> {:?}",
            u.unit.start.as_secs_f64(),
            u.unit.end.as_secs_f64(),
            u.unit.estimated_payload,
            u.unit.records,
            u.label
        );
    }

    oinfo!(
        "\npredicted order: {:?}",
        trial
            .predicted_order()
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
    );
    oinfo!(
        "truth order:     {:?}",
        trial
            .iw
            .result_order
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
    );
    oinfo!("sequence success: {:?}", trial.sequence_success());
    oinfo!("html outcome: {:?}", trial.html_outcome());
    obs::finish(&o);
}
