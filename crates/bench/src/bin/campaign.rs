//! Crash-safe sharded campaign runner.
//!
//! Shards an experiment's `(batch, trial)` space across supervised
//! worker processes (the experiment's own bench bin in `--shard-worker`
//! mode), streams per-trial results into an append-only checksummed
//! journal, and folds the final report incrementally in global cell
//! order — so the journal and the report are **byte-identical at any
//! shard count and across any kill/resume schedule**.
//!
//! ```sh
//! cargo run --release -p h2priv-bench --bin campaign -- \
//!     robustness_sweep [trials=50] --journal camp.jsonl \
//!     [--out report.json] [--shards N] [--resume] \
//!     [--heartbeat-ms N] [--max-respawns N] [--fail-on-crash] \
//!     [--inject-kill shard=N,trial=K[,repeat]] [--inject-stall ...] [--quiet]
//! ```
//!
//! `--resume` recovers the journal (dropping a truncated final line),
//! replays its completed trials into the fold, and re-executes only the
//! missing cells. `--fail-on-crash` aborts on the first worker crash
//! instead of respawning — together with `--inject-kill` this stops a
//! campaign at an exact deterministic point, which is how the resume
//! tests and `scripts/verify.sh` exercise the recovery path.

use std::time::Duration;

use h2priv_bench::{
    flag_present, flag_u64, flag_value, flag_values, obs, odetail, oerror, oinfo, out, owarn,
    positional,
};
use h2priv_campaign::inject::{InjectKind, InjectSchedule, InjectSpec};
use h2priv_campaign::journal::{self, Journal};
use h2priv_campaign::record::{self, LineBody};
use h2priv_campaign::supervisor::{self, SupervisorConfig, WorkerCmd};
use h2priv_core::campaign::{CampaignSpec, CAMPAIGN_EXPERIMENTS};

/// Crashes attributable to one cell before the range is declared
/// poisoned.
const MAX_CELL_ATTEMPTS: u32 = 3;

fn usage_exit() -> ! {
    oerror!(
        "usage: campaign <experiment> [trials] --journal FILE [--out FILE] [--shards N] \
         [--resume] [--heartbeat-ms N] [--max-respawns N] [--fail-on-crash] \
         [--inject-kill shard=N,trial=K[,repeat]] [--inject-stall ...] [--quiet]"
    );
    oerror!("experiments: {}", CAMPAIGN_EXPERIMENTS.join(", "));
    std::process::exit(2)
}

fn fail(message: &str) -> ! {
    oerror!("error: {message}");
    std::process::exit(1)
}

fn parse_injections() -> InjectSchedule {
    let mut schedule = InjectSchedule::new();
    for (flag, kind) in [
        ("--inject-kill", InjectKind::Kill),
        ("--inject-stall", InjectKind::Stall),
    ] {
        for raw in flag_values(flag) {
            match InjectSpec::parse(&raw) {
                Ok(spec) => schedule.add(kind, spec),
                Err(e) => {
                    oerror!("error: {flag} {raw:?}: {e}");
                    std::process::exit(2);
                }
            }
        }
    }
    schedule
}

fn main() {
    let _o = obs::init();
    let Some(experiment) = positional(1) else {
        usage_exit();
    };
    let default_trials = match experiment.as_str() {
        "table1" => 100,
        _ => 50,
    };
    let trials = h2priv_bench::count_arg(
        2,
        "trials",
        default_trials,
        &format!("<experiment> [trials={default_trials}] --journal FILE ..."),
    );
    let Some(spec) = CampaignSpec::for_experiment(&experiment, trials) else {
        oerror!(
            "error: unknown experiment {experiment:?} (expected one of: {})",
            CAMPAIGN_EXPERIMENTS.join(", ")
        );
        std::process::exit(2);
    };
    let Some(journal_path) = flag_value("--journal") else {
        oerror!("error: --journal FILE is required (the append-only trial journal)");
        usage_exit();
    };
    let journal_path = std::path::PathBuf::from(journal_path);
    let out_path = flag_value("--out");
    let shards = match flag_u64("--shards", 0) {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        n => n as usize,
    };
    let resume = flag_present("--resume");
    let mut inject = parse_injections();

    let total = spec.total_cells();
    let mut folder = spec.folder();
    let header_line = record::stamp(&record::header_body(&spec.header_fields()));

    // Open (or recover) the journal and bring the fold up to date.
    let mut journal = if resume {
        let recovered = match journal::recover(&journal_path) {
            Ok(r) => r,
            Err(e) => fail(&format!("cannot resume {}: {e}", journal_path.display())),
        };
        let expected = record::header_body(&spec.header_fields());
        if recovered.header != expected {
            fail(&format!(
                "journal {} belongs to a different campaign (header {}, expected {})",
                journal_path.display(),
                recovered.header.to_string_compact(),
                expected.to_string_compact()
            ));
        }
        if recovered.dropped_tail > 0 {
            owarn!(
                "journal: dropping {} bytes of partial final line (crash residue)",
                recovered.dropped_tail
            );
        }
        if let Err(e) = journal::truncate_to(&journal_path, recovered.good_bytes) {
            fail(&format!("cannot truncate journal: {e}"));
        }
        for r in &recovered.records {
            if let Err(e) = folder.push(r.batch, r.trial, &r.payload) {
                fail(&format!("journal replay: {e}"));
            }
        }
        odetail!(
            "resume: {} of {total} cells replayed from {}",
            recovered.records.len(),
            journal_path.display()
        );
        match Journal::open_append(&journal_path) {
            Ok(j) => j,
            Err(e) => fail(&format!("cannot reopen journal: {e}")),
        }
    } else {
        match Journal::create(&journal_path, &header_line) {
            Ok(j) => j,
            Err(e) => fail(&format!(
                "cannot create journal {}: {e}",
                journal_path.display()
            )),
        }
    };

    let start_cell = folder.next_cell();
    let worker_program = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join(spec.worker_bin())))
        .unwrap_or_else(|| fail("cannot locate worker binary next to the campaign binary"));
    let cmd = WorkerCmd {
        program: worker_program,
        args: vec![trials.to_string(), "--shard-worker".to_string()],
    };
    let cfg = SupervisorConfig {
        shards,
        heartbeat: Duration::from_millis(flag_u64("--heartbeat-ms", 10_000)),
        max_respawns_per_slot: flag_u64("--max-respawns", 3) as u32,
        max_cell_attempts: MAX_CELL_ATTEMPTS,
        fail_on_crash: flag_present("--fail-on-crash"),
        backoff_seed: spec.base_seed,
    };

    odetail!(
        "campaign {experiment}: {total} cells ({} batches x {trials} trials), \
         {} to run, {shards} shard(s)",
        spec.batches.len(),
        total - start_cell
    );

    let stats = supervisor::run(
        &cfg,
        &cmd,
        start_cell,
        total,
        &mut inject,
        |_cell, raw, body| {
            let LineBody::Record {
                batch,
                trial,
                payload,
                ..
            } = body
            else {
                return Err("non-record line reached the journal".to_string());
            };
            journal
                .append_line(raw)
                .map_err(|e| format!("journal append: {e}"))?;
            folder.push(*batch, *trial, payload)
        },
    );
    let stats = match stats {
        Ok(s) => s,
        Err(e) => fail(&format!("campaign failed: {e}")),
    };

    if stats.respawns > 0 || stats.stall_kills > 0 || stats.reassigned_ranges > 0 {
        owarn!(
            "campaign recovered from failures: {} respawn(s), {} stall kill(s), \
             {} range reassignment(s)",
            stats.respawns,
            stats.stall_kills,
            stats.reassigned_ranges
        );
    }
    odetail!(
        "campaign done: {} cells run this invocation, reorder high-water {}, \
         {} duplicate record(s) dropped",
        stats.cells_run,
        stats.max_pending,
        stats.duplicates_dropped
    );

    let report = match folder.finish() {
        Ok(r) => r,
        Err(e) => fail(&e),
    };
    match out_path {
        Some(path) => {
            out::write_result_file(&path, &report);
            oinfo!("campaign: report -> {path}");
        }
        None => out::stdout_str(&report),
    }
}
