//! Regenerates **Table I** — effect of jitter on HTTP/2 multiplexing of
//! the 6th object (the result HTML).
//!
//! ```sh
//! cargo run --release -p h2priv-bench --bin table1_jitter -- [trials=100] [--jobs N]
//! ```

use h2priv_bench::{jobs_arg, trials_arg};
use h2priv_core::experiments::table1;
use h2priv_core::report::{pct, render_table, to_json};

fn main() {
    let trials = trials_arg(100);
    let jobs = jobs_arg();
    eprintln!("Table I: {trials} downloads per jitter value...");
    let rows = table1(trials, 11_000, jobs);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.jitter_ms.to_string(),
                pct(r.pct_not_multiplexed),
                format!("{:.1}", r.retransmissions_avg),
                pct(r.retrans_increase_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "increase in delay per request (ms)",
                "object not multiplexed (%)",
                "retransmissions (avg)",
                "increase in retransmissions (%)",
            ],
            &table
        )
    );
    println!("paper Table I: 0/25/50/100 ms -> 32/46/54/54 % ; retrans +0/+33/+130/+194 %");
    eprintln!("{}", to_json(&rows));
}
