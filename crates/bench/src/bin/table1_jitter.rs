//! Regenerates **Table I** — effect of jitter on HTTP/2 multiplexing of
//! the 6th object (the result HTML).
//!
//! ```sh
//! cargo run --release -p h2priv-bench --bin table1_jitter -- [trials=100] [--jobs N] [--trace out.jsonl] [--metrics]
//! ```

use h2priv_bench::{jobs_arg, obs, odetail, oinfo, shard, trials_arg};
use h2priv_core::experiments::table1;
use h2priv_core::report::{pct, render_table, to_json};

fn main() {
    if shard::maybe_worker("table1", 100) {
        return;
    }
    let o = obs::init();
    let trials = trials_arg(100);
    let jobs = jobs_arg();
    odetail!("Table I: {trials} downloads per jitter value...");
    let rows = table1(trials, 11_000, jobs);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.jitter_ms.to_string(),
                pct(r.pct_not_multiplexed),
                format!("{:.1}", r.retransmissions_avg),
                pct(r.retrans_increase_pct),
            ]
        })
        .collect();
    oinfo!(
        "{}",
        render_table(
            &[
                "increase in delay per request (ms)",
                "object not multiplexed (%)",
                "retransmissions (avg)",
                "increase in retransmissions (%)",
            ],
            &table
        )
    );
    oinfo!("paper Table I: 0/25/50/100 ms -> 32/46/54/54 % ; retrans +0/+33/+130/+194 %");
    odetail!("{}", to_json(&rows));
    obs::finish(&o);
}
