//! Regenerates the **Figs. 2–3** mechanism demonstration — inter-request
//! spacing eliminates multiplexing.
//!
//! ```sh
//! cargo run --release -p h2priv-bench --bin fig2_spacing -- [trials=20] [--jobs N] [--trace out.jsonl] [--metrics]
//! ```

use h2priv_bench::{jobs_arg, obs, oinfo, trials_arg};
use h2priv_core::experiments::two_object_degrees;
use h2priv_core::report::{pct, pct_opt, render_table};
use h2priv_netsim::time::SimDuration;
use h2priv_util::{pool, telemetry};

fn main() {
    let o = obs::init();
    let trials = trials_arg(20);
    let jobs = jobs_arg();
    let gaps_ms = [0u64, 25, 50, 100, 200, 400, 800];
    let mut rows = Vec::new();
    for gap in gaps_ms {
        let batch = telemetry::open_batch(&format!("fig2/gap_{gap}ms"));
        let per_trial = pool::run_indexed(jobs, trials, |t| {
            let _tele = telemetry::trial_slot(batch, t as u64);
            two_object_degrees(SimDuration::from_millis(gap), 71_000 + gap * 100 + t as u64).0
        });
        let mut d1_sum = 0.0;
        let mut observed = 0u64;
        let mut serial = 0;
        for d1 in per_trial.into_iter().flatten() {
            d1_sum += d1;
            observed += 1;
            if d1 == 0.0 {
                serial += 1;
            }
        }
        let mean = (observed > 0).then(|| 100.0 * d1_sum / observed as f64);
        rows.push(vec![
            gap.to_string(),
            pct_opt(mean),
            pct(100.0 * serial as f64 / trials as f64),
        ]);
    }
    oinfo!(
        "{}",
        render_table(
            &[
                "inter-request gap (ms)",
                "O1 mean degree of multiplexing (%)",
                "O1 serialized (%)"
            ],
            &rows
        )
    );
    oinfo!("paper Figs. 2-3: spacing the second GET past O1's service time");
    oinfo!("lets the server finish O1 in single-threaded mode.");
    obs::finish(&o);
}
