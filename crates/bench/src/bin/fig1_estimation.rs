//! Regenerates the **Fig. 1** demonstration — estimating object sizes
//! from encrypted traffic works on serial transfers and fails on
//! multiplexed ones.
//!
//! ```sh
//! cargo run --release -p h2priv-bench --bin fig1_estimation -- [--jobs N]
//! ```

use h2priv_bench::jobs_arg;
use h2priv_core::experiments::fig1;
use h2priv_core::report::to_json;

fn main() {
    for row in fig1(61_000, jobs_arg()) {
        println!("case: {}", row.scenario);
        println!("  true sizes:      O1={} O2={}", row.truth.0, row.truth.1);
        println!("  unit estimates:  {:?}", row.estimates);
        println!("  both identified: {}", row.both_identified);
        eprintln!("{}", to_json(&row));
    }
    println!("\npaper Fig. 1: delimiting packets reveal sizes in case 1 (serial);");
    println!("interleaved segments defeat the estimation in case 2 (multiplexed).");
}
