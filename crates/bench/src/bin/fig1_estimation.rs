//! Regenerates the **Fig. 1** demonstration — estimating object sizes
//! from encrypted traffic works on serial transfers and fails on
//! multiplexed ones.
//!
//! ```sh
//! cargo run --release -p h2priv-bench --bin fig1_estimation -- [--jobs N] [--trace out.jsonl] [--metrics]
//! ```

use h2priv_bench::{jobs_arg, obs, odetail, oinfo};
use h2priv_core::experiments::fig1;
use h2priv_core::report::to_json;

fn main() {
    let o = obs::init();
    for row in fig1(61_000, jobs_arg()) {
        oinfo!("case: {}", row.scenario);
        oinfo!("  true sizes:      O1={} O2={}", row.truth.0, row.truth.1);
        oinfo!("  unit estimates:  {:?}", row.estimates);
        oinfo!("  both identified: {}", row.both_identified);
        odetail!("{}", to_json(&row));
    }
    oinfo!("\npaper Fig. 1: delimiting packets reveal sizes in case 1 (serial);");
    oinfo!("interleaved segments defeat the estimation in case 2 (multiplexed).");
    obs::finish(&o);
}
