//! Validates a `--trace` jsonl file with the in-tree tolerant jsonl
//! reader: every complete line must parse and carry the schema's
//! required keys (`batch`, `trial`, `t_ns`, `component`, `kind`). Used
//! by `scripts/verify.sh` to smoke the observability layer without any
//! external tooling.
//!
//! ```sh
//! cargo run --release -p h2priv-bench --bin trace_check -- trace.jsonl
//! ```
//!
//! A truncated final line — a partial record whose newline never hit
//! the disk, as a crashed writer leaves behind — is a *recoverable*
//! condition: it is reported as a warning with the byte offset where
//! the partial write starts, and the complete prefix still validates.
//! In-place corruption of a complete line stays a hard error.
//!
//! Prints `trace_check: N lines OK` and exits 0, or reports the first
//! offending line and exits 1.

use h2priv_bench::{oerror, oinfo, owarn};
use h2priv_util::json::Json;
use h2priv_util::jsonl;

fn main() {
    let path = match h2priv_bench::positional(1) {
        Some(p) => p,
        None => {
            oerror!("usage: trace_check trace.jsonl");
            std::process::exit(2);
        }
    };
    let bytes = match std::fs::read(&path) {
        Ok(c) => c,
        Err(e) => {
            oerror!("error: reading {path}: {e}");
            std::process::exit(1);
        }
    };
    let read = match jsonl::read_tolerant(&bytes) {
        Ok(r) => r,
        Err(e) => {
            oerror!("error: {path}:{}: {}", e.line, e.message);
            std::process::exit(1);
        }
    };
    for (i, json) in read.records.iter().enumerate() {
        let n = i + 1;
        for key in ["batch", "component", "kind"] {
            if json.get(key).and_then(Json::as_str).is_none() {
                oerror!("error: {path}: record {n}: missing string field {key:?}");
                std::process::exit(1);
            }
        }
        for key in ["trial", "t_ns"] {
            if json.get(key).and_then(Json::as_u64).is_none() {
                oerror!("error: {path}: record {n}: missing integer field {key:?}");
                std::process::exit(1);
            }
        }
    }
    if let Some(tail) = &read.truncated {
        owarn!(
            "warning: {path}: truncated final line ({} bytes of partial record \
             starting at byte {}); complete prefix is valid",
            tail.len,
            tail.byte_offset
        );
    }
    oinfo!("trace_check: {} lines OK", read.records.len());
}
