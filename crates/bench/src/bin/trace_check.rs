//! Validates a `--trace` jsonl file with the in-tree JSON parser: every
//! line must parse and carry the schema's required keys (`batch`,
//! `trial`, `t_ns`, `component`, `kind`). Used by `scripts/verify.sh`
//! to smoke the observability layer without any external tooling.
//!
//! ```sh
//! cargo run --release -p h2priv-bench --bin trace_check -- trace.jsonl
//! ```
//!
//! Prints `trace_check: N lines OK` and exits 0, or reports the first
//! offending line and exits 1.

use h2priv_bench::{oerror, oinfo};
use h2priv_util::json::Json;

fn main() {
    let path = match h2priv_bench::positional(1) {
        Some(p) => p,
        None => {
            oerror!("usage: trace_check trace.jsonl");
            std::process::exit(2);
        }
    };
    let content = match std::fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) => {
            oerror!("error: reading {path}: {e}");
            std::process::exit(1);
        }
    };
    let mut lines = 0usize;
    for (i, line) in content.lines().enumerate() {
        let n = i + 1;
        let json = match Json::parse(line) {
            Ok(j) => j,
            Err(e) => {
                oerror!("error: {path}:{n}: not valid JSON: {e}");
                std::process::exit(1);
            }
        };
        for key in ["batch", "component", "kind"] {
            if json.get(key).and_then(Json::as_str).is_none() {
                oerror!("error: {path}:{n}: missing string field {key:?}");
                std::process::exit(1);
            }
        }
        for key in ["trial", "t_ns"] {
            if json.get(key).and_then(Json::as_u64).is_none() {
                oerror!("error: {path}:{n}: missing integer field {key:?}");
                std::process::exit(1);
            }
        }
        lines += 1;
    }
    oinfo!("trace_check: {lines} lines OK");
}
