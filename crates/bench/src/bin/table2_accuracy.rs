//! Regenerates **Table II** — prediction accuracy of the full Section V
//! attack on the isidewith model.
//!
//! ```sh
//! cargo run --release -p h2priv-bench --bin table2_accuracy -- [trials=100] [--jobs N] [--trace out.jsonl] [--metrics]
//! ```

use h2priv_bench::{jobs_arg, obs, odetail, oinfo, trials_arg};
use h2priv_core::experiments::table2;
use h2priv_core::report::{pct, pct_opt, render_table, to_json};

fn main() {
    let o = obs::init();
    let trials = trials_arg(100);
    let jobs = jobs_arg();
    odetail!("Table II: {trials} attacked downloads...");
    let cols = table2(trials, 41_000, jobs);
    let table: Vec<Vec<String>> = cols
        .iter()
        .map(|c| {
            vec![
                c.object.clone(),
                pct_opt(c.gap_prev_ms),
                pct(c.pct_single_target),
                pct(c.pct_all_targets),
            ]
        })
        .collect();
    oinfo!(
        "{}",
        render_table(
            &[
                "object",
                "T(req curr)-T(req prev) (ms)",
                "success % target: one object",
                "success % target: all objects",
            ],
            &table
        )
    );
    oinfo!("paper Table II: single-target 100% everywhere;");
    oinfo!("all-targets 90/90/85/81/80/62/64/78/64 (HTML, I1..I8).");
    odetail!("{}", to_json(&cols));
    obs::finish(&o);
}
