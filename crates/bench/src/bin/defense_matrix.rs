//! The attack × defense × transport matrix: every countermeasure preset
//! (priority randomization, RFC 8467-style record/datagram padding,
//! constant-rate shaping with dummy cells, dummy-object injection,
//! connection-migration traffic splitting) against the full attack and
//! the jitter-only probe, on HTTP/2-over-TCP and HTTP/3-over-QUIC, with
//! bandwidth and latency overhead measured against the undefended cell
//! of each group.
//!
//! ```sh
//! cargo run --release -p h2priv-bench --bin defense_matrix -- [trials=25] [--jobs N] [--out path.json] [--trace out.jsonl] [--metrics]
//! ```

use h2priv_bench::{flag_value, jobs_arg, obs, odetail, oinfo, out, shard, trials_arg};
use h2priv_core::campaign::defense_matrix_report;
use h2priv_core::experiments::defense_matrix;
use h2priv_core::report::{pct, render_table};

fn main() {
    if shard::maybe_worker("defense_matrix", 25) {
        return;
    }
    let o = obs::init();
    let trials = trials_arg(25);
    let jobs = jobs_arg();
    odetail!("defense matrix: {trials} attacked downloads per (attack, transport, defense) cell");
    let rows = defense_matrix(trials, 83_000, jobs);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.attack.clone(),
                r.transport.clone(),
                r.defense.clone(),
                pct(r.pct_success),
                pct(r.pct_full_ranking),
                pct(r.pct_completed),
                format!("{:.0}", r.wire_bytes_avg / 1024.0),
                format!("{:+.1}%", r.bandwidth_overhead_pct),
                format!("{:+.1}%", r.latency_overhead_pct),
            ]
        })
        .collect();
    oinfo!(
        "{}",
        render_table(
            &[
                "attack",
                "transport",
                "defense",
                "success (%)",
                "full ranking (%)",
                "completed (%)",
                "wire (KiB)",
                "bw overhead",
                "latency overhead",
            ],
            &table
        )
    );
    oinfo!("reading: padding and shaping starve the size/segmentation channel the");
    oinfo!("attack identifies objects by; randomization and decoys corrupt the");
    oinfo!("inferred ranking instead; splitting hides half the bytes from the tap.");
    oinfo!("each defense buys its reduction with the overhead shown on the right.");

    let json = defense_matrix_report(&rows);
    let default_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/defense_matrix.json"
    );
    let out_path = flag_value("--out").unwrap_or_else(|| default_path.to_string());
    out::write_result_file(&out_path, &json);
    odetail!("wrote {out_path}");
    out::stderr_str(&json);
    obs::finish(&o);
}
