//! Failure-aware output primitives for the experiment binaries.
//!
//! The bins write three kinds of output — operator lines on
//! stdout/stderr, machine-readable dumps, and result files — and all
//! three can fail: a downstream `head` closes the pipe, a disk fills
//! mid-write. The std `println!` family *panics* on a broken pipe, which
//! turns a routine `bin | head` into a backtrace; a bare
//! `fs::write(...).expect(...)` does the same for result files. Every
//! output in the bench crate routes through these helpers instead, which
//! convert I/O failure into a clean nonzero exit: broken-pipe on a
//! console stream exits quietly (the reader hung up; there is nobody
//! left to tell), and anything else prints one diagnostic line to
//! whichever stream still works before exiting.

use std::io::{self, Write};

/// Exit status for output failures (distinct from usage errors' `2`).
const OUTPUT_ERROR_EXIT: i32 = 1;

fn die(stream: &str, err: &io::Error) -> ! {
    // Broken pipe: the consumer is gone, so there is no point (and no
    // way) in reporting — just stop cleanly instead of panicking.
    if err.kind() != io::ErrorKind::BrokenPipe {
        let _ = writeln!(io::stderr(), "error: writing to {stream}: {err}");
    }
    std::process::exit(OUTPUT_ERROR_EXIT);
}

/// Writes `text` (no newline appended) to stdout; exits nonzero on
/// failure instead of panicking.
pub fn stdout_str(text: &str) {
    let mut out = io::stdout().lock();
    if let Err(e) = out.write_all(text.as_bytes()).and_then(|()| out.flush()) {
        die("stdout", &e);
    }
}

/// Writes `line` plus a newline to stdout; exits nonzero on failure.
pub fn stdout_line(line: &str) {
    let mut out = io::stdout().lock();
    let write = out
        .write_all(line.as_bytes())
        .and_then(|()| out.write_all(b"\n"))
        .and_then(|()| out.flush());
    if let Err(e) = write {
        die("stdout", &e);
    }
}

/// Writes `text` (no newline appended) to stderr; exits nonzero on
/// failure.
pub fn stderr_str(text: &str) {
    let mut out = io::stderr().lock();
    if out
        .write_all(text.as_bytes())
        .and_then(|()| out.flush())
        .is_err()
    {
        std::process::exit(OUTPUT_ERROR_EXIT);
    }
}

/// Writes `line` plus a newline to stderr; exits nonzero on failure.
pub fn stderr_line(line: &str) {
    let mut out = io::stderr().lock();
    let write = out
        .write_all(line.as_bytes())
        .and_then(|()| out.write_all(b"\n"))
        .and_then(|()| out.flush());
    if write.is_err() {
        std::process::exit(OUTPUT_ERROR_EXIT);
    }
}

/// Writes a result file in one shot; exits nonzero with a diagnostic on
/// failure (short write, permission, full disk) instead of panicking.
pub fn write_result_file(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        let _ = writeln!(io::stderr(), "error: writing {path}: {e}");
        std::process::exit(OUTPUT_ERROR_EXIT);
    }
}

/// Appends `line` plus a newline to `path`, creating the file if absent;
/// exits nonzero with a diagnostic on failure. Used for append-only
/// history logs (e.g. `BENCH_history.jsonl`) that accumulate one record
/// per run across commits.
pub fn append_result_line(path: &str, line: &str) {
    let write = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| {
            f.write_all(line.as_bytes())
                .and_then(|()| f.write_all(b"\n"))
        });
    if let Err(e) = write {
        let _ = writeln!(io::stderr(), "error: appending to {path}: {e}");
        std::process::exit(OUTPUT_ERROR_EXIT);
    }
}
