//! A minimal timing harness for the `benches/` targets, replacing the
//! Criterion dependency. It keeps the slice of Criterion's API the bench
//! files use (`bench_function`, `iter`, `iter_batched`) so the benches
//! read the same, and reports per-iteration wall-clock statistics.
//!
//! This is a smoke-and-trend harness, not a statistics engine: each
//! benchmark runs a fixed number of samples and prints min/mean/max.

use std::hint::black_box;
use std::time::Instant;

/// Batch-size hint, accepted for source compatibility with the old
/// Criterion call sites. The harness times one call per sample either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is cheap to hold; time routine calls individually.
    SmallInput,
    /// Accepted for compatibility; treated the same as `SmallInput`.
    LargeInput,
}

/// Times one benchmark routine; handed to the closure given to
/// [`Harness::bench_function`].
pub struct Bencher {
    samples: usize,
    /// Nanoseconds per timed sample, filled by `iter`/`iter_batched`.
    pub times_ns: Vec<u64>,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // One warm-up call outside the timed region.
        black_box(routine());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.times_ns.push(t0.elapsed().as_nanos() as u64);
        }
    }

    /// Times `routine` on a fresh `setup()` value per sample; setup cost
    /// is excluded from the measurement.
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.times_ns.push(t0.elapsed().as_nanos() as u64);
        }
    }
}

/// Runs named benchmarks and prints their timing summaries.
pub struct Harness {
    samples: usize,
}

impl Default for Harness {
    fn default() -> Self {
        Harness { samples: 10 }
    }
}

impl Harness {
    /// A harness with the default sample count (10).
    pub fn new() -> Harness {
        Harness::default()
    }

    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, samples: usize) -> Harness {
        assert!(samples > 0, "sample_size must be positive");
        self.samples = samples;
        self
    }

    /// Runs one named benchmark and prints `name  min/mean/max`.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.samples,
            times_ns: Vec::new(),
        };
        f(&mut b);
        assert!(
            !b.times_ns.is_empty(),
            "benchmark {name} never called iter/iter_batched"
        );
        let min = *b.times_ns.iter().min().expect("non-empty");
        let max = *b.times_ns.iter().max().expect("non-empty");
        let mean = b.times_ns.iter().sum::<u64>() / b.times_ns.len() as u64;
        println!(
            "{name:<40} min {:>12}  mean {:>12}  max {:>12}  ({} samples)",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max),
            b.times_ns.len()
        );
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_requested_samples() {
        let mut h = Harness::new().sample_size(5);
        let mut calls = 0u32;
        h.bench_function("t", |b| {
            b.iter(|| calls += 1);
        });
        // 5 timed + 1 warm-up.
        assert_eq!(calls, 6);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut h = Harness::new().sample_size(4);
        let mut setups = 0u32;
        h.bench_function("t", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |v| v * 2,
                BatchSize::SmallInput,
            );
        });
        assert_eq!(setups, 5);
    }

    #[test]
    fn formats_units() {
        assert_eq!(fmt_ns(900), "900 ns");
        assert_eq!(fmt_ns(1_500), "1.500 us");
        assert_eq!(fmt_ns(2_000_000), "2.000 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
