//! The one leveled sink for operator-facing output.
//!
//! Every experiment binary routes its `println!`/`eprintln!` lines
//! through here (via the [`oinfo!`](crate::oinfo), [`owarn!`](crate::owarn),
//! [`oerror!`](crate::oerror) and [`odetail!`](crate::odetail) macros),
//! so verbosity is controlled in exactly one place: `--quiet` drops the
//! [`Level::Detail`] chatter, and errors always print. Each level keeps
//! the stream the raw macro used, so piped output is unchanged at the
//! default threshold.

use std::sync::atomic::{AtomicU8, Ordering};

/// Severity of one operator-output line, ordered from most to least
/// urgent. The stream is part of the contract: at the default
/// threshold every line reaches the same fd the old raw macro wrote
/// to, so redirections (`2> results/x.json`) see identical bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// A failure the operator must see (stderr); never filtered.
    Error = 0,
    /// A degradation worth flagging (stderr); survives `--quiet`.
    Warn = 1,
    /// Result tables and paper comparisons (stdout); survives
    /// `--quiet`.
    Info = 2,
    /// Progress chatter and machine-readable JSON dumps (stderr);
    /// `--quiet` drops these.
    Detail = 3,
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Detail as u8);

/// Sets the most-verbose level that still prints.
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The most-verbose level that still prints.
pub fn max_level() -> Level {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Detail,
    }
}

/// Writes one line through the sink, if `level` passes the threshold.
/// Delivery goes through [`crate::out`], so a broken pipe or failed
/// write is a clean nonzero exit, never a panic.
pub fn log(level: Level, line: &str) {
    if (level as u8) > MAX_LEVEL.load(Ordering::Relaxed) {
        return;
    }
    match level {
        Level::Info => crate::out::stdout_line(line),
        Level::Warn | Level::Error | Level::Detail => crate::out::stderr_line(line),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_round_trips() {
        set_max_level(Level::Warn);
        assert_eq!(max_level(), Level::Warn);
        set_max_level(Level::Error);
        assert_eq!(max_level(), Level::Error);
        set_max_level(Level::Info);
        assert_eq!(max_level(), Level::Info);
        set_max_level(Level::Detail);
        assert_eq!(max_level(), Level::Detail);
    }
}
