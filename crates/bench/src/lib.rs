//! Shared helpers for the experiment binaries.

#![warn(missing_docs)]

pub mod timing;

/// Parses the positional CLI argument at `position` (1-based argv index)
/// as a non-negative integer, with `default` when the argument is
/// absent. Malformed input is an error, not a silent fallback: the
/// binary prints a consistent usage line to stderr and exits with
/// status 2, so a typo like `--trials=1o0` can never masquerade as a
/// default-sized run.
pub fn count_arg(position: usize, name: &str, default: u64, usage_tail: &str) -> u64 {
    match std::env::args().nth(position) {
        None => default,
        Some(s) => s.parse().unwrap_or_else(|_| {
            let bin = std::env::args()
                .next()
                .as_deref()
                .and_then(|p| p.rsplit('/').next().map(str::to_string))
                .unwrap_or_else(|| "bench".to_string());
            eprintln!("error: invalid {name} {s:?} (expected a non-negative integer)");
            eprintln!("usage: {bin} {usage_tail}");
            std::process::exit(2);
        }),
    }
}

/// Parses the first CLI argument as a trial count, with a default.
/// Non-numeric input prints usage and exits with status 2.
pub fn trials_arg(default: usize) -> usize {
    count_arg(1, "trials", default as u64, &format!("[trials={default}]")) as usize
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}
