//! Shared helpers for the experiment binaries.

#![warn(missing_docs)]

pub mod timing;

/// Parses the first CLI argument as a trial count, with a default.
pub fn trials_arg(default: usize) -> usize {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}
