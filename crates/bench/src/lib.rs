//! Shared helpers for the experiment binaries.

#![warn(missing_docs)]

pub mod obs;
pub mod oplog;
pub mod out;
pub mod shard;
pub mod timing;

/// Prints an operator-facing info line through the leveled sink
/// ([`oplog`]); suppressed by `--quiet`.
#[macro_export]
macro_rules! oinfo {
    ($($arg:tt)*) => {
        $crate::oplog::log($crate::oplog::Level::Info, &format!($($arg)*))
    };
}

/// Prints an operator-facing warning line through the leveled sink
/// ([`oplog`]); survives `--quiet`.
#[macro_export]
macro_rules! owarn {
    ($($arg:tt)*) => {
        $crate::oplog::log($crate::oplog::Level::Warn, &format!($($arg)*))
    };
}

/// Prints an operator-facing error line through the leveled sink
/// ([`oplog`]); never filtered.
#[macro_export]
macro_rules! oerror {
    ($($arg:tt)*) => {
        $crate::oplog::log($crate::oplog::Level::Error, &format!($($arg)*))
    };
}

/// Prints progress chatter or a machine-readable dump (stderr) through
/// the leveled sink ([`oplog`]); dropped by `--quiet`.
#[macro_export]
macro_rules! odetail {
    ($($arg:tt)*) => {
        $crate::oplog::log($crate::oplog::Level::Detail, &format!($($arg)*))
    };
}

/// Parses the positional CLI argument at `position` (1-based argv index)
/// as a non-negative integer, with `default` when the argument is
/// absent. Malformed input is an error, not a silent fallback: the
/// binary prints a consistent usage line to stderr and exits with
/// status 2, so a typo like `--trials=1o0` can never masquerade as a
/// default-sized run.
pub fn count_arg(position: usize, name: &str, default: u64, usage_tail: &str) -> u64 {
    match positional_args().into_iter().nth(position) {
        None => default,
        Some(s) => s.parse().unwrap_or_else(|_| {
            let bin = std::env::args()
                .next()
                .as_deref()
                .and_then(|p| p.rsplit('/').next().map(str::to_string))
                .unwrap_or_else(|| "bench".to_string());
            oerror!("error: invalid {name} {s:?} (expected a non-negative integer)");
            oerror!("usage: {bin} {usage_tail}");
            std::process::exit(2);
        }),
    }
}

/// Flags that take a value (`--flag V` / `--flag=V`), shared by
/// positional stripping and flag lookup so the two can never disagree.
const VALUE_FLAGS: &[&str] = &[
    "--jobs",
    "--trace",
    "--shards",
    "--journal",
    "--out",
    "--heartbeat-ms",
    "--max-respawns",
    "--inject-kill",
    "--inject-stall",
    "--cells",
];

/// Flags that are bare booleans.
const BOOL_FLAGS: &[&str] = &[
    "--metrics",
    "--quiet",
    "--resume",
    "--fail-on-crash",
    "--shard-worker",
];

/// The command line with every flag removed — value flags (`--jobs N`,
/// `--trace FILE`, the campaign runner's `--shards`/`--journal`/…) and
/// boolean flags (`--metrics`, `--quiet`, `--resume`, …) — so positional
/// parsing ([`count_arg`]) and the flags compose in any order.
fn positional_args() -> Vec<String> {
    let args: Vec<String> = std::env::args().collect();
    let mut out = Vec::with_capacity(args.len());
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if VALUE_FLAGS.contains(&a.as_str()) {
            skip_next = true;
            continue;
        }
        if VALUE_FLAGS
            .iter()
            .any(|f| a.len() > f.len() && a.starts_with(f) && a.as_bytes()[f.len()] == b'=')
        {
            continue;
        }
        if BOOL_FLAGS.contains(&a.as_str()) {
            continue;
        }
        out.push(a);
    }
    out
}

/// The value of a `--name V` / `--name=V` flag, when present. `name`
/// must be listed in the crate's value-flag table so positional
/// stripping agrees with it.
pub fn flag_value(name: &str) -> Option<String> {
    flag_values(name).into_iter().next()
}

/// Every occurrence of a repeatable `--name V` / `--name=V` flag, in
/// command-line order.
pub fn flag_values(name: &str) -> Vec<String> {
    debug_assert!(VALUE_FLAGS.contains(&name), "unregistered flag {name}");
    let args: Vec<String> = std::env::args().collect();
    let mut out = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == name {
            out.push(args.get(i + 1).cloned().unwrap_or_default());
        } else if a.len() > name.len() && a.starts_with(name) && a.as_bytes()[name.len()] == b'=' {
            out.push(a[name.len() + 1..].to_string());
        }
    }
    out
}

/// True when a boolean `--name` flag is on the command line.
pub fn flag_present(name: &str) -> bool {
    debug_assert!(BOOL_FLAGS.contains(&name), "unregistered flag {name}");
    std::env::args().any(|a| a == name)
}

/// Parses a numeric flag value, with a default when absent. Malformed
/// input prints usage and exits with status 2, like [`count_arg`].
pub fn flag_u64(name: &str, default: u64) -> u64 {
    match flag_value(name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            oerror!("error: invalid {name} {v:?} (expected a non-negative integer)");
            std::process::exit(2);
        }),
    }
}

/// Parses the first CLI argument as a trial count, with a default.
/// Non-numeric input prints usage and exits with status 2.
pub fn trials_arg(default: usize) -> usize {
    count_arg(1, "trials", default as u64, &format!("[trials={default}]")) as usize
}

/// The positional CLI argument at `position` (1-based argv index), with
/// every flag (`--jobs`, `--trace`, `--metrics`, `--quiet`) already
/// stripped, so flags and positionals compose in any order.
pub fn positional(position: usize) -> Option<String> {
    positional_args().into_iter().nth(position)
}

/// Parses the worker count for the parallel trial executor: an optional
/// `--jobs N` flag anywhere on the command line (default `0` = all
/// cores; `1` = the legacy sequential path). Results are byte-identical
/// at any job count, so this only changes wall-clock time.
pub fn jobs_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        let value = if let Some(v) = a.strip_prefix("--jobs=") {
            Some(v.to_string())
        } else if a == "--jobs" {
            Some(args.get(i + 1).cloned().unwrap_or_default())
        } else {
            None
        };
        if let Some(v) = value {
            return v.parse().unwrap_or_else(|_| {
                oerror!("error: invalid jobs {v:?} (expected a non-negative integer)");
                oerror!("usage: [--jobs N]   (0 = all cores, 1 = sequential)");
                std::process::exit(2);
            });
        }
    }
    0
}

/// Prints a section banner through the leveled sink.
pub fn banner(title: &str) {
    oinfo!("\n=== {title} ===");
}
