//! Shared helpers for the experiment binaries.

#![warn(missing_docs)]

pub mod timing;

/// Parses the positional CLI argument at `position` (1-based argv index)
/// as a non-negative integer, with `default` when the argument is
/// absent. Malformed input is an error, not a silent fallback: the
/// binary prints a consistent usage line to stderr and exits with
/// status 2, so a typo like `--trials=1o0` can never masquerade as a
/// default-sized run.
pub fn count_arg(position: usize, name: &str, default: u64, usage_tail: &str) -> u64 {
    match positional_args().into_iter().nth(position) {
        None => default,
        Some(s) => s.parse().unwrap_or_else(|_| {
            let bin = std::env::args()
                .next()
                .as_deref()
                .and_then(|p| p.rsplit('/').next().map(str::to_string))
                .unwrap_or_else(|| "bench".to_string());
            eprintln!("error: invalid {name} {s:?} (expected a non-negative integer)");
            eprintln!("usage: {bin} {usage_tail}");
            std::process::exit(2);
        }),
    }
}

/// The command line with the `--jobs N` / `--jobs=N` flag (and its
/// value) removed, so positional parsing ([`count_arg`]) and the jobs
/// flag compose in any order.
fn positional_args() -> Vec<String> {
    let args: Vec<String> = std::env::args().collect();
    let mut out = Vec::with_capacity(args.len());
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--jobs" {
            skip_next = true;
            continue;
        }
        if a.starts_with("--jobs=") {
            continue;
        }
        out.push(a);
    }
    out
}

/// Parses the first CLI argument as a trial count, with a default.
/// Non-numeric input prints usage and exits with status 2.
pub fn trials_arg(default: usize) -> usize {
    count_arg(1, "trials", default as u64, &format!("[trials={default}]")) as usize
}

/// Parses the worker count for the parallel trial executor: an optional
/// `--jobs N` flag anywhere on the command line (default `0` = all
/// cores; `1` = the legacy sequential path). Results are byte-identical
/// at any job count, so this only changes wall-clock time.
pub fn jobs_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        let value = if let Some(v) = a.strip_prefix("--jobs=") {
            Some(v.to_string())
        } else if a == "--jobs" {
            Some(args.get(i + 1).cloned().unwrap_or_default())
        } else {
            None
        };
        if let Some(v) = value {
            return v.parse().unwrap_or_else(|_| {
                eprintln!("error: invalid jobs {v:?} (expected a non-negative integer)");
                eprintln!("usage: [--jobs N]   (0 = all cores, 1 = sequential)");
                std::process::exit(2);
            });
        }
    }
    0
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}
