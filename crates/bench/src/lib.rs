//! Shared helpers for the experiment binaries.

#![warn(missing_docs)]

pub mod obs;
pub mod oplog;
pub mod timing;

/// Prints an operator-facing info line through the leveled sink
/// ([`oplog`]); suppressed by `--quiet`.
#[macro_export]
macro_rules! oinfo {
    ($($arg:tt)*) => {
        $crate::oplog::log($crate::oplog::Level::Info, &format!($($arg)*))
    };
}

/// Prints an operator-facing warning line through the leveled sink
/// ([`oplog`]); survives `--quiet`.
#[macro_export]
macro_rules! owarn {
    ($($arg:tt)*) => {
        $crate::oplog::log($crate::oplog::Level::Warn, &format!($($arg)*))
    };
}

/// Prints an operator-facing error line through the leveled sink
/// ([`oplog`]); never filtered.
#[macro_export]
macro_rules! oerror {
    ($($arg:tt)*) => {
        $crate::oplog::log($crate::oplog::Level::Error, &format!($($arg)*))
    };
}

/// Prints progress chatter or a machine-readable dump (stderr) through
/// the leveled sink ([`oplog`]); dropped by `--quiet`.
#[macro_export]
macro_rules! odetail {
    ($($arg:tt)*) => {
        $crate::oplog::log($crate::oplog::Level::Detail, &format!($($arg)*))
    };
}

/// Parses the positional CLI argument at `position` (1-based argv index)
/// as a non-negative integer, with `default` when the argument is
/// absent. Malformed input is an error, not a silent fallback: the
/// binary prints a consistent usage line to stderr and exits with
/// status 2, so a typo like `--trials=1o0` can never masquerade as a
/// default-sized run.
pub fn count_arg(position: usize, name: &str, default: u64, usage_tail: &str) -> u64 {
    match positional_args().into_iter().nth(position) {
        None => default,
        Some(s) => s.parse().unwrap_or_else(|_| {
            let bin = std::env::args()
                .next()
                .as_deref()
                .and_then(|p| p.rsplit('/').next().map(str::to_string))
                .unwrap_or_else(|| "bench".to_string());
            oerror!("error: invalid {name} {s:?} (expected a non-negative integer)");
            oerror!("usage: {bin} {usage_tail}");
            std::process::exit(2);
        }),
    }
}

/// The command line with every flag removed — `--jobs N`/`--jobs=N`,
/// `--trace FILE`/`--trace=FILE`, `--metrics` and `--quiet` — so
/// positional parsing ([`count_arg`]) and the flags compose in any
/// order.
fn positional_args() -> Vec<String> {
    let args: Vec<String> = std::env::args().collect();
    let mut out = Vec::with_capacity(args.len());
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--jobs" || a == "--trace" {
            skip_next = true;
            continue;
        }
        if a.starts_with("--jobs=") || a.starts_with("--trace=") {
            continue;
        }
        if a == "--metrics" || a == "--quiet" {
            continue;
        }
        out.push(a);
    }
    out
}

/// Parses the first CLI argument as a trial count, with a default.
/// Non-numeric input prints usage and exits with status 2.
pub fn trials_arg(default: usize) -> usize {
    count_arg(1, "trials", default as u64, &format!("[trials={default}]")) as usize
}

/// The positional CLI argument at `position` (1-based argv index), with
/// every flag (`--jobs`, `--trace`, `--metrics`, `--quiet`) already
/// stripped, so flags and positionals compose in any order.
pub fn positional(position: usize) -> Option<String> {
    positional_args().into_iter().nth(position)
}

/// Parses the worker count for the parallel trial executor: an optional
/// `--jobs N` flag anywhere on the command line (default `0` = all
/// cores; `1` = the legacy sequential path). Results are byte-identical
/// at any job count, so this only changes wall-clock time.
pub fn jobs_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        let value = if let Some(v) = a.strip_prefix("--jobs=") {
            Some(v.to_string())
        } else if a == "--jobs" {
            Some(args.get(i + 1).cloned().unwrap_or_default())
        } else {
            None
        };
        if let Some(v) = value {
            return v.parse().unwrap_or_else(|_| {
                oerror!("error: invalid jobs {v:?} (expected a non-negative integer)");
                oerror!("usage: [--jobs N]   (0 = all cores, 1 = sequential)");
                std::process::exit(2);
            });
        }
    }
    0
}

/// Prints a section banner through the leveled sink.
pub fn banner(title: &str) {
    oinfo!("\n=== {title} ===");
}
