//! Property tests for the adversary's measurement stack: TLS-record
//! reassembly must recover the exact record sequence from any packet
//! segmentation (with duplication and reordering), and the filter
//! language must obey boolean algebra.

use h2priv_netsim::packet::{Direction, FlowId, HostAddr, TcpFlags, TcpHeader};
use h2priv_netsim::time::SimTime;
use h2priv_tls::{ContentType, RecordSealer, RecordTag};
use h2priv_trace::capture::Trace;
use h2priv_trace::reassembly::reassemble;
use h2priv_trace::record::PacketRecord;
use h2priv_trace::FilterExpr;
use h2priv_util::bytes::Bytes;
use h2priv_util::check::{self, Gen};
use h2priv_util::{prop_assert, prop_assert_eq};

fn seg(seq: u32, payload: &[u8], t_ms: u64, syn: bool) -> PacketRecord {
    PacketRecord {
        time: SimTime::from_millis(t_ms),
        direction: Direction::ServerToClient,
        header: TcpHeader {
            flow: FlowId {
                src: HostAddr(2),
                dst: HostAddr(1),
                sport: 443,
                dport: 40_000,
            },
            seq,
            ack: 0,
            flags: if syn {
                TcpFlags::SYN_ACK
            } else {
                TcpFlags::ACK
            },
            window: 65_535,
            ts_val: 0,
            ts_ecr: 0,
        },
        payload: Bytes::copy_from_slice(payload),
        dropped_by_policy: false,
    }
}

/// Seal a random sequence of records, chop the stream into random
/// segments, optionally duplicate and shuffle them — reassembly must
/// recover exactly the sealed record sequence.
#[test]
fn reassembly_recovers_records_from_any_segmentation() {
    check::run(
        "reassembly_recovers_records_from_any_segmentation",
        48,
        |g: &mut Gen| {
            let lens: Vec<u16> = (0..g.usize(1, 11)).map(|_| g.u16(1, 2_999)).collect();
            let cuts: Vec<usize> = (0..g.usize(1, 23)).map(|_| g.usize(1, 1_399)).collect();
            let dup_every = g.usize(2, 5);
            let shuffle_seed = g.u64(0, 999);
            let mut sealer = RecordSealer::new();
            let mut stream = Vec::new();
            for (i, len) in lens.iter().enumerate() {
                let ct = if i % 3 == 0 {
                    ContentType::Handshake
                } else {
                    ContentType::ApplicationData
                };
                stream.extend_from_slice(&sealer.seal(
                    ct,
                    &vec![0u8; *len as usize],
                    RecordTag::NONE,
                ));
            }
            // Chop into segments at pseudo-random sizes.
            let mut packets = vec![seg(99, &[], 0, true)];
            let mut off = 0usize;
            let mut ci = 0usize;
            let mut t = 1u64;
            while off < stream.len() {
                let take = cuts[ci % cuts.len()].min(stream.len() - off);
                ci += 1;
                packets.push(seg(100 + off as u32, &stream[off..off + take], t, false));
                // Duplicate some segments (retransmissions).
                if ci.is_multiple_of(dup_every) {
                    packets.push(seg(
                        100 + off as u32,
                        &stream[off..off + take],
                        t + 1,
                        false,
                    ));
                }
                off += take;
                t += 1;
            }
            // Mild deterministic shuffle: swap adjacent pairs by seed parity.
            if shuffle_seed.is_multiple_of(2) && packets.len() > 3 {
                let n = packets.len();
                packets.swap(n - 1, n - 2);
            }
            let view = reassemble(&Trace { packets }, Direction::ServerToClient, false);
            prop_assert_eq!(view.records.len(), lens.len(), "record count");
            let got: Vec<u16> = view.records.iter().map(|r| r.plaintext_len).collect();
            prop_assert_eq!(got, lens.clone());
            prop_assert!(!view.desynced);
            prop_assert_eq!(view.unique_bytes, stream.len() as u64);
        },
    );
}

/// Retransmitted-only segments never inflate the record sequence and
/// are counted.
#[test]
fn duplicates_counted_not_delivered() {
    check::run("duplicates_counted_not_delivered", 48, |g: &mut Gen| {
        let times = g.usize(1, 5);
        let mut sealer = RecordSealer::new();
        let wire = sealer.seal(ContentType::ApplicationData, &[0u8; 700], RecordTag::NONE);
        let mut packets = vec![seg(99, &[], 0, true)];
        for i in 0..=times {
            packets.push(seg(100, &wire, 1 + i as u64, false));
        }
        let view = reassemble(&Trace { packets }, Direction::ServerToClient, false);
        prop_assert_eq!(view.records.len(), 1);
        prop_assert_eq!(view.retransmitted_segments, times as u64);
    });
}

/// De Morgan: !(A && B) === (!A || !B) over arbitrary packets.
#[test]
fn filter_de_morgan() {
    check::run("filter_de_morgan", 48, |g: &mut Gen| {
        let len = g.u32(0, 1_999);
        let seq = g.u32(0, 9_999);
        let s2c = g.bool(0.5);
        let mut p = seg(seq, &vec![0u8; len as usize], 1, false);
        p.direction = if s2c {
            Direction::ServerToClient
        } else {
            Direction::ClientToServer
        };
        let a = "tcp.len > 100";
        let b = "dir == s2c";
        let lhs = FilterExpr::parse(&format!("not ({a} and {b})")).unwrap();
        let rhs = FilterExpr::parse(&format!("(not {a}) or (not {b})")).unwrap();
        prop_assert_eq!(lhs.matches(&p), rhs.matches(&p));
    });
}

/// Parsing is total: random printable strings either parse or return
/// an error, never panic.
#[test]
fn filter_parse_never_panics() {
    check::run("filter_parse_never_panics", 48, |g: &mut Gen| {
        let s = g.ascii_string(64);
        let _ = FilterExpr::parse(&s);
    });
}

/// A parsed expression's Debug/re-parse of canonical operators stays
/// semantically stable on sample packets.
#[test]
fn filter_threshold_semantics() {
    check::run("filter_threshold_semantics", 48, |g: &mut Gen| {
        let threshold = g.u32(0, 2_999);
        let len = g.u32(0, 2_999);
        let f = FilterExpr::parse(&format!("tcp.len >= {threshold}")).unwrap();
        let p = seg(1, &vec![0u8; len as usize], 1, false);
        prop_assert_eq!(f.matches(&p), len >= threshold);
    });
}

#[test]
fn reassembly_is_insensitive_to_out_of_order_bursts() {
    // Segments delivered fully reversed still reassemble (offsets drive
    // everything; timing only affects record completion times).
    let mut sealer = RecordSealer::new();
    let mut stream = Vec::new();
    for len in [400usize, 900, 50] {
        stream.extend_from_slice(&sealer.seal(
            ContentType::ApplicationData,
            &vec![7u8; len],
            RecordTag::NONE,
        ));
    }
    let mut packets = vec![seg(99, &[], 0, true)];
    let chunks: Vec<(usize, &[u8])> = stream.chunks(333).enumerate().collect();
    for (i, c) in chunks.iter().rev() {
        packets.push(seg(100 + (*i as u32) * 333, c, 10 + *i as u64, false));
    }
    let view = reassemble(&Trace { packets }, Direction::ServerToClient, false);
    let lens: Vec<u16> = view.records.iter().map(|r| r.plaintext_len).collect();
    assert_eq!(lens, vec![400, 900, 50]);
}

#[test]
fn filter_matches_trace_queries_end_to_end() {
    // Build a small mixed trace and check count queries like the paper's.
    let mut sealer = RecordSealer::new();
    let mut packets = vec![seg(99, &[], 0, true)];
    let mut off = 0u32;
    for (i, (ct, len)) in [
        (ContentType::Handshake, 512usize),
        (ContentType::ApplicationData, 200),
        (ContentType::ApplicationData, 13),
        (ContentType::ApplicationData, 180),
    ]
    .iter()
    .enumerate()
    {
        let wire = sealer.seal(*ct, &vec![0u8; *len], RecordTag::NONE);
        let mut p = seg(100 + off, &wire, 1 + i as u64, false);
        p.direction = Direction::ClientToServer;
        off += wire.len() as u32;
        packets.push(p);
    }
    let trace = Trace { packets };
    let gets =
        FilterExpr::parse("ssl.record.content_type == 23 and ssl.record.length >= 120").unwrap();
    let hits = trace.packets.iter().filter(|p| gets.matches(p)).count();
    assert_eq!(hits, 2, "two GET-sized app records");
}
