//! TCP stream reassembly and TLS record extraction from a capture —
//! what tshark's "follow stream" + SSL dissector do for the paper's
//! adversary.
//!
//! Besides the record sequence, reassembly yields the adversary-visible
//! **retransmission count** (segments whose byte range was already seen),
//! the measurement behind the paper's Table I and Fig. 5.

use crate::capture::Trace;
use h2priv_netsim::packet::Direction;
use h2priv_netsim::time::SimTime;
use h2priv_tls::record::{RecordHeader, AEAD_TAG_LEN, RECORD_HEADER_LEN};
use std::collections::BTreeMap;

/// One TLS record observed on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeenRecord {
    /// Content type byte (23 = application data).
    pub content_type: u8,
    /// Ciphertext body length from the cleartext header.
    pub body_len: u16,
    /// Plaintext length (body minus AEAD tag) — the adversary knows the
    /// tag size from the negotiated cipher suite.
    pub plaintext_len: u16,
    /// Offset of the record header in the TCP stream.
    pub stream_offset: u64,
    /// When the monitor had seen the record's last byte.
    pub completed_at: SimTime,
}

impl SeenRecord {
    /// `true` for application-data records (the paper's
    /// `ssl.record.content_type == 23`).
    pub fn is_app_data(&self) -> bool {
        self.content_type == 23
    }
}

/// The reassembled view of one direction of the connection.
#[derive(Debug, Clone, Default)]
pub struct StreamView {
    /// Records in stream order.
    pub records: Vec<SeenRecord>,
    /// Data segments carrying only already-seen bytes (wire-visible
    /// retransmissions).
    pub retransmitted_segments: u64,
    /// Total payload bytes observed, duplicates included.
    pub total_payload_bytes: u64,
    /// Distinct stream bytes observed.
    pub unique_bytes: u64,
    /// Whether record parsing desynchronised (corrupt header seen).
    pub desynced: bool,
    /// End of the contiguous stream prefix at capture end.
    pub contiguous_end: u64,
    /// Offset at which record parsing stopped.
    pub parse_ptr: u64,
}

impl StreamView {
    /// Application-data records only.
    pub fn app_records(&self) -> impl Iterator<Item = &SeenRecord> + '_ {
        self.records.iter().filter(|r| r.is_app_data())
    }
}

/// Reusable scratch state for [`reassemble`]: the stream-assembly byte
/// buffer, whose allocation survives from one call to the next. A worker
/// thread chewing through hundreds of trials reassembles into the same
/// buffer instead of growing a fresh one per trial.
#[derive(Debug, Default)]
pub struct ReassemblyScratch {
    assembled: Vec<u8>,
}

/// Reassembles direction `dir` of the (single) connection in `trace`.
///
/// `include_policy_dropped` controls whether packets the adversary itself
/// dropped count towards the stream (they transit the monitor but never
/// reach the receiver; the paper's analysis excludes them, so the default
/// used by the attack code is `false`).
pub fn reassemble(trace: &Trace, dir: Direction, include_policy_dropped: bool) -> StreamView {
    reassemble_with(
        &mut ReassemblyScratch::default(),
        trace,
        dir,
        include_policy_dropped,
    )
}

/// [`reassemble`] writing through caller-owned scratch buffers, so
/// repeated calls (one per trial on a pool worker) reuse allocations.
pub fn reassemble_with(
    scratch: &mut ReassemblyScratch,
    trace: &Trace,
    dir: Direction,
    include_policy_dropped: bool,
) -> StreamView {
    let mut view = StreamView::default();
    // Initial sequence number: from the SYN if captured, else the first
    // data segment.
    let mut base: Option<u32> = None;
    for p in trace.in_direction(dir) {
        if p.header.flags.syn {
            base = Some(p.header.seq.wrapping_add(1));
            break;
        }
    }

    let assembled: &mut Vec<u8> = &mut scratch.assembled;
    assembled.clear();
    // One cheap pass to size the assembly buffer: the stream is at most
    // the sum of the direction's payload bytes, so a single upfront
    // reserve replaces the repeated mid-loop `resize` reallocations.
    let payload_total: usize = trace.in_direction(dir).map(|p| p.payload.len()).sum();
    assembled.reserve(payload_total);
    // Covered intervals (start -> end), non-overlapping, merged.
    let mut covered: BTreeMap<u64, u64> = BTreeMap::new();
    let mut parse_ptr: u64 = 0;
    let mut desynced = false;

    for p in trace.in_direction(dir) {
        if p.payload.is_empty() {
            continue;
        }
        if p.dropped_by_policy && !include_policy_dropped {
            continue;
        }
        let base = *base.get_or_insert(p.header.seq);
        let off = p.header.seq.wrapping_sub(base) as u64;
        let len = p.payload.len() as u64;
        view.total_payload_bytes += len;

        // Compute newly covered bytes.
        let new_bytes = insert_interval(&mut covered, off, off + len);
        view.unique_bytes += new_bytes;
        if new_bytes == 0 {
            view.retransmitted_segments += 1;
            continue;
        }
        if new_bytes < len {
            // Partial overlap still indicates a retransmission event.
            view.retransmitted_segments += 1;
        }
        // Copy payload into the assembly buffer.
        let end = (off + len) as usize;
        if assembled.len() < end {
            assembled.resize(end, 0);
        }
        assembled[off as usize..end].copy_from_slice(&p.payload);

        // Advance the contiguous prefix.
        let contiguous_end = contiguous_prefix(&covered);

        // Parse as many complete records as the prefix now holds.
        if desynced {
            continue;
        }
        while parse_ptr + RECORD_HEADER_LEN as u64 <= contiguous_end {
            let hdr_bytes = &assembled[parse_ptr as usize..parse_ptr as usize + RECORD_HEADER_LEN];
            let Some(hdr) = RecordHeader::decode(hdr_bytes) else {
                desynced = true; // corrupt stream: stop, keep what we have
                break;
            };
            let total = RECORD_HEADER_LEN as u64 + hdr.length as u64;
            if parse_ptr + total > contiguous_end {
                break;
            }
            view.records.push(SeenRecord {
                content_type: hdr.content_type.as_byte(),
                body_len: hdr.length,
                plaintext_len: hdr.length.saturating_sub(AEAD_TAG_LEN as u16),
                stream_offset: parse_ptr,
                completed_at: p.time,
            });
            parse_ptr += total;
        }
        view.contiguous_end = contiguous_end;
    }
    view.desynced = desynced;
    view.parse_ptr = parse_ptr;
    view
}

/// Inserts `[start, end)` into the interval map, merging as needed.
/// Returns the number of newly covered bytes.
fn insert_interval(map: &mut BTreeMap<u64, u64>, start: u64, end: u64) -> u64 {
    if start >= end {
        return 0;
    }
    let mut new_start = start;
    let mut new_end = end;
    let mut newly = end - start;
    // Absorb overlapping/adjacent intervals, rightmost first. Stored
    // intervals are disjoint, so their starts and ends are both sorted:
    // once the rightmost candidate (largest start <= new_end) ends
    // before new_start, no earlier interval can touch the range either,
    // and each absorbed interval's overlap with the growing range equals
    // its overlap with the original [start, end).
    while let Some((&s, &e)) = map.range(..=new_end).next_back() {
        if e < new_start {
            break;
        }
        newly -= overlap_len(new_start.max(s), new_end.min(e), s, e);
        new_start = new_start.min(s);
        new_end = new_end.max(e);
        map.remove(&s);
    }
    map.insert(new_start, new_end);
    newly
}

fn overlap_len(a: u64, b: u64, s: u64, e: u64) -> u64 {
    let lo = a.max(s);
    let hi = b.min(e);
    hi.saturating_sub(lo)
}

fn contiguous_prefix(map: &BTreeMap<u64, u64>) -> u64 {
    match map.first_key_value() {
        Some((&0, &end)) => end,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PacketRecord;
    use h2priv_netsim::packet::{FlowId, HostAddr, TcpFlags, TcpHeader};
    use h2priv_tls::{ContentType, RecordSealer, RecordTag};
    use h2priv_util::bytes::Bytes;

    fn seg(seq: u32, payload: &[u8], t_ms: u64, syn: bool) -> PacketRecord {
        PacketRecord {
            time: SimTime::from_millis(t_ms),
            direction: Direction::ServerToClient,
            header: TcpHeader {
                flow: FlowId {
                    src: HostAddr(2),
                    dst: HostAddr(1),
                    sport: 443,
                    dport: 40_000,
                },
                seq,
                ack: 0,
                flags: if syn {
                    TcpFlags::SYN_ACK
                } else {
                    TcpFlags::ACK
                },
                window: 65_535,
                ts_val: 0,
                ts_ecr: 0,
            },
            payload: Bytes::copy_from_slice(payload),
            dropped_by_policy: false,
        }
    }

    fn trace_of(packets: Vec<PacketRecord>) -> Trace {
        Trace { packets }
    }

    #[test]
    fn parses_records_split_across_segments() {
        let mut sealer = RecordSealer::new();
        let wire = sealer.seal(ContentType::ApplicationData, &[1u8; 3_000], RecordTag::NONE);
        // ISN 99, so stream offset 0 = seq 100.
        let mut packets = vec![seg(99, &[], 0, true)];
        for (i, chunk) in wire.chunks(1_460).enumerate() {
            packets.push(seg(100 + (i as u32) * 1_460, chunk, 1 + i as u64, false));
        }
        let view = reassemble(&trace_of(packets), Direction::ServerToClient, false);
        assert_eq!(view.records.len(), 1);
        assert_eq!(view.records[0].plaintext_len, 3_000);
        assert_eq!(view.records[0].completed_at, SimTime::from_millis(3));
        assert_eq!(view.retransmitted_segments, 0);
        assert_eq!(view.unique_bytes, wire.len() as u64);
    }

    #[test]
    fn counts_retransmissions_and_dedupes() {
        let mut sealer = RecordSealer::new();
        let wire = sealer.seal(ContentType::ApplicationData, &[0u8; 500], RecordTag::NONE);
        let packets = vec![
            seg(99, &[], 0, true),
            seg(100, &wire, 1, false),
            seg(100, &wire, 5, false), // full retransmission
        ];
        let view = reassemble(&trace_of(packets), Direction::ServerToClient, false);
        assert_eq!(view.records.len(), 1);
        assert_eq!(view.retransmitted_segments, 1);
        assert_eq!(view.total_payload_bytes, 2 * wire.len() as u64);
        assert_eq!(view.unique_bytes, wire.len() as u64);
    }

    #[test]
    fn out_of_order_segments_still_parse() {
        let mut sealer = RecordSealer::new();
        let wire = sealer.seal(ContentType::ApplicationData, &[7u8; 2_000], RecordTag::NONE);
        let (a, b) = wire.split_at(1_000);
        let packets = vec![
            seg(99, &[], 0, true),
            seg(1_100, b, 1, false), // arrives first
            seg(100, a, 2, false),
        ];
        let view = reassemble(&trace_of(packets), Direction::ServerToClient, false);
        assert_eq!(view.records.len(), 1);
        assert_eq!(view.records[0].completed_at, SimTime::from_millis(2));
    }

    #[test]
    fn policy_dropped_packets_are_excluded_by_default() {
        let mut sealer = RecordSealer::new();
        let wire = sealer.seal(ContentType::ApplicationData, &[0u8; 100], RecordTag::NONE);
        let mut p = seg(100, &wire, 1, false);
        p.dropped_by_policy = true;
        let packets = vec![seg(99, &[], 0, true), p];
        let view = reassemble(&trace_of(packets), Direction::ServerToClient, false);
        assert!(view.records.is_empty());
        let view = reassemble(
            &trace_of(packets_clone(&sealer, wire)),
            Direction::ServerToClient,
            true,
        );
        // helper below re-creates the same packets with the flag set
        assert_eq!(view.records.len(), 1);
    }

    fn packets_clone(_s: &RecordSealer, wire: Bytes) -> Vec<PacketRecord> {
        let mut p = seg(100, &wire, 1, false);
        p.dropped_by_policy = true;
        vec![seg(99, &[], 0, true), p]
    }

    #[test]
    fn multiple_records_sequence() {
        let mut sealer = RecordSealer::new();
        let mut stream = Vec::new();
        for size in [100usize, 2_000, 50] {
            stream.extend_from_slice(&sealer.seal(
                ContentType::ApplicationData,
                &vec![0u8; size],
                RecordTag::NONE,
            ));
        }
        let packets: Vec<PacketRecord> = std::iter::once(seg(99, &[], 0, true))
            .chain(
                stream
                    .chunks(1_460)
                    .enumerate()
                    .map(|(i, c)| seg(100 + (i as u32) * 1_460, c, 1 + i as u64, false)),
            )
            .collect();
        let view = reassemble(&trace_of(packets), Direction::ServerToClient, false);
        let lens: Vec<u16> = view.records.iter().map(|r| r.plaintext_len).collect();
        assert_eq!(lens, vec![100, 2_000, 50]);
        // Offsets are strictly increasing.
        assert!(view
            .records
            .windows(2)
            .all(|w| w[0].stream_offset < w[1].stream_offset));
    }

    #[test]
    fn interval_insertion_merges() {
        let mut m = BTreeMap::new();
        assert_eq!(insert_interval(&mut m, 0, 10), 10);
        assert_eq!(insert_interval(&mut m, 20, 30), 10);
        assert_eq!(insert_interval(&mut m, 5, 25), 10); // fills the gap
        assert_eq!(m.len(), 1);
        assert_eq!(contiguous_prefix(&m), 30);
        assert_eq!(insert_interval(&mut m, 0, 30), 0);
    }
}
