//! Captured packet records.

use h2priv_netsim::packet::{Direction, Packet, TcpHeader};
use h2priv_netsim::time::SimTime;
use h2priv_util::bytes::Bytes;

/// One packet as seen by the monitor at the compromised middlebox.
///
/// Contains only eavesdropper-visible information: the cleartext TCP/IP
/// header, sizes, timing, and the raw payload bytes (TLS ciphertext with
/// cleartext 5-byte record headers embedded in the stream).
#[derive(Debug, Clone)]
pub struct PacketRecord {
    /// Capture timestamp.
    pub time: SimTime,
    /// Travel direction.
    pub direction: Direction,
    /// Cleartext TCP/IP header.
    pub header: TcpHeader,
    /// TCP payload bytes (ciphertext stream).
    pub payload: Bytes,
    /// Whether the adversary's own policy dropped this packet after
    /// observing it (it still transited the monitor).
    pub dropped_by_policy: bool,
}

impl PacketRecord {
    /// Builds a record from a captured packet.
    pub fn from_packet(
        time: SimTime,
        direction: Direction,
        pkt: &Packet,
        dropped_by_policy: bool,
    ) -> PacketRecord {
        PacketRecord {
            time,
            direction,
            header: pkt.header,
            payload: pkt.payload.clone(),
            dropped_by_policy,
        }
    }

    /// TCP payload length (`tcp.len` in tshark terms).
    pub fn tcp_len(&self) -> u32 {
        self.payload.len() as u32
    }

    /// Total wire size including headers.
    pub fn wire_len(&self) -> u32 {
        self.tcp_len() + h2priv_netsim::packet::WIRE_OVERHEAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_netsim::packet::{FlowId, HostAddr, TcpFlags};

    #[test]
    fn from_packet_copies_visible_fields() {
        let pkt = Packet::new(
            TcpHeader {
                flow: FlowId {
                    src: HostAddr(1),
                    dst: HostAddr(2),
                    sport: 1,
                    dport: 443,
                },
                seq: 42,
                ack: 7,
                flags: TcpFlags::ACK,
                window: 1000,
                ts_val: 0,
                ts_ecr: 0,
            },
            Bytes::from(vec![0u8; 77]),
        );
        let r = PacketRecord::from_packet(
            SimTime::from_millis(5),
            Direction::ClientToServer,
            &pkt,
            true,
        );
        assert_eq!(r.tcp_len(), 77);
        assert_eq!(r.wire_len(), 77 + 54);
        assert_eq!(r.header.seq, 42);
        assert!(r.dropped_by_policy);
    }
}
