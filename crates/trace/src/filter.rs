//! A small tshark-style display-filter language.
//!
//! Supports the fields the paper's adversary actually uses, most notably
//! `ssl.record.content_type == 23` (Section IV-D quotes this filter for
//! counting forwarded GET requests):
//!
//! | field | meaning |
//! |---|---|
//! | `tcp.len` | TCP payload length |
//! | `tcp.seq`, `tcp.ack`, `tcp.window` | header fields |
//! | `tcp.flags.syn/ack/fin/rst/psh` | 0 or 1 |
//! | `frame.len` | total wire size |
//! | `dir` | `c2s` or `s2c` |
//! | `ssl.record.content_type` | types of TLS records starting in the packet |
//! | `ssl.record.length` | body lengths of those records |
//!
//! Operators: `== != < <= > >=`, combinators `and`/`or`/`not` (or
//! `&&`/`||`/`!`), parentheses. Multi-valued fields match if *any* value
//! satisfies the comparison (tshark semantics).
//!
//! Per-packet TLS parsing is heuristic (records that *start* at the
//! packet's first payload byte are walked); the attack code uses full
//! [`crate::reassembly`] where exactness matters.

use crate::record::PacketRecord;
use core::fmt;
use h2priv_netsim::packet::Direction;
use h2priv_tls::record::{RecordHeader, RECORD_HEADER_LEN};

/// Parse error for filter expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFilterError {
    msg: String,
    at: usize,
}

impl fmt::Display for ParseFilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "filter parse error at token {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseFilterError {}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn eval(self, a: u64, b: u64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// Filterable packet fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// `tcp.len`
    TcpLen,
    /// `tcp.seq`
    TcpSeq,
    /// `tcp.ack`
    TcpAck,
    /// `tcp.window`
    TcpWindow,
    /// `tcp.flags.syn`
    FlagSyn,
    /// `tcp.flags.ack`
    FlagAck,
    /// `tcp.flags.fin`
    FlagFin,
    /// `tcp.flags.rst`
    FlagRst,
    /// `tcp.flags.psh`
    FlagPsh,
    /// `frame.len`
    FrameLen,
    /// `dir` (`c2s` = 0, `s2c` = 1)
    Dir,
    /// `ssl.record.content_type` (multi-valued)
    TlsContentType,
    /// `ssl.record.length` (multi-valued)
    TlsRecordLen,
}

impl Field {
    fn by_name(name: &str) -> Option<Field> {
        Some(match name {
            "tcp.len" => Field::TcpLen,
            "tcp.seq" => Field::TcpSeq,
            "tcp.ack" => Field::TcpAck,
            "tcp.window" => Field::TcpWindow,
            "tcp.flags.syn" => Field::FlagSyn,
            "tcp.flags.ack" => Field::FlagAck,
            "tcp.flags.fin" => Field::FlagFin,
            "tcp.flags.rst" => Field::FlagRst,
            "tcp.flags.psh" => Field::FlagPsh,
            "frame.len" => Field::FrameLen,
            "dir" => Field::Dir,
            "ssl.record.content_type" | "tls.record.content_type" => Field::TlsContentType,
            "ssl.record.length" | "tls.record.length" => Field::TlsRecordLen,
            _ => return None,
        })
    }

    /// The field's values for a packet (flags are 0/1; TLS fields may be
    /// empty or multi-valued).
    fn values(self, p: &PacketRecord) -> Vec<u64> {
        match self {
            Field::TcpLen => vec![p.tcp_len() as u64],
            Field::TcpSeq => vec![p.header.seq as u64],
            Field::TcpAck => vec![p.header.ack as u64],
            Field::TcpWindow => vec![p.header.window as u64],
            Field::FlagSyn => vec![p.header.flags.syn as u64],
            Field::FlagAck => vec![p.header.flags.ack as u64],
            Field::FlagFin => vec![p.header.flags.fin as u64],
            Field::FlagRst => vec![p.header.flags.rst as u64],
            Field::FlagPsh => vec![p.header.flags.psh as u64],
            Field::FrameLen => vec![p.wire_len() as u64],
            Field::Dir => vec![match p.direction {
                Direction::ClientToServer => 0,
                Direction::ServerToClient => 1,
            }],
            Field::TlsContentType => walk_records(p).iter().map(|h| h.0 as u64).collect(),
            Field::TlsRecordLen => walk_records(p).iter().map(|h| h.1 as u64).collect(),
        }
    }
}

/// Walks TLS records that start at the beginning of the packet payload.
fn walk_records(p: &PacketRecord) -> Vec<(u8, u16)> {
    let mut out = Vec::new();
    let mut buf = &p.payload[..];
    while buf.len() >= RECORD_HEADER_LEN {
        let Some(hdr) = RecordHeader::decode(buf) else {
            break;
        };
        out.push((hdr.content_type.as_byte(), hdr.length));
        let total = RECORD_HEADER_LEN + hdr.length as usize;
        if buf.len() < total {
            break; // record continues in a later packet
        }
        buf = &buf[total..];
    }
    out
}

/// A parsed filter expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterExpr {
    /// Field comparison.
    Cmp {
        /// Field to test.
        field: Field,
        /// Operator.
        op: CmpOp,
        /// Right-hand constant.
        value: u64,
    },
    /// Logical conjunction.
    And(Box<FilterExpr>, Box<FilterExpr>),
    /// Logical disjunction.
    Or(Box<FilterExpr>, Box<FilterExpr>),
    /// Logical negation.
    Not(Box<FilterExpr>),
}

impl FilterExpr {
    /// Parses a filter string.
    ///
    /// # Errors
    /// Returns a [`ParseFilterError`] describing the first offending
    /// token.
    pub fn parse(input: &str) -> Result<FilterExpr, ParseFilterError> {
        let tokens = tokenize(input)?;
        let mut p = Parser { tokens, pos: 0 };
        let expr = p.parse_or()?;
        if p.pos != p.tokens.len() {
            return Err(ParseFilterError {
                msg: "trailing tokens".into(),
                at: p.pos,
            });
        }
        Ok(expr)
    }

    /// Evaluates the filter against one packet.
    pub fn matches(&self, p: &PacketRecord) -> bool {
        match self {
            FilterExpr::Cmp { field, op, value } => {
                field.values(p).iter().any(|v| op.eval(*v, *value))
            }
            FilterExpr::And(a, b) => a.matches(p) && b.matches(p),
            FilterExpr::Or(a, b) => a.matches(p) || b.matches(p),
            FilterExpr::Not(e) => !e.matches(p),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Number(u64),
    Op(CmpOp),
    And,
    Or,
    Not,
    LParen,
    RParen,
}

fn tokenize(input: &str) -> Result<Vec<Token>, ParseFilterError> {
    let mut out = Vec::new();
    let b = input.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '=' if b.get(i + 1) == Some(&b'=') => {
                out.push(Token::Op(CmpOp::Eq));
                i += 2;
            }
            '!' if b.get(i + 1) == Some(&b'=') => {
                out.push(Token::Op(CmpOp::Ne));
                i += 2;
            }
            '!' => {
                out.push(Token::Not);
                i += 1;
            }
            '<' if b.get(i + 1) == Some(&b'=') => {
                out.push(Token::Op(CmpOp::Le));
                i += 2;
            }
            '<' => {
                out.push(Token::Op(CmpOp::Lt));
                i += 1;
            }
            '>' if b.get(i + 1) == Some(&b'=') => {
                out.push(Token::Op(CmpOp::Ge));
                i += 2;
            }
            '>' => {
                out.push(Token::Op(CmpOp::Gt));
                i += 1;
            }
            '&' if b.get(i + 1) == Some(&b'&') => {
                out.push(Token::And);
                i += 2;
            }
            '|' if b.get(i + 1) == Some(&b'|') => {
                out.push(Token::Or);
                i += 2;
            }
            '0'..='9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let n: u64 = input[start..i].parse().map_err(|_| ParseFilterError {
                    msg: "bad number".into(),
                    at: out.len(),
                })?;
                out.push(Token::Number(n));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'.' || b[i] == b'_')
                {
                    i += 1;
                }
                match &input[start..i] {
                    "and" => out.push(Token::And),
                    "or" => out.push(Token::Or),
                    "not" => out.push(Token::Not),
                    "c2s" => out.push(Token::Number(0)),
                    "s2c" => out.push(Token::Number(1)),
                    ident => out.push(Token::Ident(ident.to_string())),
                }
            }
            _ => {
                return Err(ParseFilterError {
                    msg: format!("unexpected character '{c}'"),
                    at: out.len(),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: &str) -> ParseFilterError {
        ParseFilterError {
            msg: msg.into(),
            at: self.pos,
        }
    }

    fn parse_or(&mut self) -> Result<FilterExpr, ParseFilterError> {
        let mut left = self.parse_and()?;
        while self.peek() == Some(&Token::Or) {
            self.bump();
            let right = self.parse_and()?;
            left = FilterExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<FilterExpr, ParseFilterError> {
        let mut left = self.parse_unary()?;
        while self.peek() == Some(&Token::And) {
            self.bump();
            let right = self.parse_unary()?;
            left = FilterExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<FilterExpr, ParseFilterError> {
        match self.peek() {
            Some(Token::Not) => {
                self.bump();
                Ok(FilterExpr::Not(Box::new(self.parse_unary()?)))
            }
            Some(Token::LParen) => {
                self.bump();
                let e = self.parse_or()?;
                if self.bump() != Some(Token::RParen) {
                    return Err(self.err("expected ')'"));
                }
                Ok(e)
            }
            Some(Token::Ident(_)) => self.parse_cmp(),
            _ => Err(self.err("expected expression")),
        }
    }

    fn parse_cmp(&mut self) -> Result<FilterExpr, ParseFilterError> {
        let Some(Token::Ident(name)) = self.bump() else {
            return Err(self.err("expected field name"));
        };
        let field =
            Field::by_name(&name).ok_or_else(|| self.err(&format!("unknown field '{name}'")))?;
        let Some(Token::Op(op)) = self.bump() else {
            return Err(self.err("expected comparison operator"));
        };
        let Some(Token::Number(value)) = self.bump() else {
            return Err(self.err("expected numeric value"));
        };
        Ok(FilterExpr::Cmp { field, op, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_netsim::packet::{FlowId, HostAddr, Packet, TcpFlags, TcpHeader};
    use h2priv_netsim::time::SimTime;
    use h2priv_tls::{ContentType, RecordSealer, RecordTag};
    use h2priv_util::bytes::Bytes;

    fn pkt(dir: Direction, payload: Bytes, flags: TcpFlags) -> PacketRecord {
        PacketRecord::from_packet(
            SimTime::ZERO,
            dir,
            &Packet::new(
                TcpHeader {
                    flow: FlowId {
                        src: HostAddr(1),
                        dst: HostAddr(2),
                        sport: 1,
                        dport: 443,
                    },
                    seq: 100,
                    ack: 0,
                    flags,
                    window: 65_535,
                    ts_val: 0,
                    ts_ecr: 0,
                },
                payload,
            ),
            false,
        )
    }

    fn app_data_pkt(len: usize) -> PacketRecord {
        let mut s = RecordSealer::new();
        let wire = s.seal(
            ContentType::ApplicationData,
            &vec![0u8; len],
            RecordTag::NONE,
        );
        pkt(Direction::ClientToServer, wire, TcpFlags::ACK)
    }

    #[test]
    fn the_papers_filter_matches_app_data() {
        let f = FilterExpr::parse("ssl.record.content_type == 23").unwrap();
        assert!(f.matches(&app_data_pkt(80)));
        let handshake = {
            let mut s = RecordSealer::new();
            let wire = s.seal(ContentType::Handshake, &[0u8; 200], RecordTag::NONE);
            pkt(Direction::ClientToServer, wire, TcpFlags::ACK)
        };
        assert!(!f.matches(&handshake));
        assert!(!f.matches(&pkt(Direction::ClientToServer, Bytes::new(), TcpFlags::ACK)));
    }

    #[test]
    fn get_counting_filter_with_size_band() {
        let f = FilterExpr::parse("ssl.record.content_type == 23 and tcp.len >= 60 and dir == c2s")
            .unwrap();
        assert!(f.matches(&app_data_pkt(100)));
        assert!(
            !f.matches(&app_data_pkt(10)),
            "small control record must not count"
        );
        let mut s2c = app_data_pkt(100);
        s2c.direction = Direction::ServerToClient;
        assert!(!f.matches(&s2c));
    }

    #[test]
    fn flags_and_parens_and_not() {
        let f =
            FilterExpr::parse("(tcp.flags.syn == 1 and tcp.flags.ack == 0) or tcp.flags.rst == 1")
                .unwrap();
        assert!(f.matches(&pkt(Direction::ClientToServer, Bytes::new(), TcpFlags::SYN)));
        assert!(!f.matches(&pkt(
            Direction::ClientToServer,
            Bytes::new(),
            TcpFlags::SYN_ACK
        )));
        assert!(f.matches(&pkt(Direction::ClientToServer, Bytes::new(), TcpFlags::RST)));
        let n = FilterExpr::parse("not tcp.len > 0").unwrap();
        assert!(n.matches(&pkt(Direction::ClientToServer, Bytes::new(), TcpFlags::ACK)));
    }

    #[test]
    fn multivalued_record_fields() {
        // Two records in one packet: 23 then 22.
        let mut s = RecordSealer::new();
        let mut wire = s
            .seal(ContentType::ApplicationData, &[0u8; 50], RecordTag::NONE)
            .to_vec();
        wire.extend_from_slice(&s.seal(ContentType::Handshake, &[0u8; 60], RecordTag::NONE));
        let p = pkt(Direction::ClientToServer, Bytes::from(wire), TcpFlags::ACK);
        assert!(FilterExpr::parse("ssl.record.content_type == 22")
            .unwrap()
            .matches(&p));
        assert!(FilterExpr::parse("ssl.record.content_type == 23")
            .unwrap()
            .matches(&p));
        assert!(!FilterExpr::parse("ssl.record.content_type == 21")
            .unwrap()
            .matches(&p));
        assert!(FilterExpr::parse("ssl.record.length >= 76")
            .unwrap()
            .matches(&p));
    }

    #[test]
    fn symbolic_operators() {
        let f = FilterExpr::parse("tcp.len > 0 && !(dir == s2c) || frame.len <= 54").unwrap();
        assert!(f.matches(&app_data_pkt(10)));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(FilterExpr::parse("nonsense.field == 1").is_err());
        assert!(FilterExpr::parse("tcp.len ==").is_err());
        assert!(FilterExpr::parse("tcp.len == 1 extra").is_err());
        assert!(FilterExpr::parse("(tcp.len == 1").is_err());
        assert!(FilterExpr::parse("tcp.len @ 1").is_err());
    }
}
