//! The capture sink attached to the simulator.

use crate::record::PacketRecord;
use h2priv_netsim::capture::{CaptureEvent, CapturePoint, CaptureSink};
use h2priv_netsim::packet::Direction;
use std::cell::RefCell;
use std::rc::Rc;

/// A completed capture: every packet that transited the middlebox, in
/// time order.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    /// Captured packets in capture order.
    pub packets: Vec<PacketRecord>,
}

impl Trace {
    /// Packets travelling in `dir`.
    pub fn in_direction(&self, dir: Direction) -> impl Iterator<Item = &PacketRecord> + '_ {
        self.packets.iter().filter(move |p| p.direction == dir)
    }

    /// Packets with a TCP payload in `dir` (tshark: `tcp.len > 0`).
    pub fn data_packets(&self, dir: Direction) -> impl Iterator<Item = &PacketRecord> + '_ {
        self.in_direction(dir).filter(|p| p.tcp_len() > 0)
    }

    /// Number of captured packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// `true` when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }
}

/// Capture sink collecting middlebox transits into a [`Trace`].
///
/// Only [`CapturePoint::Middlebox`] events are recorded — the adversary's
/// vantage point. Link drops and deliveries elsewhere on the path are
/// invisible to it, as in reality.
#[derive(Debug, Default)]
pub struct TraceCollector {
    trace: Trace,
}

impl TraceCollector {
    /// Creates an empty collector.
    pub fn new() -> TraceCollector {
        TraceCollector::default()
    }

    /// Read access to the trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the collector, returning the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl CaptureSink for TraceCollector {
    fn record(&mut self, point: CapturePoint, event: &CaptureEvent) {
        if point != CapturePoint::Middlebox {
            return;
        }
        let dir = event.direction.expect("middlebox events carry a direction");
        self.trace.packets.push(PacketRecord::from_packet(
            event.time,
            dir,
            &event.packet,
            event.dropped_by_policy,
        ));
    }
}

/// A shareable trace collector handle: attach one clone to the simulator
/// with [`h2priv_netsim::sim::Simulator::set_capture_sink`] and keep the
/// other to read the trace after the run.
pub type SharedTrace = Rc<RefCell<TraceCollector>>;

/// Creates a [`SharedTrace`].
pub fn shared_trace() -> SharedTrace {
    Rc::new(RefCell::new(TraceCollector::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_netsim::packet::{FlowId, HostAddr, Packet, TcpFlags, TcpHeader};
    use h2priv_netsim::time::SimTime;
    use h2priv_util::bytes::Bytes;

    fn ev(dir: Direction, len: usize) -> CaptureEvent {
        CaptureEvent {
            time: SimTime::ZERO,
            direction: Some(dir),
            packet: Packet::new(
                TcpHeader {
                    flow: FlowId {
                        src: HostAddr(1),
                        dst: HostAddr(2),
                        sport: 1,
                        dport: 443,
                    },
                    seq: 0,
                    ack: 0,
                    flags: TcpFlags::ACK,
                    window: 0,
                    ts_val: 0,
                    ts_ecr: 0,
                },
                Bytes::from(vec![0u8; len]),
            ),
            dropped_by_policy: false,
        }
    }

    #[test]
    fn collects_only_middlebox_events() {
        let mut c = TraceCollector::new();
        c.record(CapturePoint::Middlebox, &ev(Direction::ClientToServer, 10));
        c.record(
            CapturePoint::LinkDrop(h2priv_netsim::link::LinkId::from_raw(0)),
            &ev(Direction::ClientToServer, 10),
        );
        c.record(CapturePoint::Middlebox, &ev(Direction::ServerToClient, 0));
        let t = c.trace();
        assert_eq!(t.len(), 2);
        assert_eq!(t.in_direction(Direction::ClientToServer).count(), 1);
        assert_eq!(t.data_packets(Direction::ServerToClient).count(), 0);
    }
}
