//! The capture sink attached to the simulator.

use crate::record::PacketRecord;
use h2priv_netsim::capture::{CaptureEvent, CapturePoint, CaptureSink};
use h2priv_netsim::packet::Direction;
use h2priv_util::bytes::Bytes;
use std::cell::RefCell;
use std::rc::Rc;

/// A completed capture: every packet that transited the middlebox, in
/// time order.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    /// Captured packets in capture order.
    pub packets: Vec<PacketRecord>,
}

impl Trace {
    /// Packets travelling in `dir`.
    pub fn in_direction(&self, dir: Direction) -> impl Iterator<Item = &PacketRecord> + '_ {
        self.packets.iter().filter(move |p| p.direction == dir)
    }

    /// Packets with a TCP payload in `dir` (tshark: `tcp.len > 0`).
    pub fn data_packets(&self, dir: Direction) -> impl Iterator<Item = &PacketRecord> + '_ {
        self.in_direction(dir).filter(|p| p.tcp_len() > 0)
    }

    /// Number of captured packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// `true` when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }
}

/// Payload arena chunk size. Big enough that one chunk holds dozens of
/// MTU-sized payloads (one allocation amortised across all of them).
const ARENA_CHUNK: usize = 64 * 1024;

/// A recorded packet whose payload still lives in the open arena chunk.
#[derive(Debug)]
struct PendingRecord {
    time: h2priv_netsim::time::SimTime,
    direction: Direction,
    header: h2priv_netsim::packet::TcpHeader,
    dropped_by_policy: bool,
    start: usize,
    len: usize,
}

/// Capture sink collecting middlebox transits into a [`Trace`].
///
/// Only [`CapturePoint::Middlebox`] events are recorded — the adversary's
/// vantage point. Link drops and deliveries elsewhere on the path are
/// invisible to it, as in reality.
///
/// Payload bytes are **copied** into a chunked arena instead of holding a
/// reference to the packet's own buffer: retaining the original `Bytes`
/// for the lifetime of the trace would pin every transport-owned payload
/// buffer (the QUIC path pools and reuses them), turning each pooled
/// buffer into a one-shot allocation. The copy costs a memcpy per packet;
/// the arena costs ~one allocation per [`ARENA_CHUNK`] of traffic.
#[derive(Debug, Default)]
pub struct TraceCollector {
    trace: Trace,
    pending: Vec<PendingRecord>,
    chunk: Vec<u8>,
}

impl TraceCollector {
    /// Creates an empty collector.
    pub fn new() -> TraceCollector {
        TraceCollector::default()
    }

    /// Takes the completed trace, leaving the collector empty.
    pub fn take_trace(&mut self) -> Trace {
        self.flush_chunk();
        std::mem::take(&mut self.trace)
    }

    /// Consumes the collector, returning the trace.
    pub fn into_trace(mut self) -> Trace {
        self.take_trace()
    }

    /// Freezes the open arena chunk and materialises the records whose
    /// payloads live in it.
    fn flush_chunk(&mut self) {
        if self.pending.is_empty() && self.chunk.is_empty() {
            return;
        }
        let bytes = Bytes::from(std::mem::take(&mut self.chunk));
        for p in self.pending.drain(..) {
            self.trace.packets.push(PacketRecord {
                time: p.time,
                direction: p.direction,
                header: p.header,
                payload: bytes.slice(p.start..p.start + p.len),
                dropped_by_policy: p.dropped_by_policy,
            });
        }
    }
}

impl CaptureSink for TraceCollector {
    fn record(&mut self, point: CapturePoint, event: &CaptureEvent) {
        if point != CapturePoint::Middlebox {
            return;
        }
        let dir = event.direction.expect("middlebox events carry a direction");
        let payload = &event.packet.payload;
        if self.chunk.len() + payload.len() > self.chunk.capacity() {
            self.flush_chunk();
            self.chunk.reserve(ARENA_CHUNK.max(payload.len()));
        }
        let start = self.chunk.len();
        self.chunk.extend_from_slice(payload);
        self.pending.push(PendingRecord {
            time: event.time,
            direction: dir,
            header: event.packet.header,
            dropped_by_policy: event.dropped_by_policy,
            start,
            len: payload.len(),
        });
    }
}

/// A shareable trace collector handle: attach one clone to the simulator
/// with [`h2priv_netsim::sim::Simulator::set_capture_sink`] and keep the
/// other to read the trace after the run.
pub type SharedTrace = Rc<RefCell<TraceCollector>>;

/// Creates a [`SharedTrace`].
pub fn shared_trace() -> SharedTrace {
    Rc::new(RefCell::new(TraceCollector::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_netsim::packet::{FlowId, HostAddr, Packet, TcpFlags, TcpHeader};
    use h2priv_netsim::time::SimTime;
    use h2priv_util::bytes::Bytes;

    fn ev(dir: Direction, len: usize) -> CaptureEvent {
        CaptureEvent {
            time: SimTime::ZERO,
            direction: Some(dir),
            packet: Packet::new(
                TcpHeader {
                    flow: FlowId {
                        src: HostAddr(1),
                        dst: HostAddr(2),
                        sport: 1,
                        dport: 443,
                    },
                    seq: 0,
                    ack: 0,
                    flags: TcpFlags::ACK,
                    window: 0,
                    ts_val: 0,
                    ts_ecr: 0,
                },
                Bytes::from(vec![0u8; len]),
            ),
            dropped_by_policy: false,
        }
    }

    #[test]
    fn collects_only_middlebox_events() {
        let mut c = TraceCollector::new();
        c.record(CapturePoint::Middlebox, &ev(Direction::ClientToServer, 10));
        c.record(
            CapturePoint::LinkDrop(h2priv_netsim::link::LinkId::from_raw(0)),
            &ev(Direction::ClientToServer, 10),
        );
        c.record(CapturePoint::Middlebox, &ev(Direction::ServerToClient, 0));
        let t = c.take_trace();
        assert_eq!(t.len(), 2);
        assert_eq!(t.in_direction(Direction::ClientToServer).count(), 1);
        assert_eq!(t.data_packets(Direction::ServerToClient).count(), 0);
    }

    #[test]
    fn arena_copy_preserves_payload_bytes_across_chunk_boundaries() {
        let mut c = TraceCollector::new();
        // Payloads large enough to force several arena chunks.
        let n = 200;
        for i in 0..n {
            let mut e = ev(Direction::ClientToServer, 1_200);
            let body = vec![(i % 251) as u8; 1_200];
            e.packet.payload = Bytes::from(body);
            c.record(CapturePoint::Middlebox, &e);
        }
        let t = c.take_trace();
        assert_eq!(t.len(), n);
        for (i, rec) in t.packets.iter().enumerate() {
            assert_eq!(rec.payload.len(), 1_200);
            assert!(rec.payload.iter().all(|&b| b == (i % 251) as u8));
        }
    }

    #[test]
    fn take_trace_leaves_collector_reusable() {
        let mut c = TraceCollector::new();
        c.record(CapturePoint::Middlebox, &ev(Direction::ClientToServer, 5));
        assert_eq!(c.take_trace().len(), 1);
        assert_eq!(c.take_trace().len(), 0);
        c.record(CapturePoint::Middlebox, &ev(Direction::ServerToClient, 7));
        assert_eq!(c.take_trace().len(), 1);
    }
}
