//! Transmission-unit segmentation: turning the server→client record
//! sequence into candidate object transmissions with size estimates.
//!
//! The paper's Fig. 1 insight: once transmissions are *serialized*, the
//! eavesdropper can find object boundaries (a delimiting sub-MTU packet,
//! an idle gap, or a small response-HEADERS record) and sum the sizes in
//! between. When transmissions are still multiplexed, the same procedure
//! produces units whose sizes match nothing — which is exactly how the
//! attack distinguishes success from failure.

use crate::reassembly::SeenRecord;
use h2priv_netsim::time::{SimDuration, SimTime};
use h2priv_util::impl_to_json;

/// HTTP/2 frame header bytes per DATA record, subtracted from size
/// estimates (known protocol constant).
pub const FRAME_HEADER_OVERHEAD: u64 = 9;

/// Segmentation parameters.
#[derive(Debug, Clone, Copy)]
pub struct UnitConfig {
    /// An idle gap between consecutive data records longer than this
    /// closes the current unit.
    pub idle_gap: SimDuration,
    /// Records with plaintext shorter than this are treated as
    /// control/HEADERS records: they close the current unit instead of
    /// contributing bytes.
    pub min_data_record: u16,
}

impl Default for UnitConfig {
    fn default() -> Self {
        UnitConfig {
            // Above the slowest per-chunk emission pacing of a dynamic
            // response (so one object never splits), below typical
            // request spacing; object boundaries are additionally marked
            // by the small response-HEADERS records.
            idle_gap: SimDuration::from_millis(70),
            min_data_record: 150,
        }
    }
}

/// One contiguous run of data records — a candidate object transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransmissionUnit {
    /// Completion time of the first record in the unit.
    pub start: SimTime,
    /// Completion time of the last record in the unit.
    pub end: SimTime,
    /// Estimated object payload bytes (record plaintext minus known
    /// frame-header overhead).
    pub estimated_payload: u64,
    /// Number of data records in the unit.
    pub records: usize,
}

impl_to_json!(struct TransmissionUnit { start, end, estimated_payload, records });

/// Segments application-data records into transmission units.
///
/// `records` must be in stream order (as produced by
/// [`crate::reassembly::reassemble`]).
pub fn segment_units(records: &[SeenRecord], cfg: &UnitConfig) -> Vec<TransmissionUnit> {
    let mut units = Vec::new();
    let mut current: Option<TransmissionUnit> = None;
    let mut last_time: Option<SimTime> = None;

    for rec in records.iter().filter(|r| r.is_app_data()) {
        if rec.plaintext_len < cfg.min_data_record {
            // Control or HEADERS record: boundary.
            if let Some(u) = current.take() {
                units.push(u);
            }
            last_time = Some(rec.completed_at);
            continue;
        }
        let gap_exceeded = match (current.as_ref(), last_time) {
            (Some(_), Some(t)) => rec.completed_at.saturating_since(t) > cfg.idle_gap,
            _ => false,
        };
        if gap_exceeded {
            if let Some(u) = current.take() {
                units.push(u);
            }
        }
        let contribution = (rec.plaintext_len as u64).saturating_sub(FRAME_HEADER_OVERHEAD);
        match current.as_mut() {
            Some(u) => {
                u.end = rec.completed_at;
                u.estimated_payload += contribution;
                u.records += 1;
            }
            None => {
                current = Some(TransmissionUnit {
                    start: rec.completed_at,
                    end: rec.completed_at,
                    estimated_payload: contribution,
                    records: 1,
                });
            }
        }
        last_time = Some(rec.completed_at);
    }
    if let Some(u) = current.take() {
        units.push(u);
    }
    units
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(plaintext: u16, at_ms: u64) -> SeenRecord {
        SeenRecord {
            content_type: 23,
            body_len: plaintext + 16,
            plaintext_len: plaintext,
            stream_offset: 0,
            completed_at: SimTime::from_millis(at_ms),
        }
    }

    fn hs(at_ms: u64) -> SeenRecord {
        SeenRecord {
            content_type: 22,
            ..rec(500, at_ms)
        }
    }

    #[test]
    fn single_object_single_unit() {
        // 9500-byte object in 2 KiB chunks: 4x2048 + 1308, each +9 frame hdr.
        let recs = vec![
            rec(2057, 10),
            rec(2057, 20),
            rec(2057, 30),
            rec(2057, 40),
            rec(1317, 50),
        ];
        let units = segment_units(&recs, &UnitConfig::default());
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].estimated_payload, 9_500);
        assert_eq!(units[0].records, 5);
        assert_eq!(units[0].start, SimTime::from_millis(10));
        assert_eq!(units[0].end, SimTime::from_millis(50));
    }

    #[test]
    fn idle_gap_splits_units() {
        let recs = vec![rec(1009, 10), rec(1009, 20), rec(2009, 200), rec(2009, 210)];
        let units = segment_units(&recs, &UnitConfig::default());
        assert_eq!(units.len(), 2);
        assert_eq!(units[0].estimated_payload, 2_000);
        assert_eq!(units[1].estimated_payload, 4_000);
    }

    #[test]
    fn small_records_are_boundaries_not_payload() {
        // HEADERS (~100 B) between two objects closes the first unit even
        // with no time gap.
        let recs = vec![rec(1009, 10), rec(100, 11), rec(1009, 12)];
        let units = segment_units(&recs, &UnitConfig::default());
        assert_eq!(units.len(), 2);
        assert_eq!(units[0].estimated_payload, 1_000);
        assert_eq!(units[1].estimated_payload, 1_000);
    }

    #[test]
    fn non_app_data_ignored() {
        let recs = vec![hs(1), rec(1009, 10), hs(11), rec(509, 12)];
        let units = segment_units(&recs, &UnitConfig::default());
        // Handshake records are invisible to segmentation (not app data).
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].estimated_payload, 1_500);
    }

    #[test]
    fn empty_input_yields_no_units() {
        assert!(segment_units(&[], &UnitConfig::default()).is_empty());
    }
}
