//! Datagram-delimiter segmentation for the QUIC transport.
//!
//! Against QUIC the eavesdropper loses the cleartext TLS record headers:
//! every datagram is opaque ciphertext and the only on-path observables
//! are datagram *sizes* and *timing*. This module reapplies the paper's
//! Fig. 1 delimiter insight at the datagram layer: a sender draining an
//! object emits a run of full (MTU-sized) datagrams and finishes with a
//! sub-MTU tail, so the tail datagram delimits the object — provided
//! transmissions have been serialized first. Ambient ACK-sized datagrams
//! are too small to carry object data and are ignored entirely.

use crate::analysis::TransmissionUnit;
use crate::capture::Trace;
use h2priv_netsim::packet::Direction;
use h2priv_netsim::time::SimDuration;

/// Segmentation parameters for the datagram-delimiter analysis.
#[derive(Debug, Clone, Copy)]
pub struct DatagramUnitConfig {
    /// An idle gap between consecutive data datagrams longer than this
    /// closes the current unit.
    pub idle_gap: SimDuration,
    /// Datagrams with payload shorter than this are ambient control
    /// traffic (ACK volleys, resets): invisible to the segmentation,
    /// neither contributing bytes nor marking a boundary.
    pub min_data_datagram: u32,
    /// Datagrams at least this large are "full": the run continues. A
    /// data datagram below this size is an object tail and closes the
    /// unit *after* contributing its bytes.
    pub full_datagram: u32,
    /// Framing bytes per stream-carrying datagram (short header, STREAM
    /// frame header, AEAD tag), subtracted from size estimates (known
    /// protocol constant).
    pub per_datagram_overhead: u64,
}

impl Default for DatagramUnitConfig {
    fn default() -> Self {
        DatagramUnitConfig {
            // Same rationale as the TLS-record path: above per-chunk
            // emission pacing, below request spacing.
            idle_gap: SimDuration::from_millis(70),
            min_data_datagram: 150,
            full_datagram: 1_200,
            per_datagram_overhead: 42,
        }
    }
}

/// Segments one direction's datagrams into transmission units using
/// sub-MTU tails and idle gaps as object delimiters.
///
/// Only eavesdropper-visible information is used: datagram sizes and
/// capture timestamps. Datagrams the adversary's own policy dropped are
/// excluded (they never reached the victim).
pub fn segment_datagram_units(
    trace: &Trace,
    dir: Direction,
    cfg: &DatagramUnitConfig,
) -> Vec<TransmissionUnit> {
    let mut units = Vec::new();
    let mut current: Option<TransmissionUnit> = None;

    for rec in trace.data_packets(dir).filter(|r| !r.dropped_by_policy) {
        let len = rec.tcp_len();
        if len < cfg.min_data_datagram {
            // Ambient ACK/control datagram: invisible.
            continue;
        }
        let gap_exceeded = current
            .as_ref()
            .is_some_and(|u| rec.time.saturating_since(u.end) > cfg.idle_gap);
        if gap_exceeded {
            if let Some(u) = current.take() {
                units.push(u);
            }
        }
        let contribution = (len as u64).saturating_sub(cfg.per_datagram_overhead);
        match current.as_mut() {
            Some(u) => {
                u.end = rec.time;
                u.estimated_payload += contribution;
                u.records += 1;
            }
            None => {
                current = Some(TransmissionUnit {
                    start: rec.time,
                    end: rec.time,
                    estimated_payload: contribution,
                    records: 1,
                });
            }
        }
        if len < cfg.full_datagram {
            // Sub-MTU tail: the object just ended.
            if let Some(u) = current.take() {
                units.push(u);
            }
        }
    }
    if let Some(u) = current.take() {
        units.push(u);
    }
    units
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PacketRecord;
    use h2priv_netsim::packet::{FlowId, HostAddr, Packet, TcpFlags, TcpHeader};
    use h2priv_netsim::time::SimTime;
    use h2priv_util::bytes::Bytes;

    fn dg(len: usize, at_ms: u64, dropped: bool) -> PacketRecord {
        let pkt = Packet::new(
            TcpHeader {
                flow: FlowId {
                    src: HostAddr(2),
                    dst: HostAddr(1),
                    sport: 443,
                    dport: 40_000,
                },
                seq: 0,
                ack: 0,
                flags: TcpFlags::ACK,
                window: 65_535,
                ts_val: 0,
                ts_ecr: 0,
            },
            Bytes::from(vec![0u8; len]),
        );
        PacketRecord::from_packet(
            SimTime::from_millis(at_ms),
            Direction::ServerToClient,
            &pkt,
            dropped,
        )
    }

    fn trace_of(packets: Vec<PacketRecord>) -> Trace {
        Trace { packets }
    }

    #[test]
    fn sub_mtu_tail_delimits_objects() {
        let cfg = DatagramUnitConfig::default();
        let t = trace_of(vec![
            dg(1_200, 10, false),
            dg(1_200, 11, false),
            dg(500, 12, false),
            dg(1_200, 20, false),
            dg(300, 21, false),
        ]);
        let units = segment_datagram_units(&t, Direction::ServerToClient, &cfg);
        assert_eq!(units.len(), 2);
        assert_eq!(units[0].records, 3);
        assert_eq!(units[0].estimated_payload, (1_200 - 42) * 2 + (500 - 42));
        assert_eq!(units[1].records, 2);
        assert_eq!(units[1].estimated_payload, (1_200 - 42) + (300 - 42));
    }

    #[test]
    fn ambient_acks_are_invisible() {
        let cfg = DatagramUnitConfig::default();
        let t = trace_of(vec![
            dg(1_200, 10, false),
            dg(43, 11, false),
            dg(59, 12, false),
            dg(1_200, 13, false),
            dg(400, 14, false),
        ]);
        let units = segment_datagram_units(&t, Direction::ServerToClient, &cfg);
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].records, 3);
    }

    #[test]
    fn idle_gap_closes_unit() {
        let cfg = DatagramUnitConfig::default();
        let t = trace_of(vec![
            dg(1_200, 10, false),
            dg(1_200, 20, false),
            dg(1_200, 200, false),
            dg(600, 201, false),
        ]);
        let units = segment_datagram_units(&t, Direction::ServerToClient, &cfg);
        assert_eq!(units.len(), 2);
        assert_eq!(units[0].records, 2);
        assert_eq!(units[1].records, 2);
    }

    #[test]
    fn policy_dropped_datagrams_are_excluded() {
        let cfg = DatagramUnitConfig::default();
        let t = trace_of(vec![
            dg(1_200, 10, false),
            dg(1_200, 11, true),
            dg(500, 12, false),
        ]);
        let units = segment_datagram_units(&t, Direction::ServerToClient, &cfg);
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].records, 2);
        assert_eq!(units[0].estimated_payload, (1_200 - 42) + (500 - 42));
    }

    #[test]
    fn empty_trace_yields_no_units() {
        let cfg = DatagramUnitConfig::default();
        let t = trace_of(Vec::new());
        assert!(segment_datagram_units(&t, Direction::ServerToClient, &cfg).is_empty());
    }
}
