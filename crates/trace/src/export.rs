//! Trace export/import: a pcap-like interchange format (JSON lines) so
//! captures can be archived, diffed, and re-analysed offline — the
//! workflow the paper's tshark captures supported.
//!
//! Only eavesdropper-visible fields are serialized; payload bytes are
//! included (they are ciphertext-equivalent on a real wire).

use crate::capture::Trace;
use crate::record::PacketRecord;
use bytes::Bytes;
use h2priv_netsim::packet::{Direction, TcpHeader};
use h2priv_netsim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// One serialized packet record.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct WireLine {
    t_ns: u64,
    dir: Direction,
    header: TcpHeader,
    #[serde(with = "hex_bytes")]
    payload: Vec<u8>,
    dropped: bool,
}

mod hex_bytes {
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(bytes: &[u8], s: S) -> Result<S::Ok, S::Error> {
        let mut out = String::with_capacity(bytes.len() * 2);
        for b in bytes {
            out.push_str(&format!("{b:02x}"));
        }
        s.serialize_str(&out)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Vec<u8>, D::Error> {
        let s = String::deserialize(d)?;
        if s.len() % 2 != 0 {
            return Err(serde::de::Error::custom("odd hex length"));
        }
        (0..s.len())
            .step_by(2)
            .map(|i| {
                u8::from_str_radix(&s[i..i + 2], 16)
                    .map_err(|_| serde::de::Error::custom("bad hex"))
            })
            .collect()
    }
}

/// Writes a trace as JSON lines (one packet per line).
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> std::io::Result<()> {
    for p in &trace.packets {
        let line = WireLine {
            t_ns: p.time.as_nanos(),
            dir: p.direction,
            header: p.header,
            payload: p.payload.to_vec(),
            dropped: p.dropped_by_policy,
        };
        serde_json::to_writer(&mut w, &line)?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Reads a trace previously written by [`write_trace`].
///
/// # Errors
/// Returns an error on I/O failure or malformed lines.
pub fn read_trace<R: BufRead>(r: R) -> std::io::Result<Trace> {
    let mut packets = Vec::new();
    for line in r.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let wl: WireLine = serde_json::from_str(&line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        packets.push(PacketRecord {
            time: SimTime::from_nanos(wl.t_ns),
            direction: wl.dir,
            header: wl.header,
            payload: Bytes::from(wl.payload),
            dropped_by_policy: wl.dropped,
        });
    }
    Ok(Trace { packets })
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_netsim::packet::{FlowId, HostAddr, TcpFlags};

    fn sample() -> Trace {
        let mk = |seq: u32, len: usize, dir: Direction| PacketRecord {
            time: SimTime::from_micros(seq as u64 * 10),
            direction: dir,
            header: TcpHeader {
                flow: FlowId { src: HostAddr(1), dst: HostAddr(2), sport: 40_000, dport: 443 },
                seq,
                ack: 7,
                flags: TcpFlags::ACK,
                window: 65_535,
                ts_val: 42,
                ts_ecr: 21,
            },
            payload: Bytes::from(vec![seq as u8; len]),
            dropped_by_policy: seq % 3 == 0,
        };
        Trace {
            packets: vec![
                mk(0, 0, Direction::ClientToServer),
                mk(1, 100, Direction::ServerToClient),
                mk(2, 1460, Direction::ServerToClient),
                mk(3, 7, Direction::ClientToServer),
            ],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back = read_trace(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.packets.len(), t.packets.len());
        for (a, b) in t.packets.iter().zip(&back.packets) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.direction, b.direction);
            assert_eq!(a.header, b.header);
            assert_eq!(a.payload, b.payload);
            assert_eq!(a.dropped_by_policy, b.dropped_by_policy);
        }
    }

    #[test]
    fn empty_lines_are_skipped() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_trace(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.packets.len(), t.packets.len());
    }

    #[test]
    fn corrupt_line_is_an_error_not_a_panic() {
        let err = read_trace(std::io::BufReader::new(&b"not json\n"[..]));
        assert!(err.is_err());
    }
}
