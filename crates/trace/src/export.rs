//! Trace export/import: a pcap-like interchange format (JSON lines) so
//! captures can be archived, diffed, and re-analysed offline — the
//! workflow the paper's tshark captures supported.
//!
//! Only eavesdropper-visible fields are serialized; payload bytes are
//! included (they are ciphertext-equivalent on a real wire).

use crate::capture::Trace;
use crate::record::PacketRecord;
use h2priv_netsim::packet::{Direction, FlowId, HostAddr, TcpFlags, TcpHeader};
use h2priv_netsim::time::SimTime;
use h2priv_util::bytes::Bytes;
use h2priv_util::json::{Json, ToJson};
use std::io::{BufRead, Write};

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) || !s.is_ascii() {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

fn parse_header(j: &Json) -> std::io::Result<TcpHeader> {
    let u64_field = |j: &Json, k: &str| {
        j.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing header field"))
    };
    let bool_field = |j: &Json, k: &str| {
        j.get(k)
            .and_then(Json::as_bool)
            .ok_or_else(|| bad("missing flag field"))
    };
    let flow = j.get("flow").ok_or_else(|| bad("missing flow"))?;
    let flags = j.get("flags").ok_or_else(|| bad("missing flags"))?;
    Ok(TcpHeader {
        flow: FlowId {
            src: HostAddr(u64_field(flow, "src")? as u16),
            dst: HostAddr(u64_field(flow, "dst")? as u16),
            sport: u64_field(flow, "sport")? as u16,
            dport: u64_field(flow, "dport")? as u16,
        },
        seq: u64_field(j, "seq")? as u32,
        ack: u64_field(j, "ack")? as u32,
        flags: TcpFlags {
            syn: bool_field(flags, "syn")?,
            ack: bool_field(flags, "ack")?,
            fin: bool_field(flags, "fin")?,
            rst: bool_field(flags, "rst")?,
            psh: bool_field(flags, "psh")?,
        },
        window: u64_field(j, "window")? as u32,
        ts_val: u64_field(j, "ts_val")?,
        ts_ecr: u64_field(j, "ts_ecr")?,
    })
}

fn parse_direction(j: &Json) -> std::io::Result<Direction> {
    match j.as_str() {
        Some("ClientToServer") => Ok(Direction::ClientToServer),
        Some("ServerToClient") => Ok(Direction::ServerToClient),
        _ => Err(bad("bad direction")),
    }
}

/// Writes a trace as JSON lines (one packet per line).
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> std::io::Result<()> {
    for p in &trace.packets {
        let line = Json::Obj(vec![
            ("t_ns".into(), p.time.as_nanos().to_json()),
            ("dir".into(), p.direction.to_json()),
            ("header".into(), p.header.to_json()),
            ("payload".into(), Json::Str(hex_encode(&p.payload))),
            ("dropped".into(), p.dropped_by_policy.to_json()),
        ]);
        w.write_all(line.to_string_compact().as_bytes())?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Reads a trace previously written by [`write_trace`].
///
/// # Errors
/// Returns an error on I/O failure or malformed lines.
pub fn read_trace<R: BufRead>(r: R) -> std::io::Result<Trace> {
    let mut packets = Vec::new();
    for line in r.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let j = Json::parse(&line).map_err(|e| bad(&e))?;
        let payload = j
            .get("payload")
            .and_then(Json::as_str)
            .and_then(hex_decode)
            .ok_or_else(|| bad("bad payload"))?;
        packets.push(PacketRecord {
            time: SimTime::from_nanos(
                j.get("t_ns")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("bad t_ns"))?,
            ),
            direction: parse_direction(j.get("dir").ok_or_else(|| bad("missing dir"))?)?,
            header: parse_header(j.get("header").ok_or_else(|| bad("missing header"))?)?,
            payload: Bytes::from(payload),
            dropped_by_policy: j
                .get("dropped")
                .and_then(Json::as_bool)
                .ok_or_else(|| bad("bad dropped"))?,
        });
    }
    Ok(Trace { packets })
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2priv_netsim::packet::{FlowId, HostAddr, TcpFlags};

    fn sample() -> Trace {
        let mk = |seq: u32, len: usize, dir: Direction| PacketRecord {
            time: SimTime::from_micros(seq as u64 * 10),
            direction: dir,
            header: TcpHeader {
                flow: FlowId {
                    src: HostAddr(1),
                    dst: HostAddr(2),
                    sport: 40_000,
                    dport: 443,
                },
                seq,
                ack: 7,
                flags: TcpFlags::ACK,
                window: 65_535,
                ts_val: 42,
                ts_ecr: 21,
            },
            payload: Bytes::from(vec![seq as u8; len]),
            dropped_by_policy: seq.is_multiple_of(3),
        };
        Trace {
            packets: vec![
                mk(0, 0, Direction::ClientToServer),
                mk(1, 100, Direction::ServerToClient),
                mk(2, 1460, Direction::ServerToClient),
                mk(3, 7, Direction::ClientToServer),
            ],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back = read_trace(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.packets.len(), t.packets.len());
        for (a, b) in t.packets.iter().zip(&back.packets) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.direction, b.direction);
            assert_eq!(a.header, b.header);
            assert_eq!(a.payload, b.payload);
            assert_eq!(a.dropped_by_policy, b.dropped_by_policy);
        }
    }

    #[test]
    fn empty_lines_are_skipped() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_trace(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.packets.len(), t.packets.len());
    }

    #[test]
    fn corrupt_line_is_an_error_not_a_panic() {
        let err = read_trace(std::io::BufReader::new(&b"not json\n"[..]));
        assert!(err.is_err());
    }
}
