//! # h2priv-trace
//!
//! The adversary's measurement toolbox — a functional stand-in for the
//! tshark-based traffic monitor of *"Depending on HTTP/2 for Privacy?
//! Good Luck!"* (DSN 2020).
//!
//! * [`capture::TraceCollector`] taps the simulated wire at the
//!   compromised middlebox (via the `h2priv-netsim` capture hook) and
//!   stores [`record::PacketRecord`]s: timestamps, cleartext TCP/IP
//!   headers, sizes, and raw (ciphertext) payload bytes — exactly what a
//!   real gateway running tshark records.
//! * [`filter`] implements a small display-filter language so attack code
//!   can say things like `ssl.record.content_type == 23 and tcp.len > 60`
//!   — the very filter the paper quotes for counting GET requests.
//! * [`reassembly`] rebuilds each direction's TCP byte stream from
//!   segments (deduplicating retransmissions — and counting them, which
//!   is the measurement behind Table I and Fig. 5) and parses the
//!   cleartext TLS record headers out of it.
//! * [`analysis`] segments the server→client record sequence into
//!   transmission units using the paper's delimiter insight (Fig. 1) plus
//!   inter-record idle gaps, producing the size estimates the prediction
//!   module consumes.
//! * [`datagram`] reapplies the same delimiter insight at the datagram
//!   layer for the QUIC transport, where no cleartext record headers
//!   exist and only datagram sizes and timing are observable.
//!
//! Only eavesdropper-visible information is ever used: nothing in this
//! crate touches `h2priv-tls`'s ground-truth wire maps.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod capture;
pub mod datagram;
pub mod export;
pub mod filter;
pub mod reassembly;
pub mod record;

pub use analysis::{TransmissionUnit, UnitConfig};
pub use capture::{SharedTrace, Trace, TraceCollector};
pub use datagram::{segment_datagram_units, DatagramUnitConfig};
pub use filter::FilterExpr;
pub use reassembly::{SeenRecord, StreamView};
pub use record::PacketRecord;
