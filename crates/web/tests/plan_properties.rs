//! Property tests for site models: plan causality, trigger integrity,
//! and isidewith ground-truth invariants across random trials.

use h2priv_netsim::rng::SimRng;
use h2priv_util::check::{self, Gen};
use h2priv_util::{prop_assert, prop_assert_eq};
use h2priv_web::{IsideWith, Party, Trigger};

/// Every dependency in a plan must point at an earlier step, so a
/// browser walking the plan never deadlocks.
fn assert_causal(site: &h2priv_web::Site) {
    for (i, step) in site.plan.iter().enumerate() {
        let dep = match step.trigger {
            Trigger::AtStart { .. } => None,
            Trigger::AfterRequest { prev, .. } => Some(prev),
            Trigger::AfterFirstByte { parent, .. } => Some(parent),
            Trigger::AfterComplete { parent, .. } => Some(parent),
        };
        if let Some(dep) = dep {
            let pos = site
                .plan
                .iter()
                .position(|s| s.object == dep)
                .unwrap_or_else(|| panic!("step {i} depends on unplanned {dep}"));
            assert!(pos < i, "step {i} depends on later step {pos}");
        }
    }
}

/// Any generated isidewith trial is well-formed: causal plan, every
/// object planned exactly once, ground truth a permutation, sizes in
/// the paper's band.
#[test]
fn isidewith_trials_are_well_formed() {
    check::run("isidewith_trials_are_well_formed", 64, |g: &mut Gen| {
        let seed = g.u64(0, u64::MAX);
        let mut rng = SimRng::new(seed);
        let iw = IsideWith::generate(&mut rng);
        assert_causal(&iw.site);
        // Each object appears in the plan exactly once.
        let mut planned: Vec<u32> = iw.site.plan.iter().map(|s| s.object.0).collect();
        planned.sort_unstable();
        let expect: Vec<u32> = (0..iw.site.len() as u32).collect();
        prop_assert_eq!(planned, expect);
        // Ground truth permutation.
        let mut parties = iw.result_order.to_vec();
        parties.sort_by_key(|p| p.index());
        prop_assert_eq!(parties, Party::ALL.to_vec());
        // Image sizes in the 5–16 KB band, request order matches truth.
        for (img, party) in iw.images.iter().zip(iw.result_order) {
            let o = iw.site.object(*img);
            prop_assert!((5_000..=16_000).contains(&o.size));
            prop_assert_eq!(*img, iw.image_of(party));
        }
    });
}

/// The HTML is always the 6th planned request, regardless of the
/// permutation (the attack's trigger index depends on it).
#[test]
fn html_is_always_the_sixth_request() {
    check::run("html_is_always_the_sixth_request", 64, |g: &mut Gen| {
        let seed = g.u64(0, u64::MAX);
        let mut rng = SimRng::new(seed);
        let iw = IsideWith::generate(&mut rng);
        prop_assert_eq!(iw.site.plan_position(iw.html), Some(5));
    });
}

/// Two-object demo sites respect the requested gap and sizes.
#[test]
fn two_object_site_parameters() {
    check::run("two_object_site_parameters", 64, |g: &mut Gen| {
        let o1 = g.u64(1, 999_999);
        let o2 = g.u64(1, 999_999);
        let gap_ms = g.u64(0, 4_999);
        let site = h2priv_web::sites::two_object_site(
            o1,
            o2,
            h2priv_netsim::time::SimDuration::from_millis(gap_ms),
        );
        assert_causal(&site);
        prop_assert_eq!(site.object(h2priv_web::ObjectId(0)).size, o1);
        prop_assert_eq!(site.object(h2priv_web::ObjectId(1)).size, o2);
    });
}

#[test]
fn adversary_size_map_is_collision_free_at_tolerance() {
    // The predictor's ±3% matching must be unambiguous over the whole
    // map (all 8 emblems + the HTML).
    let mut sizes: Vec<u64> = IsideWith::adversary_size_map()
        .iter()
        .map(|(_, s)| *s)
        .collect();
    sizes.push(h2priv_web::isidewith::RESULT_HTML_SIZE);
    for (i, a) in sizes.iter().enumerate() {
        for b in sizes.iter().skip(i + 1) {
            let ratio = *a.max(b) as f64 / *a.min(b) as f64;
            assert!(
                ratio > 1.061,
                "sizes {a} and {b} are confusable at 3% tolerance"
            );
        }
    }
}

#[test]
fn embedded_asset_sizes_do_not_shadow_objects_of_interest() {
    // No plain embedded asset may fall within 3% of an emblem or the
    // HTML, or the predictor would hallucinate parties (this bit us
    // during calibration; see DESIGN.md).
    let iw = IsideWith::with_result_order(Party::ALL);
    let mut interest: Vec<u64> = IsideWith::adversary_size_map()
        .iter()
        .map(|(_, s)| *s)
        .collect();
    interest.push(h2priv_web::isidewith::RESULT_HTML_SIZE);
    for obj in iw.site.objects() {
        if iw.objects_of_interest().contains(&obj.id) {
            continue;
        }
        for s in &interest {
            let ratio = obj.size.max(*s) as f64 / obj.size.min(*s) as f64;
            assert!(
                ratio > 1.035,
                "asset {} ({} B) is confusable with an object of interest ({} B)",
                obj.path,
                obj.size,
                s
            );
        }
    }
}
