//! Sites: object inventories plus dependency-driven request plans.

use crate::object::{ObjectId, WebObject};
use h2priv_netsim::time::SimDuration;
use h2priv_util::impl_to_json;
use h2priv_util::json::{Json, ToJson};
use std::collections::HashMap;

/// What causes the browser to issue an object's GET.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// `gap` after page-load start (navigation).
    AtStart {
        /// Delay from page-load start.
        gap: SimDuration,
    },
    /// `gap` after the GET for `prev` was issued (browser request
    /// pipeline; this is what the paper's Table II inter-request gaps
    /// measure).
    AfterRequest {
        /// The preceding request.
        prev: ObjectId,
        /// Gap between the two GETs.
        gap: SimDuration,
    },
    /// `gap` after the first response bytes of `parent` arrived
    /// (preload-scanner discovery).
    AfterFirstByte {
        /// The object whose first bytes reveal this one.
        parent: ObjectId,
        /// Delay after the first byte.
        gap: SimDuration,
    },
    /// `gap` after `parent` finished downloading (script execution — the
    /// isidewith result page's JS requests the 8 emblem images this way).
    AfterComplete {
        /// The object whose completion reveals this one.
        parent: ObjectId,
        /// Delay after completion.
        gap: SimDuration,
    },
}

impl ToJson for Trigger {
    // Externally-tagged form, matching what serde derived for this enum:
    // {"AtStart": {"gap": ...}}, {"AfterRequest": {"prev": ..., "gap": ...}}, ...
    fn to_json(&self) -> Json {
        let (variant, fields) = match *self {
            Trigger::AtStart { gap } => ("AtStart", vec![("gap".to_string(), gap.to_json())]),
            Trigger::AfterRequest { prev, gap } => (
                "AfterRequest",
                vec![
                    ("prev".to_string(), prev.to_json()),
                    ("gap".to_string(), gap.to_json()),
                ],
            ),
            Trigger::AfterFirstByte { parent, gap } => (
                "AfterFirstByte",
                vec![
                    ("parent".to_string(), parent.to_json()),
                    ("gap".to_string(), gap.to_json()),
                ],
            ),
            Trigger::AfterComplete { parent, gap } => (
                "AfterComplete",
                vec![
                    ("parent".to_string(), parent.to_json()),
                    ("gap".to_string(), gap.to_json()),
                ],
            ),
        };
        Json::Obj(vec![(variant.to_string(), Json::Obj(fields))])
    }
}

/// One step of the request plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanStep {
    /// Which object to request.
    pub object: ObjectId,
    /// When to request it.
    pub trigger: Trigger,
}

impl_to_json!(struct PlanStep { object, trigger });

/// A website: inventory + request plan.
#[derive(Debug, Clone)]
pub struct Site {
    /// Human-readable name.
    pub name: String,
    objects: Vec<WebObject>,
    /// The request plan in intended issue order.
    pub plan: Vec<PlanStep>,
    /// Path lookup index; derived from `objects`, not serialized.
    by_path: HashMap<String, ObjectId>,
}

impl_to_json!(struct Site { name, objects, plan });

impl Site {
    /// Builds a site, validating that the plan only references inventory
    /// objects and that object ids equal their inventory index.
    ///
    /// # Panics
    /// Panics on a malformed inventory or plan (these are programmer
    /// errors in workload definitions).
    pub fn new(name: impl Into<String>, objects: Vec<WebObject>, plan: Vec<PlanStep>) -> Site {
        for (i, o) in objects.iter().enumerate() {
            assert_eq!(o.id.0 as usize, i, "object id must equal inventory index");
            assert!(o.size > 0, "object {} has zero size", o.path);
        }
        let exists = |id: ObjectId| {
            assert!(
                (id.0 as usize) < objects.len(),
                "plan references unknown object {id}"
            )
        };
        for step in &plan {
            exists(step.object);
            match step.trigger {
                Trigger::AtStart { .. } => {}
                Trigger::AfterRequest { prev, .. } => exists(prev),
                Trigger::AfterFirstByte { parent, .. } => exists(parent),
                Trigger::AfterComplete { parent, .. } => exists(parent),
            }
        }
        let by_path = objects.iter().map(|o| (o.path.clone(), o.id)).collect();
        Site {
            name: name.into(),
            objects,
            plan,
            by_path,
        }
    }

    /// The object with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn object(&self, id: ObjectId) -> &WebObject {
        &self.objects[id.0 as usize]
    }

    /// Looks an object up by request path.
    pub fn by_path(&self, path: &str) -> Option<&WebObject> {
        self.by_path.get(path).map(|id| self.object(*id))
    }

    /// All objects in id order.
    pub fn objects(&self) -> &[WebObject] {
        &self.objects
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` if the site has no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The position of `object` in the request plan (0-based), if planned.
    pub fn plan_position(&self, object: ObjectId) -> Option<usize> {
        self.plan.iter().position(|s| s.object == object)
    }

    /// Dummy-object countermeasure: returns a copy of this site with
    /// `count` decoy objects appended. Each decoy shadows one of the
    /// last-planned distinct objects (working backwards from the end of
    /// the plan, where an attacked page's identifying burst lives): it
    /// is sized 2 % above its target — inside a ±3 % size-matching
    /// tolerance, so the adversary's size map labels the decoy like the
    /// real object — and is requested a few milliseconds after it, so
    /// decoy traffic lands inside the same burst and corrupts any
    /// order/ranking inference. Deterministic: no RNG, no change to
    /// existing objects or plan steps.
    pub fn with_dummy_objects(&self, count: u32) -> Site {
        if count == 0 || self.plan.is_empty() {
            return self.clone();
        }
        let mut targets: Vec<ObjectId> = Vec::new();
        for step in self.plan.iter().rev() {
            if !targets.contains(&step.object) {
                targets.push(step.object);
            }
            if targets.len() == count as usize {
                break;
            }
        }
        let mut objects = self.objects.clone();
        let mut plan = self.plan.clone();
        for (k, &target) in targets.iter().enumerate() {
            let id = ObjectId(objects.len() as u32);
            let t = self.object(target);
            objects.push(WebObject {
                id,
                path: format!("/decoy/{k}.bin"),
                media: t.media,
                size: t.size + t.size / 50,
                service: t.service,
            });
            plan.push(PlanStep {
                object: id,
                trigger: Trigger::AfterRequest {
                    prev: target,
                    gap: SimDuration::from_millis(6),
                },
            });
        }
        Site::new(format!("{}+decoys", self.name), objects, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{MediaType, ServiceProfile};

    fn obj(id: u32, path: &str, size: u64) -> WebObject {
        WebObject {
            id: ObjectId(id),
            path: path.into(),
            media: MediaType::Image,
            size,
            service: ServiceProfile::static_asset(),
        }
    }

    #[test]
    fn build_and_lookup() {
        let site = Site::new(
            "t",
            vec![obj(0, "/a", 10), obj(1, "/b", 20)],
            vec![
                PlanStep {
                    object: ObjectId(0),
                    trigger: Trigger::AtStart {
                        gap: SimDuration::ZERO,
                    },
                },
                PlanStep {
                    object: ObjectId(1),
                    trigger: Trigger::AfterRequest {
                        prev: ObjectId(0),
                        gap: SimDuration::from_millis(5),
                    },
                },
            ],
        );
        assert_eq!(site.len(), 2);
        assert_eq!(site.by_path("/b").unwrap().id, ObjectId(1));
        assert_eq!(site.by_path("/missing"), None);
        assert_eq!(site.plan_position(ObjectId(1)), Some(1));
    }

    #[test]
    fn dummy_objects_zero_is_identity() {
        let site = Site::new(
            "t",
            vec![obj(0, "/a", 10_000)],
            vec![PlanStep {
                object: ObjectId(0),
                trigger: Trigger::AtStart {
                    gap: SimDuration::ZERO,
                },
            }],
        );
        let same = site.with_dummy_objects(0);
        assert_eq!(same.len(), site.len());
        assert_eq!(same.plan, site.plan);
        assert_eq!(same.name, site.name);
    }

    #[test]
    fn dummy_objects_unplanned_site_is_identity() {
        let site = Site::new("t", vec![obj(0, "/a", 10_000)], vec![]);
        let same = site.with_dummy_objects(3);
        assert_eq!(same.len(), 1);
        assert!(same.plan.is_empty());
    }

    #[test]
    fn dummy_objects_shadow_last_planned_objects() {
        let site = Site::new(
            "t",
            vec![
                obj(0, "/a", 10_000),
                obj(1, "/b", 6_000),
                obj(2, "/c", 8_000),
            ],
            vec![
                PlanStep {
                    object: ObjectId(0),
                    trigger: Trigger::AtStart {
                        gap: SimDuration::ZERO,
                    },
                },
                PlanStep {
                    object: ObjectId(1),
                    trigger: Trigger::AfterRequest {
                        prev: ObjectId(0),
                        gap: SimDuration::from_millis(5),
                    },
                },
                PlanStep {
                    object: ObjectId(2),
                    trigger: Trigger::AfterRequest {
                        prev: ObjectId(1),
                        gap: SimDuration::from_millis(5),
                    },
                },
            ],
        );
        let decoyed = site.with_dummy_objects(2);
        assert_eq!(decoyed.len(), 5);
        assert_eq!(decoyed.plan.len(), 5);
        // Decoys mimic the last-planned objects, working backwards.
        for (k, target) in [ObjectId(2), ObjectId(1)].into_iter().enumerate() {
            let decoy = decoyed.object(ObjectId(3 + k as u32));
            let real = site.object(target);
            assert_eq!(decoy.path, format!("/decoy/{k}.bin"));
            // Within the ±3 % size-identification band of its target.
            let tol = real.size as f64 * 0.03;
            assert!((decoy.size as f64 - real.size as f64).abs() <= tol);
            match decoyed.plan[3 + k].trigger {
                Trigger::AfterRequest { prev, .. } => assert_eq!(prev, target),
                other => panic!("unexpected trigger {other:?}"),
            }
        }
        // Original inventory and plan are untouched.
        assert_eq!(&decoyed.plan[..3], &site.plan[..]);
        assert_eq!(decoyed.objects()[..3], site.objects()[..]);
    }

    #[test]
    fn dummy_objects_count_capped_by_distinct_planned() {
        let site = Site::new(
            "t",
            vec![obj(0, "/a", 10_000)],
            vec![PlanStep {
                object: ObjectId(0),
                trigger: Trigger::AtStart {
                    gap: SimDuration::ZERO,
                },
            }],
        );
        let decoyed = site.with_dummy_objects(8);
        assert_eq!(decoyed.len(), 2); // only one distinct planned target
        assert_eq!(decoyed.plan.len(), 2);
    }

    #[test]
    #[should_panic(expected = "plan references unknown object")]
    fn plan_referencing_missing_object_panics() {
        let _ = Site::new(
            "t",
            vec![obj(0, "/a", 10)],
            vec![PlanStep {
                object: ObjectId(3),
                trigger: Trigger::AtStart {
                    gap: SimDuration::ZERO,
                },
            }],
        );
    }

    #[test]
    #[should_panic(expected = "object id must equal inventory index")]
    fn misnumbered_inventory_panics() {
        let _ = Site::new("t", vec![obj(5, "/a", 10)], vec![]);
    }

    #[test]
    #[should_panic(expected = "zero size")]
    fn zero_size_object_panics() {
        let _ = Site::new("t", vec![obj(0, "/a", 0)], vec![]);
    }
}
